"""Tests for the fixed dataflow templates."""

import pytest

from repro.mapping.dataflows import (
    DATAFLOW_STYLES,
    dla_like,
    eye_like,
    get_dataflow,
    shi_like,
)
from repro.workloads.layer import Layer


@pytest.fixture
def layer():
    return Layer.conv2d("conv", 64, 128, 28, 3)


class TestTemplates:
    @pytest.mark.parametrize("style", DATAFLOW_STYLES)
    def test_templates_produce_legal_two_level_mappings(self, style, layer):
        mapping = get_dataflow(style)(layer, (8, 16))
        assert mapping.num_levels == 2
        assert mapping.pe_array == (8, 16)
        assert mapping.validate(layer) == []

    def test_dla_parallelism_is_k_c(self, layer):
        mapping = dla_like(layer, (8, 16))
        assert mapping.levels[0].parallel_dim == "K"
        assert mapping.levels[1].parallel_dim == "C"

    def test_shi_parallelism_is_y_x(self, layer):
        mapping = shi_like(layer, (8, 16))
        assert mapping.levels[0].parallel_dim == "Y"
        assert mapping.levels[1].parallel_dim == "X"

    def test_eye_parallelism_is_y_r(self, layer):
        mapping = eye_like(layer, (8, 16))
        assert mapping.levels[0].parallel_dim == "Y"
        assert mapping.levels[1].parallel_dim == "R"

    def test_templates_adapt_to_small_layers(self):
        small = Layer.conv2d("small", 3, 8, 4, 1)
        for style in DATAFLOW_STYLES:
            mapping = get_dataflow(style)(small, (4, 4))
            assert mapping.validate(small) == []

    def test_templates_work_on_gemm_layers(self):
        gemm = Layer.gemm("fc", m=128, n=512, k=256)
        for style in DATAFLOW_STYLES:
            mapping = get_dataflow(style)(gemm, (8, 8))
            assert mapping.validate(gemm) == []

    def test_templates_require_two_level_array(self, layer):
        with pytest.raises(ValueError):
            dla_like(layer, (8,))
        with pytest.raises(ValueError):
            dla_like(layer, (2, 2, 2))


class TestLookup:
    def test_lookup_by_alias(self):
        assert get_dataflow("nvdla") is dla_like
        assert get_dataflow("Eyeriss") is eye_like
        assert get_dataflow("shidiannao") is shi_like
        assert get_dataflow("dla-like") is dla_like

    def test_unknown_style_raises(self):
        with pytest.raises(KeyError):
            get_dataflow("tpu")
