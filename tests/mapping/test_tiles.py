"""Tests for tile footprints and minimum buffer requirements."""

from hypothesis import given
from hypothesis import strategies as st

from repro.mapping.directives import LevelMapping
from repro.mapping.mapping import Mapping, uniform_mapping
from repro.mapping.tiles import buffer_requirements, macro_extents, operand_footprint
from repro.workloads.dims import DIMS
from repro.workloads.layer import Layer


class TestOperandFootprint:
    def test_conv_footprint_formulas(self, conv_layer):
        extents = {"K": 4, "C": 8, "Y": 2, "X": 3, "R": 3, "S": 3}
        footprint = operand_footprint(conv_layer, extents)
        assert footprint["W"] == 4 * 8 * 3 * 3
        assert footprint["O"] == 4 * 2 * 3
        assert footprint["I"] == 8 * ((2 - 1) * 1 + 3) * ((3 - 1) * 1 + 3)

    def test_stride_enlarges_input_halo(self):
        layer = Layer.conv2d("s2", 8, 8, 8, 3, stride=2)
        extents = {"K": 1, "C": 1, "Y": 4, "X": 4, "R": 3, "S": 3}
        footprint = operand_footprint(layer, extents)
        assert footprint["I"] == ((4 - 1) * 2 + 3) ** 2

    def test_depthwise_footprints(self, depthwise_layer):
        extents = {"K": 1, "C": 8, "Y": 2, "X": 2, "R": 3, "S": 3}
        footprint = operand_footprint(depthwise_layer, extents)
        assert footprint["W"] == 8 * 3 * 3
        assert footprint["O"] == 8 * 2 * 2

    def test_full_layer_footprint_matches_tensor_sizes(self, conv_layer):
        extents = {dim: conv_layer.dims[dim] for dim in DIMS}
        footprint = operand_footprint(conv_layer, extents)
        assert footprint == conv_layer.tensor_sizes()


class TestMacroExtents:
    def test_parallel_dim_scales_with_spatial_size(self):
        tiles = {"K": 2, "C": 4, "Y": 1, "X": 1, "R": 1, "S": 1}
        parent = {"K": 64, "C": 4, "Y": 1, "X": 1, "R": 1, "S": 1}
        macro = macro_extents(tiles, "K", 8, parent)
        assert macro["K"] == 16
        assert macro["C"] == 4

    def test_macro_capped_at_parent(self):
        tiles = {"K": 8, "C": 1, "Y": 1, "X": 1, "R": 1, "S": 1}
        parent = {"K": 20, "C": 1, "Y": 1, "X": 1, "R": 1, "S": 1}
        macro = macro_extents(tiles, "K", 16, parent)
        assert macro["K"] == 20


class TestBufferRequirements:
    def test_two_level_requirement_structure(self, conv_layer, simple_mapping):
        requirement = buffer_requirements(conv_layer, simple_mapping)
        assert len(requirement.per_level) == 2
        assert requirement.l1_bytes_per_pe == requirement.per_level[-1]["total_bytes"]
        assert requirement.l2_bytes == requirement.per_level[0]["total_bytes"]

    def test_l2_requirement_at_least_l1(self, conv_layer, simple_mapping):
        # The macro tile at L2 covers at least one PE's tile.
        requirement = buffer_requirements(conv_layer, simple_mapping)
        assert requirement.l2_bytes >= requirement.l1_bytes_per_pe

    def test_bytes_per_element_scales_linearly(self, conv_layer, simple_mapping):
        one = buffer_requirements(conv_layer, simple_mapping, bytes_per_element=1)
        two = buffer_requirements(conv_layer, simple_mapping, bytes_per_element=2)
        assert two.l1_bytes_per_pe == 2 * one.l1_bytes_per_pe
        assert two.l2_bytes == 2 * one.l2_bytes

    def test_single_level_mapping(self, conv_layer):
        level = LevelMapping(
            spatial_size=4, parallel_dim="K", order=DIMS,
            tiles={dim: 2 for dim in DIMS},
        )
        requirement = buffer_requirements(conv_layer, Mapping(levels=(level,)))
        assert requirement.l2_bytes == requirement.l1_bytes_per_pe

    def test_growing_a_tile_never_shrinks_the_requirement(self, conv_layer):
        base = uniform_mapping(conv_layer, (4, 8), ("K", "C"))
        inner = base.levels[1].with_tiles(Y=1)
        grown_inner = base.levels[1].with_tiles(Y=4)
        small = buffer_requirements(conv_layer, base.with_level(1, inner))
        large = buffer_requirements(conv_layer, base.with_level(1, grown_inner))
        assert large.l1_bytes_per_pe >= small.l1_bytes_per_pe

    @given(
        k=st.integers(1, 64),
        c=st.integers(1, 64),
        y=st.integers(1, 16),
        x=st.integers(1, 16),
    )
    def test_requirement_positive_property(self, k, c, y, x):
        layer = Layer.conv2d("p", 64, 64, 16, 3)
        level = LevelMapping(
            spatial_size=4,
            parallel_dim="K",
            order=DIMS,
            tiles={"K": k, "C": c, "Y": y, "X": x, "R": 3, "S": 3},
        )
        requirement = buffer_requirements(layer, Mapping(levels=(level, level)))
        assert requirement.l1_bytes_per_pe > 0
        assert requirement.l2_bytes > 0
