"""Tests for per-level mapping directives."""

import pytest

from repro.mapping.directives import LevelMapping
from repro.workloads.dims import DIMS


@pytest.fixture
def level():
    return LevelMapping(
        spatial_size=16,
        parallel_dim="K",
        order=("K", "C", "Y", "X", "R", "S"),
        tiles={"K": 4, "C": 8, "Y": 2, "X": 2, "R": 3, "S": 3},
    )


class TestConstruction:
    def test_valid_level(self, level):
        assert level.spatial_size == 16
        assert level.tile("C") == 8

    def test_rejects_bad_spatial_size(self):
        with pytest.raises(ValueError):
            LevelMapping(spatial_size=0, parallel_dim="K", order=DIMS,
                         tiles={d: 1 for d in DIMS})

    def test_rejects_bad_parallel_dim(self):
        with pytest.raises(ValueError):
            LevelMapping(spatial_size=1, parallel_dim="Z", order=DIMS,
                         tiles={d: 1 for d in DIMS})

    def test_rejects_non_permutation_order(self):
        with pytest.raises(ValueError):
            LevelMapping(spatial_size=1, parallel_dim="K",
                         order=("K", "K", "C", "Y", "X", "R"),
                         tiles={d: 1 for d in DIMS})

    def test_rejects_non_positive_tiles(self):
        tiles = {d: 1 for d in DIMS}
        tiles["Y"] = 0
        with pytest.raises(ValueError):
            LevelMapping(spatial_size=1, parallel_dim="K", order=DIMS, tiles=tiles)

    def test_missing_tile_dimension_raises(self):
        with pytest.raises(KeyError):
            LevelMapping(spatial_size=1, parallel_dim="K", order=DIMS,
                         tiles={"K": 1, "C": 1})


class TestModification:
    def test_with_tiles(self, level):
        updated = level.with_tiles(K=7)
        assert updated.tile("K") == 7
        assert level.tile("K") == 4  # immutable original

    def test_with_spatial_size(self, level):
        assert level.with_spatial_size(3).spatial_size == 3

    def test_with_parallel_dim(self, level):
        assert level.with_parallel_dim("Y").parallel_dim == "Y"
        with pytest.raises(ValueError):
            level.with_parallel_dim("Q")

    def test_with_order(self, level):
        new_order = ("S", "R", "X", "Y", "C", "K")
        assert level.with_order(new_order).order == new_order

    def test_clipped(self, level):
        clipped = level.clipped({"K": 2, "C": 100, "Y": 1, "X": 1, "R": 1, "S": 1})
        assert clipped.tile("K") == 2
        assert clipped.tile("C") == 8  # smaller than parent, untouched
        assert clipped.tile("R") == 1


class TestRendering:
    def test_describe_contains_every_dim(self, level):
        text = level.describe()
        for dim in DIMS:
            assert dim in text
        assert "P=K" in text

    def test_as_dict_roundtrip(self, level):
        data = level.as_dict()
        rebuilt = LevelMapping(
            spatial_size=data["spatial_size"],
            parallel_dim=data["parallel_dim"],
            order=tuple(data["order"]),
            tiles=data["tiles"],
        )
        assert rebuilt == level
