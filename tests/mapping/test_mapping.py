"""Tests for the multi-level Mapping container."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapping.directives import LevelMapping
from repro.mapping.mapping import Mapping, uniform_mapping
from repro.workloads.dims import DIMS
from repro.workloads.layer import Layer


class TestBasics:
    def test_pe_array_and_num_pes(self, simple_mapping):
        assert simple_mapping.pe_array == (8, 16)
        assert simple_mapping.num_pes == 128
        assert simple_mapping.num_levels == 2

    def test_requires_at_least_one_level(self):
        with pytest.raises(ValueError):
            Mapping(levels=())

    def test_iteration(self, simple_mapping):
        assert len(list(simple_mapping)) == 2
        assert len(simple_mapping) == 2


class TestTileExtents:
    def test_extents_respect_layer(self, simple_mapping, conv_layer):
        extents = simple_mapping.tile_extents(conv_layer)
        assert len(extents) == 2
        for dim in DIMS:
            assert extents[0][dim] <= conv_layer.dims[dim]
            assert extents[1][dim] <= extents[0][dim]

    def test_oversized_tiles_are_clipped(self, conv_layer):
        level = LevelMapping(
            spatial_size=4,
            parallel_dim="K",
            order=DIMS,
            tiles={dim: 10_000 for dim in DIMS},
        )
        mapping = Mapping(levels=(level,))
        extents = mapping.tile_extents(conv_layer)
        assert extents[0] == {dim: conv_layer.dims[dim] for dim in DIMS}

    def test_clipped_to_layer_is_legal(self, conv_layer):
        level = LevelMapping(
            spatial_size=4,
            parallel_dim="K",
            order=DIMS,
            tiles={dim: 10_000 for dim in DIMS},
        )
        mapping = Mapping(levels=(level, level))
        clipped = mapping.clipped_to_layer(conv_layer)
        assert clipped.validate(conv_layer) == []

    def test_validate_reports_violations(self, conv_layer):
        level = LevelMapping(
            spatial_size=4,
            parallel_dim="K",
            order=DIMS,
            tiles={**{dim: 1 for dim in DIMS}, "K": 100_000},
        )
        mapping = Mapping(levels=(level,))
        problems = mapping.validate(conv_layer)
        assert len(problems) == 1
        assert "K" in problems[0]


class TestWithLevelAndDescribe:
    def test_with_level_replaces_one_level(self, simple_mapping):
        new_inner = simple_mapping.levels[1].with_spatial_size(32)
        updated = simple_mapping.with_level(1, new_inner)
        assert updated.pe_array == (8, 32)
        assert simple_mapping.pe_array == (8, 16)

    def test_describe_names_levels_outermost_first(self, simple_mapping):
        text = simple_mapping.describe()
        lines = text.splitlines()
        assert lines[0].startswith("L2:")
        assert lines[1].startswith("L1:")

    def test_as_dict(self, simple_mapping):
        data = simple_mapping.as_dict()
        assert len(data["levels"]) == 2


class TestUniformMapping:
    def test_uniform_mapping_is_legal(self, conv_layer):
        mapping = uniform_mapping(conv_layer, (4, 8), ("K", "C"))
        assert mapping.validate(conv_layer) == []
        assert mapping.pe_array == (4, 8)

    def test_uniform_mapping_requires_matching_lengths(self, conv_layer):
        with pytest.raises(ValueError):
            uniform_mapping(conv_layer, (4, 8), ("K",))

    @given(rows=st.integers(1, 64), cols=st.integers(1, 64))
    def test_uniform_mapping_property(self, rows, cols):
        layer = Layer.conv2d("p", 32, 64, 14, 3)
        mapping = uniform_mapping(layer, (rows, cols), ("K", "C"))
        assert mapping.num_pes == rows * cols
        assert mapping.validate(layer) == []
