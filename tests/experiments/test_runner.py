"""Tests of the unified experiment runner (jobs, store, resume, shard)."""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.fig5 import compile_fig5_jobs, run_fig5
from repro.experiments.fig6 import compile_fig6_jobs
from repro.experiments.jobs import (
    JobSpec,
    build_optimizer,
    compile_grid,
    job_from_dict,
    job_to_dict,
)
from repro.experiments.runner import (
    ResultStore,
    ResultStoreCorruption,
    SweepRunner,
    full_outcomes,
    main as runner_main,
    parse_shard,
    select_shard,
)
from repro.experiments.settings import ExperimentSettings

TINY = ExperimentSettings(models=("ncf",), sampling_budget=40, seed=0)
TINY_OPTIMIZERS = ("random", "digamma")


class TestJobSpec:
    def test_job_ids_unique_across_grid(self):
        jobs = compile_grid(
            models=("ncf", "dlrm"),
            platforms=("edge", "cloud"),
            optimizers=("random", "digamma"),
            sampling_budget=40,
            seeds=(0, 1),
        )
        ids = [spec.job_id for spec in jobs]
        assert len(jobs) == 2 * 2 * 2 * 2
        assert len(set(ids)) == len(ids)

    def test_job_id_stable_under_option_ordering(self):
        first = JobSpec(
            model="ncf", platform="edge", optimizer="digamma", sampling_budget=10,
            optimizer_options={"use_hw_operators": False, "seeded_fraction": 0.25},
        )
        second = JobSpec(
            model="ncf", platform="edge", optimizer="digamma", sampling_budget=10,
            optimizer_options={"seeded_fraction": 0.25, "use_hw_operators": False},
        )
        assert first == second
        assert first.job_id == second.job_id

    def test_job_round_trip(self):
        spec = JobSpec(
            model="resnet18", platform="cloud", optimizer="gamma",
            sampling_budget=25, seed=3, objective="edp",
            fixed_hw_style="Compute-focused", scheme="Compute-focused+Gamma",
        )
        rebuilt = job_from_dict(job_to_dict(spec))
        assert rebuilt == spec
        assert rebuilt.job_id == spec.job_id

    def test_build_optimizer_grid_and_options(self):
        grid_spec = JobSpec(
            model="ncf", platform="edge", optimizer="grid",
            optimizer_options={"dataflow": "shi"}, sampling_budget=10,
        )
        assert build_optimizer(grid_spec).name == "Grid-S+shi-like"
        digamma_spec = JobSpec(
            model="ncf", platform="edge", optimizer="digamma",
            optimizer_options={"use_hw_operators": False}, sampling_budget=10,
        )
        assert build_optimizer(digamma_spec).use_hw_operators is False

    def test_scheme_label_defaults_to_optimizer_name(self):
        spec = JobSpec(
            model="ncf", platform="edge", optimizer="cma", sampling_budget=10
        )
        assert spec.scheme_label == "CMA"


class TestResultStore:
    def test_append_and_load(self, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl")
        jobs = compile_fig5_jobs("edge", TINY, ("random",))
        SweepRunner(jobs, settings=TINY, store=store).run()
        assert store.completed_ids() == {jobs[0].job_id}
        loaded = store.load_results()[jobs[0].job_id]
        assert loaded.evaluations == TINY.sampling_budget
        assert store.load_jobs()[jobs[0].job_id] == jobs[0]

    def test_malformed_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        store = ResultStore(path)
        jobs = compile_fig5_jobs("edge", TINY, ("random",))
        SweepRunner(jobs, settings=TINY, store=store).run()
        with path.open("a") as handle:
            handle.write('{"job_id": "killed-mid-wr')  # no newline, no close
        with pytest.warns(ResultStoreCorruption):
            assert len(store.records()) == 1
        with pytest.warns(ResultStoreCorruption):
            assert store.completed_ids() == {jobs[0].job_id}

    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert store.records() == []
        assert store.completed_ids() == set()

    def test_corrupt_lines_are_counted_and_quarantined(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text(
            '{"job_id": "a", "spec": {}, "result": 1}\n'
            "не-json мусор\n"
            '{"job_id": "b", "spec": {}, "result": 2}\n'
            '{"job_id": "truncated", "sp'
        )
        store = ResultStore(path)
        with pytest.warns(ResultStoreCorruption, match="2 undecodable"):
            records = store.records()
        assert [record["job_id"] for record in records] == ["a", "b"]
        assert store.skipped_lines == 2
        quarantined = store.corrupt_path.read_text().splitlines()
        assert quarantined == ["не-json мусор", '{"job_id": "truncated", "sp']
        # Re-reading the same damaged store does not duplicate quarantines.
        with pytest.warns(ResultStoreCorruption):
            store.records()
        assert store.corrupt_path.read_text().splitlines() == quarantined

    def test_append_heals_a_partial_trailing_line(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        store = ResultStore(path)
        jobs = compile_fig5_jobs("edge", TINY, ("random",))
        SweepRunner(jobs, settings=TINY, store=store).run()
        with path.open("a") as handle:
            handle.write('{"half": ')  # a writer died mid-record
        # The next append must not glue onto the partial line — one crash
        # may never corrupt a second record.
        SweepRunner(jobs, settings=ExperimentSettings(
            models=("ncf",), sampling_budget=40, seed=1
        ), store=store).run()
        with pytest.warns(ResultStoreCorruption):
            assert len(store.records()) == 2
        assert store.skipped_lines == 1

    def test_verify_and_repair(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        store = ResultStore(path)
        jobs = compile_fig5_jobs("edge", TINY, ("random",))
        SweepRunner(jobs, settings=TINY, store=store).run()
        good_line = path.read_text()
        path.write_text(good_line + '{"cut-off-mid-wri')
        report = store.verify()
        assert not report["ok"]
        assert report["records"] == 1
        assert report["corrupt_lines"] == 1
        assert report["corrupt_line_numbers"] == [2]
        assert report["jobs"] == {
            "ok": 1, "failed": 0, "quarantined": 0, "interrupted": 0,
        }

        repair_report = store.repair()
        assert repair_report["removed_lines"] == 1
        # Good lines survive byte-for-byte; the bad one is quarantined.
        assert path.read_text() == good_line
        assert '{"cut-off-mid-wri' in store.corrupt_path.read_text()
        clean = store.verify()
        assert clean["ok"] and clean["corrupt_lines"] == 0
        # Repairing a clean store is a no-op.
        assert store.repair()["removed_lines"] == 0
        assert path.read_text() == good_line

    def test_failure_records_change_status_not_completed_ids(self, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl")
        jobs = compile_fig5_jobs("edge", TINY, ("random",))
        spec = jobs[0]
        failure = {"job_id": spec.job_id, "error": "RuntimeError: x",
                   "traceback": "...", "attempt": 1, "elapsed": 0.5}
        store.append_failure(spec, failure, quarantined=False)
        assert store.statuses() == {spec.job_id: "failed"}
        assert store.completed_ids() == set()
        assert store.load_results() == {}
        store.append_failure(spec, {**failure, "attempt": 2}, quarantined=True)
        assert store.statuses() == {spec.job_id: "quarantined"}
        # A later success wins (the job was re-run after manual triage).
        SweepRunner(jobs, settings=TINY, store=store).run()
        assert store.statuses() == {spec.job_id: "ok"}
        assert store.completed_ids() == {spec.job_id}
        report = store.verify()
        assert report["failure_records"] == 2
        assert report["jobs"] == {
            "ok": 1, "failed": 0, "quarantined": 0, "interrupted": 0,
        }

    def test_fsync_durability_mode(self, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl", durability="fsync")
        jobs = compile_fig5_jobs("edge", TINY, ("random",))
        SweepRunner(jobs, settings=TINY, store=store).run()
        assert store.completed_ids() == {jobs[0].job_id}
        with pytest.raises(ValueError, match="durability"):
            ResultStore(tmp_path / "x.jsonl", durability="paranoid")


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("1/4") == (1, 4)
        assert parse_shard("4/4") == (4, 4)
        for bad in ("0/4", "5/4", "4", "a/b", "1/0"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_parse_shard_errors_name_the_offence(self):
        with pytest.raises(ValueError, match=r"no '/'"):
            parse_shard("4")
        with pytest.raises(ValueError, match=r"integer i and N.*'a/b'"):
            parse_shard("a/b")
        with pytest.raises(ValueError, match=r"N must be >= 1.*'1/0'"):
            parse_shard("1/0")
        with pytest.raises(ValueError, match=r"1-based.*i=0.*N=4"):
            parse_shard("0/4")
        with pytest.raises(ValueError, match=r"i=5.*N=4"):
            parse_shard("5/4")

    def test_shards_partition_the_job_list(self):
        jobs = compile_grid(
            models=("ncf", "dlrm", "resnet18"),
            platforms=("edge",),
            optimizers=("random", "digamma", "cma"),
            sampling_budget=10,
        )
        shards = [select_shard(jobs, index, 4) for index in (1, 2, 3, 4)]
        collected = [spec for shard in shards for spec in shard]
        assert sorted(s.job_id for s in collected) == sorted(s.job_id for s in jobs)
        assert sum(len(shard) for shard in shards) == len(jobs)

    def test_sharded_runners_complete_the_sweep(self, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl")
        jobs = compile_fig5_jobs("edge", TINY, TINY_OPTIMIZERS)
        for index in (1, 2):
            SweepRunner(
                jobs, settings=TINY, store=store, shard=(index, 2)
            ).run()
        assert store.completed_ids() == {spec.job_id for spec in jobs}
        merged = full_outcomes(jobs, [], store)
        assert merged is not None
        assert [spec.job_id for spec, _ in merged] == [spec.job_id for spec in jobs]


class TestResume:
    def test_resume_runs_only_missing_jobs(self, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl")
        jobs = compile_fig5_jobs("edge", TINY, TINY_OPTIMIZERS)
        # Simulate a sweep killed after the first job.
        SweepRunner(jobs[:1], settings=TINY, store=store).run()
        assert len(store.records()) == 1

        progress = []
        SweepRunner(
            jobs, settings=TINY, store=store, resume=True,
            progress=progress.append,
        ).run()
        # Only the missing job was appended; the first was skipped.
        assert len(store.records()) == len(jobs)
        assert any("skip (stored)" in line for line in progress)

    def test_resumed_tables_are_byte_identical(self, tmp_path):
        baseline = run_fig5("edge", TINY, TINY_OPTIMIZERS).report()

        store = ResultStore(tmp_path / "sweep.jsonl")
        jobs = compile_fig5_jobs("edge", TINY, TINY_OPTIMIZERS)
        SweepRunner(jobs[:1], settings=TINY, store=store).run()  # "killed" sweep
        resumed = run_fig5(
            "edge", TINY, TINY_OPTIMIZERS, store=store, resume=True
        ).report()
        assert resumed == baseline
        # A second resume serves everything from the store, still identical.
        reloaded = run_fig5(
            "edge", TINY, TINY_OPTIMIZERS, store=store, resume=True
        ).report()
        assert reloaded == baseline
        assert len(store.records()) == len(jobs)

    def test_duplicate_job_ids_run_once_and_share_the_result(self, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl")
        jobs = compile_fig5_jobs("edge", TINY, ("random",))
        relabeled = [
            JobSpec(**{**job_to_dict(spec), "scheme": "Random (again)"})
            for spec in jobs
        ]
        outcomes = SweepRunner(jobs + relabeled, settings=TINY, store=store).run()
        # Same job_id (the scheme label is presentation-only): one execution,
        # one store record, the result returned under both labels.
        assert len(outcomes) == 2
        assert len(store.records()) == 1
        assert outcomes[0][1] is outcomes[1][1]
        assert outcomes[1][0].scheme_label == "Random (again)"


class TestFig6Jobs:
    def test_compile_covers_all_schemes(self):
        jobs = compile_fig6_jobs("edge", TINY)
        labels = {spec.scheme_label for spec in jobs}
        assert len(jobs) == 7
        assert sum("Grid-S" in label for label in labels) == 3
        assert sum("+Gamma" in label for label in labels) == 3
        assert "DiGamma" in labels
        gamma_jobs = [spec for spec in jobs if spec.optimizer == "gamma"]
        assert all(spec.fixed_hw_style is not None for spec in gamma_jobs)


class TestExperimentsCLI:
    def test_smoke_sweep(self, tmp_path, capsys):
        store_path = tmp_path / "smoke.jsonl"
        exit_code = repro_main(
            ["experiments", "--smoke", "--quiet", "--store", str(store_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert store_path.exists()
        records = [
            json.loads(line)
            for line in store_path.read_text().splitlines()
            if line.strip()
        ]
        assert len(records) == 3  # ncf x (random, cma, digamma)
        assert all(record["result"]["evaluations"] == 40 for record in records)

    def test_shard_requires_store(self):
        with pytest.raises(SystemExit):
            repro_main(["experiments", "--smoke", "--shard", "1/2"])

    def test_verify_store_flags_corruption(self, tmp_path, capsys):
        store_path = tmp_path / "sweep.jsonl"
        store = ResultStore(store_path)
        jobs = compile_fig5_jobs("edge", TINY, ("random",))
        SweepRunner(jobs, settings=TINY, store=store).run()
        assert repro_main(
            ["experiments", "--verify-store", str(store_path)]
        ) == 0
        assert "0 corrupt line(s)" in capsys.readouterr().out

        with store_path.open("a") as handle:
            handle.write('{"half-written')
        assert repro_main(
            ["experiments", "--verify-store", str(store_path)]
        ) == 1
        assert "1 corrupt line(s) at line 2" in capsys.readouterr().out

        # --repair-store cleans it; combined with --verify-store the exit
        # code reflects the post-repair state.
        assert repro_main([
            "experiments",
            "--repair-store", str(store_path),
            "--verify-store", str(store_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "1 corrupt line(s) removed" in out
        assert store.corrupt_path.exists()

    def test_resume_requires_store(self):
        with pytest.raises(SystemExit):
            repro_main(["experiments", "--smoke", "--resume"])

    def test_overlapping_suites_share_one_search(self, tmp_path, capsys):
        # The operator ablation's plain DiGamma and the buffer ablation's
        # "exact" variant are the same search; the sweep runs it once.
        store_path = tmp_path / "ablations.jsonl"
        exit_code = repro_main([
            "experiments", "--suite", "ablations", "--models", "ncf",
            "--budget", "25", "--quiet", "--store", str(store_path),
        ])
        assert exit_code == 0
        ids = [
            json.loads(line)["job_id"]
            for line in store_path.read_text().splitlines()
            if line.strip()
        ]
        assert len(ids) == len(set(ids)) == 5  # 4 operator variants + "fill"
        out = capsys.readouterr().out
        assert "Ablation A1" in out
        assert "Ablation A2" in out


class TestEngineSelection:
    def test_engine_round_trips_through_job_id_and_serialization(self):
        for engine in ("vector", "fast", "reference"):
            spec = JobSpec(
                model="ncf", platform="edge", optimizer="random",
                sampling_budget=30, engine=engine,
            )
            assert f"engine={engine}" in spec.job_id
            assert job_from_dict(job_to_dict(spec)) == spec
        default = JobSpec(
            model="ncf", platform="edge", optimizer="random", sampling_budget=30
        )
        assert "engine" not in default.job_id
        assert job_from_dict(job_to_dict(default)) == default
        assert default.engine is None

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(
                model="ncf", platform="edge", optimizer="random",
                sampling_budget=30, engine="warp",
            )

    def test_specs_with_different_engines_never_share_a_framework(self):
        fast = JobSpec(
            model="ncf", platform="edge", optimizer="random",
            sampling_budget=30, engine="fast",
        )
        vector = JobSpec(
            model="ncf", platform="edge", optimizer="random",
            sampling_budget=30, engine="vector",
        )
        assert fast.framework_key != vector.framework_key
        assert fast.evaluator_cache_key != vector.evaluator_cache_key

    @pytest.mark.parametrize("engine", ["vector", "fast", "reference"])
    def test_each_engine_runs_a_smoke_search_end_to_end(self, engine):
        spec = JobSpec(
            model="ncf", platform="edge", optimizer="digamma",
            sampling_budget=40, engine=engine,
        )
        outcomes = SweepRunner([spec], settings=TINY).run()
        assert len(outcomes) == 1
        result = outcomes[0][1]
        assert result.evaluations == 40
        assert result.best is not None

    def test_engines_agree_on_the_search_outcome(self):
        fitnesses = set()
        for engine in ("vector", "fast", "reference"):
            spec = JobSpec(
                model="ncf", platform="edge", optimizer="digamma",
                sampling_budget=40, engine=engine,
            )
            result = SweepRunner([spec], settings=TINY).run()[0][1]
            fitnesses.add(result.best.fitness)
        assert len(fitnesses) == 1

    def test_settings_engine_flows_into_unpinned_jobs(self, capsys):
        # --engine reference must actually run the reference engine; the
        # smoke budget keeps it cheap.  An identical outcome to the default
        # engine is the bit-identity contract.
        spec = JobSpec(
            model="ncf", platform="edge", optimizer="random", sampling_budget=30
        )
        reference = SweepRunner(
            [spec],
            settings=ExperimentSettings(sampling_budget=30, engine="reference"),
        ).run()[0][1]
        vector = SweepRunner([spec], settings=TINY).run()[0][1]
        assert reference.best.fitness == vector.best.fitness


class TestBackendSelection:
    """The cost-backend seam through specs, settings and the runner."""

    def test_backend_round_trips_through_job_id_and_serialization(self):
        spec = JobSpec(
            model="ncf", platform="edge", optimizer="random",
            sampling_budget=30, backend="zigzag",
        )
        assert "backend=zigzag" in spec.job_id
        assert job_from_dict(job_to_dict(spec)) == spec
        default = JobSpec(
            model="ncf", platform="edge", optimizer="random", sampling_budget=30
        )
        assert "backend" not in default.job_id
        assert default.backend is None
        assert job_from_dict(job_to_dict(default)) == default

    def test_unknown_backend_rejected_naming_choices(self):
        with pytest.raises(ValueError, match="analytic"):
            JobSpec(
                model="ncf", platform="edge", optimizer="random",
                sampling_budget=30, backend="timeloop",
            )
        with pytest.raises(ValueError, match="zigzag"):
            ExperimentSettings(backend="timeloop")

    def test_specs_with_different_backends_never_share_anything(self):
        analytic = JobSpec(
            model="ncf", platform="edge", optimizer="random",
            sampling_budget=30, backend="analytic",
        )
        zigzag = JobSpec(
            model="ncf", platform="edge", optimizer="random",
            sampling_budget=30, backend="zigzag",
        )
        assert analytic.job_id != zigzag.job_id
        assert analytic.framework_key != zigzag.framework_key
        assert analytic.evaluator_cache_key != zigzag.evaluator_cache_key

    def test_runner_pins_non_default_settings_backend_into_job_ids(self):
        spec = JobSpec(
            model="ncf", platform="edge", optimizer="random", sampling_budget=30
        )
        runner = SweepRunner(
            [spec],
            settings=ExperimentSettings(
                models=("ncf",), sampling_budget=30, backend="zigzag"
            ),
        )
        assert runner.jobs[0].backend == "zigzag"
        assert "backend=zigzag" in runner.jobs[0].job_id
        # The default backend stays implicit, so existing store ids keep
        # resolving.
        assert SweepRunner([spec], settings=TINY).jobs[0].backend is None

    def test_zigzag_smoke_search_end_to_end(self):
        spec = JobSpec(
            model="ncf", platform="edge", optimizer="digamma",
            sampling_budget=40, backend="zigzag",
        )
        outcomes = SweepRunner([spec], settings=TINY).run()
        assert len(outcomes) == 1
        result = outcomes[0][1]
        assert result.evaluations == 40
        assert result.best is not None

    def test_backends_disagree_on_cost_but_both_search(self):
        # Unlike engines, backends compute different costs: the searches
        # complete on both, and (on this seeded sample) find different
        # fitness values — proof the selector actually switches models.
        fitnesses = {}
        for backend in ("analytic", "zigzag"):
            spec = JobSpec(
                model="ncf", platform="edge", optimizer="random",
                sampling_budget=40, backend=backend,
            )
            fitnesses[backend] = (
                SweepRunner([spec], settings=TINY).run()[0][1].best.fitness
            )
        assert fitnesses["analytic"] != fitnesses["zigzag"]

    def test_search_cli_runs_the_zigzag_backend(self, capsys):
        code = repro_main(
            [
                "search", "--model", "ncf", "--optimizer", "random",
                "--budget", "30", "--backend", "zigzag",
            ]
        )
        assert code == 0
        assert "Hardware" in capsys.readouterr().out

    def test_sweep_cli_renders_tables_under_a_pinned_backend(
        self, tmp_path, capsys
    ):
        # Table rendering matches outcomes to independently compiled suite
        # specs by job_id; the sweep backend must be pinned into both
        # sides' ids or every lookup misses and no table renders.
        code = runner_main(
            [
                "--smoke", "--quiet", "--backend", "zigzag",
                "--store", str(tmp_path / "zz.jsonl"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "jobs done in this shard" not in out
        assert "Fig. 5" in out


class TestCacheReuseAcrossJobs:
    def test_layer_cache_is_shared_across_objectives(self, tmp_path):
        # Same model/platform/seed with different objectives evaluates the
        # same genomes, so the second job's layer lookups are all warm.
        jobs = [
            JobSpec(model="ncf", platform="edge", optimizer="random",
                    sampling_budget=50, objective="latency"),
            JobSpec(model="ncf", platform="edge", optimizer="random",
                    sampling_budget=50, objective="energy"),
        ]
        store = ResultStore(tmp_path / "shared.jsonl")
        runner = SweepRunner(jobs, settings=TINY, store=store)
        runner.run()
        records = store.records()
        assert [record["cache"]["layer"]["hits"] for record in records][0] == 0
        second = records[1]["cache"]["layer"]
        assert second["hits"] > 0
        assert second["hit_rate"] == 1.0

    def test_cache_statistics_are_recorded_per_search(self, tmp_path):
        spec = JobSpec(
            model="ncf", platform="edge", optimizer="digamma", sampling_budget=40
        )
        store = ResultStore(tmp_path / "stats.jsonl")
        SweepRunner([spec], settings=TINY, store=store).run()
        record = store.records()[0]
        for cache_name in ("design", "layer"):
            stats = record["cache"][cache_name]
            assert set(stats) == {"hits", "misses", "hit_rate"}
            assert stats["hits"] >= 0 and stats["misses"] > 0
        # Cache-annotated stores stay resumable.
        resumed = SweepRunner(
            [spec], settings=TINY, store=store, resume=True
        ).run()
        assert resumed[0][1].evaluations == 40

    def test_progress_lines_surface_cache_hit_rates(self):
        spec = JobSpec(
            model="ncf", platform="edge", optimizer="random", sampling_budget=30
        )
        lines = []
        SweepRunner([spec], settings=TINY, progress=lines.append).run()
        assert "design cache" in lines[0]
        assert "layer cache" in lines[0]

    def test_persistent_tier_spans_runs_and_is_recorded(self, tmp_path):
        spec = JobSpec(
            model="ncf", platform="edge", optimizer="random", sampling_budget=40
        )
        settings = ExperimentSettings(
            models=("ncf",),
            sampling_budget=40,
            seed=0,
            cache_dir=str(tmp_path / "l2"),
        )

        cold_store = ResultStore(tmp_path / "cold.jsonl")
        SweepRunner([spec], settings=settings, store=cold_store).run()
        cold = cold_store.records()[0]["cache"]["l2"]
        assert cold["writes"] > 0 and cold["hits"] == 0

        # A brand-new runner (fresh process semantics) over the same
        # directory must answer every layer pricing from disk and land on
        # identical results — the store records prove it counter-wise.
        warm_store = ResultStore(tmp_path / "warm.jsonl")
        SweepRunner([spec], settings=settings, store=warm_store).run()
        warm = warm_store.records()[0]["cache"]["l2"]
        assert warm["hit_rate"] >= 0.9 and warm["writes"] == 0
        cold_result = cold_store.records()[0]["result"]
        warm_result = warm_store.records()[0]["result"]
        cold_result.pop("wall_time_seconds")
        warm_result.pop("wall_time_seconds")
        assert warm_result == cold_result

    def test_cache_dir_threads_from_cli_args(self, tmp_path):
        import argparse

        from repro.experiments.runner import (
            add_sweep_arguments,
            settings_from_args,
        )

        parser = argparse.ArgumentParser()
        add_sweep_arguments(parser)
        args = parser.parse_args(["--cache-dir", str(tmp_path / "l2")])
        settings = settings_from_args(args, models=("ncf",))
        assert settings.cache_dir == str(tmp_path / "l2")
        assert settings.framework_options()["cache_dir"] == str(tmp_path / "l2")
        # And stays out of job identities: the spec grid is cache-blind.
        assert parser.parse_args([]).cache_dir is None

    def test_reference_jobs_do_not_join_cache_sharing(self):
        jobs = [
            JobSpec(model="ncf", platform="edge", optimizer="random",
                    sampling_budget=30, engine="reference", objective="latency"),
            JobSpec(model="ncf", platform="edge", optimizer="random",
                    sampling_budget=30, engine="reference", objective="energy"),
        ]
        outcomes = SweepRunner(jobs, settings=TINY).run()
        assert len(outcomes) == 2  # runs cleanly, nothing shared
