"""Tests for the shared experiment settings."""

import pytest

from repro.arch.area import AreaModel
from repro.arch.platform import CLOUD, EDGE
from repro.experiments.settings import (
    DEFAULT_MODELS,
    FIG5_OPTIMIZERS,
    FIXED_HW_STYLES,
    ExperimentSettings,
    make_fixed_hardware,
)
from repro.optim.registry import get_optimizer
from repro.workloads.registry import available_models


class TestConstants:
    def test_default_models_are_the_papers_seven(self):
        assert len(DEFAULT_MODELS) == 7
        assert set(DEFAULT_MODELS) == set(available_models())

    def test_fig5_optimizer_names_resolve(self):
        assert len(FIG5_OPTIMIZERS) == 9
        for name in FIG5_OPTIMIZERS:
            assert get_optimizer(name) is not None

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            ExperimentSettings(sampling_budget=0)
        with pytest.raises(ValueError):
            ExperimentSettings(workers=0)

    def test_reliability_knob_validation(self):
        with pytest.raises(ValueError):
            ExperimentSettings(retries=-1)
        with pytest.raises(ValueError):
            ExperimentSettings(retry_backoff=-0.1)
        with pytest.raises(ValueError):
            ExperimentSettings(job_timeout=0)
        with pytest.raises(ValueError):
            ExperimentSettings(durability="eventually")

    def test_reliability_knobs_default_to_production_safety(self):
        settings = ExperimentSettings()
        assert settings.retries == 0
        assert settings.job_timeout is None
        assert settings.durability == "flush"
        assert settings.fault_plan is None
        # The reliability knobs are runner concerns: they must not leak
        # into the framework construction kwargs.
        assert "retries" not in settings.framework_options()
        assert "fault_plan" not in settings.framework_options()

    def test_engine_knobs_default_and_forward(self):
        settings = ExperimentSettings()
        assert settings.use_cache is True
        assert settings.workers is None
        assert settings.use_delta is True
        assert settings.framework_options() == {
            "use_cache": True,
            "workers": None,
            "use_delta": True,
            "cache_dir": None,
        }
        tuned = ExperimentSettings(
            use_cache=False, workers=2, use_delta=False, cache_dir="/tmp/l2"
        )
        assert tuned.framework_options() == {
            "use_cache": False,
            "workers": 2,
            "use_delta": False,
            "cache_dir": "/tmp/l2",
        }


class TestMakeFixedHardware:
    def test_styles_cover_the_compute_memory_spectrum(self):
        assert FIXED_HW_STYLES["Buffer-focused"] < FIXED_HW_STYLES["Medium-Buf-Com"]
        assert FIXED_HW_STYLES["Medium-Buf-Com"] < FIXED_HW_STYLES["Compute-focused"]

    @pytest.mark.parametrize("platform", [EDGE, CLOUD])
    @pytest.mark.parametrize("fraction", list(FIXED_HW_STYLES.values()))
    def test_fixed_hw_fits_the_area_budget(self, platform, fraction):
        hardware = make_fixed_hardware(platform, fraction)
        area = AreaModel().total_area(hardware)
        assert area <= platform.area_budget_um2 * 1.02
        assert hardware.num_pes >= 1
        assert hardware.l1_size >= 1
        assert hardware.l2_size >= 1

    def test_compute_focused_has_more_pes_than_buffer_focused(self):
        compute = make_fixed_hardware(EDGE, FIXED_HW_STYLES["Compute-focused"])
        buffer = make_fixed_hardware(EDGE, FIXED_HW_STYLES["Buffer-focused"])
        assert compute.num_pes > buffer.num_pes
        assert compute.l2_size < buffer.l2_size

    def test_cloud_hw_is_bigger_than_edge_hw(self):
        edge_hw = make_fixed_hardware(EDGE, 0.5)
        cloud_hw = make_fixed_hardware(CLOUD, 0.5)
        assert cloud_hw.num_pes > edge_hw.num_pes
        assert cloud_hw.l2_size > edge_hw.l2_size

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            make_fixed_hardware(EDGE, 0.0)
        with pytest.raises(ValueError):
            make_fixed_hardware(EDGE, 1.0)
        with pytest.raises(ValueError):
            make_fixed_hardware(EDGE, 0.5, l1_fraction=1.5)
