"""Chaos tests: the fault harness and the runner's reliability layer.

Every failure mode the reliability layer claims to survive is injected here
deterministically: jobs that raise, worker processes that die, searches
that hang past the watchdog and stores truncated mid-append.  The headline
acceptance test checks that a faulted-then-resumed sweep converges to the
same successful-record set as a fault-free run.
"""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    SweepAborted,
    parse_fault_plan,
)
from repro.experiments.fig5 import compile_fig5_jobs
from repro.experiments.runner import (
    ResultStore,
    ResultStoreCorruption,
    SweepRunner,
)
from repro.experiments.settings import ExperimentSettings


def tiny_settings(**overrides):
    base = dict(models=("ncf",), sampling_budget=40, seed=0, retry_backoff=0.0)
    base.update(overrides)
    return ExperimentSettings(**base)


def tiny_jobs(optimizers=("random",)):
    return compile_fig5_jobs("edge", tiny_settings(), optimizers)


def canonical_records(path):
    """A faulted run's store, reduced to its reproducible content.

    Keeps the latest record per job id, drops failure records, and strips
    the two legitimately non-deterministic fields (per-search wall time and
    cache-hit statistics, both of which depend on timing, not on what the
    search computed).  Two stores whose canonical forms match contain
    bit-identical search results.
    """
    latest = {}
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # a simulated crash's half-written line
        latest[record["job_id"]] = record
    successes = []
    for record in sorted(latest.values(), key=lambda entry: entry["job_id"]):
        if "result" not in record:
            continue
        record.pop("cache", None)
        record["result"].pop("wall_time_seconds", None)
        successes.append(record)
    return successes


class TestFaultPlanParsing:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.from_json(
            '[{"kind": "raise", "job": 1, "attempt": 2},'
            ' {"kind": "kill-worker", "times": 3}]',
            state_dir=tmp_path,
        )
        rebuilt = FaultPlan.from_json(plan.to_json(), state_dir=tmp_path)
        assert rebuilt.specs == plan.specs
        assert plan.specs[0].job == 1
        assert plan.specs[1].times == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultSpec(kind="explode")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec field"):
            FaultPlan.from_json('[{"kind": "raise", "when": "later"}]')

    def test_non_list_rejected(self):
        with pytest.raises(ValueError, match="JSON list"):
            FaultPlan.from_json('{"kind": "raise"}')

    def test_parse_fault_plan_passes_none_through(self):
        assert parse_fault_plan(None) is None
        assert parse_fault_plan("") is None

    def test_matching_semantics(self):
        by_position = FaultSpec(kind="raise", job=2, attempt=None)
        assert by_position.matches("anything", 2, 5)
        assert not by_position.matches("anything", 1, 5)
        by_substring = FaultSpec(kind="raise", job="cma", attempt=1)
        assert by_substring.matches("ncf-edge-cma-b40-s0", 7, 1)
        assert not by_substring.matches("ncf-edge-cma-b40-s0", 7, 2)
        assert not by_substring.matches("ncf-edge-random-b40-s0", 7, 1)

    def test_raise_fires_through_on_job_start(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(kind="raise", job=0, attempt=1)], state_dir=tmp_path
        )
        with pytest.raises(FaultInjected):
            plan.on_job_start("some-job", 0, 1)
        plan.on_job_start("some-job", 0, 2)  # other attempts unaffected
        plan.on_job_start("other-job", 1, 1)  # other jobs unaffected


class TestGenerationFaults:
    def test_generation_kinds_require_a_generation(self):
        with pytest.raises(ValueError, match="generation"):
            FaultSpec(kind="kill-generation")
        with pytest.raises(ValueError, match="generation"):
            FaultSpec(kind="sigterm")
        with pytest.raises(ValueError, match="generation"):
            FaultSpec(kind="sigterm", generation=0)
        FaultSpec(kind="sigterm", generation=1)  # valid

    def test_from_json_round_trips_generation(self, tmp_path):
        plan = FaultPlan.from_json(
            '[{"kind": "kill-generation", "job": "digamma", "generation": 3}]',
            state_dir=tmp_path,
        )
        rebuilt = FaultPlan.from_json(plan.to_json(), state_dir=tmp_path)
        assert rebuilt.specs == plan.specs
        assert plan.specs[0].generation == 3

    def test_generation_hang_fires_once_at_its_boundary(
        self, tmp_path, monkeypatch
    ):
        sleeps = []
        monkeypatch.setattr("repro.experiments.faults.time.sleep", sleeps.append)
        plan = FaultPlan(
            [FaultSpec(kind="hang", job="digamma", generation=2, duration=0.5)],
            state_dir=tmp_path,
        )
        plan.on_generation("ncf-edge-digamma-b40-s0", 1)  # wrong boundary
        plan.on_generation("ncf-edge-random-b40-s0", 2)  # wrong job
        assert sleeps == []
        plan.on_generation("ncf-edge-digamma-b40-s0", 2)
        assert sleeps == [0.5]
        # One-shot: a resumed run re-entering the boundary does not refire.
        plan.on_generation("ncf-edge-digamma-b40-s0", 2)
        assert sleeps == [0.5]

    def test_positional_job_match_never_fires_at_generation(
        self, tmp_path, monkeypatch
    ):
        sleeps = []
        monkeypatch.setattr("repro.experiments.faults.time.sleep", sleeps.append)
        plan = FaultPlan(
            [FaultSpec(kind="hang", job=0, generation=1, duration=0.5)],
            state_dir=tmp_path,
        )
        plan.on_generation("anything", 1)
        assert sleeps == []

    def test_generation_hang_skips_job_start(self, tmp_path, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.experiments.faults.time.sleep", sleeps.append)
        plan = FaultPlan(
            [FaultSpec(kind="hang", generation=3)], state_dir=tmp_path
        )
        plan.on_job_start("job", 0, 1)
        assert sleeps == []


class TestErrorBoundary:
    def test_injected_failure_is_recorded_then_retried_to_success(self, tmp_path):
        jobs = tiny_jobs()
        plan = FaultPlan(
            [FaultSpec(kind="raise", job=0, attempt=1)],
            state_dir=tmp_path / "faults",
        )
        store = ResultStore(tmp_path / "sweep.jsonl")
        outcomes = SweepRunner(
            jobs, settings=tiny_settings(retries=1, fault_plan=plan), store=store
        ).run()
        assert len(outcomes) == 1  # the retry succeeded
        records = store.records()
        assert len(records) == 2
        failed, succeeded = records
        assert failed["status"] == "failed"
        failure = failed["failure"]
        assert set(failure) >= {"job_id", "error", "traceback", "attempt", "elapsed"}
        assert "FaultInjected" in failure["error"]
        assert "FaultInjected" in failure["traceback"]
        assert failure["attempt"] == 1
        assert failure["elapsed"] >= 0
        assert "result" in succeeded and "status" not in succeeded
        assert store.completed_ids() == {jobs[0].job_id}

    def test_exhausted_retries_quarantine_and_the_sweep_continues(self, tmp_path):
        jobs = tiny_jobs(("random", "cma"))
        plan = FaultPlan(
            [FaultSpec(kind="raise", job=0, attempt=None)],
            state_dir=tmp_path / "faults",
        )
        store = ResultStore(tmp_path / "sweep.jsonl")
        progress = []
        outcomes = SweepRunner(
            jobs,
            settings=tiny_settings(retries=1, fault_plan=plan),
            store=store,
            progress=progress.append,
        ).run()
        # The poisoned first job is gone, the healthy second one completed.
        assert [spec.job_id for spec, _ in outcomes] == [jobs[1].job_id]
        statuses = store.statuses()
        assert statuses[jobs[0].job_id] == "quarantined"
        assert statuses[jobs[1].job_id] == "ok"
        assert any("QUARANTINED" in line for line in progress)
        attempts = [
            record["failure"]["attempt"]
            for record in store.records()
            if "failure" in record
        ]
        assert attempts == [1, 2]

    def test_resume_skips_quarantined_jobs(self, tmp_path):
        jobs = tiny_jobs(("random", "cma"))
        plan = FaultPlan(
            [FaultSpec(kind="raise", job=0, attempt=None)],
            state_dir=tmp_path / "faults",
        )
        store = ResultStore(tmp_path / "sweep.jsonl")
        SweepRunner(
            jobs, settings=tiny_settings(retries=0, fault_plan=plan), store=store
        ).run()
        before = len(store.records())
        progress = []
        outcomes = SweepRunner(
            jobs, settings=tiny_settings(), store=store, resume=True,
            progress=progress.append,
        ).run()
        # Nothing re-ran: the quarantined job is skipped, the other reloads.
        assert len(store.records()) == before
        assert any("skip (quarantined)" in line for line in progress)
        assert [spec.job_id for spec, _ in outcomes] == [jobs[1].job_id]

    def test_resume_reruns_retryable_failures(self, tmp_path):
        jobs = tiny_jobs()
        store = ResultStore(tmp_path / "sweep.jsonl")
        # A run that died between recording a retryable failure and its
        # retry leaves a non-quarantined failure as the job's last word.
        store.append_failure(
            jobs[0],
            {"job_id": jobs[0].job_id, "error": "RuntimeError: boom",
             "traceback": "...", "attempt": 1, "elapsed": 0.1},
            quarantined=False,
        )
        assert store.statuses()[jobs[0].job_id] == "failed"
        outcomes = SweepRunner(
            jobs, settings=tiny_settings(), store=store, resume=True
        ).run()
        assert len(outcomes) == 1
        assert store.statuses()[jobs[0].job_id] == "ok"

    def test_backoff_is_exponential_and_deterministically_jittered(
        self, tmp_path, monkeypatch
    ):
        sleeps = []
        monkeypatch.setattr(
            "repro.experiments.runner.time.sleep", sleeps.append
        )
        jobs = tiny_jobs()
        plan = FaultPlan(
            [FaultSpec(kind="raise", job=0, attempt=None)],
            state_dir=tmp_path / "faults",
        )
        SweepRunner(
            jobs,
            settings=tiny_settings(
                retries=2, retry_backoff=0.1, fault_plan=plan
            ),
            store=ResultStore(tmp_path / "sweep.jsonl"),
        ).run()
        # Two backoffs (three attempts): bases 0.1 and 0.2, jitter in
        # [1.0, 2.0) — and repeating the run reproduces them exactly.
        assert len(sleeps) == 2
        assert 0.1 <= sleeps[0] < 0.2
        assert 0.2 <= sleeps[1] < 0.4
        repeat = []
        monkeypatch.setattr(
            "repro.experiments.runner.time.sleep", repeat.append
        )
        SweepRunner(
            jobs,
            settings=tiny_settings(
                retries=2, retry_backoff=0.1, fault_plan=plan
            ),
        ).run()
        assert repeat == sleeps


class TestWatchdogTimeout:
    def test_hung_job_times_out_and_is_quarantined(self, tmp_path):
        jobs = tiny_jobs(("random", "cma"))
        plan = FaultPlan(
            [FaultSpec(kind="hang", job=0, attempt=None, duration=5.0)],
            state_dir=tmp_path / "faults",
        )
        store = ResultStore(tmp_path / "sweep.jsonl")
        outcomes = SweepRunner(
            jobs,
            settings=tiny_settings(
                retries=0, job_timeout=0.2, fault_plan=plan
            ),
            store=store,
        ).run()
        # The watchdog cut the hung job off long before its 5s sleep ended
        # and the sweep moved on to the healthy job.
        assert [spec.job_id for spec, _ in outcomes] == [jobs[1].job_id]
        record = next(r for r in store.records() if "failure" in r)
        assert record["status"] == "quarantined"
        assert "JobTimeout" in record["failure"]["error"]
        assert record["failure"]["elapsed"] < 5.0


class TestChaosSweepConvergence:
    def test_faulted_sweep_resumes_to_fault_free_equivalence(self, tmp_path):
        """The acceptance scenario: raise + kill-worker + simulated crash.

        Run 1 hits an injected exception (retried to success), a killed
        pool worker (pool respawned) and a store truncation that aborts
        the sweep mid-run.  The resumed run 2 finishes the remaining jobs.
        The canonical successful records must equal a fault-free run's —
        the reliability layer may cost time, never results.
        """
        optimizers = ("random", "cma", "digamma")
        jobs = tiny_jobs(optimizers)
        plan = FaultPlan(
            [
                FaultSpec(kind="raise", job=0, attempt=1),
                FaultSpec(kind="kill-worker", times=1),
                FaultSpec(kind="truncate-store", job=1, attempt=None, times=1),
            ],
            state_dir=tmp_path / "faults",
        )
        faulted_path = tmp_path / "faulted.jsonl"
        chaos_settings = tiny_settings(workers=2, retries=2, fault_plan=plan)
        with pytest.raises(SweepAborted):
            SweepRunner(jobs, settings=chaos_settings, store=faulted_path).run()
        # The simulated crash left a half-written line behind.
        report = ResultStore(faulted_path).verify()
        assert not report["ok"]

        # Resume with the same plan: its one-shot faults are spent (the
        # state directory remembers), the attempt-1 raise only matched a
        # job that is already stored, so the sweep runs to completion.
        with pytest.warns(ResultStoreCorruption):
            outcomes = SweepRunner(
                jobs, settings=chaos_settings, store=faulted_path, resume=True
            ).run()
        assert len(outcomes) == len(jobs)

        clean_path = tmp_path / "clean.jsonl"
        SweepRunner(
            jobs, settings=tiny_settings(workers=2), store=clean_path
        ).run()
        assert canonical_records(faulted_path) == canonical_records(clean_path)
        assert len(canonical_records(faulted_path)) == len(jobs)

        # The injected faults actually fired (exactly once each where
        # one-shot): the kill and truncate tokens are claimed.
        tokens = plan.claimed_tokens()
        assert any(token.startswith("kill-") for token in tokens)
        assert any(token.startswith("truncate-") for token in tokens)


class TestChaosCLI:
    def test_smoke_sweep_under_fault_plan(self, tmp_path, capsys):
        store_path = tmp_path / "chaos.jsonl"
        exit_code = repro_main([
            "experiments", "--smoke", "--quiet",
            "--store", str(store_path),
            "--retries", "1", "--retry-backoff", "0",
            "--fault-plan",
            '[{"kind": "raise", "job": 0, "attempt": 1},'
            ' {"kind": "raise", "job": 1, "attempt": null}]',
        ])
        # Job 0 retried to success, job 1 quarantined, job 2 untouched —
        # the sweep still exits cleanly (failures are data, not crashes).
        assert exit_code == 0
        statuses = ResultStore(store_path).statuses()
        assert sorted(statuses.values()) == ["ok", "ok", "quarantined"]
        out = capsys.readouterr().out
        assert "pending" in out  # tables withheld: one job has no result

        verify_code = repro_main(
            ["experiments", "--verify-store", str(store_path)]
        )
        assert verify_code == 0  # failure records are well-formed lines
