"""Smoke tests of the Fig. 5 / Fig. 6 / Fig. 7 / ablation harnesses.

These run the real harness code end-to-end on a single small model with a
tiny sampling budget, checking the structure of the outputs rather than the
paper-scale numbers (the benchmarks regenerate those).
"""

import math

import pytest

from repro.experiments.ablations import (
    run_buffer_allocation_ablation,
    run_operator_ablation,
)
from repro.experiments.fig5 import main as fig5_main
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import REFERENCE_SCHEME, run_fig6, scheme_names
from repro.experiments.fig7 import main as fig7_main
from repro.experiments.fig7 import run_fig7
from repro.experiments.settings import ExperimentSettings

TINY = ExperimentSettings(models=("ncf",), sampling_budget=60, seed=0)
SUBSET_OPTIMIZERS = ("random", "cma", "digamma")


@pytest.fixture(scope="module")
def fig5_result():
    return run_fig5("edge", TINY, optimizers=SUBSET_OPTIMIZERS)


class TestFig5:
    def test_structure(self, fig5_result):
        assert fig5_result.platform == "edge"
        assert set(fig5_result.latency) == {"ncf"}
        assert set(fig5_result.latency["ncf"]) == {"Random", "CMA", "DiGamma"}

    def test_normalization_reference_is_one(self, fig5_result):
        normalized = fig5_result.normalized_latency("CMA")
        assert normalized["ncf"]["CMA"] == pytest.approx(1.0)
        assert "GeoMean" in normalized

    def test_lap_table_present(self, fig5_result):
        lap = fig5_result.normalized_latency_area_product("CMA")
        assert lap["ncf"]["CMA"] == pytest.approx(1.0)

    def test_report_renders(self, fig5_result):
        text = fig5_result.report()
        assert "Fig. 5" in text
        assert "DiGamma" in text

    def test_searches_respect_budget(self, fig5_result):
        for per_model in fig5_result.searches.values():
            for search in per_model.values():
                assert search.evaluations <= TINY.sampling_budget

    def test_cli_runs(self, capsys):
        exit_code = fig5_main(
            ["--platform", "edge", "--budget", "40", "--models", "ncf"]
        )
        assert exit_code == 0
        assert "Fig. 5" in capsys.readouterr().out


class TestFig6:
    def test_structure_and_reference(self):
        result = run_fig6("edge", TINY)
        assert set(result.latency) == {"ncf"}
        assert set(result.latency["ncf"]) == set(scheme_names())
        normalized = result.normalized_latency()
        reference_value = normalized["ncf"][REFERENCE_SCHEME]
        assert reference_value == pytest.approx(1.0) or math.isinf(reference_value)
        assert "DiGamma" in result.report()

    def test_scheme_names_cover_all_families(self):
        names = scheme_names()
        assert len(names) == 7
        assert sum("Grid-S" in name for name in names) == 3
        assert sum("+Gamma" in name for name in names) == 3
        assert "DiGamma" in names


class TestFig7:
    def test_structure(self):
        result = run_fig7("ncf", "edge", TINY)
        assert len(result.solutions) == 3
        for solution in result.solutions.values():
            row = solution.row()
            assert set(row) == {
                "latency",
                "area",
                "latency_area_product",
                "pe_area_pct",
                "buffer_area_pct",
            }
            if solution.found_valid:
                assert row["area"] <= result.area_budget_um2
                assert row["pe_area_pct"] + row["buffer_area_pct"] == pytest.approx(100.0)
        assert "Fig. 7" in result.report()

    def test_cli_runs(self, capsys):
        exit_code = fig7_main(["--model", "ncf", "--budget", "40"])
        assert exit_code == 0
        assert "Fig. 7" in capsys.readouterr().out


class TestAblations:
    def test_operator_ablation_structure(self):
        result = run_operator_ablation("edge", TINY, models=("ncf",))
        assert set(result.latency) == {"ncf"}
        assert set(result.latency["ncf"]) == {
            "DiGamma",
            "no-HW-op",
            "no-struct-ops",
            "stdGA",
        }
        assert "DiGamma" in result.report("ablation")

    def test_buffer_allocation_ablation_structure(self):
        result = run_buffer_allocation_ablation("edge", TINY, models=("ncf",))
        assert set(result.latency["ncf"]) == {"exact", "fill"}
