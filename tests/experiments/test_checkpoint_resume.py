"""Preemption chaos tests: checkpointed sweeps, graceful interruption, resume.

The headline guarantees under test: a SIGTERM'd sweep checkpoints, records
the in-flight job as ``interrupted`` and exits non-zero; a hard-killed or
timed-out search resumes from its last generation-boundary checkpoint; and
every resumed trajectory is bit-identical to the fault-free run's.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.experiments.fig5 import compile_fig5_jobs
from repro.experiments.runner import (
    ResultStore,
    SweepInterrupted,
    SweepRunner,
)
from repro.experiments.settings import ExperimentSettings

#: Five DiGamma generation boundaries (population 20 at this budget).
BUDGET = 120

REPO_ROOT = Path(__file__).resolve().parents[2]


def settings(**overrides):
    base = dict(
        models=("ncf",), sampling_budget=BUDGET, seed=0, retry_backoff=0.0
    )
    base.update(overrides)
    return ExperimentSettings(**base)


def digamma_jobs():
    return compile_fig5_jobs("edge", settings(), ("digamma",))


def canonical(path):
    """Latest successful record per job, stripped of timing/cache noise."""
    latest = {}
    for line in Path(path).read_text().splitlines():
        if line.strip():
            record = json.loads(line)
            latest[record["job_id"]] = record
    successes = []
    for record in sorted(latest.values(), key=lambda entry: entry["job_id"]):
        if "result" not in record:
            continue
        record.pop("cache", None)
        record["result"].pop("wall_time_seconds", None)
        successes.append(record)
    return successes


class TestGracefulSigterm:
    def test_sigterm_checkpoints_records_interrupted_and_resumes(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        plan = FaultPlan(
            [FaultSpec(kind="sigterm", job="digamma", generation=3)],
            state_dir=tmp_path / "faults",
        )
        jobs = digamma_jobs()
        store = ResultStore(tmp_path / "sweep.jsonl")
        with pytest.raises(SweepInterrupted) as info:
            SweepRunner(
                jobs,
                settings=settings(checkpoint_dir=str(ckpt), fault_plan=plan),
                store=store,
            ).run()
        assert info.value.exit_code == 128 + signal.SIGTERM
        assert jobs[0].job_id in str(info.value)
        # Exactly one interrupted record, and the job reads as resumable.
        interrupted = [
            record for record in store.records()
            if record.get("status") == "interrupted"
        ]
        assert len(interrupted) == 1
        assert "SearchInterrupted" in interrupted[0]["failure"]["error"]
        assert store.statuses()[jobs[0].job_id] == "interrupted"
        # The graceful path checkpointed before unwinding.
        assert list(ckpt.glob("*.ckpt.json"))
        # The handler was restored on the way out.
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL

        # Resume (no fault plan: its one-shot firing is spent anyway) and
        # compare against a fault-free control, bit for bit.
        outcomes = SweepRunner(
            jobs,
            settings=settings(checkpoint_dir=str(ckpt)),
            store=store,
            resume=True,
        ).run()
        assert len(outcomes) == 1
        assert store.statuses()[jobs[0].job_id] == "ok"
        assert list(ckpt.glob("*.ckpt.json")) == []

        control = ResultStore(tmp_path / "control.jsonl")
        SweepRunner(jobs, settings=settings(), store=control).run()
        assert canonical(store.path) == canonical(control.path)

    def test_pending_interrupt_stops_between_jobs(self, tmp_path):
        config = settings(sampling_budget=40)
        jobs = compile_fig5_jobs("edge", config, ("random", "cma"))
        runner = SweepRunner(
            jobs, settings=config, store=ResultStore(tmp_path / "sweep.jsonl")
        )
        runner._interrupt = signal.SIGINT
        with pytest.raises(SweepInterrupted) as info:
            runner.run()
        assert info.value.exit_code == 130
        assert "between jobs" in str(info.value)


class TestTimeoutRetryResume:
    def test_timed_out_attempt_resumes_from_checkpoint(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        # The hang fires at boundary 3 — *after* two checkpoints exist —
        # and outlasts the watchdog; its one-shot token is then spent, so
        # the retry resumes from the boundary-2 checkpoint and completes.
        plan = FaultPlan(
            [
                FaultSpec(
                    kind="hang", job="digamma", attempt=None,
                    generation=3, duration=5.0,
                )
            ],
            state_dir=tmp_path / "faults",
        )
        jobs = digamma_jobs()
        store = ResultStore(tmp_path / "sweep.jsonl")
        outcomes = SweepRunner(
            jobs,
            settings=settings(
                checkpoint_dir=str(ckpt),
                fault_plan=plan,
                retries=1,
                job_timeout=1.0,
            ),
            store=store,
        ).run()
        assert len(outcomes) == 1
        timeouts = [
            record for record in store.records()
            if "failure" in record and "JobTimeout" in record["failure"]["error"]
        ]
        assert len(timeouts) == 1
        assert list(ckpt.glob("*.ckpt.json")) == []

        control = ResultStore(tmp_path / "control.jsonl")
        SweepRunner(jobs, settings=settings(), store=control).run()
        assert canonical(store.path) == canonical(control.path)


class TestPreemptionCLI:
    def test_cli_sigterm_exits_143_then_resumes_clean(self, tmp_path, capsys):
        store = tmp_path / "sweep.jsonl"
        ckpt = tmp_path / "ckpt"
        base = [
            "experiments", "--suite", "fig5", "--models", "ncf",
            "--optimizers", "digamma", "--budget", str(BUDGET), "--quiet",
            "--retry-backoff", "0",
            "--store", str(store), "--checkpoint-dir", str(ckpt),
        ]
        code = repro_main(base + [
            "--fault-plan",
            '[{"kind": "sigterm", "job": "digamma", "generation": 3}]',
        ])
        assert code == 128 + signal.SIGTERM
        err = capsys.readouterr().err
        assert "sweep interrupted" in err and "--resume" in err
        statuses = ResultStore(store).statuses()
        assert list(statuses.values()) == ["interrupted"]

        assert repro_main(base + ["--resume"]) == 0
        assert list(ResultStore(store).statuses().values()) == ["ok"]
        assert list(ckpt.glob("*.ckpt.json")) == []

    def test_kill_mid_search_then_resume_is_bit_identical(self, tmp_path):
        """The full preemption story, across real process boundaries."""
        store = tmp_path / "sweep.jsonl"
        ckpt = tmp_path / "ckpt"
        env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
        base = [
            sys.executable, "-m", "repro", "experiments",
            "--suite", "fig5", "--models", "ncf", "--optimizers", "digamma",
            "--budget", str(BUDGET), "--quiet", "--retry-backoff", "0",
            "--store", str(store), "--checkpoint-dir", str(ckpt),
        ]
        killed = subprocess.run(
            base + [
                "--fault-plan",
                '[{"kind": "kill-generation", "job": "digamma",'
                ' "generation": 3}]',
            ],
            env=env, cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        )
        # os._exit(1) mid-search: a hard preemption, no cleanup, no record.
        assert killed.returncode == 1
        assert list(ckpt.glob("*.ckpt.json"))

        resumed = subprocess.run(
            base + ["--resume"],
            env=env, cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert list(ckpt.glob("*.ckpt.json")) == []

        control_store = tmp_path / "control.jsonl"
        control = subprocess.run(
            [
                sys.executable, "-m", "repro", "experiments",
                "--suite", "fig5", "--models", "ncf",
                "--optimizers", "digamma", "--budget", str(BUDGET),
                "--quiet", "--store", str(control_store),
            ],
            env=env, cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        )
        assert control.returncode == 0, control.stderr
        assert canonical(store) == canonical(control_store)


class TestStatusReport:
    def test_status_reports_counts_and_resumable_ids(self, tmp_path, capsys):
        config = settings(sampling_budget=40)
        jobs = compile_fig5_jobs("edge", config, ("random", "cma", "digamma"))
        store = ResultStore(tmp_path / "sweep.jsonl")
        SweepRunner(jobs[:1], settings=config, store=store).run()
        store.append_failure(
            jobs[1],
            {"job_id": jobs[1].job_id, "error": "RuntimeError: boom",
             "traceback": "...", "attempt": 1, "elapsed": 0.1},
            quarantined=False,
        )
        store.append_failure(
            jobs[2],
            {"job_id": jobs[2].job_id,
             "error": "SearchInterrupted: at boundary 3",
             "attempt": 1, "elapsed": 0.1},
            status="interrupted",
        )
        capsys.readouterr()
        assert repro_main(["experiments", "--status", str(store.path)]) == 0
        out = capsys.readouterr().out
        assert "3 job(s)" in out
        assert "1 ok" in out and "1 failed" in out
        assert "0 quarantined" in out and "1 interrupted" in out
        assert "--resume" in out
        assert jobs[1].job_id in out and jobs[2].job_id in out
        assert jobs[0].job_id not in out.split("resumable", 1)[1]

    def test_append_failure_rejects_unknown_status(self, tmp_path):
        jobs = compile_fig5_jobs(
            "edge", settings(sampling_budget=40), ("random",)
        )
        store = ResultStore(tmp_path / "sweep.jsonl")
        failure = {"job_id": jobs[0].job_id, "error": "x", "attempt": 1,
                   "elapsed": 0.0}
        with pytest.raises(ValueError, match="status"):
            store.append_failure(jobs[0], failure, status="ok")
        with pytest.raises(ValueError, match="status"):
            store.append_failure(jobs[0], failure, status="paused")


def test_settings_validate_checkpoint_every():
    with pytest.raises(ValueError, match="checkpoint_every"):
        settings(checkpoint_every=0)
