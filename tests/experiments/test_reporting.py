"""Tests for the experiment reporting helpers."""

import math

import pytest

from repro.experiments.reporting import (
    NOT_AVAILABLE,
    append_geomean_row,
    format_cell,
    format_table,
    geometric_mean,
    normalize_by_column,
)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_skips_non_finite_and_non_positive(self):
        assert geometric_mean([2.0, float("inf"), 0.0, 8.0]) == pytest.approx(4.0)

    def test_empty_returns_nan(self):
        assert math.isnan(geometric_mean([]))
        assert math.isnan(geometric_mean([float("inf")]))


class TestNormalize:
    def test_normalizes_by_reference_column(self):
        table = {"m1": {"A": 10.0, "B": 20.0}, "m2": {"A": 5.0, "B": 1.0}}
        normalized = normalize_by_column(table, "B")
        assert normalized["m1"]["A"] == pytest.approx(0.5)
        assert normalized["m1"]["B"] == pytest.approx(1.0)
        assert normalized["m2"]["A"] == pytest.approx(5.0)

    def test_missing_reference_yields_inf(self):
        table = {"m1": {"A": 10.0, "B": float("inf")}}
        normalized = normalize_by_column(table, "B")
        assert normalized["m1"]["A"] == float("inf")

    def test_geomean_row_appended(self):
        table = {"m1": {"A": 1.0, "B": 4.0}, "m2": {"A": 4.0, "B": 1.0}}
        append_geomean_row(table, ("A", "B"))
        assert table["GeoMean"]["A"] == pytest.approx(2.0)
        assert table["GeoMean"]["B"] == pytest.approx(2.0)


class TestFormatting:
    def test_format_cell_handles_nan_and_inf(self):
        assert format_cell(float("nan")) == NOT_AVAILABLE
        assert format_cell(float("inf")) == NOT_AVAILABLE
        assert format_cell(1.234) == "1.23"
        assert "e" in format_cell(1.5e7)

    def test_format_table_contains_rows_and_columns(self):
        table = {"resnet18": {"CMA": 1.0, "DiGamma": 0.3}}
        text = format_table(table, ("CMA", "DiGamma"), title="demo")
        assert "demo" in text
        assert "resnet18" in text
        assert "CMA" in text and "DiGamma" in text
        assert "0.30" in text

    def test_format_table_renders_na_for_missing_values(self):
        table = {"resnet18": {"CMA": 1.0}}
        text = format_table(table, ("CMA", "DiGamma"))
        assert NOT_AVAILABLE in text

    def test_wide_column_names_stay_aligned(self):
        table = {"m": {"Compute-focused+Gamma": 1.0, "B": 2.0}}
        text = format_table(table, ("Compute-focused+Gamma", "B"))
        header, separator, row = text.splitlines()[0:3]
        assert header.index("Compute-focused+Gamma") < header.index("B")
        assert len(row) <= len(header) + 1
