"""The ``repro crosscheck`` cross-backend agreement gate."""

from __future__ import annotations

import io

import pytest

from repro.experiments.crosscheck import main, run_crosscheck


class TestRunCrosscheck:
    @pytest.mark.parametrize("num_levels", [1, 2, 3])
    def test_backends_agree_within_documented_tolerance(self, num_levels):
        out = io.StringIO()
        code = run_crosscheck(
            model_name="ncf",
            designs=100,
            num_levels=num_levels,
            seed=0,
            out=out,
        )
        report = out.getvalue()
        assert code == 0, report
        assert "crosscheck OK" in report
        assert "area" in report and "latency" in report and "energy" in report

    def test_zero_tolerance_fails_and_names_the_gate(self):
        out = io.StringIO()
        code = run_crosscheck(
            model_name="ncf", designs=40, tolerance=0.0, out=out
        )
        report = out.getvalue()
        assert code == 1
        assert "crosscheck FAILED" in report
        assert "latency: median relative delta" in report

    def test_impossible_rank_corr_fails(self):
        out = io.StringIO()
        code = run_crosscheck(
            model_name="ncf", designs=40, min_rank_corr=1.1, out=out
        )
        assert code == 1
        assert "rank correlation" in out.getvalue()

    def test_tiny_sample_rejected(self):
        with pytest.raises(ValueError, match="designs must be >= 2"):
            run_crosscheck(designs=1)


class TestCli:
    def test_main_runs_the_gate(self, capsys):
        code = main(["--model", "ncf", "--designs", "24", "--seed", "1"])
        captured = capsys.readouterr().out
        assert code == 0, captured
        assert "crosscheck OK" in captured

    def test_reachable_through_the_repro_cli(self, capsys):
        from repro.__main__ import main as repro_main

        code = repro_main(
            ["crosscheck", "--model", "ncf", "--designs", "24"]
        )
        assert code == 0
        assert "crosscheck OK" in capsys.readouterr().out
