"""Tests for the Pareto experiment suite and its runner/store integration."""

import json

import pytest

from repro.experiments.jobs import JobSpec, job_from_dict, job_to_dict
from repro.experiments.pareto import (
    PARETO_OBJECTIVES,
    compile_pareto_jobs,
    pareto_result_from_outcomes,
    verify_store,
)
from repro.experiments.runner import ResultStore, SweepRunner
from repro.experiments.runner import main as experiments_main
from repro.experiments.settings import ExperimentSettings
from repro.framework.pareto import ParetoResult


@pytest.fixture()
def smoke_settings():
    return ExperimentSettings(models=("ncf",), sampling_budget=60, seed=0)


class TestJobSpecObjectives:
    def test_objectives_normalized_and_primary_aligned(self):
        spec = JobSpec(
            model="ncf",
            platform="edge",
            optimizer="nsga2",
            sampling_budget=10,
            objective="energy",  # contradicts the set; the primary wins
            objectives=("latency", "energy", "area"),
        )
        assert spec.objectives == ("latency", "energy", "area")
        assert spec.objective == "latency"
        assert spec.is_multi_objective

    def test_comma_string_accepted(self):
        spec = JobSpec(
            model="ncf",
            platform="edge",
            optimizer="nsga2",
            sampling_budget=10,
            objectives="latency, area",
        )
        assert spec.objectives == ("latency", "area")

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="unknown objective"):
            JobSpec(
                model="ncf",
                platform="edge",
                optimizer="nsga2",
                sampling_budget=10,
                objectives=("latency", "throughput"),
            )

    def test_job_id_encodes_the_axis_set(self):
        spec = JobSpec(
            model="ncf",
            platform="edge",
            optimizer="nsga2",
            sampling_budget=10,
            objectives=("latency", "energy"),
        )
        assert "mo=latency+energy" in spec.job_id
        scalar = JobSpec(
            model="ncf", platform="edge", optimizer="nsga2", sampling_budget=10
        )
        assert "mo=" not in scalar.job_id
        assert spec.job_id != scalar.job_id

    def test_round_trip(self):
        spec = JobSpec(
            model="ncf",
            platform="edge",
            optimizer="nsga2",
            sampling_budget=10,
            objectives=("latency", "energy", "area"),
        )
        rebuilt = job_from_dict(job_to_dict(spec))
        assert rebuilt == spec

    def test_framework_key_distinguishes_axis_sets(self):
        base = dict(
            model="ncf", platform="edge", optimizer="nsga2", sampling_budget=10
        )
        multi = JobSpec(objectives=("latency", "area"), **base)
        scalar = JobSpec(**base)
        assert multi.framework_key != scalar.framework_key
        # Layer costs are objective-independent: the warm-cache key matches.
        assert multi.evaluator_cache_key == scalar.evaluator_cache_key


class TestCompile:
    def test_one_job_per_model(self, smoke_settings):
        jobs = compile_pareto_jobs("edge", smoke_settings)
        assert [spec.model for spec in jobs] == ["ncf"]
        spec = jobs[0]
        assert spec.optimizer == "nsga2"
        assert spec.objectives == PARETO_OBJECTIVES
        assert spec.sampling_budget == 60


class TestRunnerIntegration:
    def test_store_round_trip_and_resume(self, smoke_settings, tmp_path):
        store = ResultStore(tmp_path / "pareto.jsonl")
        jobs = compile_pareto_jobs("edge", smoke_settings)
        outcomes = SweepRunner(jobs, settings=smoke_settings, store=store).run()
        assert len(outcomes) == 1
        spec, result = outcomes[0]
        assert isinstance(result, ParetoResult)
        assert result.found_valid and result.is_non_dominated()
        assert result.batch_calls > 0  # batched fast path engaged

        loaded = store.load_results()[spec.job_id]
        assert isinstance(loaded, ParetoResult)
        assert loaded.front_values == result.front_values
        assert loaded.batch_calls == result.batch_calls

        # Resume loads the stored front instead of re-searching.
        resumed = SweepRunner(
            jobs, settings=smoke_settings, store=store, resume=True
        ).run()
        assert resumed[0][1].front_values == result.front_values

        suite = pareto_result_from_outcomes("edge", resumed)
        assert "Pareto front (edge/ncf)" in suite.report()

    def test_cli_smoke_matches_ci_invocation(self, tmp_path, capsys):
        store_path = tmp_path / "pareto-smoke.jsonl"
        exit_code = experiments_main(
            [
                "--suite", "pareto", "--smoke", "--quiet",
                "--store", str(store_path),
            ]
        )
        assert exit_code == 0
        assert "Pareto front (edge/ncf)" in capsys.readouterr().out
        assert verify_store(store_path) == []


class TestVerifyStore:
    def append_record(self, path, result_payload, job_id="job"):
        record = {"job_id": job_id, "spec": {}, "result": result_payload}
        with open(path, "a") as handle:
            handle.write(json.dumps(record) + "\n")

    def base_payload(self, front_values, batch_calls=3):
        return {
            "optimizer": "NSGA-II",
            "objectives": ["latency", "area"],
            "evaluations": 10,
            "sampling_budget": 10,
            "wall_time_seconds": 0.1,
            "batch_calls": batch_calls,
            "batched_evaluations": 10,
            "front": [
                {
                    "design": _design_payload(),
                    "fitness": -vector[0],
                    "objective": "latency",
                    "objective_value": vector[0],
                    "objective_values": list(vector),
                }
                for vector in front_values
            ],
        }

    def test_missing_pareto_records_reported(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert any("no Pareto records" in p for p in verify_store(path))

    def test_dominated_front_reported(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        self.append_record(
            path, self.base_payload([(1.0, 1.0), (2.0, 2.0)]), job_id="dominated"
        )
        problems = verify_store(path)
        assert any("not non-dominated" in p for p in problems)

    def test_dropped_batch_path_reported(self, tmp_path):
        path = tmp_path / "nobatch.jsonl"
        self.append_record(
            path,
            self.base_payload([(1.0, 2.0), (2.0, 1.0)], batch_calls=0),
            job_id="nobatch",
        )
        problems = verify_store(path)
        assert any("batch_calls" in p for p in problems)

    def test_clean_store_passes(self, tmp_path):
        path = tmp_path / "good.jsonl"
        self.append_record(
            path, self.base_payload([(1.0, 2.0), (2.0, 1.0)]), job_id="good"
        )
        assert verify_store(path) == []


def _design_payload():
    """A minimal serialized design for hand-built store records."""
    return {
        "model": "m",
        "hardware": {
            "pe_array": [2, 2],
            "l1_size": 16,
            "l2_size": 64,
            "noc_bandwidth": 16.0,
            "dram_bandwidth": 4.0,
            "bytes_per_element": 1,
            "frequency_mhz": 1000.0,
        },
        "mapping": {
            "levels": [
                {
                    "spatial_size": 2,
                    "parallel_dim": "K",
                    "order": ["K", "C", "Y", "X", "R", "S"],
                    "tiles": {"K": 1, "C": 1, "Y": 1, "X": 1, "R": 1, "S": 1},
                },
                {
                    "spatial_size": 2,
                    "parallel_dim": "C",
                    "order": ["K", "C", "Y", "X", "R", "S"],
                    "tiles": {"K": 1, "C": 1, "Y": 1, "X": 1, "R": 1, "S": 1},
                },
            ]
        },
        "area": {"pe_area": 100.0, "l1_area": 50.0, "l2_area": 50.0},
        "metrics": {},
        "per_layer": [
            {
                "name": "layer",
                "count": 1,
                "latency_cycles": 1.0,
                "compute_cycles": 1.0,
                "noc_cycles": 0.0,
                "dram_cycles": 0.0,
                "macs": 1,
                "l2_to_l1_bytes": 1.0,
                "dram_bytes": 1.0,
                "l1_access_bytes": 1.0,
                "energy": 1.0,
                "active_pes": 4,
                "num_pes": 4,
                "l1_requirement_bytes": 1,
                "l2_requirement_bytes": 1,
            }
        ],
    }
