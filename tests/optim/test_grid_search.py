"""Tests for the HW-opt grid-search baseline."""

import pytest

from repro.arch.platform import EDGE
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.optim.grid_search import HardwareGridSearch
from tests.optim.helpers import make_space


class TestGridConstruction:
    def test_grid_shapes_positive_and_unique(self):
        grid = HardwareGridSearch._build_grid(max_pes=400, budget=200)
        assert grid
        assert len(grid) == len(set(grid))
        for rows, cols in grid:
            assert rows >= 1 and cols >= 1

    def test_grid_respects_budget(self):
        grid = HardwareGridSearch._build_grid(max_pes=400, budget=10)
        assert len(grid) <= 10

    def test_empty_budget(self):
        assert HardwareGridSearch._build_grid(max_pes=400, budget=0) == []

    def test_grid_covers_small_and_large_arrays(self):
        grid = HardwareGridSearch._build_grid(max_pes=444, budget=500)
        totals = [rows * cols for rows, cols in grid]
        assert min(totals) <= 16
        assert max(totals) >= 200


class TestTemplateGenome:
    @pytest.mark.parametrize("style", ["dla", "shi", "eye"])
    def test_template_genome_matches_grid_point(self, style):
        search = HardwareGridSearch(style)
        genome = search._template_genome(make_space(), (8, 16))
        assert genome.pe_array == (8, 16)
        assert genome.num_levels == 2

    def test_name_mentions_dataflow(self):
        assert "dla" in HardwareGridSearch("dla").name
        assert "eye" in HardwareGridSearch("eye").name

    def test_unknown_dataflow_rejected(self):
        with pytest.raises(KeyError):
            HardwareGridSearch("tpu")


class TestEndToEnd:
    def test_finds_valid_design_on_edge(self, tiny_model):
        framework = CoOptimizationFramework(tiny_model, EDGE)
        result = framework.search(HardwareGridSearch("dla"), sampling_budget=200, seed=0)
        assert result.found_valid
        assert result.best.design.area.total <= EDGE.area_budget_um2

    def test_dla_parallelism_preserved_in_best_design(self, tiny_model):
        framework = CoOptimizationFramework(tiny_model, EDGE)
        result = framework.search(HardwareGridSearch("dla"), sampling_budget=100, seed=0)
        assert result.found_valid
        mapping = result.best.design.mapping
        assert mapping.levels[0].parallel_dim == "K"
        assert mapping.levels[1].parallel_dim == "C"

    def test_grid_search_stops_before_budget_when_grid_is_small(self, tiny_model):
        framework = CoOptimizationFramework(tiny_model, EDGE)
        result = framework.search(HardwareGridSearch("dla"), sampling_budget=5000, seed=0)
        assert result.evaluations <= 5000
