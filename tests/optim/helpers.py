"""Test helpers for optimizer unit tests.

``QuadraticTracker`` mimics the :class:`SearchTracker` interface with a
cheap analytic fitness (a negated sphere function), so the black-box
optimizers can be unit-tested for convergence without the full framework.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.encoding.genome import Genome, GenomeSpace
from repro.encoding.vector_codec import VectorCodec
from repro.framework.search import BudgetExhausted


def make_space(max_pes: int = 256) -> GenomeSpace:
    """A small genome space independent of any model."""
    return GenomeSpace(
        dim_bounds={"K": 64, "C": 64, "Y": 16, "X": 16, "R": 3, "S": 3},
        max_pes=max_pes,
        num_levels=2,
    )


class QuadraticTracker:
    """Tracker stub whose fitness is ``-||x - target||^2``.

    Genome evaluations are scored through the codec's (approximate) encoding
    so both evaluation views share one optimum.
    """

    def __init__(self, sampling_budget: int, dimension_target: float = 0.7):
        self.space = make_space()
        self.codec = VectorCodec(self.space)
        self.vector_dimension = self.codec.dimension
        self.sampling_budget = sampling_budget
        self.evaluations = 0
        self.target = np.full(self.codec.dimension, dimension_target)
        self.best_fitness = -np.inf
        self.fitness_log: List[float] = []

    @property
    def remaining(self) -> int:
        return max(0, self.sampling_budget - self.evaluations)

    @property
    def exhausted(self) -> bool:
        return self.remaining == 0

    def _score(self, vector: np.ndarray) -> float:
        self.evaluations += 1
        fitness = -float(np.sum((np.asarray(vector) - self.target) ** 2))
        self.best_fitness = max(self.best_fitness, fitness)
        self.fitness_log.append(fitness)
        return fitness

    def evaluate_vector(self, vector: np.ndarray) -> float:
        if self.exhausted:
            raise BudgetExhausted("budget exhausted")
        return self._score(np.clip(np.asarray(vector, dtype=float), 0.0, 1.0))

    def evaluate_genome(self, genome: Genome) -> float:
        if self.exhausted:
            raise BudgetExhausted("budget exhausted")
        return self._score(self.codec.encode(genome))

    def first_sample_fitness(self) -> float:
        """Fitness of the very first sample (a random-start reference)."""
        return self.fitness_log[0] if self.fitness_log else -np.inf


class BatchSpyTracker(QuadraticTracker):
    """Quadratic tracker with the batched views and call counters.

    Mirrors :class:`SearchTracker`'s batch semantics (truncate to the
    remaining budget) while recording how many evaluations arrived through
    the batched path — used to assert optimizers keep the fast path when
    wrapped (e.g. inside a portfolio's budget slice).
    """

    def __init__(self, sampling_budget: int, dimension_target: float = 0.7):
        super().__init__(sampling_budget, dimension_target)
        self.batch_calls = 0
        self.batched_evaluations = 0

    def evaluate_batch(self, genomes) -> List[float]:
        batch = list(genomes)[: self.remaining]
        self.batch_calls += 1
        self.batched_evaluations += len(batch)
        return [self._score(self.codec.encode(genome)) for genome in batch]

    def evaluate_vector_batch(self, vectors) -> List[float]:
        batch = list(vectors)[: self.remaining]
        self.batch_calls += 1
        self.batched_evaluations += len(batch)
        return [
            self._score(np.clip(np.asarray(vector, dtype=float), 0.0, 1.0))
            for vector in batch
        ]
