"""Tests for the standard GA baseline."""

import pytest

from repro.arch.platform import EDGE
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.optim.std_ga import StandardGA
from tests.optim.helpers import QuadraticTracker


class TestStandardGA:
    def test_hyper_parameter_validation(self):
        with pytest.raises(ValueError):
            StandardGA(population_size=2)
        with pytest.raises(ValueError):
            StandardGA(elite_ratio=1.0)

    def test_respects_budget(self, rng):
        tracker = QuadraticTracker(sampling_budget=100)
        StandardGA(population_size=20).run(tracker, rng)
        assert tracker.evaluations == 100

    def test_improves_over_first_sample(self, rng):
        tracker = QuadraticTracker(sampling_budget=400)
        StandardGA(population_size=20).run(tracker, rng)
        assert tracker.best_fitness > tracker.first_sample_fitness()

    def test_finds_valid_edge_design(self, tiny_model):
        framework = CoOptimizationFramework(tiny_model, EDGE)
        result = framework.search(StandardGA(population_size=20), sampling_budget=200, seed=0)
        assert result.found_valid
