"""Tests for DiGamma hyper-parameter tuning."""

import numpy as np
import pytest

from repro.arch.platform import EDGE
from repro.optim.digamma import DiGammaHyperParameters
from repro.optim.tuning import TuningResult, sample_hyper_parameters, tune_digamma
from repro.workloads.registry import get_model


class TestSampling:
    def test_sampled_configurations_are_valid(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            params = sample_hyper_parameters(rng)
            assert isinstance(params, DiGammaHyperParameters)
            assert params.population_size >= 20
            assert 0.0 < params.elite_ratio < 1.0

    def test_sampling_is_diverse(self):
        rng = np.random.default_rng(1)
        populations = {sample_hyper_parameters(rng).population_size for _ in range(20)}
        assert len(populations) > 1


class TestTuning:
    @pytest.fixture(scope="class")
    def result(self):
        return tune_digamma(
            get_model("ncf"),
            EDGE,
            trials=3,
            sampling_budget=80,
            seed=0,
        )

    def test_returns_all_trials(self, result):
        assert isinstance(result, TuningResult)
        assert len(result.trials) == 3

    def test_best_is_the_minimum_objective(self, result):
        best_value = min(trial.objective_value for trial in result.trials)
        assert result.best_objective_value == best_value

    def test_default_configuration_is_included(self, result):
        assert result.trials[0].hyper_parameters == DiGammaHyperParameters()

    def test_summary_mentions_population(self, result):
        assert "population" in result.summary()

    def test_invalid_trial_count_rejected(self):
        with pytest.raises(ValueError):
            tune_digamma(get_model("ncf"), EDGE, trials=0, sampling_budget=10)
