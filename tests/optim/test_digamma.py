"""Tests for the DiGamma algorithm and the GAMMA mapper."""

import pytest

from repro.arch.platform import EDGE
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.optim.digamma import DiGamma, DiGammaHyperParameters
from repro.optim.gamma import GammaMapper
from repro.optim.random_search import RandomSearch
from tests.optim.helpers import QuadraticTracker


class TestHyperParameters:
    def test_defaults_valid(self):
        params = DiGammaHyperParameters()
        assert 0 < params.elite_ratio < 1

    def test_resolved_population_scales_with_budget(self):
        params = DiGammaHyperParameters()
        assert params.resolved_population(500) == 20
        assert params.resolved_population(2500) == 100
        assert params.resolved_population(100_000) == 100

    def test_explicit_population_wins(self):
        params = DiGammaHyperParameters(population_size=60)
        assert params.resolved_population(10) == 60

    def test_validation(self):
        with pytest.raises(ValueError):
            DiGammaHyperParameters(population_size=2)
        with pytest.raises(ValueError):
            DiGammaHyperParameters(elite_ratio=0.0)
        with pytest.raises(TypeError):
            DiGammaHyperParameters(mutation_rate=0.5)  # unknown field
        with pytest.raises(ValueError):
            DiGammaHyperParameters(crossover_rate=1.5)


class TestDiGammaOnStub:
    def test_respects_budget(self, rng):
        tracker = QuadraticTracker(sampling_budget=150)
        DiGamma(DiGammaHyperParameters(population_size=20)).run(tracker, rng)
        assert tracker.evaluations == 150

    def test_improves_over_first_sample(self, rng):
        tracker = QuadraticTracker(sampling_budget=400)
        DiGamma(DiGammaHyperParameters(population_size=20)).run(tracker, rng)
        assert tracker.best_fitness > tracker.first_sample_fitness()


class TestDiGammaEndToEnd:
    def test_finds_valid_edge_design(self, tiny_model):
        framework = CoOptimizationFramework(tiny_model, EDGE)
        result = framework.search(DiGamma(), sampling_budget=300, seed=0)
        assert result.found_valid
        assert result.best.design.area.total <= EDGE.area_budget_um2

    def test_beats_random_search_on_the_same_budget(self):
        # On a realistically sized convolutional workload the domain-aware
        # operators must clearly outperform blind random sampling.
        from repro.workloads.layer import Layer
        from repro.workloads.model import build_model

        model = build_model(
            "convnet",
            [
                Layer.conv2d("conv1", 64, 128, 28, 3),
                Layer.conv2d("conv2", 128, 128, 14, 3),
            ],
        )
        framework = CoOptimizationFramework(model, EDGE)
        digamma = framework.search(DiGamma(), sampling_budget=400, seed=1)
        random = framework.search(RandomSearch(), sampling_budget=400, seed=1)
        assert digamma.found_valid
        assert digamma.best_latency <= random.best_latency * 1.05

    def test_deterministic_given_seed(self, tiny_model):
        framework = CoOptimizationFramework(tiny_model, EDGE)
        a = framework.search(DiGamma(), sampling_budget=200, seed=5)
        b = framework.search(DiGamma(), sampling_budget=200, seed=5)
        assert a.best_latency == b.best_latency

    def test_ablation_flags_still_produce_valid_designs(self, tiny_model):
        framework = CoOptimizationFramework(tiny_model, EDGE)
        for variant in (
            DiGamma(use_hw_operators=False),
            DiGamma(use_structured_operators=False),
        ):
            result = framework.search(variant, sampling_budget=200, seed=0)
            assert result.found_valid


class TestGammaMapper:
    def test_gamma_never_changes_the_fixed_hardware(self, tiny_model, small_hardware):
        framework = CoOptimizationFramework(
            tiny_model, EDGE, fixed_hardware=small_hardware
        )
        result = framework.search(GammaMapper(), sampling_budget=300, seed=0)
        assert result.found_valid
        assert result.best.design.hardware.pe_array == small_hardware.pe_array
        assert result.best.design.hardware.l1_size == small_hardware.l1_size

    def test_gamma_name(self):
        assert GammaMapper().name == "GAMMA"
        assert GammaMapper().use_hw_operators is False
