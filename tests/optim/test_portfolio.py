"""Tests for the passive portfolio optimizer."""

import numpy as np
import pytest

from repro.optim.de import DifferentialEvolution
from repro.optim.one_plus_one import OnePlusOneES
from repro.optim.portfolio import PassivePortfolio, _BudgetSlice
from repro.optim.pso import ParticleSwarm
from repro.optim.random_search import RandomSearch
from tests.optim.helpers import BatchSpyTracker, QuadraticTracker


class TestPortfolio:
    def test_requires_members(self):
        with pytest.raises(ValueError):
            PassivePortfolio(members=[])

    def test_default_members(self):
        portfolio = PassivePortfolio()
        assert len(portfolio.members) == 3

    def test_budget_split_across_members(self, rng):
        class CountingMember:
            name = "counter"

            def __init__(self):
                self.evaluations = 0

            def run(self, tracker, rng):
                while not tracker.exhausted:
                    tracker.evaluate_vector(rng.random(tracker.vector_dimension))
                    self.evaluations += 1

        members = [CountingMember(), CountingMember(), CountingMember()]
        portfolio = PassivePortfolio(members=members)
        tracker = QuadraticTracker(sampling_budget=90)
        portfolio.run(tracker, rng)
        assert tracker.evaluations == 90
        counts = [member.evaluations for member in members]
        assert counts == [30, 30, 30]

    def test_last_member_gets_leftover_budget(self, rng):
        portfolio = PassivePortfolio(members=[RandomSearch(), OnePlusOneES()])
        tracker = QuadraticTracker(sampling_budget=75)
        portfolio.run(tracker, rng)
        assert tracker.evaluations == 75

    def test_improves_over_first_sample(self, rng):
        portfolio = PassivePortfolio()
        tracker = QuadraticTracker(sampling_budget=300)
        portfolio.run(tracker, rng)
        assert tracker.best_fitness > tracker.first_sample_fitness()

    def test_deterministic_given_rng_seed(self):
        results = []
        for _ in range(2):
            tracker = QuadraticTracker(sampling_budget=120)
            PassivePortfolio().run(tracker, np.random.default_rng(11))
            results.append(tracker.best_fitness)
        assert results[0] == results[1]


class TestPortfolioBudgetAccounting:
    """The budget-slice bookkeeping, batched path included."""

    def test_batched_members_receive_equal_shares(self, rng):
        class BatchingMember:
            name = "batcher"

            def __init__(self):
                self.evaluations = 0

            def run(self, tracker, rng):
                while not tracker.exhausted:
                    batch = [rng.random(tracker.vector_dimension) for _ in range(7)]
                    fitnesses = tracker.evaluate_vector_batch(batch)
                    self.evaluations += len(fitnesses)
                    if len(fitnesses) < len(batch):
                        return

        members = [BatchingMember(), BatchingMember(), BatchingMember()]
        tracker = BatchSpyTracker(sampling_budget=90)
        PassivePortfolio(members=members).run(tracker, rng)
        assert tracker.evaluations == 90
        assert [member.evaluations for member in members] == [30, 30, 30]

    def test_total_never_exceeds_budget_with_oversized_batches(self, rng):
        class GreedyMember:
            name = "greedy"

            def run(self, tracker, rng):
                while not tracker.exhausted:
                    batch = [rng.random(tracker.vector_dimension) for _ in range(50)]
                    if len(tracker.evaluate_vector_batch(batch)) < len(batch):
                        return

        tracker = BatchSpyTracker(sampling_budget=45)
        PassivePortfolio(members=[GreedyMember(), GreedyMember()]).run(tracker, rng)
        assert tracker.evaluations == 45

    def test_truncated_batch_does_not_overcharge_slice(self, rng):
        tracker = BatchSpyTracker(sampling_budget=100)
        bounded = _BudgetSlice(tracker, allowed=5)
        batch = [rng.random(tracker.vector_dimension) for _ in range(30)]
        fitnesses = bounded.evaluate_vector_batch(batch)
        assert len(fitnesses) == 5
        assert bounded._used == 5
        assert bounded.exhausted
        # The outer tracker keeps the rest of its budget for other members.
        assert tracker.remaining == 95

    def test_slice_forwards_genome_batches(self, rng):
        tracker = BatchSpyTracker(sampling_budget=20)
        bounded = _BudgetSlice(tracker, allowed=10)
        genomes = [tracker.space.random_genome(rng) for _ in range(4)]
        fitnesses = bounded.evaluate_batch(genomes)
        assert len(fitnesses) == 4
        assert tracker.batch_calls == 1
        assert tracker.batched_evaluations == 4

    def test_slice_falls_back_without_batch_api(self, rng):
        tracker = QuadraticTracker(sampling_budget=20)
        bounded = _BudgetSlice(tracker, allowed=10)
        batch = [rng.random(tracker.vector_dimension) for _ in range(4)]
        assert len(bounded.evaluate_vector_batch(batch)) == 4
        assert tracker.evaluations == 4

    def test_de_and_pso_members_hit_batched_path(self, rng):
        members = [
            DifferentialEvolution(population_size=8),
            ParticleSwarm(swarm_size=8),
        ]
        tracker = BatchSpyTracker(sampling_budget=64)
        PassivePortfolio(members=members).run(tracker, rng)
        assert tracker.evaluations == 64
        # Every evaluation of the population members arrived in a batch.
        assert tracker.batch_calls >= 2
        assert tracker.batched_evaluations == 64

    def test_de_member_batches_through_real_search_tracker(self):
        from repro.arch.platform import EDGE
        from repro.framework.evaluator import DesignEvaluator
        from repro.framework.search import SearchTracker
        from repro.workloads.registry import get_model

        evaluator = DesignEvaluator(get_model("ncf"), EDGE)
        tracker = SearchTracker(
            evaluator=evaluator,
            space=evaluator.genome_space(),
            sampling_budget=40,
        )
        portfolio = PassivePortfolio(
            members=[DifferentialEvolution(population_size=6),
                     ParticleSwarm(swarm_size=6)]
        )
        portfolio.run(tracker, np.random.default_rng(3))
        assert tracker.evaluations == 40
        assert tracker.batch_calls > 0
        assert tracker.batched_evaluations == 40
