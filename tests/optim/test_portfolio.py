"""Tests for the passive portfolio optimizer."""

import numpy as np
import pytest

from repro.optim.one_plus_one import OnePlusOneES
from repro.optim.portfolio import PassivePortfolio
from repro.optim.random_search import RandomSearch
from tests.optim.helpers import QuadraticTracker


class TestPortfolio:
    def test_requires_members(self):
        with pytest.raises(ValueError):
            PassivePortfolio(members=[])

    def test_default_members(self):
        portfolio = PassivePortfolio()
        assert len(portfolio.members) == 3

    def test_budget_split_across_members(self, rng):
        class CountingMember:
            name = "counter"

            def __init__(self):
                self.evaluations = 0

            def run(self, tracker, rng):
                while not tracker.exhausted:
                    tracker.evaluate_vector(rng.random(tracker.vector_dimension))
                    self.evaluations += 1

        members = [CountingMember(), CountingMember(), CountingMember()]
        portfolio = PassivePortfolio(members=members)
        tracker = QuadraticTracker(sampling_budget=90)
        portfolio.run(tracker, rng)
        assert tracker.evaluations == 90
        counts = [member.evaluations for member in members]
        assert counts == [30, 30, 30]

    def test_last_member_gets_leftover_budget(self, rng):
        portfolio = PassivePortfolio(members=[RandomSearch(), OnePlusOneES()])
        tracker = QuadraticTracker(sampling_budget=75)
        portfolio.run(tracker, rng)
        assert tracker.evaluations == 75

    def test_improves_over_first_sample(self, rng):
        portfolio = PassivePortfolio()
        tracker = QuadraticTracker(sampling_budget=300)
        portfolio.run(tracker, rng)
        assert tracker.best_fitness > tracker.first_sample_fitness()

    def test_deterministic_given_rng_seed(self):
        results = []
        for _ in range(2):
            tracker = QuadraticTracker(sampling_budget=120)
            PassivePortfolio().run(tracker, np.random.default_rng(11))
            results.append(tracker.best_fitness)
        assert results[0] == results[1]
