"""Trajectory parity of the gene-matrix search loops.

The hard invariant of this repository's perf work: rewriting a search
inner loop must not change *anything* about the search — the RNG stream,
the fitness sequence, the best design, the history.  Every matrix-native
loop is pinned here against its per-genome twin, and the engine selectors
and delta evaluation are pinned against each other through whole searches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.platform import get_platform
from repro.encoding.genome import GenomeSpace
from repro.encoding.genome_matrix import GenomeMatrix, genome_to_genes
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.optim.digamma import operators
from repro.optim.digamma.algorithm import DiGamma
from repro.optim.nsga2 import NSGA2
from repro.optim.pso import ParticleSwarm
from repro.optim.std_ga import StandardGA
from repro.workloads.registry import get_model


@pytest.fixture(scope="module")
def ncf():
    return get_model("ncf")


def _search(model, optimizer, budget=600, seed=3, **framework_kwargs):
    framework = CoOptimizationFramework(
        model, get_platform("edge"), **framework_kwargs
    )
    return framework.search(optimizer, sampling_budget=budget, seed=seed)


class TestLoopParity:
    def test_digamma_matrix_equals_genome_loop(self, ncf):
        matrix = _search(ncf, DiGamma())
        legacy = _search(ncf, DiGamma(use_matrix=False))
        assert matrix.history == legacy.history
        assert matrix.best.fitness == legacy.best.fitness
        assert matrix.evaluations == legacy.evaluations

    def test_stdga_matrix_equals_genome_loop(self, ncf):
        matrix = _search(ncf, StandardGA())
        legacy = _search(ncf, StandardGA(use_matrix=False))
        assert matrix.history == legacy.history
        assert matrix.best.fitness == legacy.best.fitness

    def test_nsga2_matrix_equals_genome_loop(self, ncf):
        def front(use_matrix):
            framework = CoOptimizationFramework(
                ncf, get_platform("edge"), objectives="latency,energy"
            )
            return framework.pareto_search(
                NSGA2(use_matrix=use_matrix), sampling_budget=480, seed=1
            )

        matrix = front(True)
        legacy = front(False)
        assert matrix.front_values == legacy.front_values
        assert matrix.evaluations == legacy.evaluations

    def test_nsga2_scalar_mode_matrix_equals_genome_loop(self, ncf):
        matrix = _search(ncf, NSGA2(), budget=480, seed=2)
        legacy = _search(ncf, NSGA2(use_matrix=False), budget=480, seed=2)
        assert matrix.history == legacy.history
        assert matrix.best.fitness == legacy.best.fitness


class TestEngineAndDeltaParity:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"engine": "fast"},
            {"engine": "reference"},
            {"use_delta": False},
            {"use_cache": False},
        ],
        ids=["fast", "reference", "no-delta", "no-cache"],
    )
    def test_whole_search_trajectories_are_pinned(self, ncf, kwargs):
        want = _search(ncf, DiGamma())
        got = _search(ncf, DiGamma(), **kwargs)
        assert got.history == want.history
        assert got.best.fitness == want.best.fitness

    def test_delta_reuse_actually_fires_during_a_search(self, ncf):
        framework = CoOptimizationFramework(ncf, get_platform("edge"))
        framework.search(DiGamma(), sampling_budget=600, seed=3)
        stats = framework.evaluator.cost_model.vector_stats
        assert stats["delta_generations"] > 1
        assert stats["delta_members_reused"] > 0
        assert stats["delta_rows_reused"] > 0


class _ReferencePSO(ParticleSwarm):
    """The pre-vectorization per-particle update loop, kept as ground truth."""

    def run(self, tracker, rng):
        from repro.optim.base import evaluate_vectors

        dimension = tracker.vector_dimension
        positions = rng.random((self.swarm_size, dimension))
        velocities = (rng.random((self.swarm_size, dimension)) - 0.5) * 0.1
        personal_best = positions.copy()
        personal_fitness = np.full(self.swarm_size, -np.inf)
        global_best = positions[0].copy()
        global_fitness = -np.inf

        fitnesses = evaluate_vectors(tracker, list(positions))
        for index, fitness in enumerate(fitnesses):
            personal_fitness[index] = fitness
            if fitness > global_fitness:
                global_fitness = fitness
                global_best = positions[index].copy()
        if len(fitnesses) < self.swarm_size:
            return

        while not tracker.exhausted:
            for index in range(self.swarm_size):
                r_cognitive = rng.random(dimension)
                r_social = rng.random(dimension)
                velocities[index] = (
                    self.inertia * velocities[index]
                    + self.cognitive
                    * r_cognitive
                    * (personal_best[index] - positions[index])
                    + self.social * r_social * (global_best - positions[index])
                )
                velocities[index] = np.clip(
                    velocities[index], -self.velocity_clamp, self.velocity_clamp
                )
                positions[index] = np.clip(
                    positions[index] + velocities[index], 0.0, 1.0
                )

            fitnesses = evaluate_vectors(tracker, list(positions))
            for index, fitness in enumerate(fitnesses):
                if fitness > personal_fitness[index]:
                    personal_fitness[index] = fitness
                    personal_best[index] = positions[index].copy()
                if fitness > global_fitness:
                    global_fitness = fitness
                    global_best = positions[index].copy()
            if len(fitnesses) < self.swarm_size:
                return


class TestPSOVectorizedSweep:
    def test_matches_the_per_particle_reference(self, ncf):
        vectorized = _search(ncf, ParticleSwarm(), budget=240, seed=5)
        reference = _search(ncf, _ReferencePSO(), budget=240, seed=5)
        assert vectorized.history == reference.history
        assert vectorized.best.fitness == reference.best.fitness


class TestOperatorRowTwins:
    """Each row twin must consume the identical RNG stream and produce the
    identical genes as its per-genome operator."""

    def _space(self):
        return GenomeSpace(
            dim_bounds={"K": 64, "C": 48, "Y": 16, "X": 16, "R": 3, "S": 3},
            max_pes=256,
            num_levels=2,
        )

    def _pair(self, space, seed):
        rng = np.random.default_rng(seed)
        parent_a = space.random_genome(rng)
        parent_b = space.random_genome(rng)
        return parent_a, parent_b, rng

    @pytest.mark.parametrize("seed", range(8))
    def test_every_operator(self, seed):
        space = self._space()
        cases = [
            ("crossover", lambda g, b, r: operators.crossover(g, b, r),
             lambda row, b, r: operators.crossover_rows(row, b, 2, r)),
            ("reorder", lambda g, b, r: operators.reorder(g, r),
             lambda row, b, r: operators.reorder_row(row, 2, r)),
            ("grow", lambda g, b, r: operators.grow(g, space, r),
             lambda row, b, r: operators.grow_row(row, space, 2, r)),
            ("mutate_map", lambda g, b, r: operators.mutate_map(g, space, r),
             lambda row, b, r: operators.mutate_map_row(row, space, 2, r)),
            ("mutate_hw", lambda g, b, r: operators.mutate_hw(g, space, r),
             lambda row, b, r: operators.mutate_hw_row(row, space, 2, r)),
        ]
        for name, genome_op, row_op in cases:
            parent_a, parent_b, _ = self._pair(space, seed)
            rng_genome = np.random.default_rng(100 + seed)
            rng_row = np.random.default_rng(100 + seed)
            genome_result = genome_op(parent_a.copy(), parent_b, rng_genome)
            row_result = row_op(
                genome_to_genes(parent_a), genome_to_genes(parent_b), rng_row
            )
            assert row_result == genome_to_genes(genome_result), name
            # Identical stream: the next draws must agree too.
            assert rng_genome.random() == rng_row.random(), name

    def test_balance_parallel_row(self):
        space = self._space()
        genome = space.random_genome(np.random.default_rng(9))
        row = genome_to_genes(genome)
        operators.balance_parallel(genome, space)
        operators.balance_parallel_row(row, 2)
        assert row == genome_to_genes(genome)


class TestTrackerShim:
    def test_matrix_optimizers_fall_back_on_stub_trackers(self):
        from tests.optim.helpers import BatchSpyTracker

        tracker = BatchSpyTracker(sampling_budget=120)
        DiGamma().run(tracker, np.random.default_rng(0))
        assert tracker.evaluations == 120
        assert tracker.batched_evaluations > 0

        tracker = BatchSpyTracker(sampling_budget=120)
        StandardGA(population_size=20).run(tracker, np.random.default_rng(0))
        assert tracker.evaluations == 120

    def test_matrix_population_container_round_trips(self):
        space = GenomeSpace(
            dim_bounds={"K": 8, "C": 8, "Y": 4, "X": 4, "R": 3, "S": 3},
            max_pes=64,
            num_levels=2,
        )
        genomes = space.random_population(6, np.random.default_rng(1))
        matrix = GenomeMatrix.from_genomes(genomes)
        assert len(matrix.truncated(4)) == 4
        assert matrix.copy().data is not matrix.data
        assert [g.cache_key() for g in matrix.to_genomes()] == [
            g.cache_key() for g in genomes
        ]
