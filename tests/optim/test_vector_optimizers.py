"""Unit tests of the generic black-box optimizers on an analytic function."""

import numpy as np
import pytest

from repro.optim.cma import CMAES
from repro.optim.de import DifferentialEvolution
from repro.optim.one_plus_one import OnePlusOneES
from repro.optim.pso import ParticleSwarm
from repro.optim.random_search import RandomSearch
from repro.optim.tbpsa import TBPSA
from tests.optim.helpers import QuadraticTracker

ALL_OPTIMIZERS = [
    RandomSearch(),
    OnePlusOneES(),
    DifferentialEvolution(population_size=10),
    ParticleSwarm(swarm_size=10),
    TBPSA(initial_population=8),
    CMAES(population_size=8),
]


@pytest.mark.parametrize("optimizer", ALL_OPTIMIZERS, ids=lambda o: o.name)
class TestCommonBehaviour:
    def test_respects_budget(self, optimizer, rng):
        tracker = QuadraticTracker(sampling_budget=120)
        optimizer.run(tracker, rng)
        assert tracker.evaluations == 120

    def test_improves_over_first_sample(self, optimizer, rng):
        tracker = QuadraticTracker(sampling_budget=300)
        optimizer.run(tracker, rng)
        assert tracker.best_fitness > tracker.first_sample_fitness()


@pytest.mark.parametrize(
    "optimizer",
    [
        OnePlusOneES(),
        DifferentialEvolution(population_size=10),
        ParticleSwarm(swarm_size=10),
        CMAES(population_size=10),
    ],
    ids=lambda o: o.name,
)
class TestConvergence:
    def test_gets_close_to_optimum(self, optimizer, rng):
        tracker = QuadraticTracker(sampling_budget=800)
        optimizer.run(tracker, rng)
        # The sphere optimum has fitness 0; a competent search over ~800
        # samples in 28 dimensions should reach at least -0.5.
        assert tracker.best_fitness > -0.5

    def test_beats_random_search(self, optimizer):
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        guided = QuadraticTracker(sampling_budget=600)
        optimizer.run(guided, rng_a)
        random_tracker = QuadraticTracker(sampling_budget=600)
        RandomSearch().run(random_tracker, rng_b)
        assert guided.best_fitness >= random_tracker.best_fitness


class TestHyperParameterValidation:
    def test_one_plus_one(self):
        with pytest.raises(ValueError):
            OnePlusOneES(initial_sigma=0.0)
        with pytest.raises(ValueError):
            OnePlusOneES(adaptation=1.5)

    def test_de(self):
        with pytest.raises(ValueError):
            DifferentialEvolution(population_size=3)
        with pytest.raises(ValueError):
            DifferentialEvolution(differential_weight=0.0)
        with pytest.raises(ValueError):
            DifferentialEvolution(crossover_rate=0.0)

    def test_pso(self):
        with pytest.raises(ValueError):
            ParticleSwarm(swarm_size=1)

    def test_tbpsa(self):
        with pytest.raises(ValueError):
            TBPSA(initial_sigma=-1.0)
        with pytest.raises(ValueError):
            TBPSA(growth=0.5)

    def test_cma(self):
        with pytest.raises(ValueError):
            CMAES(initial_sigma=0.0)
