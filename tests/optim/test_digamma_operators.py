"""Tests for DiGamma's specialised genetic operators."""

import numpy as np
import pytest

from repro.encoding.genome import GenomeSpace
from repro.optim.digamma import operators
from repro.workloads.dims import DIMS
from tests.optim.helpers import make_space


@pytest.fixture
def space():
    return make_space(max_pes=256)


@pytest.fixture
def parents(space, rng):
    return space.random_genome(rng), space.random_genome(rng)


class TestCrossover:
    def test_child_genes_come_from_parents(self, parents, rng):
        parent_a, parent_b = parents
        child = operators.crossover(parent_a, parent_b, rng)
        for level, a_level, b_level in zip(child.levels, parent_a.levels, parent_b.levels):
            for dim in DIMS:
                assert level.tiles[dim] in (a_level.tiles[dim], b_level.tiles[dim])
            assert level.parallel_dim in (a_level.parallel_dim, b_level.parallel_dim)

    def test_order_and_hw_stay_with_first_parent(self, parents, rng):
        parent_a, parent_b = parents
        child = operators.crossover(parent_a, parent_b, rng)
        for level, a_level in zip(child.levels, parent_a.levels):
            assert list(level.order) == list(a_level.order)
            assert level.spatial_size == a_level.spatial_size

    def test_parents_not_modified(self, parents, rng):
        parent_a, parent_b = parents
        before_a = parent_a.to_mapping()
        before_b = parent_b.to_mapping()
        operators.crossover(parent_a, parent_b, rng)
        assert parent_a.to_mapping() == before_a
        assert parent_b.to_mapping() == before_b


class TestReorder:
    def test_order_stays_a_permutation(self, space, rng):
        for _ in range(30):
            genome = space.random_genome(rng)
            operators.reorder(genome, rng)
            for level in genome.levels:
                assert sorted(level.order) == sorted(DIMS)

    def test_only_order_changes(self, space, rng):
        genome = space.random_genome(rng)
        tiles_before = [dict(level.tiles) for level in genome.levels]
        spatial_before = genome.pe_array
        operators.reorder(genome, rng)
        assert [dict(level.tiles) for level in genome.levels] == tiles_before
        assert genome.pe_array == spatial_before

    def test_eventually_changes_the_order(self, space, rng):
        genome = space.random_genome(rng)
        original = [list(level.order) for level in genome.levels]
        changed = False
        for _ in range(20):
            operators.reorder(genome, rng)
            if [list(level.order) for level in genome.levels] != original:
                changed = True
                break
        assert changed


class TestGrow:
    def test_moves_by_a_factor_of_two_and_stays_bounded(self, space, rng):
        for _ in range(50):
            genome = space.random_genome(rng)
            before = [dict(level.tiles) for level in genome.levels]
            operators.grow(genome, space, rng)
            after = [dict(level.tiles) for level in genome.levels]
            differences = [
                (index, dim)
                for index in range(len(before))
                for dim in DIMS
                if before[index][dim] != after[index][dim]
            ]
            assert len(differences) <= 1
            for index, dim in differences:
                old, new = before[index][dim], after[index][dim]
                assert new in (min(space.dim_bounds[dim], old * 2), max(1, old // 2))

    def test_never_leaves_bounds(self, space, rng):
        genome = space.random_genome(rng)
        for _ in range(100):
            operators.grow(genome, space, rng)
            for level in genome.levels:
                for dim in DIMS:
                    assert 1 <= level.tiles[dim] <= space.dim_bounds[dim]


class TestMutateMap:
    def test_only_mapping_genes_change(self, space, rng):
        for _ in range(30):
            genome = space.random_genome(rng)
            spatial_before = genome.pe_array
            order_before = [list(level.order) for level in genome.levels]
            operators.mutate_map(genome, space, rng)
            assert genome.pe_array == spatial_before
            assert [list(level.order) for level in genome.levels] == order_before

    def test_tiles_stay_in_bounds(self, space, rng):
        genome = space.random_genome(rng)
        for _ in range(100):
            operators.mutate_map(genome, space, rng)
            for level in genome.levels:
                for dim in DIMS:
                    assert 1 <= level.tiles[dim] <= space.dim_bounds[dim]
                assert level.parallel_dim in DIMS


class TestMutateHW:
    def test_respects_max_pes(self, space, rng):
        genome = space.random_genome(rng)
        for _ in range(100):
            operators.mutate_hw(genome, space, rng)
            assert genome.num_pes <= space.max_pes * 2  # aspect-ratio transfer slack

    def test_noop_when_hw_fixed(self, rng):
        fixed_space = GenomeSpace(
            dim_bounds={d: 8 for d in DIMS},
            max_pes=256,
            num_levels=2,
            fixed_pe_array=(8, 16),
        )
        genome = fixed_space.random_genome(rng)
        before = genome.pe_array
        for _ in range(20):
            operators.mutate_hw(genome, fixed_space, rng)
        assert genome.pe_array == before

    def test_non_parallel_tiles_untouched(self, space, rng):
        genome = space.random_genome(rng)
        tiles_before = [dict(level.tiles) for level in genome.levels]
        parallel_dims = [level.parallel_dim for level in genome.levels]
        operators.mutate_hw(genome, space, rng)
        for before, level, parallel in zip(tiles_before, genome.levels, parallel_dims):
            for dim in DIMS:
                if dim != parallel:
                    assert level.tiles[dim] == before[dim]

    def test_eventually_changes_the_array(self, space, rng):
        genome = space.random_genome(rng)
        original = genome.pe_array
        changed = False
        for _ in range(30):
            operators.mutate_hw(genome, space, rng)
            if genome.pe_array != original:
                changed = True
                break
        assert changed


class TestBalanceParallel:
    def test_parallel_tiles_become_one(self, space, rng):
        for _ in range(20):
            genome = space.random_genome(rng)
            operators.balance_parallel(genome, space)
            for level in genome.levels:
                assert level.tiles[level.parallel_dim] == 1

    def test_other_tiles_spatial_sizes_and_orders_unchanged(self, space, rng):
        genome = space.random_genome(rng)
        pe_array = genome.pe_array
        orders = [list(level.order) for level in genome.levels]
        other_tiles = [
            {dim: level.tiles[dim] for dim in DIMS if dim != level.parallel_dim}
            for level in genome.levels
        ]
        operators.balance_parallel(genome, space)
        assert genome.pe_array == pe_array
        assert [list(level.order) for level in genome.levels] == orders
        for level, before in zip(genome.levels, other_tiles):
            for dim, value in before.items():
                assert level.tiles[dim] == value

    def test_full_utilization_after_balancing(self, space, rng):
        # With unit parallel tiles the number of spatial chunks equals the
        # parent extent, so no sub-cluster can sit idle on large dimensions.
        from repro.cost.reuse import analyze_levels
        from repro.workloads.dims import LayerDims
        from repro.workloads.layer import Layer, OpType

        layer = Layer(
            name="big",
            op_type=OpType.CONV,
            dims=LayerDims(**{dim: space.dim_bounds[dim] for dim in DIMS}),
        )
        genome = space.random_genome(rng)
        operators.balance_parallel(genome, space)
        analyses = analyze_levels(layer, genome.to_mapping())
        outer = analyses[0]
        assert outer.active == min(
            outer.spatial_size, space.dim_bounds[outer.parallel_dim]
        )


class TestRngStreamEquivalence:
    """The batched/indexing draw forms must consume the identical stream.

    The operators replaced scalar ``rng.random()`` loops with one
    ``rng.random(n)`` call and ``rng.choice(seq)`` with
    ``seq[rng.integers(len(seq))]``; both substitutions draw the exact same
    values from NumPy's bit generator, which is what keeps every recorded
    search trajectory reproducible.  These tests pin that NumPy contract.
    """

    def test_batched_random_matches_scalar_draws(self):
        a = np.random.default_rng(123)
        b = np.random.default_rng(123)
        assert [float(x) for x in a.random(14)] == [b.random() for _ in range(14)]
        # Streams stay aligned afterwards.
        assert a.integers(1000) == b.integers(1000)

    def test_integers_indexing_matches_choice(self):
        items = list(DIMS)
        a = np.random.default_rng(7)
        b = np.random.default_rng(7)
        for _ in range(50):
            assert str(a.choice(items)) == items[b.integers(len(items))]
        assert a.integers(1000) == b.integers(1000)

    def test_crossover_draws_seven_per_level(self):
        space = make_space()
        rng = np.random.default_rng(11)
        parent_a = space.random_genome(rng)
        parent_b = space.random_genome(rng)
        before = np.random.default_rng(42)
        child = operators.crossover(parent_a, parent_b, before)
        replay = np.random.default_rng(42)
        replay.random(7 * parent_a.num_levels)
        # Both generators are now at the same point in the stream.
        assert before.integers(10**6) == replay.integers(10**6)
        assert child.num_levels == parent_a.num_levels
