"""Tests for the optimizer registry."""

import pytest

from repro.optim.base import Optimizer
from repro.optim.registry import available_optimizers, get_optimizer


class TestRegistry:
    def test_all_paper_algorithms_present(self):
        names = available_optimizers()
        for expected in ("random", "stdga", "pso", "tbpsa", "(1+1)-es", "de",
                         "portfolio", "cma", "digamma", "gamma"):
            assert expected in names

    @pytest.mark.parametrize("name", available_optimizers())
    def test_every_entry_instantiates_an_optimizer(self, name):
        optimizer = get_optimizer(name)
        assert isinstance(optimizer, Optimizer)
        assert optimizer.name

    def test_each_call_returns_a_fresh_instance(self):
        assert get_optimizer("digamma") is not get_optimizer("digamma")

    def test_aliases_and_case(self):
        assert get_optimizer("CMA-ES").name == "CMA"
        assert get_optimizer("OnePlusOne").name == "(1+1)-ES"
        assert get_optimizer("Standard GA").name == "stdGA"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_optimizer("bayesopt")
