"""Tests for the NSGA-II multi-objective optimizer."""

import numpy as np
import pytest

from repro.arch.platform import EDGE
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.objective import Objective
from repro.optim.nsga2 import NSGA2, NSGA2HyperParameters
from repro.optim.registry import get_optimizer
from repro.workloads.registry import get_model
from tests.optim.helpers import QuadraticTracker

#: The pinned acceptance configuration: one NSGA-II search whose budget
#: equals the *total* budget of the per-objective scalar searches it
#: replaces (three objectives, so each scalar search gets a third).  All
#: searches are deterministic functions of the seed, so the comparison is
#: stable.
ACCEPTANCE_MODEL = "ncf"
ACCEPTANCE_BUDGET = 240
ACCEPTANCE_SEED = 1
ACCEPTANCE_OBJECTIVES = ("latency", "energy", "area")


class TestRegistry:
    def test_nsga2_registered_with_aliases(self):
        assert get_optimizer("nsga2").name == "NSGA-II"
        assert get_optimizer("NSGA-II").name == "NSGA-II"
        assert get_optimizer("nsga").name == "NSGA-II"


class TestHyperParameters:
    def test_population_scales_with_budget(self):
        params = NSGA2HyperParameters()
        assert params.resolved_population(100) == 20
        assert params.resolved_population(2000) == 80
        assert params.resolved_population(10**6) == 100
        assert NSGA2HyperParameters(population_size=12).resolved_population(5) == 12

    def test_validation(self):
        with pytest.raises(ValueError, match="population_size"):
            NSGA2HyperParameters(population_size=2)
        with pytest.raises(ValueError, match="crossover_rate"):
            NSGA2HyperParameters(crossover_rate=1.5)
        with pytest.raises(ValueError, match="extreme_bias"):
            NSGA2HyperParameters(extreme_bias=-0.1)
        with pytest.raises(ValueError, match="seeded_fraction"):
            NSGA2(seeded_fraction=2.0)


class TestTrackerContract:
    def test_requires_batched_results_view(self):
        tracker = QuadraticTracker(sampling_budget=50)
        with pytest.raises(TypeError, match="evaluate_batch_results"):
            NSGA2().run(tracker, np.random.default_rng(0))


class TestMultiObjectiveSearch:
    @pytest.fixture(scope="class")
    def front(self):
        framework = CoOptimizationFramework(
            get_model(ACCEPTANCE_MODEL),
            EDGE,
            objectives=",".join(ACCEPTANCE_OBJECTIVES),
        )
        try:
            return framework.pareto_search(
                get_optimizer("nsga2"),
                sampling_budget=ACCEPTANCE_BUDGET,
                seed=ACCEPTANCE_SEED,
            )
        finally:
            framework.close()

    def test_front_is_non_dominated_and_non_empty(self, front):
        assert front.found_valid
        assert front.is_non_dominated()
        assert len(set(front.front_values)) == len(front.front_values)

    def test_budget_respected_exactly(self, front):
        assert front.evaluations == ACCEPTANCE_BUDGET

    def test_batched_fast_path_engaged(self, front):
        """Multi-objective search must not drop the batched evaluation path.

        This is the same regression class the portfolio budget-slice fix
        guarded against: every generation must arrive through the batched
        views so the vector engine sees whole populations.
        """
        assert front.batch_calls > 0
        assert front.batched_evaluations == front.evaluations

    def test_deterministic_given_seed(self, front):
        framework = CoOptimizationFramework(
            get_model(ACCEPTANCE_MODEL),
            EDGE,
            objectives=",".join(ACCEPTANCE_OBJECTIVES),
        )
        try:
            again = framework.pareto_search(
                get_optimizer("nsga2"),
                sampling_budget=ACCEPTANCE_BUDGET,
                seed=ACCEPTANCE_SEED,
            )
        finally:
            framework.close()
        assert again.front_values == front.front_values

    @pytest.mark.parametrize("comparator", ["nsga2", "digamma"])
    def test_extremes_no_worse_than_scalar_searches(self, front, comparator):
        """One front replaces one scalar search per objective.

        The acceptance bar of the multi-objective subsystem: under the
        same total sampling budget (the front's budget equals the sum of
        the per-objective scalar budgets) and the same seed, the front's
        extreme point on every axis is at least as good as what the
        corresponding dedicated single-objective search finds.
        """
        per_axis_budget = ACCEPTANCE_BUDGET // len(ACCEPTANCE_OBJECTIVES)
        for name in ACCEPTANCE_OBJECTIVES:
            objective = Objective.from_name(name)
            framework = CoOptimizationFramework(
                get_model(ACCEPTANCE_MODEL), EDGE, objective=objective
            )
            try:
                scalar = framework.search(
                    get_optimizer(comparator),
                    sampling_budget=per_axis_budget,
                    seed=ACCEPTANCE_SEED,
                )
            finally:
                framework.close()
            assert scalar.found_valid
            assert front.extreme_value(objective) <= scalar.best_objective_value, (
                f"front extreme on {name} is worse than the dedicated "
                f"{comparator} search ({front.extreme_value(objective):.6e} "
                f"> {scalar.best_objective_value:.6e})"
            )


class TestScalarFallback:
    def test_runs_as_single_objective_optimizer(self):
        """Without an ObjectiveSet, NSGA-II degrades to an elitist GA."""
        framework = CoOptimizationFramework(get_model("ncf"), EDGE)
        try:
            result = framework.search(
                get_optimizer("nsga2"), sampling_budget=100, seed=0
            )
        finally:
            framework.close()
        assert result.found_valid
        assert result.evaluations == 100
        assert result.optimizer_name == "NSGA-II"
