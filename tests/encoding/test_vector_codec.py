"""Tests for the flat real-vector codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.genome import GenomeSpace
from repro.encoding.vector_codec import VectorCodec
from repro.workloads.dims import DIMS


@pytest.fixture
def space(tiny_model):
    return GenomeSpace.from_model(tiny_model, max_pes=256, num_levels=2)


@pytest.fixture
def codec(space):
    return VectorCodec(space)


class TestDecode:
    def test_dimension(self, codec, space):
        assert codec.dimension == space.num_levels * (2 + 2 * len(DIMS))

    def test_decode_rejects_wrong_length(self, codec):
        with pytest.raises(ValueError):
            codec.decode(np.zeros(codec.dimension + 1))

    def test_decode_produces_valid_genome(self, codec, space, rng):
        for _ in range(50):
            genome = codec.decode(codec.random_vector(rng))
            assert genome.num_levels == space.num_levels
            assert genome.num_pes <= space.max_pes
            for level in genome.levels:
                assert sorted(level.order) == sorted(DIMS)
                assert level.parallel_dim in DIMS
                for dim in DIMS:
                    assert 1 <= level.tiles[dim] <= space.dim_bounds[dim]

    def test_values_outside_unit_box_are_clipped(self, codec):
        low = codec.decode(np.full(codec.dimension, -5.0))
        high = codec.decode(np.full(codec.dimension, +5.0))
        assert low.num_pes >= 1
        assert high.num_pes >= 1

    def test_extreme_vectors_hit_bounds(self, codec, space):
        zeros = codec.decode(np.zeros(codec.dimension))
        ones = codec.decode(np.ones(codec.dimension))
        assert zeros.num_pes == 1
        for level in zeros.levels:
            assert all(level.tiles[d] == 1 for d in DIMS)
        for level, dim in zip(ones.levels, ["K"]):
            assert level.tiles[dim] == space.dim_bounds[dim]

    def test_decode_is_deterministic(self, codec, rng):
        vector = codec.random_vector(rng)
        a = codec.decode(vector).to_mapping()
        b = codec.decode(vector).to_mapping()
        assert a == b


class TestEncode:
    def test_roundtrip_preserves_structure(self, codec, space, rng):
        for _ in range(20):
            genome = space.random_genome(rng)
            decoded = codec.decode(codec.encode(genome))
            for original, restored in zip(genome.levels, decoded.levels):
                assert restored.parallel_dim == original.parallel_dim
                assert list(restored.order) == list(original.order)

    def test_roundtrip_tile_sizes_close_in_log_space(self, codec, space, rng):
        for _ in range(20):
            genome = space.random_genome(rng)
            decoded = codec.decode(codec.encode(genome))
            for original, restored in zip(genome.levels, decoded.levels):
                for dim in DIMS:
                    ratio = restored.tiles[dim] / original.tiles[dim]
                    assert 0.4 <= ratio <= 2.5

    def test_encode_rejects_level_mismatch(self, codec, space, rng):
        from repro.encoding.genome import Genome, LevelGenes

        genome = Genome(levels=[LevelGenes(1, "K", list(DIMS), {d: 1 for d in DIMS})])
        with pytest.raises(ValueError):
            codec.encode(genome)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_encode_stays_in_unit_box(self, seed):
        space = GenomeSpace(
            dim_bounds={"K": 256, "C": 512, "Y": 64, "X": 8, "R": 3, "S": 3},
            max_pes=256,
            num_levels=2,
        )
        codec = VectorCodec(space)
        generator = np.random.default_rng(seed)
        genome = space.random_genome(generator)
        vector = codec.encode(genome)
        assert np.all(vector >= 0.0)
        assert np.all(vector <= 1.0)


class TestFixedHardware:
    def test_decode_respects_fixed_pe_array(self, tiny_model, rng):
        space = GenomeSpace.from_model(tiny_model, max_pes=512, num_levels=2,
                                       fixed_pe_array=(8, 16))
        codec = VectorCodec(space)
        for _ in range(10):
            genome = codec.decode(codec.random_vector(rng))
            assert genome.pe_array == (8, 16)
