"""Tests for the structured genome and genome space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.genome import Genome, GenomeSpace, LevelGenes, log_uniform_int
from repro.mapping.dataflows import dla_like
from repro.workloads.dims import DIMS
from repro.workloads.layer import Layer
from repro.workloads.model import build_model


class TestLevelGenes:
    def test_copy_is_deep(self):
        level = LevelGenes(spatial_size=4, parallel_dim="K", order=list(DIMS),
                           tiles={d: 2 for d in DIMS})
        clone = level.copy()
        clone.tiles["K"] = 99
        clone.order[0] = "C"
        assert level.tiles["K"] == 2
        assert level.order[0] == "K"

    def test_to_level_mapping_clamps_to_one(self):
        level = LevelGenes(spatial_size=0, parallel_dim="K", order=list(DIMS),
                           tiles={d: 0 for d in DIMS})
        mapping_level = level.to_level_mapping()
        assert mapping_level.spatial_size == 1
        assert all(mapping_level.tiles[d] == 1 for d in DIMS)


class TestGenome:
    def test_pe_accounting(self):
        genome = Genome(levels=[
            LevelGenes(4, "K", list(DIMS), {d: 1 for d in DIMS}),
            LevelGenes(8, "C", list(DIMS), {d: 1 for d in DIMS}),
        ])
        assert genome.num_levels == 2
        assert genome.num_pes == 32
        assert genome.pe_array == (4, 8)

    def test_copy_is_deep(self):
        genome = Genome(levels=[LevelGenes(4, "K", list(DIMS), {d: 1 for d in DIMS})])
        clone = genome.copy()
        clone.levels[0].spatial_size = 99
        assert genome.levels[0].spatial_size == 4

    def test_mapping_roundtrip(self, conv_layer):
        mapping = dla_like(conv_layer, (8, 16))
        genome = Genome.from_mapping(mapping)
        assert genome.to_mapping() == mapping

    def test_describe_mentions_parallel_dims(self, conv_layer):
        genome = Genome.from_mapping(dla_like(conv_layer, (8, 16)))
        text = genome.describe()
        assert "P=K" in text
        assert "P=C" in text


class TestGenomeSpace:
    def test_from_model_takes_max_dims(self):
        model = build_model("m", [
            Layer.conv2d("a", 16, 64, 8, 3),
            Layer.conv2d("b", 128, 32, 16, 1),
        ])
        space = GenomeSpace.from_model(model, max_pes=100)
        assert space.dim_bounds["K"] == 64
        assert space.dim_bounds["C"] == 128
        assert space.dim_bounds["Y"] == 16
        assert space.dim_bounds["R"] == 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GenomeSpace(dim_bounds={d: 1 for d in DIMS}, max_pes=0)
        with pytest.raises(ValueError):
            GenomeSpace(dim_bounds={d: 1 for d in DIMS}, max_pes=4, num_levels=0)
        with pytest.raises(ValueError):
            GenomeSpace(dim_bounds={d: 1 for d in DIMS}, max_pes=4,
                        num_levels=2, fixed_pe_array=(4,))

    def test_random_genome_within_bounds(self, tiny_space, rng):
        for _ in range(50):
            genome = tiny_space.random_genome(rng)
            assert genome.num_levels == tiny_space.num_levels
            assert genome.num_pes <= tiny_space.max_pes * 2  # sampling headroom
            for level in genome.levels:
                assert sorted(level.order) == sorted(DIMS)
                assert level.parallel_dim in DIMS
                for dim in DIMS:
                    assert 1 <= level.tiles[dim] <= tiny_space.dim_bounds[dim]

    def test_random_population_size(self, tiny_space, rng):
        population = tiny_space.random_population(17, rng)
        assert len(population) == 17
        with pytest.raises(ValueError):
            tiny_space.random_population(0, rng)

    def test_fixed_hw_pins_spatial_sizes(self, tiny_model, rng):
        space = GenomeSpace.from_model(tiny_model, max_pes=999, num_levels=2,
                                       fixed_pe_array=(8, 16))
        assert space.hw_is_fixed
        assert space.spatial_bound(0) == 8
        for _ in range(20):
            genome = space.random_genome(rng)
            assert genome.pe_array == (8, 16)


class TestLogUniformInt:
    def test_bounds_respected(self, rng):
        for _ in range(200):
            value = log_uniform_int(rng, 1, 77)
            assert 1 <= value <= 77

    def test_degenerate_range(self, rng):
        assert log_uniform_int(rng, 5, 5) == 5
        assert log_uniform_int(rng, 5, 3) == 5

    def test_rejects_low_below_one(self, rng):
        with pytest.raises(ValueError):
            log_uniform_int(rng, 0, 10)

    @given(seed=st.integers(0, 2**32 - 1), high=st.integers(1, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_property_in_range(self, seed, high):
        generator = np.random.default_rng(seed)
        value = log_uniform_int(generator, 1, high)
        assert 1 <= value <= high

    def test_log_bias_towards_small_values(self):
        generator = np.random.default_rng(0)
        samples = [log_uniform_int(generator, 1, 1024) for _ in range(2000)]
        below_32 = sum(1 for s in samples if s <= 32)
        # Log-uniform puts half the mass below sqrt(1024)=32.
        assert 0.35 < below_32 / len(samples) < 0.65
