"""The gene-matrix population representation.

The contract: a :class:`GenomeMatrix` row carries exactly the genes of its
:class:`Genome`, vectorized repair is bit-identical to ``repaired_copy``
member by member, a repaired row's cache key equals the genome's, and the
flat-vector codec decodes straight into rows with the same gene values as
its per-genome decode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoding.genome import GenomeSpace
from repro.encoding.genome_matrix import (
    LEVEL_WIDTH,
    GenomeMatrix,
    genome_to_genes,
    mapping_from_fingerprint,
    mapping_from_row,
    repaired_matrix,
    row_cache_key,
    row_to_genome,
)
from repro.encoding.repair import repaired_copy
from repro.encoding.vector_codec import VectorCodec


def _space(num_levels=2, fixed=None):
    return GenomeSpace(
        dim_bounds={"K": 64, "C": 48, "Y": 16, "X": 16, "R": 3, "S": 3},
        max_pes=256,
        num_levels=num_levels,
        fixed_pe_array=fixed,
    )


def _population(space, count, seed, corrupt=False):
    rng = np.random.default_rng(seed)
    genomes = space.random_population(count, rng)
    if corrupt:
        for genome in genomes[: count // 2]:
            genome.levels[0].spatial_size = int(rng.integers(-2, 100000))
            genome.levels[-1].tiles["K"] = int(rng.integers(-3, 99999))
            genome.levels[-1].tiles["Y"] = 0
    return genomes


class TestRoundTrip:
    @pytest.mark.parametrize("num_levels", [1, 2, 3])
    def test_genomes_survive_the_matrix(self, num_levels):
        space = _space(num_levels=num_levels)
        genomes = _population(space, 12, seed=1)
        matrix = GenomeMatrix.from_genomes(genomes)
        assert matrix.data.shape == (12, LEVEL_WIDTH * num_levels)
        for index, genome in enumerate(genomes):
            back = matrix.genome_at(index)
            for original, rebuilt in zip(genome.levels, back.levels):
                assert rebuilt.spatial_size == original.spatial_size
                assert rebuilt.parallel_dim == original.parallel_dim
                assert rebuilt.order == original.order
                assert rebuilt.tiles == {
                    dim: int(size) for dim, size in original.tiles.items()
                }

    def test_gene_list_matches_row(self):
        space = _space()
        genome = _population(space, 1, seed=2)[0]
        row = GenomeMatrix.from_genomes([genome]).data[0]
        assert genome_to_genes(genome) == row.tolist()
        assert row_to_genome(row, 2).to_mapping() == genome.to_mapping()

    def test_empty_population_is_rejected(self):
        with pytest.raises(ValueError):
            GenomeMatrix.from_genomes([])


class TestRepairParity:
    @pytest.mark.parametrize("fixed", [None, (8, 16)], ids=["free-hw", "fixed-hw"])
    def test_bit_identical_to_repaired_copy(self, fixed):
        space = _space(fixed=fixed)
        genomes = _population(space, 40, seed=3, corrupt=True)
        repaired = repaired_matrix(GenomeMatrix.from_genomes(genomes), space)
        for index, genome in enumerate(genomes):
            want = repaired_copy(genome, space)
            assert repaired.genome_at(index).cache_key() == want.cache_key()

    def test_three_level_pe_product_shrinks_innermost_first(self):
        space = _space(num_levels=3)
        genomes = _population(space, 30, seed=4)
        for genome in genomes:
            for level in genome.levels:
                level.spatial_size = 200  # 200^3 >> max_pes
        repaired = repaired_matrix(GenomeMatrix.from_genomes(genomes), space)
        for index, genome in enumerate(genomes):
            want = repaired_copy(genome, space)
            assert repaired.genome_at(index).cache_key() == want.cache_key()

    def test_original_matrix_is_untouched(self):
        space = _space()
        genomes = _population(space, 5, seed=5, corrupt=True)
        matrix = GenomeMatrix.from_genomes(genomes)
        before = matrix.data.copy()
        repaired_matrix(matrix, space)
        assert (matrix.data == before).all()


class TestKeysAndFingerprints:
    def test_row_cache_key_matches_genome_cache_key(self):
        space = _space()
        genomes = _population(space, 20, seed=6, corrupt=True)
        repaired = repaired_matrix(GenomeMatrix.from_genomes(genomes), space)
        for index, genome in enumerate(genomes):
            want = repaired_copy(genome, space).cache_key()
            assert row_cache_key(repaired.data[index].tolist(), 2) == want

    def test_mapping_rebuilds_from_row_and_fingerprint(self):
        space = _space()
        genomes = _population(space, 8, seed=7)
        repaired = repaired_matrix(GenomeMatrix.from_genomes(genomes), space)
        for index, genome in enumerate(genomes):
            want = repaired_copy(genome, space).to_mapping()
            row = repaired.data[index]
            assert mapping_from_row(row, 2) == want
            assert mapping_from_fingerprint(row.tobytes(), 2) == want


class TestCodecDecodeMatrix:
    @pytest.mark.parametrize("num_levels", [2, 3])
    def test_rows_match_per_vector_decode(self, num_levels):
        space = _space(num_levels=num_levels)
        codec = VectorCodec(space)
        rng = np.random.default_rng(8)
        vectors = [rng.random(codec.dimension) for _ in range(25)]
        vectors.append(np.zeros(codec.dimension))
        vectors.append(np.ones(codec.dimension))
        matrix = codec.decode_matrix(vectors)
        for index, vector in enumerate(vectors):
            assert (
                matrix.data[index].tolist()
                == genome_to_genes(codec.decode(vector))
            )

    def test_rejects_wrong_dimension(self):
        codec = VectorCodec(_space())
        with pytest.raises(ValueError):
            codec.decode_matrix([np.zeros(codec.dimension - 1)])
