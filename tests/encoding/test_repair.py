"""Tests for genome legality repair."""

import pytest

from repro.encoding.genome import Genome, GenomeSpace, LevelGenes
from repro.encoding.repair import repair_genome
from repro.workloads.dims import DIMS


@pytest.fixture
def space():
    return GenomeSpace(
        dim_bounds={"K": 64, "C": 32, "Y": 16, "X": 16, "R": 3, "S": 3},
        max_pes=128,
        num_levels=2,
    )


def make_genome(spatials=(4, 8), tiles_value=2, order=None, parallel="K"):
    order = list(order) if order is not None else list(DIMS)
    return Genome(levels=[
        LevelGenes(spatials[0], parallel, list(order), {d: tiles_value for d in DIMS}),
        LevelGenes(spatials[1], parallel, list(order), {d: tiles_value for d in DIMS}),
    ])


class TestRepair:
    def test_valid_genome_unchanged(self, space):
        genome = make_genome()
        before = genome.to_mapping()
        repaired = repair_genome(genome, space)
        assert repaired.to_mapping() == before

    def test_tiles_clamped_to_bounds(self, space):
        genome = make_genome(tiles_value=10_000)
        repair_genome(genome, space)
        for level in genome.levels:
            for dim in DIMS:
                assert level.tiles[dim] <= space.dim_bounds[dim]

    def test_tiles_clamped_to_at_least_one(self, space):
        genome = make_genome(tiles_value=2)
        genome.levels[0].tiles["K"] = 0
        genome.levels[1].tiles["C"] = -5
        repair_genome(genome, space)
        assert genome.levels[0].tiles["K"] == 1
        assert genome.levels[1].tiles["C"] == 1

    def test_pe_product_clamped(self, space):
        genome = make_genome(spatials=(64, 64))  # 4096 > 128
        repair_genome(genome, space)
        assert genome.num_pes <= space.max_pes

    def test_fixed_hw_pins_spatial(self):
        space = GenomeSpace(
            dim_bounds={d: 8 for d in DIMS},
            max_pes=512,
            num_levels=2,
            fixed_pe_array=(8, 16),
        )
        genome = make_genome(spatials=(3, 99))
        repair_genome(genome, space)
        assert genome.pe_array == (8, 16)

    def test_broken_order_rebuilt(self, space):
        genome = make_genome(order=["K", "K", "C", "C", "Y", "Y"])
        repair_genome(genome, space)
        for level in genome.levels:
            assert sorted(level.order) == sorted(DIMS)
            # The legal prefix is preserved.
            assert level.order[0] == "K"
            assert level.order[1] == "C"

    def test_invalid_parallel_dim_replaced(self, space):
        genome = make_genome()
        genome.levels[0].parallel_dim = "Z"
        repair_genome(genome, space)
        assert genome.levels[0].parallel_dim in DIMS

    def test_repair_is_idempotent(self, space, rng):
        for _ in range(20):
            genome = space.random_genome(rng)
            genome.levels[0].tiles["K"] = 10**6
            genome.levels[1].spatial_size = 10**6
            once = repair_genome(genome.copy(), space).to_mapping()
            twice = repair_genome(repair_genome(genome.copy(), space), space).to_mapping()
            assert once == twice
