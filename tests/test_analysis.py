"""Tests for the post-search analysis utilities."""

import math

import pytest

from repro.analysis import (
    ParetoPoint,
    compare_designs,
    convergence_curve,
    merge_pareto_points,
    pareto_front,
    pareto_front_report,
    pareto_result_to_points,
    results_to_pareto_points,
    samples_to_reach,
    speedup_over,
)
from repro.arch.platform import EDGE
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.search import SearchResult
from repro.optim.digamma import DiGamma
from repro.optim.random_search import RandomSearch
from repro.workloads.registry import get_model


@pytest.fixture(scope="module")
def searches():
    framework = CoOptimizationFramework(get_model("ncf"), EDGE)
    return {
        "DiGamma": framework.search(DiGamma(), sampling_budget=150, seed=0),
        "Random": framework.search(RandomSearch(), sampling_budget=150, seed=0),
    }


class TestConvergence:
    def test_curve_is_monotonically_improving(self, searches):
        curve = convergence_curve(searches["DiGamma"])
        assert curve
        values = [value for _, value in curve]
        assert values == sorted(values, reverse=True)
        assert values[-1] == searches["DiGamma"].best_latency

    def test_invalid_penalty_entries_are_dropped(self):
        result = SearchResult(
            optimizer_name="x", best=None, evaluations=3, sampling_budget=3,
            wall_time_seconds=0.0, history=((1, -1e20), (2, -5.0)),
        )
        assert convergence_curve(result) == [(2, 5.0)]

    def test_samples_to_reach(self, searches):
        result = searches["DiGamma"]
        assert samples_to_reach(result, float("inf")) is not None
        assert samples_to_reach(result, result.best_latency) == result.history[-1][0]
        assert samples_to_reach(result, 0.0) is None


class TestSpeedup:
    def test_speedup_between_valid_results(self, searches):
        value = speedup_over(searches["Random"], searches["DiGamma"])
        assert value > 0
        assert value == pytest.approx(
            searches["Random"].best_latency / searches["DiGamma"].best_latency
        )

    def test_degenerate_cases(self, searches):
        empty = SearchResult(optimizer_name="none", best=None, evaluations=0,
                             sampling_budget=1, wall_time_seconds=0.0)
        assert speedup_over(empty, searches["DiGamma"]) == float("inf")
        assert speedup_over(searches["DiGamma"], empty) == 0.0
        assert math.isnan(speedup_over(empty, empty))


class TestPareto:
    def test_dominance(self):
        a = ParetoPoint("a", latency=1.0, area=1.0)
        b = ParetoPoint("b", latency=2.0, area=2.0)
        c = ParetoPoint("c", latency=0.5, area=3.0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c) and not c.dominates(a)

    def test_front_filters_dominated_points(self):
        points = [
            ParetoPoint("fast", 1.0, 10.0),
            ParetoPoint("small", 10.0, 1.0),
            ParetoPoint("bad", 10.0, 10.0),
            ParetoPoint("balanced", 5.0, 5.0),
        ]
        front = pareto_front(points)
        labels = {point.label for point in front}
        assert labels == {"fast", "small", "balanced"}
        assert [point.label for point in front] == ["fast", "balanced", "small"]

    def test_single_point_input(self):
        only = ParetoPoint("only", 2.0, 3.0)
        assert pareto_front([only]) == [only]
        assert pareto_front([only], dedupe=True) == [only]

    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_duplicate_points_both_survive_by_default(self):
        # Equal points never dominate each other, so exact duplicates all
        # stay on the curve unless the caller asks for deduplication.
        points = [ParetoPoint("a", 1.0, 2.0), ParetoPoint("b", 1.0, 2.0)]
        front = pareto_front(points)
        assert [point.label for point in front] == ["a", "b"]

    def test_duplicate_points_collapse_with_dedupe(self):
        points = [
            ParetoPoint("a", 1.0, 2.0),
            ParetoPoint("b", 1.0, 2.0),
            ParetoPoint("c", 2.0, 1.0),
        ]
        front = pareto_front(points, dedupe=True)
        assert [point.label for point in front] == ["a", "c"]

    def test_tie_on_one_axis(self):
        # Same latency, different area: the smaller-area point dominates
        # (a tie on one axis does not protect a point that is worse on
        # the other), and symmetrically for a tie on area.
        latency_tie = [ParetoPoint("big", 1.0, 5.0), ParetoPoint("small", 1.0, 2.0)]
        assert [p.label for p in pareto_front(latency_tie)] == ["small"]
        area_tie = [ParetoPoint("slow", 2.0, 5.0), ParetoPoint("fast", 1.0, 5.0)]
        assert [p.label for p in pareto_front(area_tie)] == ["fast"]

    def test_results_to_pareto_points(self, searches):
        points = results_to_pareto_points(searches)
        assert {point.label for point in points} <= set(searches)
        for point in points:
            assert point.latency > 0 and point.area > 0


class TestParetoResultRendering:
    @pytest.fixture(scope="class")
    def front(self):
        framework = CoOptimizationFramework(
            get_model("ncf"), EDGE, objectives="latency,energy,area"
        )
        try:
            return framework.pareto_search(DiGamma(), sampling_budget=80, seed=0)
        finally:
            framework.close()

    def test_pareto_result_to_points(self, front):
        points = pareto_result_to_points(front)
        assert len(points) == len(front.front)
        for point, entry in zip(points, front.front):
            assert point.latency == entry.design.latency
            assert point.area == entry.design.area.total
            assert point.label.startswith("DiGamma#")

    def test_merge_with_single_objective_results(self, front, searches):
        merged = merge_pareto_points(
            pareto_result_to_points(front), results_to_pareto_points(searches)
        )
        assert merged
        # The merged curve is itself non-dominated and deduplicated.
        assert merged == pareto_front(merged, dedupe=True)
        reference = pareto_front(
            pareto_result_to_points(front) + results_to_pareto_points(searches),
            dedupe=True,
        )
        assert merged == reference

    def test_report_lists_every_front_member(self, front):
        text = pareto_front_report(front, title="ncf front")
        assert text.startswith("ncf front")
        for name in ("latency", "energy", "area"):
            assert name in text
        assert len(text.splitlines()) == 3 + len(front.front)


class TestCompareDesigns:
    def test_report_contains_every_scheme(self, searches):
        text = compare_designs(searches)
        assert "DiGamma" in text and "Random" in text
        assert "latency" in text

    def test_invalid_results_render_as_na(self):
        empty = SearchResult(optimizer_name="none", best=None, evaluations=0,
                             sampling_budget=1, wall_time_seconds=0.0)
        assert "N/A" in compare_designs({"none": empty})
