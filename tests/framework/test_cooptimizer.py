"""Tests for the co-optimization framework front-end."""


from repro.arch.platform import EDGE
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.objective import Objective
from repro.framework.search import SearchTracker
from repro.optim.random_search import RandomSearch


class TestSearch:
    def test_search_respects_sampling_budget(self, tiny_model):
        framework = CoOptimizationFramework(tiny_model, EDGE)
        result = framework.search(RandomSearch(), sampling_budget=50, seed=0)
        assert result.evaluations == 50
        assert result.sampling_budget == 50
        assert result.optimizer_name == "Random"
        assert result.wall_time_seconds > 0

    def test_search_is_deterministic_given_seed(self, tiny_model):
        framework = CoOptimizationFramework(tiny_model, EDGE)
        a = framework.search(RandomSearch(), sampling_budget=40, seed=7)
        b = framework.search(RandomSearch(), sampling_budget=40, seed=7)
        assert a.best_latency == b.best_latency
        assert a.history == b.history

    def test_different_seeds_usually_differ(self, tiny_model):
        framework = CoOptimizationFramework(tiny_model, EDGE)
        a = framework.search(RandomSearch(), sampling_budget=40, seed=1)
        b = framework.search(RandomSearch(), sampling_budget=40, seed=2)
        assert a.history != b.history

    def test_budget_oblivious_optimizer_terminates(self, tiny_model):
        class GreedyForever:
            """Keeps asking for evaluations until the tracker stops it."""

            name = "greedy"

            def run(self, tracker: SearchTracker, rng) -> None:
                while True:
                    tracker.evaluate_genome(tracker.space.random_genome(rng))

        framework = CoOptimizationFramework(tiny_model, EDGE)
        result = framework.search(GreedyForever(), sampling_budget=25, seed=0)
        assert result.evaluations == 25

    def test_objective_is_forwarded(self, tiny_model):
        framework = CoOptimizationFramework(tiny_model, EDGE, objective=Objective.EDP)
        result = framework.search(RandomSearch(), sampling_budget=30, seed=0)
        if result.found_valid:
            assert result.best.objective is Objective.EDP

    def test_fixed_hardware_search_pins_pe_array(self, tiny_model, small_hardware):
        framework = CoOptimizationFramework(
            tiny_model, EDGE, fixed_hardware=small_hardware
        )
        result = framework.search(RandomSearch(), sampling_budget=30, seed=0)
        assert framework.space.hw_is_fixed
        if result.found_valid:
            assert result.best.design.hardware.pe_array == small_hardware.pe_array

    def test_random_search_finds_valid_edge_design(self, tiny_model):
        framework = CoOptimizationFramework(tiny_model, EDGE)
        result = framework.search(RandomSearch(), sampling_budget=200, seed=0)
        assert result.found_valid
        assert result.best.design.area.total <= EDGE.area_budget_um2
