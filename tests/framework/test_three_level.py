"""Tests for three-level cluster hierarchies (the clustering dimension).

The paper's encoding generalises beyond the default two-level (L2 + L1)
accelerator: "a 3-level hierarchy (i.e., several 2D arrays) can also be
described" (Sec. III-C).  These tests exercise the whole stack — cost model,
encoding, repair, search — with ``num_levels=3``.
"""

import pytest

from repro.arch.platform import EDGE
from repro.cost.maestro import CostModel
from repro.encoding.genome import GenomeSpace
from repro.encoding.repair import repair_genome
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.mapping.directives import LevelMapping
from repro.mapping.mapping import Mapping
from repro.mapping.tiles import buffer_requirements
from repro.optim.digamma import DiGamma
from repro.workloads.dims import DIMS
from repro.workloads.layer import Layer


@pytest.fixture
def three_level_mapping():
    outer = LevelMapping(
        spatial_size=2, parallel_dim="K", order=DIMS,
        tiles={"K": 16, "C": 64, "Y": 7, "X": 28, "R": 3, "S": 3},
    )
    middle = LevelMapping(
        spatial_size=4, parallel_dim="Y", order=("Y", "X", "K", "C", "R", "S"),
        tiles={"K": 8, "C": 16, "Y": 1, "X": 7, "R": 3, "S": 3},
    )
    inner = LevelMapping(
        spatial_size=8, parallel_dim="C", order=("C", "K", "R", "S", "Y", "X"),
        tiles={"K": 1, "C": 2, "Y": 1, "X": 1, "R": 3, "S": 3},
    )
    return Mapping(levels=(outer, middle, inner))


class TestCostModelThreeLevels:
    def test_evaluation_produces_consistent_report(self, conv_layer, three_level_mapping):
        report = CostModel().evaluate_layer(conv_layer, three_level_mapping, 64.0, 16.0)
        assert report.num_pes == 2 * 4 * 8
        assert report.latency >= report.compute_cycles
        assert report.dram_bytes >= sum(conv_layer.tensor_sizes().values())

    def test_buffer_requirements_have_three_levels(self, conv_layer, three_level_mapping):
        requirement = buffer_requirements(conv_layer, three_level_mapping)
        assert len(requirement.per_level) == 3
        # The shared (non-innermost) levels together form the L2 requirement.
        assert requirement.l2_bytes == sum(
            entry["total_bytes"] for entry in requirement.per_level[:-1]
        )

    def test_tile_extents_nest(self, conv_layer, three_level_mapping):
        extents = three_level_mapping.tile_extents(conv_layer)
        for outer_extent, inner_extent in zip(extents, extents[1:]):
            for dim in DIMS:
                assert inner_extent[dim] <= outer_extent[dim]


class TestEncodingThreeLevels:
    def test_random_genomes_and_repair(self, tiny_model, rng):
        space = GenomeSpace.from_model(tiny_model, max_pes=512, num_levels=3)
        for _ in range(20):
            genome = space.random_genome(rng)
            assert genome.num_levels == 3
            repair_genome(genome, space)
            assert genome.num_pes <= space.max_pes

    def test_vector_codec_three_levels(self, tiny_model, rng):
        from repro.encoding.vector_codec import VectorCodec

        space = GenomeSpace.from_model(tiny_model, max_pes=512, num_levels=3)
        codec = VectorCodec(space)
        assert codec.dimension == 3 * 14
        genome = codec.decode(codec.random_vector(rng))
        assert genome.num_levels == 3


class TestSearchThreeLevels:
    def test_digamma_finds_valid_three_level_design(self, tiny_model):
        framework = CoOptimizationFramework(tiny_model, EDGE, num_levels=3)
        result = framework.search(DiGamma(), sampling_budget=250, seed=0)
        assert result.found_valid
        design = result.best.design
        assert design.hardware.num_levels == 3
        assert design.area.total <= EDGE.area_budget_um2

    def test_three_level_search_engages_the_vector_path(self, tiny_model):
        # Depth is a parameter of the vector engine, not a fallback
        # trigger: a three-level search must price its populations on the
        # vector path (rows actually vectorized, zero depth fallbacks).
        framework = CoOptimizationFramework(tiny_model, EDGE, num_levels=3)
        result = framework.search(DiGamma(), sampling_budget=250, seed=0)
        assert result.found_valid
        stats = framework.evaluator.cost_model.vector_stats
        assert stats["rows_vectorized"] > 0
        assert stats["fallback_depth"] == 0

    def test_real_layer_three_level_vs_two_level(self):
        # Both hierarchies must produce sane designs for a real conv layer.
        layer = Layer.conv2d("conv", 64, 128, 28, 3)
        from repro.workloads.model import build_model

        model = build_model("single", [layer])
        for levels in (2, 3):
            framework = CoOptimizationFramework(model, EDGE, num_levels=levels)
            result = framework.search(DiGamma(), sampling_budget=200, seed=1)
            assert result.found_valid, f"{levels}-level search failed"
