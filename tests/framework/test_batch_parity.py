"""Parity of cached / batched / parallel evaluation with the plain path.

The ISSUE-level acceptance criterion: over a seeded sweep of random
repaired genomes on ``resnet18`` (edge and cloud), cached vs uncached and
batched vs sequential evaluation produce *bit-identical*
``EvaluationResult`` fitness / latency / energy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.platform import CLOUD, EDGE
from repro.encoding.repair import repair_genome
from repro.framework.evaluator import DesignEvaluator
from repro.framework.search import SearchTracker
from repro.workloads.registry import get_model

PLATFORMS = pytest.mark.parametrize("platform", [EDGE, CLOUD], ids=["edge", "cloud"])


def _seeded_genomes(evaluator, count, seed):
    space = evaluator.genome_space()
    rng = np.random.default_rng(seed)
    return space, [
        repair_genome(space.random_genome(rng), space) for _ in range(count)
    ]


@pytest.fixture(scope="module")
def resnet18():
    return get_model("resnet18")


class TestCachedVsUncached:
    @PLATFORMS
    def test_bit_identical_results(self, resnet18, platform):
        cached = DesignEvaluator(model=resnet18, platform=platform)
        uncached = DesignEvaluator(
            model=resnet18, platform=platform, use_cache=False
        )
        _, genomes = _seeded_genomes(cached, 30, seed=42)
        # Repeat a slice so the cache actually gets hits during the sweep.
        genomes = genomes + genomes[:10]
        for genome in genomes:
            a = cached.evaluate_genome(genome)
            b = uncached.evaluate_genome(genome)
            assert a.fitness == b.fitness
            assert a.latency == b.latency
            assert a.energy == b.energy
            assert a.valid == b.valid
            assert a.objective_value == b.objective_value
        assert cached.cache_stats.hits > 0
        assert uncached.cache_stats.requests == 0

    @PLATFORMS
    def test_reference_engine_agrees(self, resnet18, platform):
        fast = DesignEvaluator(model=resnet18, platform=platform)
        reference = DesignEvaluator(
            model=resnet18, platform=platform, engine="reference", use_cache=False
        )
        _, genomes = _seeded_genomes(fast, 15, seed=99)
        for genome in genomes:
            a = fast.evaluate_genome(genome)
            b = reference.evaluate_genome(genome)
            assert a.fitness == b.fitness
            assert a.latency == b.latency
            assert a.energy == b.energy


class TestBatchedVsSequential:
    @PLATFORMS
    def test_population_call_matches_loop(self, resnet18, platform):
        batched = DesignEvaluator(model=resnet18, platform=platform)
        sequential = DesignEvaluator(model=resnet18, platform=platform)
        _, genomes = _seeded_genomes(batched, 20, seed=7)
        batch_results = batched.evaluate_population(genomes)
        loop_results = [sequential.evaluate_genome(g) for g in genomes]
        assert len(batch_results) == len(loop_results)
        for a, b in zip(batch_results, loop_results):
            assert a.fitness == b.fitness
            assert a.latency == b.latency
            assert a.energy == b.energy

    @PLATFORMS
    def test_tracker_batch_matches_tracker_loop(self, resnet18, platform):
        make = lambda: SearchTracker(
            DesignEvaluator(model=resnet18, platform=platform),
            DesignEvaluator(model=resnet18, platform=platform).genome_space(),
            sampling_budget=25,
        )
        tracker_batch = make()
        tracker_loop = make()
        _, genomes = _seeded_genomes(tracker_batch.evaluator, 25, seed=3)
        fits_batch = tracker_batch.evaluate_batch(genomes)
        fits_loop = [tracker_loop.evaluate_genome(g) for g in genomes]
        assert fits_batch == fits_loop
        assert tracker_batch.best.fitness == tracker_loop.best.fitness
        assert tracker_batch.best.latency == tracker_loop.best.latency
        assert tracker_batch.best.energy == tracker_loop.best.energy
        assert tracker_batch.history == tracker_loop.history

    def test_batch_truncates_at_budget(self, resnet18):
        evaluator = DesignEvaluator(model=resnet18, platform=EDGE)
        tracker = SearchTracker(
            evaluator, evaluator.genome_space(), sampling_budget=5
        )
        _, genomes = _seeded_genomes(evaluator, 9, seed=1)
        fitnesses = tracker.evaluate_batch(genomes)
        assert len(fitnesses) == 5
        assert tracker.exhausted
        assert tracker.evaluate_batch(genomes) == []

    def test_vector_batch_matches_vector_loop(self, resnet18):
        make = lambda: SearchTracker(
            DesignEvaluator(model=resnet18, platform=EDGE),
            DesignEvaluator(model=resnet18, platform=EDGE).genome_space(),
            sampling_budget=16,
        )
        tracker_batch = make()
        tracker_loop = make()
        rng = np.random.default_rng(11)
        vectors = [
            tracker_batch.codec.random_vector(rng) for _ in range(16)
        ]
        fits_batch = tracker_batch.evaluate_vector_batch(vectors)
        fits_loop = [tracker_loop.evaluate_vector(v) for v in vectors]
        assert fits_batch == fits_loop


class TestWorkerPool:
    def test_process_pool_matches_sequential(self, resnet18):
        try:
            parallel = DesignEvaluator(model=resnet18, platform=EDGE, workers=2)
            sequential = DesignEvaluator(model=resnet18, platform=EDGE)
            _, genomes = _seeded_genomes(sequential, 8, seed=13)
            results_parallel = parallel.evaluate_population(genomes)
        except (OSError, PermissionError) as error:  # pragma: no cover
            pytest.skip(f"process pools unavailable here: {error}")
        finally:
            try:
                parallel.shutdown()
            except Exception:  # pragma: no cover
                pass
        results_sequential = sequential.evaluate_population(genomes)
        for a, b in zip(results_parallel, results_sequential):
            assert a.fitness == b.fitness
            assert a.latency == b.latency
            assert a.energy == b.energy

    def test_invalid_worker_count_rejected(self, resnet18):
        with pytest.raises(ValueError):
            DesignEvaluator(model=resnet18, platform=EDGE, workers=0)


class TestSearchTrajectoryParity:
    """End-to-end: a whole GA search is unchanged by caching/batching."""

    @pytest.mark.parametrize("optimizer_name", ["digamma", "stdga", "random"])
    def test_search_results_identical_with_and_without_cache(
        self, resnet18, optimizer_name
    ):
        from repro.framework.cooptimizer import CoOptimizationFramework
        from repro.optim.registry import get_optimizer

        outcomes = []
        for use_cache in (True, False):
            framework = CoOptimizationFramework(
                resnet18, EDGE, use_cache=use_cache
            )
            result = framework.search(
                get_optimizer(optimizer_name), sampling_budget=120, seed=5
            )
            outcomes.append(result)
        with_cache, without_cache = outcomes
        assert with_cache.best.fitness == without_cache.best.fitness
        assert with_cache.best.latency == without_cache.best.latency
        assert with_cache.best.energy == without_cache.best.energy
        assert with_cache.history == without_cache.history


class TestVectorEngineParity:
    """The vector population engine vs the scalar paths, end to end."""

    @PLATFORMS
    def test_vector_population_matches_fast_sequential(self, resnet18, platform):
        vector = DesignEvaluator(
            model=resnet18, platform=platform, engine="vector"
        )
        fast = DesignEvaluator(model=resnet18, platform=platform, engine="fast")
        _, genomes = _seeded_genomes(vector, 30, seed=21)
        genomes = genomes + genomes[:10]  # duplicates hit the design memo
        vector_results = vector.evaluate_population(genomes)
        fast_results = [fast.evaluate_genome(genome) for genome in genomes]
        for a, b in zip(vector_results, fast_results):
            assert a.fitness == b.fitness
            assert a.latency == b.latency
            assert a.energy == b.energy
            assert a.valid == b.valid
            assert a.violations == b.violations
            assert a.design.hardware == b.design.hardware
            assert a.design.mapping == b.design.mapping
        # Including the cache counters, duplicates counting as hits.
        assert vector.design_cache_stats.hits == fast.design_cache_stats.hits
        assert vector.design_cache_stats.misses == fast.design_cache_stats.misses
        assert vector.layer_cache_stats.size == fast.layer_cache_stats.size

    def test_malformed_orders_raise_like_the_scalar_path(self, resnet18):
        vector = DesignEvaluator(model=resnet18, platform=EDGE, engine="vector")
        fast = DesignEvaluator(model=resnet18, platform=EDGE, engine="fast")
        _, genomes = _seeded_genomes(vector, 3, seed=2)
        genomes[1].levels[0].order[0] = genomes[1].levels[0].order[1]
        with pytest.raises(ValueError):
            [fast.evaluate_genome(genome) for genome in genomes]
        with pytest.raises(ValueError):
            vector.evaluate_population(genomes)

    def test_rejects_unknown_engine(self, resnet18):
        with pytest.raises(ValueError):
            DesignEvaluator(model=resnet18, platform=EDGE, engine="warp")

    @pytest.mark.parametrize("optimizer_name", ["digamma", "de", "pso"])
    def test_search_trajectories_identical_across_engines(
        self, resnet18, optimizer_name
    ):
        from repro.framework.cooptimizer import CoOptimizationFramework
        from repro.optim.registry import get_optimizer

        outcomes = {}
        for engine in ("vector", "fast", "reference"):
            framework = CoOptimizationFramework(resnet18, EDGE, engine=engine)
            outcomes[engine] = framework.search(
                get_optimizer(optimizer_name), sampling_budget=120, seed=5
            )
        vector, fast, reference = (
            outcomes["vector"], outcomes["fast"], outcomes["reference"]
        )
        assert vector.best.fitness == fast.best.fitness == reference.best.fitness
        assert vector.best.latency == fast.best.latency == reference.best.latency
        assert vector.best.energy == fast.best.energy == reference.best.energy
        assert vector.history == fast.history == reference.history
