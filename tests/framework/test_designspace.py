"""Tests for the design-space cardinality estimates (paper Sec. II-C)."""

import pytest

from repro.framework.designspace import hw_space_size, mapping_space_size, total_space_size
from repro.workloads.layer import Layer


class TestMappingSpace:
    def test_grows_with_levels(self):
        layer = Layer.conv2d("c", 64, 64, 14, 3)
        assert mapping_space_size(layer, 2) > mapping_space_size(layer, 1)

    def test_paper_order_of_magnitude(self):
        # A mid-sized ResNet layer on a two-level hierarchy reaches the
        # O(10^24) scale quoted in Sec. II-C.
        layer = Layer.conv2d("c", 256, 256, 14, 3)
        assert mapping_space_size(layer, 2) > 1e20

    def test_single_level_formula(self):
        layer = Layer.conv2d("c", 2, 3, 4, 1)
        expected = 720 * 6 * (2 * 3 * 4 * 4 * 1 * 1)
        assert mapping_space_size(layer, 1) == pytest.approx(expected)

    def test_invalid_levels(self):
        layer = Layer.conv2d("c", 2, 3, 4, 1)
        with pytest.raises(ValueError):
            mapping_space_size(layer, 0)


class TestHwSpace:
    def test_paper_footnote_order_of_magnitude(self):
        # 128x128 PEs and 100 MB of buffer: O(10^12) HW configurations.
        assert 1e12 <= hw_space_size() <= 1e15

    def test_scales_with_buffer_granularity(self):
        coarse = hw_space_size(buffer_granularity=1 << 20)
        fine = hw_space_size(buffer_granularity=1 << 10)
        assert fine > coarse

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            hw_space_size(max_pe_width=0)


class TestTotalSpace:
    def test_total_is_product(self):
        layer = Layer.conv2d("c", 64, 64, 14, 3)
        assert total_space_size(layer) == pytest.approx(
            mapping_space_size(layer) * hw_space_size()
        )

    def test_co_opt_space_is_astronomical(self):
        layer = Layer.conv2d("c", 256, 256, 14, 3)
        assert total_space_size(layer) > 1e30
