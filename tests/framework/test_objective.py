"""Tests for optimization objectives."""

import pytest

from repro.arch.area import AreaBreakdown
from repro.cost.performance import ModelPerformance
from repro.framework.objective import Objective, objective_value
from tests.cost.test_performance import make_layer_performance


@pytest.fixture
def performance():
    return ModelPerformance(
        model_name="m",
        layers=(make_layer_performance("a", latency=100.0, energy=10.0),),
    )


@pytest.fixture
def area():
    return AreaBreakdown(pe_area=600.0, l1_area=100.0, l2_area=300.0)


class TestObjectiveValues:
    def test_latency(self, performance, area):
        assert objective_value(Objective.LATENCY, performance, area) == 100.0

    def test_energy(self, performance, area):
        assert objective_value(Objective.ENERGY, performance, area) == 10.0

    def test_edp(self, performance, area):
        assert objective_value(Objective.EDP, performance, area) == 1000.0

    def test_latency_area_product(self, performance, area):
        assert objective_value(
            Objective.LATENCY_AREA_PRODUCT, performance, area
        ) == pytest.approx(100.0 * 1000.0)


class TestLookup:
    def test_from_name(self):
        assert Objective.from_name("latency") is Objective.LATENCY
        assert Objective.from_name(" EDP ") is Objective.EDP
        assert Objective.from_name("latency_area_product") is Objective.LATENCY_AREA_PRODUCT

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            Objective.from_name("throughput")
