"""Tests for optimization objectives."""

import pytest

from repro.arch.area import AreaBreakdown
from repro.cost.performance import ModelPerformance
from repro.framework.objective import (
    Objective,
    ObjectiveSet,
    objective_value,
    objective_vector,
)
from tests.cost.test_performance import make_layer_performance


@pytest.fixture
def performance():
    return ModelPerformance(
        model_name="m",
        layers=(make_layer_performance("a", latency=100.0, energy=10.0),),
    )


@pytest.fixture
def area():
    return AreaBreakdown(pe_area=600.0, l1_area=100.0, l2_area=300.0)


class TestObjectiveValues:
    def test_latency(self, performance, area):
        assert objective_value(Objective.LATENCY, performance, area) == 100.0

    def test_energy(self, performance, area):
        assert objective_value(Objective.ENERGY, performance, area) == 10.0

    def test_edp(self, performance, area):
        assert objective_value(Objective.EDP, performance, area) == 1000.0

    def test_area(self, performance, area):
        assert objective_value(Objective.AREA, performance, area) == 1000.0

    def test_latency_area_product(self, performance, area):
        assert objective_value(
            Objective.LATENCY_AREA_PRODUCT, performance, area
        ) == pytest.approx(100.0 * 1000.0)


class TestLookup:
    def test_from_name(self):
        assert Objective.from_name("latency") is Objective.LATENCY
        assert Objective.from_name(" EDP ") is Objective.EDP
        assert Objective.from_name("area") is Objective.AREA
        assert Objective.from_name("latency_area_product") is Objective.LATENCY_AREA_PRODUCT

    def test_unknown_name_raises_value_error(self):
        # The whole module raises ValueError for unknown inputs; from_name
        # historically raised KeyError, which callers had to special-case.
        with pytest.raises(ValueError, match="throughput"):
            Objective.from_name("throughput")


class TestObjectiveVector:
    def test_vector_matches_scalar_values(self, performance, area):
        objectives = (Objective.LATENCY, Objective.ENERGY, Objective.AREA)
        vector = objective_vector(objectives, performance, area)
        assert vector == tuple(
            objective_value(objective, performance, area)
            for objective in objectives
        )

    def test_empty_vector(self, performance, area):
        assert objective_vector((), performance, area) == ()


class TestObjectiveSet:
    def test_from_names_comma_string(self):
        objectives = ObjectiveSet.from_names("latency, energy ,area")
        assert objectives.objectives == (
            Objective.LATENCY,
            Objective.ENERGY,
            Objective.AREA,
        )
        assert objectives.names == ("latency", "energy", "area")
        assert objectives.primary is Objective.LATENCY
        assert len(objectives) == 3
        assert list(objectives) == list(objectives.objectives)

    def test_from_names_iterable(self):
        objectives = ObjectiveSet.from_names(["edp", "area"])
        assert objectives.primary is Objective.EDP

    def test_values(self, performance, area):
        objectives = ObjectiveSet.from_names("latency,area")
        assert objectives.values(performance, area) == (100.0, 1000.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ObjectiveSet(())
        with pytest.raises(ValueError, match="at least one"):
            ObjectiveSet.from_names("")

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ObjectiveSet.from_names("latency,latency")

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown objective"):
            ObjectiveSet.from_names("latency,throughput")
