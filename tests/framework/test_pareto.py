"""Tests for the multi-objective primitives and the Pareto search plumbing."""

import numpy as np
import pytest

from repro.arch.platform import EDGE
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.evaluator import EvaluationResult
from repro.framework.objective import Objective, ObjectiveSet
from repro.framework.pareto import (
    ParetoArchive,
    ParetoResult,
    crowding_distances,
    dominates,
    fast_non_dominated_sort,
    fast_non_dominated_sort_reference,
    non_dominated_indices,
)
from repro.optim.digamma import DiGamma
from repro.optim.random_search import RandomSearch
from repro.workloads.registry import get_model


def make_result(vector, fitness=None, valid=True):
    """A minimal EvaluationResult stub carrying an objective vector."""
    return EvaluationResult(
        fitness=fitness if fitness is not None else -vector[0],
        valid=valid,
        objective=Objective.LATENCY,
        objective_value=vector[0],
        design=None,
        violations=(),
        objective_vector=tuple(vector),
    )


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 1.0))

    def test_tie_on_one_axis_still_dominates(self):
        assert dominates((1.0, 1.0), (1.0, 2.0))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_incomparable_vectors(self):
        assert not dominates((1.0, 3.0), (3.0, 1.0))
        assert not dominates((3.0, 1.0), (1.0, 3.0))


class TestNonDominatedSort:
    def test_non_dominated_indices(self):
        values = [(1.0, 3.0), (3.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
        assert non_dominated_indices(values) == [0, 1, 2]

    def test_fronts_partition_the_population(self):
        values = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (0.5, 4.0)]
        fronts = fast_non_dominated_sort(values)
        assert fronts[0] == [0, 3]
        assert fronts[1] == [1]
        assert fronts[2] == [2]
        assert sorted(i for front in fronts for i in front) == [0, 1, 2, 3]

    def test_empty_input(self):
        assert fast_non_dominated_sort([]) == []
        assert non_dominated_indices([]) == []


class TestVectorizedSortParity:
    """The NumPy sort must reproduce the pure-Python reference *including*
    the within-front index order: with duplicate objective vectors, front
    order decides which duplicate receives the infinite boundary crowding
    distance — and therefore selection, and therefore trajectories."""

    @pytest.mark.parametrize("objectives", [1, 2, 3])
    def test_randomized_fronts(self, objectives):
        rng = np.random.default_rng(objectives)
        for _ in range(120):
            count = int(rng.integers(0, 36))
            # Small integer grids maximise duplicates and dominance ties.
            values = (
                rng.integers(0, 4, size=(count, objectives))
                .astype(float)
                .tolist()
            )
            assert fast_non_dominated_sort(values) == (
                fast_non_dominated_sort_reference(values)
            )

    def test_continuous_fronts(self):
        rng = np.random.default_rng(99)
        for _ in range(40):
            count = int(rng.integers(1, 60))
            values = rng.random((count, 2)).tolist()
            assert fast_non_dominated_sort(values) == (
                fast_non_dominated_sort_reference(values)
            )

    def test_non_dominated_indices_match_pairwise_definition(self):
        rng = np.random.default_rng(7)
        for _ in range(60):
            count = int(rng.integers(0, 30))
            values = rng.integers(0, 3, size=(count, 2)).astype(float).tolist()
            want = [
                index
                for index, candidate in enumerate(values)
                if not any(
                    dominates(other, candidate)
                    for position, other in enumerate(values)
                    if position != index
                )
            ]
            assert non_dominated_indices(values) == want


class TestCrowding:
    def test_boundary_points_are_infinite(self):
        values = [(1.0, 4.0), (2.0, 3.0), (3.0, 2.0), (4.0, 1.0)]
        distances = crowding_distances(values)
        assert distances[0] == np.inf and distances[3] == np.inf
        assert np.isfinite(distances[1]) and np.isfinite(distances[2])

    def test_two_or_fewer_points_are_infinite(self):
        assert np.all(np.isinf(crowding_distances([(1.0, 2.0)])))
        assert np.all(np.isinf(crowding_distances([(1.0, 2.0), (2.0, 1.0)])))

    def test_degenerate_axis_does_not_divide_by_zero(self):
        distances = crowding_distances([(1.0, 5.0), (1.0, 3.0), (1.0, 1.0)])
        assert np.all(np.isfinite(distances) | np.isinf(distances))


class TestParetoArchive:
    def test_keeps_non_dominated_only(self):
        archive = ParetoArchive()
        assert archive.add(make_result((2.0, 2.0)))
        assert archive.add(make_result((1.0, 3.0)))
        assert not archive.add(make_result((3.0, 3.0)))  # dominated, rejected
        assert archive.front_values() == [(1.0, 3.0), (2.0, 2.0)]
        # A new point dominating existing entries evicts them.
        assert archive.add(make_result((1.0, 1.0)))
        assert archive.front_values() == [(1.0, 1.0)]

    def test_duplicates_collapse(self):
        archive = ParetoArchive()
        assert archive.add(make_result((1.0, 3.0)))
        assert not archive.add(make_result((1.0, 3.0)))
        assert len(archive) == 1

    def test_capacity_eviction_preserves_extremes(self):
        archive = ParetoArchive(capacity=3)
        points = [(1.0, 5.0), (2.0, 4.0), (3.0, 3.0), (4.0, 2.0), (5.0, 1.0)]
        for point in points:
            archive.add(make_result(point))
        assert len(archive) == 3
        values = archive.front_values()
        assert (1.0, 5.0) in values  # latency extreme
        assert (5.0, 1.0) in values  # area extreme

    def test_requires_vector(self):
        archive = ParetoArchive()
        with pytest.raises(ValueError, match="objective_vector"):
            archive.add(
                EvaluationResult(
                    fitness=-1.0,
                    valid=True,
                    objective=Objective.LATENCY,
                    objective_value=1.0,
                    design=None,
                    violations=(),
                )
            )


class TestParetoResultProperties:
    def make(self, vectors):
        return ParetoResult(
            optimizer_name="x",
            objectives=(Objective.LATENCY, Objective.AREA),
            front=tuple(make_result(v) for v in vectors),
            evaluations=10,
            sampling_budget=10,
            wall_time_seconds=1.0,
            batch_calls=2,
            batched_evaluations=10,
        )

    def test_extremes_and_invariants(self):
        result = self.make([(1.0, 4.0), (2.0, 2.0), (4.0, 1.0)])
        assert result.found_valid
        assert result.is_non_dominated()
        assert result.extreme_value(Objective.LATENCY) == 1.0
        assert result.extreme_value(Objective.AREA) == 1.0
        assert result.extreme_point(Objective.AREA).objective_vector == (4.0, 1.0)
        assert result.evals_per_second == 10.0
        assert "front of 3" in result.summary()

    def test_dominated_front_detected(self):
        result = self.make([(1.0, 1.0), (2.0, 2.0)])
        assert not result.is_non_dominated()

    def test_unsearched_objective_rejected(self):
        result = self.make([(1.0, 2.0)])
        with pytest.raises(ValueError, match="not among"):
            result.extreme_value(Objective.ENERGY)

    def test_empty_front(self):
        result = ParetoResult(
            optimizer_name="x",
            objectives=(Objective.LATENCY,),
            front=(),
            evaluations=0,
            sampling_budget=10,
            wall_time_seconds=0.0,
        )
        assert not result.found_valid
        assert result.extreme_value(Objective.LATENCY) == float("inf")
        assert result.extreme_point(Objective.LATENCY) is None
        assert "empty front" in result.summary()


class TestFrameworkParetoSearch:
    @pytest.fixture(scope="class")
    def framework(self):
        framework = CoOptimizationFramework(
            get_model("ncf"), EDGE, objectives="latency,energy,area"
        )
        yield framework
        framework.close()

    def test_primary_objective_drives_scalar_fitness(self, framework):
        assert framework.objective is Objective.LATENCY
        assert framework.evaluator.objectives == ObjectiveSet.from_names(
            "latency,energy,area"
        )

    def test_results_carry_objective_vectors(self, framework):
        space = framework.space
        rng = np.random.default_rng(0)
        result = framework.evaluator.evaluate_genome(space.random_genome(rng))
        assert result.objective_vector is not None
        assert len(result.objective_vector) == 3
        assert result.objective_vector[0] == result.objective_value

    def test_any_optimizer_yields_a_front(self, framework):
        result = framework.pareto_search(RandomSearch(), sampling_budget=60, seed=0)
        assert result.found_valid
        assert result.is_non_dominated()
        assert result.evaluations == 60

    def test_front_members_match_scalar_objective_values(self, framework):
        result = framework.pareto_search(DiGamma(), sampling_budget=80, seed=0)
        assert result.is_non_dominated()
        for entry in result.front:
            assert entry.valid
            assert entry.objective_vector == (
                entry.design.latency,
                entry.design.energy,
                entry.design.area.total,
            )

    def test_pareto_search_requires_objectives(self):
        framework = CoOptimizationFramework(get_model("ncf"), EDGE)
        try:
            with pytest.raises(ValueError, match="ObjectiveSet"):
                framework.pareto_search(RandomSearch(), sampling_budget=10)
        finally:
            framework.close()

    def test_scalar_path_is_bit_identical_with_objectives(self):
        """Requesting objective vectors must not change the scalar search."""
        plain = CoOptimizationFramework(get_model("ncf"), EDGE)
        vectored = CoOptimizationFramework(
            get_model("ncf"), EDGE, objectives="latency,energy"
        )
        try:
            result_plain = plain.search(DiGamma(), sampling_budget=80, seed=3)
            result_vectored = vectored.search(DiGamma(), sampling_budget=80, seed=3)
            assert result_plain.best.fitness == result_vectored.best.fitness
            assert result_plain.history == result_vectored.history
        finally:
            plain.close()
            vectored.close()
