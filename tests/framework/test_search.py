"""Tests for the search tracker and search result containers."""

import numpy as np
import pytest

from repro.arch.platform import EDGE
from repro.framework.evaluator import DesignEvaluator
from repro.framework.search import BudgetExhausted, SearchResult, SearchTracker


@pytest.fixture
def tracker(tiny_model):
    evaluator = DesignEvaluator(model=tiny_model, platform=EDGE)
    space = evaluator.genome_space()
    return SearchTracker(evaluator=evaluator, space=space, sampling_budget=10)


class TestBudget:
    def test_initial_state(self, tracker):
        assert tracker.remaining == 10
        assert not tracker.exhausted
        assert tracker.best is None

    def test_budget_decrements(self, tracker, rng):
        tracker.evaluate_genome(tracker.space.random_genome(rng))
        assert tracker.evaluations == 1
        assert tracker.remaining == 9

    def test_budget_exhaustion_raises(self, tracker, rng):
        for _ in range(10):
            tracker.evaluate_genome(tracker.space.random_genome(rng))
        assert tracker.exhausted
        with pytest.raises(BudgetExhausted):
            tracker.evaluate_genome(tracker.space.random_genome(rng))
        # The failed call must not be charged.
        assert tracker.evaluations == 10

    def test_vector_evaluations_charge_budget_too(self, tracker, rng):
        tracker.evaluate_vector(tracker.codec.random_vector(rng))
        assert tracker.evaluations == 1

    def test_invalid_budget_rejected(self, tiny_model):
        evaluator = DesignEvaluator(model=tiny_model, platform=EDGE)
        with pytest.raises(ValueError):
            SearchTracker(evaluator, evaluator.genome_space(), sampling_budget=0)


class TestBestTracking:
    def test_best_improves_monotonically(self, tracker, rng):
        best_fitness = -np.inf
        for _ in range(10):
            tracker.evaluate_genome(tracker.space.random_genome(rng))
            assert tracker.best is not None
            assert tracker.best.fitness >= best_fitness
            best_fitness = tracker.best.fitness

    def test_history_records_improvements(self, tracker, rng):
        for _ in range(10):
            tracker.evaluate_genome(tracker.space.random_genome(rng))
        assert tracker.history
        indices = [index for index, _ in tracker.history]
        fitnesses = [fitness for _, fitness in tracker.history]
        assert indices == sorted(indices)
        assert fitnesses == sorted(fitnesses)
        assert tracker.history[-1][1] == tracker.best.fitness

    def test_genomes_are_repaired_before_evaluation(self, tracker, rng):
        genome = tracker.space.random_genome(rng)
        genome.levels[0].tiles["K"] = 10**9
        genome.levels[0].spatial_size = 10**9
        fitness = tracker.evaluate_genome(genome)
        assert np.isfinite(fitness)


class TestSearchResult:
    def test_no_valid_best(self):
        result = SearchResult(
            optimizer_name="x", best=None, evaluations=5, sampling_budget=5,
            wall_time_seconds=0.1,
        )
        assert not result.found_valid
        assert result.best_latency == float("inf")
        assert result.best_latency_area_product == float("inf")
        assert "no valid design" in result.summary()

    def test_evals_per_second(self):
        result = SearchResult(
            optimizer_name="x", best=None, evaluations=100, sampling_budget=100,
            wall_time_seconds=2.0,
        )
        assert result.evals_per_second == 50.0
        assert "evals/s" in result.summary()

    def test_evals_per_second_zero_wall_time(self):
        # A search finishing in under one timer tick (tiny --smoke budgets)
        # must report 0 evals/s instead of raising ZeroDivisionError, and
        # the summary line must still render.
        for wall_time in (0.0, -0.0, 5e-324 - 5e-324):
            result = SearchResult(
                optimizer_name="x", best=None, evaluations=5, sampling_budget=5,
                wall_time_seconds=wall_time,
            )
            assert result.evals_per_second == 0.0
            assert "0 evals/s" in result.summary()

    def test_valid_best_summary(self, tracker, rng):
        for _ in range(10):
            tracker.evaluate_genome(tracker.space.random_genome(rng))
        result = SearchResult(
            optimizer_name="Random",
            best=tracker.best,
            evaluations=tracker.evaluations,
            sampling_budget=tracker.sampling_budget,
            wall_time_seconds=0.5,
            history=tuple(tracker.history),
        )
        if result.found_valid:
            assert result.best_latency > 0
            assert "latency" in result.summary()
            assert result.best_objective_value == result.best.objective_value
