"""The gene-matrix evaluation path and cross-generation delta evaluation.

Contracts pinned here:

* ``DesignEvaluator.evaluate_matrix`` is bit-identical to evaluating the
  same (repaired) genomes one by one, under every engine selector and with
  delta evaluation on or off;
* members and (member, layer) rows unchanged since the previous generation
  are detected and reused, with the counters surfacing in
  ``CostModel.vector_stats``;
* the tracker's matrix views share the genome views' budget semantics; and
* results carry lazily materialized genomes/mappings that match the
  eagerly built ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.platform import CLOUD, EDGE
from repro.encoding.genome_matrix import GenomeMatrix, repaired_matrix
from repro.encoding.repair import repaired_copy
from repro.framework.evaluator import DesignEvaluator, RowGenomeResult
from repro.framework.search import SearchTracker
from repro.workloads.registry import get_model

PLATFORMS = pytest.mark.parametrize("platform", [EDGE, CLOUD], ids=["edge", "cloud"])


@pytest.fixture(scope="module")
def resnet18():
    return get_model("resnet18")


@pytest.fixture(scope="module")
def ncf():
    return get_model("ncf")


def _repaired_population(evaluator, count, seed, num_levels=2):
    space = evaluator.genome_space(num_levels=num_levels)
    rng = np.random.default_rng(seed)
    genomes = space.random_population(count, rng)
    matrix = repaired_matrix(GenomeMatrix.from_genomes(genomes), space)
    return space, genomes, matrix


def _assert_results_identical(a, b):
    assert a.fitness == b.fitness
    assert a.valid == b.valid
    assert a.objective_value == b.objective_value
    assert a.latency == b.latency
    assert a.energy == b.energy
    assert a.violations == b.violations
    assert a.objective_vector == b.objective_vector


class TestMatrixMatchesGenomePath:
    @PLATFORMS
    def test_bit_identical_to_genome_loop(self, resnet18, platform):
        matrix_evaluator = DesignEvaluator(model=resnet18, platform=platform)
        genome_evaluator = DesignEvaluator(model=resnet18, platform=platform)
        space, genomes, matrix = _repaired_population(matrix_evaluator, 25, seed=11)
        matrix_results = matrix_evaluator.evaluate_matrix(matrix)
        for result, genome in zip(matrix_results, genomes):
            want = genome_evaluator.evaluate_genome(repaired_copy(genome, space))
            _assert_results_identical(result, want)

    @PLATFORMS
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_scalar_engines_take_the_genome_fallback(
        self, resnet18, platform, engine
    ):
        scalar = DesignEvaluator(model=resnet18, platform=platform, engine=engine)
        vector = DesignEvaluator(model=resnet18, platform=platform)
        _, _, matrix = _repaired_population(vector, 10, seed=13)
        for a, b in zip(
            scalar.evaluate_matrix(matrix), vector.evaluate_matrix(matrix)
        ):
            _assert_results_identical(a, b)

    def test_three_level_hierarchies_fall_back_to_genomes(self, ncf):
        evaluator = DesignEvaluator(model=ncf, platform=EDGE)
        reference = DesignEvaluator(model=ncf, platform=EDGE)
        space, genomes, matrix = _repaired_population(
            evaluator, 8, seed=17, num_levels=3
        )
        for result, genome in zip(
            evaluator.evaluate_matrix(matrix), genomes
        ):
            want = reference.evaluate_genome(repaired_copy(genome, space))
            _assert_results_identical(result, want)

    def test_fill_buffer_allocation_matches(self, ncf):
        filled = DesignEvaluator(model=ncf, platform=EDGE, buffer_allocation="fill")
        want = DesignEvaluator(model=ncf, platform=EDGE, buffer_allocation="fill")
        space, genomes, matrix = _repaired_population(filled, 10, seed=19)
        for result, genome in zip(filled.evaluate_matrix(matrix), genomes):
            _assert_results_identical(
                result, want.evaluate_genome(repaired_copy(genome, space))
            )

    def test_objective_vectors_ride_along(self, ncf):
        from repro.framework.objective import ObjectiveSet

        objectives = ObjectiveSet.from_names("latency,energy,area")
        vector = DesignEvaluator(model=ncf, platform=EDGE, objectives=objectives)
        scalar = DesignEvaluator(model=ncf, platform=EDGE, objectives=objectives)
        space, genomes, matrix = _repaired_population(vector, 12, seed=23)
        for result, genome in zip(vector.evaluate_matrix(matrix), genomes):
            want = scalar.evaluate_genome(repaired_copy(genome, space))
            assert result.objective_vector == want.objective_vector

    def test_invalid_orders_are_rejected(self, ncf):
        evaluator = DesignEvaluator(model=ncf, platform=EDGE)
        _, _, matrix = _repaired_population(evaluator, 9, seed=29)
        matrix.data[4, 2:8] = [0, 0, 2, 3, 4, 5]
        with pytest.raises(ValueError, match="permutation"):
            evaluator.evaluate_matrix(matrix)


class TestLazyResults:
    def test_genome_materializes_from_the_row(self, ncf):
        evaluator = DesignEvaluator(model=ncf, platform=EDGE)
        space, genomes, matrix = _repaired_population(evaluator, 6, seed=31)
        results = evaluator.evaluate_matrix(matrix)
        for result, genome in zip(results, genomes):
            assert isinstance(result, RowGenomeResult)
            want = repaired_copy(genome, space)
            assert result.genome.cache_key() == want.cache_key()
            assert result.design.mapping.cache_key() == want.cache_key()


class TestDeltaEvaluation:
    def test_results_identical_with_delta_on_and_off(self, resnet18):
        on = DesignEvaluator(model=resnet18, platform=EDGE)
        off = DesignEvaluator(model=resnet18, platform=EDGE, use_delta=False)
        space, genomes, matrix = _repaired_population(on, 20, seed=37)
        generations = [matrix]
        # Second generation: survivors + lightly mutated children.
        children = []
        for genome in genomes:
            child = genome.copy()
            child.levels[1].tiles["R"] = max(1, child.levels[1].tiles["R"] - 1)
            children.append(child)
        second = repaired_matrix(
            GenomeMatrix.from_genomes(genomes[:7] + children[7:]), space
        )
        generations.append(second)
        for generation in generations:
            for a, b in zip(
                on.evaluate_matrix(generation), off.evaluate_matrix(generation)
            ):
                _assert_results_identical(a, b)

    def test_member_and_row_reuse_counters(self, resnet18):
        evaluator = DesignEvaluator(model=resnet18, platform=EDGE)
        space, genomes, matrix = _repaired_population(evaluator, 15, seed=41)
        evaluator.evaluate_matrix(matrix)
        first = dict(evaluator.cost_model.vector_stats)
        assert first["delta_generations"] == 1
        assert first["delta_member_requests"] == 15
        assert first["delta_members_reused"] == 0

        survivors = genomes[:5]
        children = []
        for genome in genomes[5:]:
            child = genome.copy()
            child.levels[1].tiles["S"] = max(1, child.levels[1].tiles["S"] - 1)
            children.append(child)
        second = repaired_matrix(
            GenomeMatrix.from_genomes(survivors + children), space
        )
        evaluator.evaluate_matrix(second)
        stats = evaluator.cost_model.vector_stats
        assert stats["delta_generations"] == 2
        assert stats["delta_members_reused"] >= 5  # elitist survivors
        assert stats["delta_rows_reused"] > 0  # unchanged (member, layer) rows
        assert stats["delta_row_requests"] > 0

    def test_disabled_delta_keeps_counters_at_zero(self, ncf):
        evaluator = DesignEvaluator(model=ncf, platform=EDGE, use_delta=False)
        _, _, matrix = _repaired_population(evaluator, 10, seed=43)
        evaluator.evaluate_matrix(matrix)
        evaluator.evaluate_matrix(matrix)
        stats = evaluator.cost_model.vector_stats
        assert stats["delta_generations"] == 0
        assert stats["delta_member_requests"] == 0
        assert stats["delta_members_reused"] == 0

    def test_cross_model_cache_adoption_cannot_alias(self, ncf):
        # Fingerprint identity comes from the cache's own token table, so
        # an evaluator adopting a warm cache that has seen *other* models'
        # layers numbers its statics consistently with the donor and can
        # never reuse another layer shape's rows.
        from repro.cost.maestro import CostModel
        from repro.encoding.genome import GenomeSpace

        other = get_model("dlrm")

        def rows(model, seed):
            space = GenomeSpace.from_model(model, max_pes=1024)
            rng = np.random.default_rng(seed)
            return repaired_matrix(
                GenomeMatrix.from_genomes(space.random_population(10, rng)),
                space,
            ).data

        donor = CostModel()
        donor.evaluate_model_matrix(ncf, rows(ncf, 73), 64.0, 16.0)
        donor.evaluate_model_matrix(other, rows(other, 73), 64.0, 16.0)
        adopter = CostModel()
        adopter.adopt_cache(donor.layer_cache)
        adopted = adopter.evaluate_model_matrix(other, rows(other, 73), 64.0, 16.0)
        fresh = CostModel().evaluate_model_matrix(other, rows(other, 73), 64.0, 16.0)
        for a, b in zip(adopted, fresh):
            assert a.latency == b.latency
            assert a.energy == b.energy

    def test_fingerprints_include_the_bandwidths(self, ncf):
        # The row fingerprint must carry the full composite-key context:
        # the same rows priced under different bandwidths may never alias
        # in the layer LRU or the delta table.
        from repro.cost.maestro import CostModel

        evaluator = DesignEvaluator(model=ncf, platform=EDGE)
        _, _, matrix = _repaired_population(evaluator, 10, seed=71)
        shared = CostModel()
        shared.evaluate_model_matrix(ncf, matrix.data, 100.0, 50.0, use_delta=True)
        reused = shared.evaluate_model_matrix(ncf, matrix.data, 1.0, 0.5, use_delta=True)
        fresh = CostModel().evaluate_model_matrix(ncf, matrix.data, 1.0, 0.5)
        for a, b in zip(reused, fresh):
            assert a.latency == b.latency
            assert a.energy == b.energy

    def test_cache_clear_drops_the_delta_tables(self, ncf):
        evaluator = DesignEvaluator(model=ncf, platform=EDGE)
        _, _, matrix = _repaired_population(evaluator, 10, seed=47)
        evaluator.evaluate_matrix(matrix)
        evaluator.cache_clear()
        stats = evaluator.cost_model.vector_stats
        assert stats["delta_members_reused"] == 0
        assert stats["delta_generations"] == 0
        evaluator.evaluate_matrix(matrix)
        assert evaluator.cost_model.vector_stats["delta_members_reused"] == 0


class TestTrackerMatrixViews:
    def test_matches_the_genome_batch_view(self, resnet18):
        def make():
            evaluator = DesignEvaluator(model=resnet18, platform=EDGE)
            return SearchTracker(
                evaluator, evaluator.genome_space(), sampling_budget=30
            )

        matrix_tracker = make()
        genome_tracker = make()
        rng = np.random.default_rng(53)
        genomes = matrix_tracker.space.random_population(30, rng)
        fits_matrix = matrix_tracker.evaluate_matrix(
            GenomeMatrix.from_genomes(genomes)
        )
        fits_genomes = genome_tracker.evaluate_batch(genomes)
        assert fits_matrix == fits_genomes
        assert matrix_tracker.best.fitness == genome_tracker.best.fitness
        assert matrix_tracker.history == genome_tracker.history
        assert matrix_tracker.batch_calls == genome_tracker.batch_calls
        assert (
            matrix_tracker.batched_evaluations
            == genome_tracker.batched_evaluations
        )

    def test_truncates_at_the_budget(self, ncf):
        evaluator = DesignEvaluator(model=ncf, platform=EDGE)
        tracker = SearchTracker(
            evaluator, evaluator.genome_space(), sampling_budget=5
        )
        rng = np.random.default_rng(59)
        genomes = tracker.space.random_population(9, rng)
        fitnesses = tracker.evaluate_matrix(GenomeMatrix.from_genomes(genomes))
        assert len(fitnesses) == 5
        assert tracker.exhausted
        assert tracker.evaluate_matrix(GenomeMatrix.from_genomes(genomes)) == []

    def test_vector_batch_rides_the_matrix_path(self, ncf):
        def make(budget=12):
            evaluator = DesignEvaluator(model=ncf, platform=EDGE)
            return SearchTracker(
                evaluator, evaluator.genome_space(), sampling_budget=budget
            )

        tracker_batch = make()
        tracker_loop = make()
        rng = np.random.default_rng(61)
        vectors = [tracker_batch.codec.random_vector(rng) for _ in range(12)]
        fits_batch = tracker_batch.evaluate_vector_batch(vectors)
        fits_loop = [tracker_loop.evaluate_vector(vector) for vector in vectors]
        assert fits_batch == fits_loop
        assert tracker_batch.history == tracker_loop.history


class TestWorkerPoolMatrixPath:
    def test_worker_chunks_match_in_process(self, ncf):
        pooled = DesignEvaluator(model=ncf, platform=EDGE, workers=2)
        local = DesignEvaluator(model=ncf, platform=EDGE)
        try:
            _, _, matrix = _repaired_population(pooled, 9, seed=67)
            pooled_results = pooled.evaluate_matrix(matrix)
            local_results = local.evaluate_matrix(matrix)
            for a, b in zip(pooled_results, local_results):
                _assert_results_identical(a, b)
        finally:
            pooled.shutdown()
