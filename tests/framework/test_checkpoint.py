"""Tests for crash-safe mid-search checkpointing and bit-identical resume."""

from __future__ import annotations

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.arch.platform import EDGE
from repro.framework.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointCorruption,
    CheckpointSession,
    CheckpointStore,
    SearchCheckpoint,
    checkpoint_slug,
    restore_rng_state,
    rng_state_to_jsonable,
)
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.search import SearchInterrupted
from repro.optim.base import reject_resume, resume_state
from repro.optim.registry import get_optimizer
from repro.serialization import evaluation_result_to_dict

#: Enough budget for several generation boundaries on every optimizer
#: (stdGA's default population of 40 is the widest per-generation spend).
BUDGET = 200

#: The single-objective optimizers that participate in the checkpoint
#: protocol (NSGA-II is exercised separately through pareto_search).
RESUMABLE = ("digamma", "stdga", "pso", "de", "random")


class InterruptAfter:
    """Interrupt check that turns truthy after N generation boundaries."""

    def __init__(self, boundaries: int):
        self.boundaries = boundaries
        self.calls = 0

    def __call__(self) -> bool:
        self.calls += 1
        return self.calls > self.boundaries


def make_checkpoint(generation: int = 3) -> SearchCheckpoint:
    rng = np.random.default_rng(0)
    return SearchCheckpoint(
        generation=generation,
        rng_state=rng_state_to_jsonable(rng),
        optimizer_state={"kind": "random"},
        tracker_state={
            "evaluations": 40,
            "batch_calls": 2,
            "batched_evaluations": 40,
            "history": [[1, 5.0], [17, 4.0]],
            "best": None,
        },
    )


def run_search(tiny_model, optimizer_name, *, checkpoint_dir=None,
               interrupt_check=None, checkpoint_every=1, seed=3):
    framework = CoOptimizationFramework(tiny_model, EDGE)
    try:
        return framework.search(
            get_optimizer(optimizer_name),
            sampling_budget=BUDGET,
            seed=seed,
            interrupt_check=interrupt_check,
            checkpoint_dir=None if checkpoint_dir is None else str(checkpoint_dir),
            checkpoint_every=checkpoint_every,
        )
    finally:
        framework.close()


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path, "model/edge/latency/b120/s3")
        original = make_checkpoint()
        store.save(original)
        assert store.path.exists()
        loaded = store.load()
        assert loaded == original

    def test_missing_checkpoint_loads_as_none(self, tmp_path):
        assert CheckpointStore(tmp_path, "nothing-here").load() is None

    def test_clear_removes_the_file(self, tmp_path):
        store = CheckpointStore(tmp_path, "key")
        store.save(make_checkpoint())
        store.clear()
        assert not store.path.exists()
        store.clear()  # idempotent

    def test_save_replaces_previous_checkpoint(self, tmp_path):
        store = CheckpointStore(tmp_path, "key")
        store.save(make_checkpoint(generation=1))
        store.save(make_checkpoint(generation=2))
        assert store.load().generation == 2

    @pytest.mark.parametrize(
        "damage",
        [
            lambda raw: raw[: len(raw) - 30],  # torn tail
            lambda raw: raw[:-12] + b"x" + raw[-11:],  # flipped payload byte
            lambda raw: b"not json at all\n",  # garbage
            lambda raw: b"",  # empty file
        ],
    )
    def test_damaged_files_quarantine_and_load_as_none(self, tmp_path, damage):
        store = CheckpointStore(tmp_path, "key")
        store.save(make_checkpoint())
        store.path.write_bytes(damage(store.path.read_bytes()))
        with pytest.warns(CheckpointCorruption):
            assert store.load() is None
        assert not store.path.exists()
        assert store.corrupt_path.exists()

    def test_unknown_version_quarantines(self, tmp_path):
        store = CheckpointStore(tmp_path, "key")
        store.save(make_checkpoint())
        head, _, payload = store.path.read_bytes().partition(b"\n")
        header = json.loads(head)
        header["version"] = CHECKPOINT_VERSION + 1
        store.path.write_bytes(
            json.dumps(header, sort_keys=True).encode() + b"\n" + payload
        )
        with pytest.warns(CheckpointCorruption):
            assert store.load() is None
        assert store.corrupt_path.exists()

    def test_slug_is_filesystem_safe_and_collision_resistant(self):
        a = checkpoint_slug("ncf/edge/latency/DiGamma/b120/s3")
        b = checkpoint_slug("ncf/edge/latency/DiGamma/b120~s3")
        assert "/" not in a and "/" not in b
        assert a != b
        # Long labels truncate readably but stay distinct via the digest.
        long_a = checkpoint_slug("x" * 300 + "a")
        long_b = checkpoint_slug("x" * 300 + "b")
        assert long_a != long_b


class TestRngRoundTrip:
    def test_restored_generator_continues_the_stream(self):
        rng = np.random.default_rng(42)
        rng.random(17)
        state = rng_state_to_jsonable(rng)
        expected = rng.random(8)
        # JSON round trip (the state crosses a file in production).
        state = json.loads(json.dumps(state))
        fresh = np.random.default_rng(0)
        restore_rng_state(fresh, state)
        np.testing.assert_array_equal(fresh.random(8), expected)


class TestCheckpointSession:
    def test_cadence(self, tmp_path):
        store = CheckpointStore(tmp_path, "key")
        session = CheckpointSession(store, np.random.default_rng(0), 3)
        assert [g for g in range(1, 10) if session.due(g)] == [3, 6, 9]

    def test_checkpoint_every_must_be_positive(self, tmp_path):
        store = CheckpointStore(tmp_path, "key")
        with pytest.raises(ValueError, match="checkpoint_every"):
            CheckpointSession(store, np.random.default_rng(0), 0)

    def test_closed_session_saves_nothing(self, tmp_path):
        store = CheckpointStore(tmp_path, "key")
        session = CheckpointSession(store, np.random.default_rng(0))
        session.close()
        tracker = SimpleNamespace(
            generation=1, evaluations=0, batch_calls=0, batched_evaluations=0,
            history=[], best=None, archive=None,
        )
        session.save(tracker, {"kind": "random"})
        assert session.saves == 0
        assert not store.path.exists()


class TestResumeStateGuards:
    def test_resume_state_is_consumed_once(self):
        tracker = SimpleNamespace(resume_state={"kind": "random"})
        assert resume_state(tracker, "random") == {"kind": "random"}
        assert tracker.resume_state is None
        assert resume_state(tracker, "random") is None

    def test_kind_mismatch_fails_loudly(self):
        tracker = SimpleNamespace(resume_state={"kind": "de"})
        with pytest.raises(ValueError, match="'de' loop state"):
            resume_state(tracker, "pso")

    def test_reject_resume_refuses_restored_state(self):
        with pytest.raises(ValueError, match="cannot resume"):
            reject_resume(SimpleNamespace(resume_state={"kind": "digamma-matrix"}))
        reject_resume(SimpleNamespace(resume_state=None))  # fresh runs pass


class TestBitIdenticalResume:
    @pytest.mark.parametrize("name", RESUMABLE)
    def test_interrupt_and_resume_matches_uninterrupted_run(
        self, tmp_path, tiny_model, name
    ):
        control = run_search(tiny_model, name)
        with pytest.raises(SearchInterrupted):
            run_search(
                tiny_model, name,
                checkpoint_dir=tmp_path,
                interrupt_check=InterruptAfter(2),
            )
        files = list(tmp_path.glob("*.ckpt.json"))
        assert len(files) == 1
        resumed = run_search(tiny_model, name, checkpoint_dir=tmp_path)
        assert resumed.history == control.history
        assert resumed.evaluations == control.evaluations
        assert resumed.best.fitness == control.best.fitness
        # Canonical content comparison: a restored best materializes lazy
        # design wrappers, so compare the serialized payloads, not classes.
        assert evaluation_result_to_dict(resumed.best) == evaluation_result_to_dict(
            control.best
        )
        # A completed search clears its checkpoint.
        assert list(tmp_path.glob("*.ckpt.json")) == []

    def test_resume_from_every_boundary_is_bit_identical(
        self, tmp_path, tiny_model
    ):
        control = run_search(tiny_model, "digamma")
        for boundary in (1, 2, 3, 4):
            ckpt_dir = tmp_path / f"boundary-{boundary}"
            with pytest.raises(SearchInterrupted):
                run_search(
                    tiny_model, "digamma",
                    checkpoint_dir=ckpt_dir,
                    interrupt_check=InterruptAfter(boundary),
                )
            resumed = run_search(tiny_model, "digamma", checkpoint_dir=ckpt_dir)
            assert resumed.history == control.history, boundary
            assert resumed.best.fitness == control.best.fitness, boundary

    def test_sparser_cadence_still_resumes_bit_identically(
        self, tmp_path, tiny_model
    ):
        control = run_search(tiny_model, "stdga")
        with pytest.raises(SearchInterrupted):
            run_search(
                tiny_model, "stdga",
                checkpoint_dir=tmp_path,
                interrupt_check=InterruptAfter(3),
                checkpoint_every=2,
            )
        resumed = run_search(
            tiny_model, "stdga", checkpoint_dir=tmp_path, checkpoint_every=2
        )
        assert resumed.history == control.history
        assert resumed.best.fitness == control.best.fitness

    def test_corrupt_checkpoint_restarts_fresh_never_alters_results(
        self, tmp_path, tiny_model
    ):
        control = run_search(tiny_model, "de")
        with pytest.raises(SearchInterrupted):
            run_search(
                tiny_model, "de",
                checkpoint_dir=tmp_path,
                interrupt_check=InterruptAfter(2),
            )
        (checkpoint,) = tmp_path.glob("*.ckpt.json")
        raw = checkpoint.read_bytes()
        checkpoint.write_bytes(raw[: len(raw) // 2])
        with pytest.warns(CheckpointCorruption):
            resumed = run_search(tiny_model, "de", checkpoint_dir=tmp_path)
        assert resumed.history == control.history
        assert resumed.best.fitness == control.best.fitness
        assert list(tmp_path.glob("*.ckpt.json.corrupt"))

    def test_uninterrupted_checkpointed_run_matches_plain_run(
        self, tmp_path, tiny_model
    ):
        control = run_search(tiny_model, "pso")
        checkpointed = run_search(tiny_model, "pso", checkpoint_dir=tmp_path)
        assert checkpointed.history == control.history
        assert checkpointed.best.fitness == control.best.fitness
        assert list(tmp_path.glob("*.ckpt.json")) == []

    def test_non_checkpoint_optimizer_writes_no_checkpoint(
        self, tmp_path, tiny_model
    ):
        result = run_search(tiny_model, "cma", checkpoint_dir=tmp_path)
        assert result.evaluations == BUDGET
        assert list(tmp_path.iterdir()) == []


class TestParetoResume:
    def run_pareto(self, tiny_model, *, checkpoint_dir=None, interrupt_check=None):
        framework = CoOptimizationFramework(
            tiny_model, EDGE, objectives="latency,energy"
        )
        try:
            return framework.pareto_search(
                get_optimizer("nsga2"),
                sampling_budget=BUDGET,
                seed=3,
                interrupt_check=interrupt_check,
                checkpoint_dir=(
                    None if checkpoint_dir is None else str(checkpoint_dir)
                ),
            )
        finally:
            framework.close()

    def test_interrupted_pareto_search_resumes_bit_identically(
        self, tmp_path, tiny_model
    ):
        control = self.run_pareto(tiny_model)
        with pytest.raises(SearchInterrupted):
            self.run_pareto(
                tiny_model,
                checkpoint_dir=tmp_path,
                interrupt_check=InterruptAfter(2),
            )
        assert list(tmp_path.glob("*.ckpt.json"))
        resumed = self.run_pareto(tiny_model, checkpoint_dir=tmp_path)
        assert resumed.evaluations == control.evaluations
        control_front = [point.objective_vector for point in control.front]
        resumed_front = [point.objective_vector for point in resumed.front]
        assert resumed_front == control_front
        assert list(tmp_path.glob("*.ckpt.json")) == []
