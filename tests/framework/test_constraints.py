"""Tests for the constraint checker."""

import pytest

from repro.arch.area import AreaBreakdown
from repro.arch.hardware import HardwareConfig
from repro.framework.constraints import ConstraintChecker


@pytest.fixture
def hardware():
    return HardwareConfig(pe_array=(4, 4), l1_size=256, l2_size=4096)


class TestAreaBudget:
    def test_within_budget_is_valid(self, hardware):
        checker = ConstraintChecker(area_budget_um2=1e6)
        result = checker.check(hardware, AreaBreakdown(1e5, 1e4, 1e4))
        assert result.valid
        assert bool(result) is True
        assert result.severity == 1.0
        assert result.violations == ()

    def test_over_budget_is_invalid_with_severity(self, hardware):
        checker = ConstraintChecker(area_budget_um2=1e5)
        result = checker.check(hardware, AreaBreakdown(2e5, 0.0, 0.0))
        assert not result.valid
        assert result.severity == pytest.approx(2.0)
        assert "area" in result.violations[0]

    def test_exactly_at_budget_is_valid(self, hardware):
        checker = ConstraintChecker(area_budget_um2=1e5)
        result = checker.check(hardware, AreaBreakdown(1e5, 0.0, 0.0))
        assert result.valid

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            ConstraintChecker(area_budget_um2=0.0)


class TestFixedHardware:
    def test_mapping_must_fit_fixed_buffers(self, hardware):
        checker = ConstraintChecker(area_budget_um2=1e9, fixed_hardware=hardware)
        ok = checker.check(hardware, AreaBreakdown(1.0, 1.0, 1.0),
                           l1_requirement_bytes=128, l2_requirement_bytes=1024)
        assert ok.valid
        too_big_l1 = checker.check(hardware, AreaBreakdown(1.0, 1.0, 1.0),
                                   l1_requirement_bytes=1024, l2_requirement_bytes=10)
        assert not too_big_l1.valid
        assert "L1" in too_big_l1.violations[0]
        too_big_l2 = checker.check(hardware, AreaBreakdown(1.0, 1.0, 1.0),
                                   l1_requirement_bytes=10, l2_requirement_bytes=10**6)
        assert not too_big_l2.valid
        assert "L2" in too_big_l2.violations[0]

    def test_severity_tracks_worst_violation(self, hardware):
        checker = ConstraintChecker(area_budget_um2=1e9, fixed_hardware=hardware)
        result = checker.check(hardware, AreaBreakdown(1.0, 1.0, 1.0),
                               l1_requirement_bytes=hardware.l1_size * 4,
                               l2_requirement_bytes=hardware.l2_size * 2)
        assert not result.valid
        assert result.severity == pytest.approx(4.0)
        assert len(result.violations) == 2

    def test_requirements_ignored_without_fixed_hw(self, hardware):
        checker = ConstraintChecker(area_budget_um2=1e9)
        result = checker.check(hardware, AreaBreakdown(1.0, 1.0, 1.0),
                               l1_requirement_bytes=10**9, l2_requirement_bytes=10**9)
        assert result.valid
