"""Tests for the design evaluator (decode + score + constraint check)."""

import pytest

from repro.arch.hardware import HardwareConfig
from repro.arch.platform import EDGE
from repro.encoding.genome import Genome
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.evaluator import INVALID_FITNESS_SCALE, DesignEvaluator
from repro.framework.objective import Objective
from repro.mapping.dataflows import dla_like
from repro.mapping.mapping import uniform_mapping


@pytest.fixture
def evaluator(tiny_model):
    return DesignEvaluator(model=tiny_model, platform=EDGE)


def template_genome(layer, pe_array=(8, 8)):
    return Genome.from_mapping(dla_like(layer, pe_array))


class TestEvaluateGenome:
    def test_valid_genome_gets_negative_objective_fitness(self, evaluator, tiny_model):
        genome = template_genome(tiny_model.layers[0])
        result = evaluator.evaluate_genome(genome)
        assert result.valid
        assert result.fitness == pytest.approx(-result.objective_value)
        assert result.objective is Objective.LATENCY
        assert result.objective_value == pytest.approx(result.design.latency)
        assert result.genome is genome

    def test_buffer_allocation_matches_requirement(self, evaluator, tiny_model):
        genome = template_genome(tiny_model.layers[0])
        result = evaluator.evaluate_genome(genome)
        hw = result.design.hardware
        perf = result.design.performance
        assert hw.l1_size == perf.l1_requirement_bytes
        assert hw.l2_size == perf.l2_requirement_bytes
        assert hw.pe_array == genome.pe_array

    def test_over_budget_genome_is_invalid_and_heavily_penalised(self, evaluator, tiny_model):
        # A PE array far beyond the edge budget must be rejected.
        genome = template_genome(tiny_model.layers[0], pe_array=(200, 200))
        result = evaluator.evaluate_genome(genome)
        assert not result.valid
        assert result.fitness <= -INVALID_FITNESS_SCALE
        assert result.violations

    def test_every_valid_fitness_beats_every_invalid_fitness(self, evaluator, tiny_model):
        valid = evaluator.evaluate_genome(template_genome(tiny_model.layers[0]))
        invalid = evaluator.evaluate_genome(
            template_genome(tiny_model.layers[0], pe_array=(200, 200))
        )
        assert valid.fitness > invalid.fitness

    def test_worse_violation_gets_worse_fitness(self, evaluator, tiny_model):
        bad = evaluator.evaluate_genome(
            template_genome(tiny_model.layers[0], pe_array=(100, 10))
        )
        worse = evaluator.evaluate_genome(
            template_genome(tiny_model.layers[0], pe_array=(200, 200))
        )
        assert not bad.valid and not worse.valid
        assert worse.fitness < bad.fitness

    def test_objective_selection(self, tiny_model):
        energy_evaluator = DesignEvaluator(
            model=tiny_model, platform=EDGE, objective=Objective.ENERGY
        )
        genome = template_genome(tiny_model.layers[0])
        result = energy_evaluator.evaluate_genome(genome)
        assert result.objective_value == pytest.approx(result.design.energy)

    def test_buffer_allocation_fill_uses_leftover_area(self, tiny_model):
        exact = DesignEvaluator(model=tiny_model, platform=EDGE)
        fill = DesignEvaluator(model=tiny_model, platform=EDGE, buffer_allocation="fill")
        genome = template_genome(tiny_model.layers[0])
        hw_exact = exact.evaluate_genome(genome).design.hardware
        hw_fill = fill.evaluate_genome(genome).design.hardware
        assert hw_fill.l2_size >= hw_exact.l2_size

    def test_invalid_buffer_allocation_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            DesignEvaluator(model=tiny_model, platform=EDGE, buffer_allocation="maximal")


class TestFixedHardware:
    def test_fixed_hw_is_returned_verbatim(self, tiny_model, small_hardware):
        evaluator = DesignEvaluator(
            model=tiny_model, platform=EDGE, fixed_hardware=small_hardware
        )
        genome = template_genome(tiny_model.layers[0], pe_array=small_hardware.pe_array)
        result = evaluator.evaluate_genome(genome)
        assert result.design.hardware is small_hardware

    def test_mapping_exceeding_fixed_buffers_is_invalid(self, tiny_model):
        cramped = HardwareConfig(pe_array=(8, 16), l1_size=2, l2_size=16)
        evaluator = DesignEvaluator(
            model=tiny_model, platform=EDGE, fixed_hardware=cramped
        )
        genome = template_genome(tiny_model.layers[0], pe_array=(8, 16))
        result = evaluator.evaluate_genome(genome)
        assert not result.valid

    def test_genome_space_pins_fixed_pe_array(self, tiny_model, small_hardware):
        evaluator = DesignEvaluator(
            model=tiny_model, platform=EDGE, fixed_hardware=small_hardware
        )
        space = evaluator.genome_space()
        assert space.hw_is_fixed
        assert space.fixed_pe_array == small_hardware.pe_array


def varied_genomes(layer, count=6):
    """A small population with distinct PE arrays (all within budget)."""
    shapes = [(8, 8), (4, 4), (16, 4), (8, 4), (4, 8), (2, 8)]
    return [template_genome(layer, shapes[i % len(shapes)]) for i in range(count)]


class TestContextManager:
    def test_evaluator_context_manager_shuts_down_the_pool(self, tiny_model):
        with DesignEvaluator(model=tiny_model, platform=EDGE) as evaluator:
            genomes = varied_genomes(tiny_model.layers[0], count=4)
            evaluator.evaluate_population(genomes, workers=2)
            assert evaluator._pool is not None
        assert evaluator._pool is None

    def test_close_is_shutdown(self, tiny_model):
        evaluator = DesignEvaluator(model=tiny_model, platform=EDGE, workers=2)
        evaluator.evaluate_population(varied_genomes(tiny_model.layers[0], 4))
        assert evaluator._pool is not None
        evaluator.close()
        assert evaluator._pool is None

    def test_framework_context_manager(self, tiny_model):
        with CoOptimizationFramework(tiny_model, EDGE) as framework:
            genome = template_genome(tiny_model.layers[0])
            assert framework.evaluator.evaluate_genome(genome).valid
        assert framework.evaluator._pool is None


class TestBrokenPoolRecovery:
    def test_killed_worker_respawns_and_results_are_bit_identical(
        self, tiny_model, tmp_path
    ):
        baseline = DesignEvaluator(model=tiny_model, platform=EDGE)
        genomes = varied_genomes(tiny_model.layers[0])
        expected = [
            result.fitness for result in baseline.evaluate_population(genomes)
        ]

        evaluator = DesignEvaluator(model=tiny_model, platform=EDGE, workers=2)
        evaluator.fault_plan = FaultPlan(
            [FaultSpec(kind="kill-worker", times=1)], state_dir=tmp_path
        )
        try:
            results = evaluator.evaluate_population(genomes)
        finally:
            evaluator.shutdown()
        assert [result.fitness for result in results] == expected
        assert evaluator.pool_stats["broken"] >= 1
        assert evaluator.pool_stats["restarts"] >= 1
        assert evaluator.pool_stats["redispatched_chunks"] >= 1
        assert not evaluator.pool_stats["degraded"]

    def test_exhausted_restart_budget_degrades_to_in_process(
        self, tiny_model, tmp_path
    ):
        baseline = DesignEvaluator(model=tiny_model, platform=EDGE)
        genomes = varied_genomes(tiny_model.layers[0])
        expected = [
            result.fitness for result in baseline.evaluate_population(genomes)
        ]

        evaluator = DesignEvaluator(model=tiny_model, platform=EDGE, workers=2)
        evaluator.max_pool_restarts = 0
        # Enough kill budget to break every respawned pool.
        evaluator.fault_plan = FaultPlan(
            [FaultSpec(kind="kill-worker", times=8)], state_dir=tmp_path
        )
        try:
            results = evaluator.evaluate_population(genomes)
            assert [result.fitness for result in results] == expected
            assert evaluator.pool_stats["degraded"]
            # Degradation is sticky: later calls never touch a pool again.
            again = evaluator.evaluate_population(genomes)
            assert [result.fitness for result in again] == expected
            assert evaluator._pool is None
        finally:
            evaluator.shutdown()


class TestEvaluateMapping:
    def test_single_mapping(self, evaluator, tiny_model):
        mapping = uniform_mapping(tiny_model.layers[0], (8, 8), ("K", "C"))
        result = evaluator.evaluate_mapping(mapping)
        assert result.design.mapping == mapping
        assert result.genome is None

    def test_per_layer_provider_requires_pe_array(self, evaluator, tiny_model):
        provider = lambda layer: uniform_mapping(layer, (8, 8), ("K", "C"))
        with pytest.raises(ValueError):
            evaluator.evaluate_mapping(provider)
        result = evaluator.evaluate_mapping(provider, pe_array=(8, 8))
        assert result.design.hardware.pe_array == (8, 8)

    def test_genome_space_bounds_follow_platform(self, evaluator):
        space = evaluator.genome_space()
        assert space.max_pes == evaluator.area_model.max_pes_within(EDGE.area_budget_um2)
