"""Tests for JSON serialization of designs and results."""

import pytest

from repro.arch.hardware import HardwareConfig
from repro.arch.platform import EDGE
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.mapping.dataflows import dla_like
from repro.optim.digamma import DiGamma
from repro.serialization import (
    design_to_dict,
    genome_from_dict,
    genome_to_dict,
    hardware_from_dict,
    hardware_to_dict,
    load_json,
    mapping_from_dict,
    mapping_to_dict,
    save_json,
    search_result_to_dict,
)
from repro.encoding.genome import Genome


class TestHardwareRoundTrip:
    def test_round_trip(self, small_hardware):
        rebuilt = hardware_from_dict(hardware_to_dict(small_hardware))
        assert rebuilt == small_hardware

    def test_defaults_filled_for_missing_optional_fields(self):
        data = hardware_to_dict(HardwareConfig())
        del data["bytes_per_element"]
        del data["frequency_mhz"]
        rebuilt = hardware_from_dict(data)
        assert rebuilt.bytes_per_element == 1
        assert rebuilt.frequency_mhz == 1000.0


class TestMappingAndGenomeRoundTrip:
    def test_mapping_round_trip(self, conv_layer):
        mapping = dla_like(conv_layer, (8, 16))
        rebuilt = mapping_from_dict(mapping_to_dict(mapping))
        assert rebuilt == mapping

    def test_genome_round_trip(self, conv_layer):
        genome = Genome.from_mapping(dla_like(conv_layer, (4, 4)))
        rebuilt = genome_from_dict(genome_to_dict(genome))
        assert rebuilt.to_mapping() == genome.to_mapping()

    def test_json_serializable(self, conv_layer, tmp_path):
        mapping = dla_like(conv_layer, (8, 16))
        path = save_json(mapping_to_dict(mapping), tmp_path / "mapping.json")
        assert path.exists()
        assert mapping_from_dict(load_json(path)) == mapping


class TestSearchResultSerialization:
    @pytest.fixture(scope="class")
    def search_result(self):
        from repro.workloads.registry import get_model

        framework = CoOptimizationFramework(get_model("ncf"), EDGE)
        return framework.search(DiGamma(), sampling_budget=100, seed=0)

    def test_design_dict_fields(self, search_result):
        assert search_result.found_valid
        data = design_to_dict(search_result.best.design)
        assert set(data) == {"hardware", "mapping", "metrics", "per_layer"}
        assert data["metrics"]["latency_cycles"] == search_result.best_latency
        assert data["metrics"]["area_um2"] <= EDGE.area_budget_um2
        assert len(data["per_layer"]) >= 1

    def test_search_result_dict(self, search_result):
        data = search_result_to_dict(search_result)
        assert data["optimizer"] == "DiGamma"
        assert data["found_valid"] is True
        assert data["evaluations"] == 100
        assert "best" in data
        assert "genome" in data["best"]
        rebuilt_hw = hardware_from_dict(data["best"]["hardware"])
        assert rebuilt_hw == search_result.best.design.hardware

    def test_save_and_load_round_trip(self, search_result, tmp_path):
        path = save_json(search_result_to_dict(search_result), tmp_path / "out" / "r.json")
        loaded = load_json(path)
        assert loaded["sampling_budget"] == 100
        mapping = mapping_from_dict(loaded["best"]["mapping"])
        assert mapping == search_result.best.design.mapping
