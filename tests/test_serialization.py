"""Tests for JSON serialization of designs and results."""

import pytest

from repro.arch.hardware import HardwareConfig
from repro.arch.platform import EDGE
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.mapping.dataflows import dla_like
from repro.optim.digamma import DiGamma
from repro.serialization import (
    design_from_dict,
    design_to_dict,
    genome_from_dict,
    genome_to_dict,
    hardware_from_dict,
    hardware_to_dict,
    load_json,
    mapping_from_dict,
    mapping_to_dict,
    save_json,
    pareto_result_from_dict,
    pareto_result_to_dict,
    result_from_dict,
    result_to_dict,
    search_result_from_dict,
    search_result_to_dict,
)
from repro.encoding.genome import Genome
from repro.framework.pareto import ParetoResult
from repro.framework.search import SearchResult
from repro.optim.registry import get_optimizer
from repro.workloads.registry import get_model


class TestHardwareRoundTrip:
    def test_round_trip(self, small_hardware):
        rebuilt = hardware_from_dict(hardware_to_dict(small_hardware))
        assert rebuilt == small_hardware

    def test_defaults_filled_for_missing_optional_fields(self):
        data = hardware_to_dict(HardwareConfig())
        del data["bytes_per_element"]
        del data["frequency_mhz"]
        rebuilt = hardware_from_dict(data)
        assert rebuilt.bytes_per_element == 1
        assert rebuilt.frequency_mhz == 1000.0


class TestMappingAndGenomeRoundTrip:
    def test_mapping_round_trip(self, conv_layer):
        mapping = dla_like(conv_layer, (8, 16))
        rebuilt = mapping_from_dict(mapping_to_dict(mapping))
        assert rebuilt == mapping

    def test_genome_round_trip(self, conv_layer):
        genome = Genome.from_mapping(dla_like(conv_layer, (4, 4)))
        rebuilt = genome_from_dict(genome_to_dict(genome))
        assert rebuilt.to_mapping() == genome.to_mapping()

    def test_json_serializable(self, conv_layer, tmp_path):
        mapping = dla_like(conv_layer, (8, 16))
        path = save_json(mapping_to_dict(mapping), tmp_path / "mapping.json")
        assert path.exists()
        assert mapping_from_dict(load_json(path)) == mapping


class TestSearchResultSerialization:
    @pytest.fixture(scope="class")
    def search_result(self):
        from repro.workloads.registry import get_model

        framework = CoOptimizationFramework(get_model("ncf"), EDGE)
        return framework.search(DiGamma(), sampling_budget=100, seed=0)

    def test_design_dict_fields(self, search_result):
        assert search_result.found_valid
        data = design_to_dict(search_result.best.design)
        assert set(data) == {"model", "hardware", "mapping", "area", "metrics", "per_layer"}
        assert data["metrics"]["latency_cycles"] == search_result.best_latency
        assert data["metrics"]["area_um2"] <= EDGE.area_budget_um2
        assert len(data["per_layer"]) >= 1

    def test_search_result_dict(self, search_result):
        data = search_result_to_dict(search_result)
        assert data["optimizer"] == "DiGamma"
        assert data["found_valid"] is True
        assert data["evaluations"] == 100
        assert "best" in data
        assert "genome" in data["best"]
        rebuilt_hw = hardware_from_dict(data["best"]["hardware"])
        assert rebuilt_hw == search_result.best.design.hardware

    def test_save_and_load_round_trip(self, search_result, tmp_path):
        path = save_json(search_result_to_dict(search_result), tmp_path / "out" / "r.json")
        loaded = load_json(path)
        assert loaded["sampling_budget"] == 100
        mapping = mapping_from_dict(loaded["best"]["mapping"])
        assert mapping == search_result.best.design.mapping

    def test_design_round_trip(self, search_result):
        design = search_result.best.design
        rebuilt = design_from_dict(design_to_dict(design))
        assert rebuilt.hardware == design.hardware
        assert rebuilt.mapping == design.mapping
        assert rebuilt.latency == design.latency
        assert rebuilt.energy == design.energy
        assert rebuilt.area.total == design.area.total
        assert rebuilt.latency_area_product == design.latency_area_product
        assert rebuilt.performance.layers == design.performance.layers

    def test_search_result_round_trip(self, search_result):
        rebuilt = search_result_from_dict(search_result_to_dict(search_result))
        assert rebuilt.optimizer_name == search_result.optimizer_name
        assert rebuilt.evaluations == search_result.evaluations
        assert rebuilt.sampling_budget == search_result.sampling_budget
        assert rebuilt.wall_time_seconds == search_result.wall_time_seconds
        assert rebuilt.history == search_result.history
        assert rebuilt.found_valid
        assert rebuilt.best_latency == search_result.best_latency
        assert rebuilt.best_latency_area_product == (
            search_result.best_latency_area_product
        )
        assert rebuilt.best_objective_value == search_result.best_objective_value
        assert rebuilt.best.fitness == search_result.best.fitness
        assert rebuilt.best.objective == search_result.best.objective
        assert rebuilt.best.genome is not None
        assert (
            rebuilt.best.genome.to_mapping()
            == search_result.best.genome.to_mapping()
        )

    def test_search_result_round_trip_through_json(self, search_result, tmp_path):
        path = save_json(search_result_to_dict(search_result), tmp_path / "result.json")
        rebuilt = search_result_from_dict(load_json(path))
        assert rebuilt.best_latency == search_result.best_latency
        assert rebuilt.best_latency_area_product == (
            search_result.best_latency_area_product
        )
        assert rebuilt.summary() == search_result.summary()

    def test_search_result_without_valid_best(self):
        data = {
            "optimizer": "Random",
            "evaluations": 5,
            "sampling_budget": 5,
            "wall_time_seconds": 0.1,
            "found_valid": False,
            "history": [],
        }
        rebuilt = search_result_from_dict(data)
        assert rebuilt.best is None
        assert not rebuilt.found_valid
        assert rebuilt.best_latency == float("inf")


class TestParetoResultSerialization:
    @pytest.fixture(scope="class")
    def front(self):
        framework = CoOptimizationFramework(
            get_model("ncf"), EDGE, objectives="latency,energy,area"
        )
        try:
            return framework.pareto_search(
                get_optimizer("nsga2"), sampling_budget=100, seed=0
            )
        finally:
            framework.close()

    def test_round_trip_is_lossless(self, front):
        rebuilt = pareto_result_from_dict(pareto_result_to_dict(front))
        assert rebuilt.optimizer_name == front.optimizer_name
        assert rebuilt.objectives == front.objectives
        assert rebuilt.evaluations == front.evaluations
        assert rebuilt.sampling_budget == front.sampling_budget
        assert rebuilt.wall_time_seconds == front.wall_time_seconds
        assert rebuilt.batch_calls == front.batch_calls
        assert rebuilt.batched_evaluations == front.batched_evaluations
        assert rebuilt.front_values == front.front_values
        for original, copy in zip(front.front, rebuilt.front):
            assert copy.fitness == original.fitness
            assert copy.objective is original.objective
            assert copy.objective_value == original.objective_value
            assert copy.design.hardware == original.design.hardware
            assert copy.design.mapping == original.design.mapping
            assert copy.design.area == original.design.area
            assert copy.design.performance.latency == original.design.performance.latency
            if original.genome is not None:
                assert copy.genome.to_mapping() == original.genome.to_mapping()
        assert rebuilt.is_non_dominated() == front.is_non_dominated()

    def test_json_serializable(self, front, tmp_path):
        path = save_json(pareto_result_to_dict(front), tmp_path / "front.json")
        rebuilt = pareto_result_from_dict(load_json(path))
        assert rebuilt.front_values == front.front_values

    def test_result_dispatchers(self, front):
        payload = result_to_dict(front)
        assert "front" in payload
        assert isinstance(result_from_dict(payload), ParetoResult)

    def test_scalar_results_still_dispatch_to_search_result(self):
        framework = CoOptimizationFramework(get_model("ncf"), EDGE)
        try:
            scalar = framework.search(DiGamma(), sampling_budget=60, seed=0)
        finally:
            framework.close()
        payload = result_to_dict(scalar)
        assert "front" not in payload
        rebuilt = result_from_dict(payload)
        assert isinstance(rebuilt, SearchResult)
        assert rebuilt.best.fitness == scalar.best.fitness
