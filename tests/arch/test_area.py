"""Tests for the parametric area model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.area import AreaBreakdown, AreaModel
from repro.arch.hardware import HardwareConfig


class TestAreaBreakdown:
    def test_total_is_sum(self):
        breakdown = AreaBreakdown(pe_area=100.0, l1_area=30.0, l2_area=70.0)
        assert breakdown.buffer_area == 100.0
        assert breakdown.total == 200.0

    def test_ratio_sums_to_hundred(self):
        breakdown = AreaBreakdown(pe_area=150.0, l1_area=25.0, l2_area=25.0)
        pe_pct, buffer_pct = breakdown.pe_to_buffer_ratio
        assert pe_pct == pytest.approx(75.0)
        assert buffer_pct == pytest.approx(25.0)
        assert pe_pct + buffer_pct == pytest.approx(100.0)

    def test_zero_area_ratio(self):
        breakdown = AreaBreakdown(pe_area=0.0, l1_area=0.0, l2_area=0.0)
        assert breakdown.pe_to_buffer_ratio == (0.0, 0.0)


class TestAreaModel:
    def test_breakdown_is_linear(self):
        model = AreaModel(pe_area_um2=100.0, l1_area_per_byte_um2=1.0,
                          l2_area_per_byte_um2=0.5)
        hw = HardwareConfig(pe_array=(2, 4), l1_size=64, l2_size=1024)
        breakdown = model.breakdown(hw)
        assert breakdown.pe_area == 8 * 100.0
        assert breakdown.l1_area == 8 * 64 * 1.0
        assert breakdown.l2_area == 1024 * 0.5
        assert model.total_area(hw) == breakdown.total

    def test_more_pes_means_more_area(self):
        model = AreaModel()
        small = HardwareConfig(pe_array=(4, 4), l1_size=64, l2_size=1024)
        big = HardwareConfig(pe_array=(16, 16), l1_size=64, l2_size=1024)
        assert model.total_area(big) > model.total_area(small)

    def test_max_pes_within_budget(self):
        model = AreaModel(pe_area_um2=100.0)
        assert model.max_pes_within(1000.0) == 10
        assert model.max_pes_within(99.0) == 1  # at least one PE

    def test_max_l2_bytes_within_budget(self):
        model = AreaModel(l2_area_per_byte_um2=0.5)
        assert model.max_l2_bytes_within(1000.0) == 2000

    def test_rejects_bad_coefficients_and_budgets(self):
        with pytest.raises(ValueError):
            AreaModel(pe_area_um2=0.0)
        with pytest.raises(ValueError):
            AreaModel(l1_area_per_byte_um2=-1.0)
        with pytest.raises(ValueError):
            AreaModel().max_pes_within(0.0)

    def test_default_calibration_edge_budget_admits_hundreds_of_pes(self):
        # The paper's edge budget (0.2 mm^2) must admit design points in the
        # hundreds of PEs with realistic buffers (Fig. 7 shows 231 PEs).
        model = AreaModel()
        assert 200 <= model.max_pes_within(0.2e6) <= 2000

    def test_default_calibration_cloud_budget_admits_thousands_of_pes(self):
        model = AreaModel()
        assert model.max_pes_within(7.0e6) >= 5000

    @given(
        pes=st.integers(1, 4096),
        l1=st.integers(1, 1 << 16),
        l2=st.integers(1, 1 << 22),
    )
    def test_area_monotonic_in_resources(self, pes, l1, l2):
        model = AreaModel()
        hw = HardwareConfig(pe_array=(1, pes), l1_size=l1, l2_size=l2)
        bigger = HardwareConfig(pe_array=(2, pes), l1_size=l1 + 1, l2_size=l2 + 1)
        assert model.total_area(bigger) > model.total_area(hw)
