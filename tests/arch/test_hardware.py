"""Tests for the hardware configuration dataclass."""

import pytest

from repro.arch.hardware import HardwareConfig


class TestHardwareConfig:
    def test_defaults_are_valid(self):
        hw = HardwareConfig()
        assert hw.num_pes == 256
        assert hw.num_levels == 2

    def test_num_pes_is_product(self):
        hw = HardwareConfig(pe_array=(4, 8, 2))
        assert hw.num_pes == 64
        assert hw.num_levels == 3

    def test_total_buffer_sizes(self):
        hw = HardwareConfig(pe_array=(2, 4), l1_size=100, l2_size=1000)
        assert hw.total_l1_size == 800
        assert hw.total_buffer_size == 1800

    def test_with_buffers_returns_copy(self):
        hw = HardwareConfig(pe_array=(2, 2), l1_size=100, l2_size=1000)
        other = hw.with_buffers(l1_size=50, l2_size=500)
        assert other.l1_size == 50
        assert other.l2_size == 500
        assert hw.l1_size == 100  # original untouched
        assert other.pe_array == hw.pe_array

    def test_with_pe_array_returns_copy(self):
        hw = HardwareConfig(pe_array=(2, 2))
        other = hw.with_pe_array((4, 8))
        assert other.num_pes == 32
        assert hw.num_pes == 4

    def test_describe_mentions_pe_count(self):
        hw = HardwareConfig(pe_array=(3, 5))
        assert "PEs=15" in hw.describe()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pe_array": ()},
            {"pe_array": (0, 4)},
            {"l1_size": 0},
            {"l2_size": -1},
            {"noc_bandwidth": 0},
            {"dram_bandwidth": -2},
            {"bytes_per_element": 0},
            {"frequency_mhz": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HardwareConfig(**kwargs)

    def test_pe_array_coerced_to_int_tuple(self):
        hw = HardwareConfig(pe_array=[4.0, 8.0])
        assert hw.pe_array == (4, 8)
        assert isinstance(hw.pe_array, tuple)
