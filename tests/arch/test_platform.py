"""Tests for the edge / cloud platform presets."""

import pytest

from repro.arch.area import AreaModel
from repro.arch.platform import CLOUD, EDGE, Platform, get_platform


class TestPresets:
    def test_edge_budget_matches_paper(self):
        assert EDGE.area_budget_mm2 == pytest.approx(0.2)

    def test_cloud_budget_matches_paper(self):
        assert CLOUD.area_budget_mm2 == pytest.approx(7.0)

    def test_cloud_is_larger_in_every_resource(self):
        assert CLOUD.area_budget_um2 > EDGE.area_budget_um2
        assert CLOUD.noc_bandwidth > EDGE.noc_bandwidth
        assert CLOUD.dram_bandwidth > EDGE.dram_bandwidth

    def test_max_pes_uses_area_model(self):
        model = AreaModel(pe_area_um2=1000.0)
        assert EDGE.max_pes(model) == int(EDGE.area_budget_um2 // 1000.0)

    def test_cloud_admits_more_pes_than_edge(self):
        assert CLOUD.max_pes() > EDGE.max_pes()


class TestLookup:
    def test_get_platform_by_name(self):
        assert get_platform("edge") is EDGE
        assert get_platform("Cloud") is CLOUD
        assert get_platform("  EDGE ") is EDGE

    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError):
            get_platform("datacenter")

    def test_custom_platform_validation(self):
        with pytest.raises(ValueError):
            Platform(name="bad", area_budget_um2=0.0, noc_bandwidth=1.0, dram_bandwidth=1.0)
        with pytest.raises(ValueError):
            Platform(name="bad", area_budget_um2=1.0, noc_bandwidth=0.0, dram_bandwidth=1.0)
