"""Tests for the energy model."""

import pytest

from repro.arch.energy import EnergyModel


class TestEnergyModel:
    def test_compute_energy_scales_with_macs(self):
        model = EnergyModel(mac_energy=2.0)
        assert model.compute_energy(100) == 200.0

    def test_movement_energy_weights_levels(self):
        model = EnergyModel(
            mac_energy=1.0,
            l1_energy_per_byte=1.0,
            l2_energy_per_byte=10.0,
            dram_energy_per_byte=100.0,
        )
        energy = model.movement_energy(l1_bytes=5, l2_bytes=3, dram_bytes=2)
        assert energy == 5 * 1.0 + 3 * 10.0 + 2 * 100.0

    def test_default_hierarchy_ordering(self):
        # Moving a byte must get more expensive the further out it lives.
        model = EnergyModel()
        assert model.l1_energy_per_byte < model.l2_energy_per_byte
        assert model.l2_energy_per_byte < model.dram_energy_per_byte

    def test_dram_dominates_on_equal_traffic(self):
        model = EnergyModel()
        on_chip = model.movement_energy(l1_bytes=1000, l2_bytes=1000, dram_bytes=0)
        off_chip = model.movement_energy(l1_bytes=0, l2_bytes=0, dram_bytes=1000)
        assert off_chip > on_chip

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ValueError):
            EnergyModel(mac_energy=-1.0)
        with pytest.raises(ValueError):
            EnergyModel(dram_energy_per_byte=-0.1)

    def test_zero_traffic_zero_energy(self):
        model = EnergyModel()
        assert model.movement_energy(0, 0, 0) == 0.0
        assert model.compute_energy(0) == 0.0
