"""Tests for layer construction and tensor-size accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.layer import Layer, OpType


class TestConvLayer:
    def test_conv2d_constructor(self):
        layer = Layer.conv2d("conv", in_channels=3, out_channels=64, out_hw=112,
                             kernel=7, stride=2)
        assert layer.op_type is OpType.CONV
        assert layer.dims["K"] == 64
        assert layer.dims["C"] == 3
        assert layer.dims["Y"] == 112
        assert layer.dims["X"] == 112
        assert layer.dims["R"] == 7
        assert layer.dims["S"] == 7
        assert layer.stride == 2

    def test_macs(self):
        layer = Layer.conv2d("conv", 16, 32, 8, 3)
        assert layer.macs == 32 * 16 * 8 * 8 * 3 * 3

    def test_total_macs_uses_count(self):
        layer = Layer.conv2d("conv", 16, 32, 8, 3, count=4)
        assert layer.total_macs == 4 * layer.macs

    def test_input_spatial_with_stride(self):
        layer = Layer.conv2d("conv", 3, 64, 112, 7, stride=2)
        in_y, in_x = layer.input_spatial()
        assert in_y == (112 - 1) * 2 + 7
        assert in_x == in_y

    def test_tensor_sizes(self):
        layer = Layer.conv2d("conv", 16, 32, 8, 3)
        sizes = layer.tensor_sizes()
        assert sizes["W"] == 32 * 16 * 3 * 3
        assert sizes["O"] == 32 * 8 * 8
        assert sizes["I"] == 16 * 10 * 10

    def test_rectangular_shapes(self):
        layer = Layer.conv2d("conv", 16, 32, (8, 4), (3, 1))
        assert layer.dims["Y"] == 8
        assert layer.dims["X"] == 4
        assert layer.dims["R"] == 3
        assert layer.dims["S"] == 1

    def test_relevance_conv(self):
        layer = Layer.conv2d("conv", 16, 32, 8, 3)
        relevance = layer.relevance()
        assert set(relevance["W"]) == {"K", "C", "R", "S"}
        assert set(relevance["I"]) == {"C", "Y", "X", "R", "S"}
        assert set(relevance["O"]) == {"K", "Y", "X"}

    def test_invalid_stride_and_count(self):
        with pytest.raises(ValueError):
            Layer.conv2d("conv", 3, 8, 8, 3, stride=0)
        with pytest.raises(ValueError):
            Layer.conv2d("conv", 3, 8, 8, 3, count=0)


class TestDepthwiseLayer:
    def test_depthwise_constructor(self):
        layer = Layer.depthwise("dw", channels=96, out_hw=14, kernel=3)
        assert layer.op_type is OpType.DWCONV
        assert layer.dims["K"] == 1
        assert layer.dims["C"] == 96

    def test_depthwise_macs(self):
        layer = Layer.depthwise("dw", 96, 14, 3)
        assert layer.macs == 96 * 14 * 14 * 3 * 3

    def test_depthwise_tensor_sizes(self):
        layer = Layer.depthwise("dw", 96, 14, 3)
        sizes = layer.tensor_sizes()
        assert sizes["W"] == 96 * 3 * 3
        assert sizes["O"] == 96 * 14 * 14
        assert sizes["I"] == 96 * 16 * 16

    def test_depthwise_relevance_ties_output_to_channels(self):
        layer = Layer.depthwise("dw", 96, 14, 3)
        relevance = layer.relevance()
        assert "C" in relevance["O"]
        assert "K" not in relevance["O"]

    def test_depthwise_rejects_explicit_k(self):
        from repro.workloads.dims import LayerDims

        with pytest.raises(ValueError):
            Layer(name="bad", op_type=OpType.DWCONV, dims=LayerDims(K=4, C=16))


class TestGemmLayer:
    def test_gemm_constructor_maps_dims(self):
        layer = Layer.gemm("fc", m=64, n=256, k=512)
        assert layer.op_type is OpType.GEMM
        assert layer.dims["Y"] == 64   # M
        assert layer.dims["K"] == 256  # N
        assert layer.dims["C"] == 512  # reduction
        assert layer.dims["X"] == 1
        assert layer.dims["R"] == 1
        assert layer.dims["S"] == 1

    def test_gemm_macs(self):
        layer = Layer.gemm("fc", m=64, n=256, k=512)
        assert layer.macs == 64 * 256 * 512

    def test_gemm_tensor_sizes(self):
        layer = Layer.gemm("fc", m=64, n=256, k=512)
        sizes = layer.tensor_sizes()
        assert sizes["W"] == 256 * 512
        assert sizes["I"] == 512 * 64
        assert sizes["O"] == 256 * 64


class TestSignature:
    def test_identical_shapes_share_signature(self):
        a = Layer.conv2d("a", 16, 32, 8, 3)
        b = Layer.conv2d("b", 16, 32, 8, 3, count=5)
        assert a.signature() == b.signature()

    def test_different_shapes_differ(self):
        a = Layer.conv2d("a", 16, 32, 8, 3)
        b = Layer.conv2d("b", 16, 32, 8, 3, stride=2)
        c = Layer.gemm("c", 8, 8, 8)
        assert a.signature() != b.signature()
        assert a.signature() != c.signature()

    @given(
        channels=st.integers(1, 256),
        hw=st.integers(1, 56),
        kernel=st.integers(1, 7),
        stride=st.integers(1, 2),
    )
    def test_macs_positive_property(self, channels, hw, kernel, stride):
        layer = Layer.conv2d("p", channels, channels, hw, kernel, stride=stride)
        assert layer.macs > 0
        sizes = layer.tensor_sizes()
        assert all(value > 0 for value in sizes.values())
