"""Tests for the Model container."""

import pytest

from repro.workloads.layer import Layer
from repro.workloads.model import Model, build_model


@pytest.fixture
def layers():
    return [
        Layer.conv2d("a", 3, 16, 32, 3),
        Layer.conv2d("b", 16, 16, 32, 3, count=2),
        Layer.conv2d("c", 16, 16, 32, 3),  # same shape as "b"
        Layer.gemm("fc", 1, 10, 16),
    ]


class TestModel:
    def test_build_and_iterate(self, layers):
        model = build_model("m", layers)
        assert len(model) == 4
        assert [layer.name for layer in model] == ["a", "b", "c", "fc"]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Model(name="empty", layers=())

    def test_rejects_duplicate_names(self):
        layer = Layer.conv2d("dup", 3, 8, 8, 3)
        with pytest.raises(ValueError):
            build_model("m", [layer, layer])

    def test_total_macs(self, layers):
        model = build_model("m", layers)
        assert model.total_macs == sum(layer.total_macs for layer in layers)

    def test_total_weight_elements(self, layers):
        model = build_model("m", layers)
        expected = sum(layer.tensor_sizes()["W"] * layer.count for layer in layers)
        assert model.total_weight_elements == expected

    def test_unique_layers_merges_counts(self, layers):
        model = build_model("m", layers)
        unique = model.unique_layers()
        assert len(unique) == 3
        merged = {layer.name: layer for layer in unique}
        # "b" (count 2) and "c" (count 1) share a shape -> merged count 3.
        assert merged["b"].count == 3

    def test_unique_layers_preserve_total_macs(self, layers):
        model = build_model("m", layers)
        unique_macs = sum(layer.total_macs for layer in model.unique_layers())
        assert unique_macs == model.total_macs

    def test_unique_layers_order_is_first_occurrence(self, layers):
        model = build_model("m", layers)
        assert [layer.name for layer in model.unique_layers()] == ["a", "b", "fc"]

    def test_summary_mentions_every_layer(self, layers):
        model = build_model("m", layers)
        summary = model.summary()
        for layer in layers:
            assert layer.name in summary
