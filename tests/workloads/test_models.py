"""Tests for the seven built-in DNN model definitions."""

import pytest

from repro.workloads.layer import OpType
from repro.workloads.registry import available_models, get_model


class TestRegistry:
    def test_seven_models_available(self):
        models = available_models()
        assert len(models) == 7
        assert set(models) == {
            "mobilenet_v2",
            "resnet18",
            "resnet50",
            "mnasnet",
            "bert",
            "dlrm",
            "ncf",
        }

    @pytest.mark.parametrize("name", available_models())
    def test_every_model_builds(self, name):
        model = get_model(name)
        assert len(model) > 0
        assert model.total_macs > 0

    def test_aliases_and_case(self):
        assert get_model("Mbnet-V2").name == "mobilenet_v2"
        assert get_model("RESNET18").name == "resnet18"
        assert get_model("bert-base").name == "bert"

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_model("alexnet")


class TestVisionModels:
    def test_resnet18_macs_in_expected_range(self):
        # ResNet-18 at 224x224 is ~1.8 GMACs.
        model = get_model("resnet18")
        assert 1.5e9 < model.total_macs < 2.2e9

    def test_resnet50_macs_in_expected_range(self):
        # ResNet-50 at 224x224 is ~4 GMACs.
        model = get_model("resnet50")
        assert 3.3e9 < model.total_macs < 4.8e9

    def test_resnet50_heavier_than_resnet18(self):
        assert get_model("resnet50").total_macs > get_model("resnet18").total_macs

    def test_mobilenet_v2_macs_in_expected_range(self):
        # MobileNetV2 is ~300 MMACs.
        model = get_model("mobilenet_v2")
        assert 0.25e9 < model.total_macs < 0.45e9

    def test_mobilenet_v2_contains_depthwise(self):
        model = get_model("mobilenet_v2")
        assert any(layer.op_type is OpType.DWCONV for layer in model)

    def test_mnasnet_macs_in_expected_range(self):
        # MnasNet-B1 is ~300-330 MMACs.
        model = get_model("mnasnet")
        assert 0.25e9 < model.total_macs < 0.5e9

    def test_mnasnet_uses_5x5_kernels(self):
        model = get_model("mnasnet")
        assert any(layer.dims["R"] == 5 for layer in model)

    def test_vision_models_end_with_classifier(self):
        for name in ("resnet18", "resnet50", "mobilenet_v2", "mnasnet"):
            model = get_model(name)
            last = model.layers[-1]
            assert last.op_type is OpType.GEMM
            assert last.dims["K"] == 1000


class TestLanguageAndRecommendationModels:
    def test_bert_is_all_gemm(self):
        model = get_model("bert")
        assert all(layer.op_type is OpType.GEMM for layer in model)

    def test_bert_macs_scale_with_sequence_length(self):
        from repro.workloads.models.bert import bert_base

        short = bert_base(sequence_length=128)
        long = bert_base(sequence_length=512)
        assert long.total_macs > short.total_macs

    def test_bert_is_much_heavier_than_recommendation_models(self):
        bert = get_model("bert")
        assert bert.total_macs > 10 * get_model("dlrm").total_macs
        assert bert.total_macs > 100 * get_model("ncf").total_macs

    def test_dlrm_and_ncf_are_gemm_only(self):
        for name in ("dlrm", "ncf"):
            model = get_model(name)
            assert all(layer.op_type is OpType.GEMM for layer in model)

    def test_recommendation_models_reject_bad_batch(self):
        from repro.workloads.models.dlrm import dlrm
        from repro.workloads.models.ncf import ncf

        with pytest.raises(ValueError):
            dlrm(batch_size=0)
        with pytest.raises(ValueError):
            ncf(batch_size=-1)

    def test_dlrm_layer_widths_follow_mlp_stacks(self):
        model = get_model("dlrm")
        first = model.layers[0]
        assert first.dims["C"] == 13  # dense-feature input width
