"""Tests for multi-model suites."""

import pytest

from repro.arch.platform import EDGE
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.optim.digamma import DiGamma
from repro.workloads.registry import get_model
from repro.workloads.suite import ModelSuite


class TestConstruction:
    def test_from_names(self):
        suite = ModelSuite.from_names("rec", ["ncf", "dlrm"])
        assert len(suite.models) == 2
        assert suite.weights == (1, 1)

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            ModelSuite.from_names("bad", ["ncf"], weights=[1, 2])
        with pytest.raises(ValueError):
            ModelSuite.from_names("bad", ["ncf"], weights=[0])
        with pytest.raises(ValueError):
            ModelSuite(name="empty", models=(), weights=())

    def test_total_macs_is_weighted_sum(self):
        suite = ModelSuite.from_names("rec", ["ncf", "dlrm"], weights=[3, 1])
        expected = 3 * get_model("ncf").total_macs + get_model("dlrm").total_macs
        assert suite.total_macs == expected
        assert suite.per_model_macs()["ncf"] == 3 * get_model("ncf").total_macs

    def test_summary_mentions_members(self):
        suite = ModelSuite.from_names("rec", ["ncf", "dlrm"])
        text = suite.summary()
        assert "ncf" in text and "dlrm" in text


class TestFlattening:
    def test_as_model_prefixes_layer_names(self):
        suite = ModelSuite.from_names("rec", ["ncf", "dlrm"])
        combined = suite.as_model()
        assert combined.name == "rec"
        assert all("." in layer.name for layer in combined.layers)
        assert len(combined.layers) == len(get_model("ncf")) + len(get_model("dlrm"))

    def test_as_model_weights_scale_counts(self):
        weighted = ModelSuite.from_names("rec", ["ncf"], weights=[5]).as_model()
        plain = get_model("ncf")
        assert weighted.total_macs == 5 * plain.total_macs

    def test_shared_shapes_merge_in_unique_layers(self):
        suite = ModelSuite.from_names("double", ["ncf", "ncf"])
        combined = suite.as_model()
        assert len(combined.unique_layers()) == len(get_model("ncf").unique_layers())

    def test_suite_runs_through_the_framework(self):
        combined = ModelSuite.from_names("rec", ["ncf", "dlrm"]).as_model()
        framework = CoOptimizationFramework(combined, EDGE)
        result = framework.search(DiGamma(), sampling_budget=120, seed=0)
        assert result.found_valid
