"""Tests for the dimension vocabulary and LayerDims."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.dims import (
    DIMS,
    INPUT_DIMS,
    OUTPUT_DIMS,
    REDUCTION_DIMS,
    WEIGHT_DIMS,
    LayerDims,
    validate_dim,
)


class TestDimConstants:
    def test_six_dimensions(self):
        assert len(DIMS) == 6
        assert set(DIMS) == {"K", "C", "Y", "X", "R", "S"}

    def test_weight_dims_subset(self):
        assert set(WEIGHT_DIMS) <= set(DIMS)
        assert set(WEIGHT_DIMS) == {"K", "C", "R", "S"}

    def test_input_dims_subset(self):
        assert set(INPUT_DIMS) == {"C", "Y", "X", "R", "S"}

    def test_output_dims_subset(self):
        assert set(OUTPUT_DIMS) == {"K", "Y", "X"}

    def test_reduction_dims(self):
        assert set(REDUCTION_DIMS) == {"C", "R", "S"}
        # Reduction dims never index the output tensor.
        assert not set(REDUCTION_DIMS) & set(OUTPUT_DIMS)

    def test_validate_dim_accepts_known(self):
        for dim in DIMS:
            assert validate_dim(dim) == dim

    def test_validate_dim_rejects_unknown(self):
        with pytest.raises(ValueError):
            validate_dim("Z")


class TestLayerDims:
    def test_defaults_are_one(self):
        dims = LayerDims()
        assert all(dims[d] == 1 for d in DIMS)
        assert dims.volume == 1

    def test_mapping_interface(self):
        dims = LayerDims(K=4, C=3, Y=2, X=2, R=1, S=1)
        assert len(dims) == 6
        assert list(dims) == list(DIMS)
        assert dims["K"] == 4
        assert dims.as_dict() == {"K": 4, "C": 3, "Y": 2, "X": 2, "R": 1, "S": 1}

    def test_volume(self):
        dims = LayerDims(K=4, C=3, Y=2, X=2, R=3, S=3)
        assert dims.volume == 4 * 3 * 2 * 2 * 3 * 3

    def test_replace(self):
        dims = LayerDims(K=4)
        replaced = dims.replace(K=8, C=2)
        assert replaced["K"] == 8
        assert replaced["C"] == 2
        assert dims["K"] == 4  # original unchanged

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            LayerDims(K=0)
        with pytest.raises(ValueError):
            LayerDims(C=-3)

    def test_rejects_unknown_key_access(self):
        dims = LayerDims()
        with pytest.raises(ValueError):
            dims["Q"]

    @given(
        k=st.integers(1, 512),
        c=st.integers(1, 512),
        y=st.integers(1, 64),
        x=st.integers(1, 64),
        r=st.integers(1, 7),
        s=st.integers(1, 7),
    )
    def test_volume_equals_product_property(self, k, c, y, x, r, s):
        dims = LayerDims(K=k, C=c, Y=y, X=x, R=r, S=s)
        assert dims.volume == k * c * y * x * r * s
