"""Tests for the performance report containers."""

import pytest

from repro.cost.performance import LayerPerformance, ModelPerformance


def make_layer_performance(name="layer", latency=100.0, energy=50.0, count=1,
                           active=8, total=16):
    return LayerPerformance(
        layer_name=name,
        latency=latency,
        compute_cycles=latency,
        noc_cycles=latency / 2,
        dram_cycles=latency / 4,
        macs=1000,
        l2_to_l1_bytes=200.0,
        dram_bytes=100.0,
        l1_access_bytes=400.0,
        energy=energy,
        active_pes=active,
        num_pes=total,
        l1_requirement_bytes=64,
        l2_requirement_bytes=1024,
        count=count,
    )


class TestLayerPerformance:
    def test_utilization(self):
        report = make_layer_performance(active=8, total=16)
        assert report.utilization == 0.5

    def test_zero_pes_guard(self):
        report = make_layer_performance(active=0, total=0)
        assert report.utilization == 0.0

    def test_totals_scale_with_count(self):
        report = make_layer_performance(latency=10.0, energy=5.0, count=3)
        assert report.total_latency == 30.0
        assert report.total_energy == 15.0

    def test_edp(self):
        report = make_layer_performance(latency=10.0, energy=5.0)
        assert report.edp == 50.0

    def test_bottleneck_is_largest_component(self):
        report = make_layer_performance(latency=100.0)
        assert report.bottleneck == "compute"


class TestModelPerformance:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            ModelPerformance(model_name="m", layers=())

    def test_aggregates(self):
        layers = (
            make_layer_performance("a", latency=10.0, energy=2.0, count=2),
            make_layer_performance("b", latency=5.0, energy=1.0, count=1),
        )
        performance = ModelPerformance(model_name="m", layers=layers)
        assert performance.latency == 25.0
        assert performance.energy == 5.0
        assert performance.edp == 125.0
        assert performance.macs == 3000
        assert performance.dram_bytes == pytest.approx(300.0)

    def test_requirements_are_maxima(self):
        a = make_layer_performance("a")
        b = LayerPerformance(
            layer_name="b", latency=1.0, compute_cycles=1.0, noc_cycles=1.0,
            dram_cycles=1.0, macs=10, l2_to_l1_bytes=1.0, dram_bytes=1.0,
            l1_access_bytes=1.0, energy=1.0, active_pes=1, num_pes=16,
            l1_requirement_bytes=4096, l2_requirement_bytes=2, count=1,
        )
        performance = ModelPerformance(model_name="m", layers=(a, b))
        assert performance.l1_requirement_bytes == 4096
        assert performance.l2_requirement_bytes == 1024

    def test_average_utilization_is_latency_weighted(self):
        heavy = make_layer_performance("heavy", latency=90.0, active=16, total=16)
        light = make_layer_performance("light", latency=10.0, active=4, total=16)
        performance = ModelPerformance(model_name="m", layers=(heavy, light))
        assert performance.average_utilization == pytest.approx(0.925)

    def test_per_layer_lookup(self):
        layers = (make_layer_performance("a"), make_layer_performance("b"))
        performance = ModelPerformance(model_name="m", layers=layers)
        assert set(performance.per_layer()) == {"a", "b"}
