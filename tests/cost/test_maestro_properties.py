"""Property-based tests (hypothesis) of cost-model invariants.

The cost model is the fitness landscape every optimizer walks; these
properties pin down the invariants the search relies on: positivity,
lower bounds, monotonicity under added resources, and insensitivity of
compulsory traffic to the mapping.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.maestro import CostModel
from repro.mapping.directives import LevelMapping
from repro.mapping.mapping import Mapping
from repro.workloads.dims import DIMS
from repro.workloads.layer import Layer

NOC = 32.0
DRAM = 8.0

_COST_MODEL = CostModel()


@st.composite
def layers(draw):
    """Random small-to-medium convolution or GEMM layers."""
    kind = draw(st.sampled_from(["conv", "gemm", "dwconv"]))
    if kind == "conv":
        return Layer.conv2d(
            "conv",
            in_channels=draw(st.integers(1, 128)),
            out_channels=draw(st.integers(1, 128)),
            out_hw=draw(st.integers(1, 32)),
            kernel=draw(st.sampled_from([1, 3, 5])),
            stride=draw(st.sampled_from([1, 2])),
        )
    if kind == "dwconv":
        return Layer.depthwise(
            "dw",
            channels=draw(st.integers(1, 256)),
            out_hw=draw(st.integers(1, 32)),
            kernel=draw(st.sampled_from([3, 5])),
            stride=draw(st.sampled_from([1, 2])),
        )
    return Layer.gemm(
        "gemm",
        m=draw(st.integers(1, 256)),
        n=draw(st.integers(1, 256)),
        k=draw(st.integers(1, 256)),
    )


@st.composite
def mappings(draw):
    """Random two-level mappings with bounded tiles and spatial sizes."""
    levels = []
    for _ in range(2):
        order = list(DIMS)
        permutation = draw(st.permutations(order))
        tiles = {dim: draw(st.integers(1, 64)) for dim in DIMS}
        levels.append(
            LevelMapping(
                spatial_size=draw(st.integers(1, 64)),
                parallel_dim=draw(st.sampled_from(DIMS)),
                order=tuple(permutation),
                tiles=tiles,
            )
        )
    return Mapping(levels=tuple(levels))


@settings(max_examples=60, deadline=None)
@given(layer=layers(), mapping=mappings())
def test_report_is_finite_and_positive(layer, mapping):
    report = _COST_MODEL.evaluate_layer(layer, mapping, NOC, DRAM)
    assert report.latency > 0
    assert report.energy > 0
    assert report.dram_bytes > 0
    assert report.compute_cycles > 0
    assert 0 < report.active_pes <= report.num_pes


@settings(max_examples=60, deadline=None)
@given(layer=layers(), mapping=mappings())
def test_latency_dominates_components(layer, mapping):
    report = _COST_MODEL.evaluate_layer(layer, mapping, NOC, DRAM)
    assert report.latency >= report.compute_cycles
    assert report.latency >= report.noc_cycles
    assert report.latency >= report.dram_cycles


@settings(max_examples=60, deadline=None)
@given(layer=layers(), mapping=mappings())
def test_compute_cycles_at_least_perfect_parallel(layer, mapping):
    report = _COST_MODEL.evaluate_layer(layer, mapping, NOC, DRAM)
    assert report.compute_cycles >= layer.macs / mapping.num_pes - 1e-9


def _touched_span(out_size: int, kernel: int, stride: int) -> int:
    """Distinct input positions read along one spatial axis.

    For ``stride <= kernel`` the sliding windows tile the whole halo span;
    for ``stride > kernel`` they leave gaps, so the halo-box size
    ``(out - 1) * stride + kernel`` overcounts what is actually fetched.
    """
    if stride <= kernel:
        return (out_size - 1) * stride + kernel
    return out_size * kernel


@settings(max_examples=60, deadline=None)
@given(layer=layers(), mapping=mappings())
def test_dram_traffic_at_least_compulsory(layer, mapping):
    report = _COST_MODEL.evaluate_layer(layer, mapping, NOC, DRAM)
    sizes = layer.tensor_sizes()
    dims = layer.dims
    touched_input = (
        dims["C"]
        * _touched_span(dims["Y"], dims["R"], layer.stride)
        * _touched_span(dims["X"], dims["S"], layer.stride)
    )
    compulsory = sizes["W"] + touched_input + sizes["O"]
    assert report.dram_bytes >= compulsory - 1e-9


@settings(max_examples=40, deadline=None)
@given(layer=layers(), mapping=mappings(), factor=st.sampled_from([2.0, 4.0, 8.0]))
def test_bandwidth_monotonicity(layer, mapping, factor):
    slow = _COST_MODEL.evaluate_layer(layer, mapping, NOC, DRAM)
    fast = _COST_MODEL.evaluate_layer(layer, mapping, NOC * factor, DRAM * factor)
    assert fast.latency <= slow.latency + 1e-9


@settings(max_examples=40, deadline=None)
@given(layer=layers(), mapping=mappings())
def test_clipping_is_idempotent_for_evaluation(layer, mapping):
    raw = _COST_MODEL.evaluate_layer(layer, mapping, NOC, DRAM)
    clipped = _COST_MODEL.evaluate_layer(
        layer, mapping.clipped_to_layer(layer), NOC, DRAM
    )
    assert raw.latency == clipped.latency
    assert raw.dram_bytes == clipped.dram_bytes
