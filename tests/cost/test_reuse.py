"""Tests for the loop-nest reuse analysis."""

import pytest

from repro.cost.reuse import (
    analyze_levels,
    operand_fetches,
    spatial_distinct_factor,
)
from repro.mapping.directives import LevelMapping
from repro.mapping.mapping import Mapping
from repro.workloads.dims import DIMS
from repro.workloads.layer import Layer


@pytest.fixture
def layer():
    return Layer.conv2d("conv", in_channels=32, out_channels=64, out_hw=16, kernel=3)


def make_mapping(l2_tiles, l1_tiles, l2_parallel="K", l1_parallel="C",
                 l2_order=DIMS, l1_order=DIMS, pe_array=(4, 8)):
    l2 = LevelMapping(spatial_size=pe_array[0], parallel_dim=l2_parallel,
                      order=l2_order, tiles=l2_tiles)
    l1 = LevelMapping(spatial_size=pe_array[1], parallel_dim=l1_parallel,
                      order=l1_order, tiles=l1_tiles)
    return Mapping(levels=(l2, l1))


class TestAnalyzeLevels:
    def test_trip_counts_are_ceil_divisions(self, layer):
        mapping = make_mapping(
            l2_tiles={"K": 16, "C": 32, "Y": 5, "X": 16, "R": 3, "S": 3},
            l1_tiles={"K": 1, "C": 4, "Y": 1, "X": 1, "R": 3, "S": 3},
        )
        outer, inner = analyze_levels(layer, mapping)
        # K is parallel at L2: ceil(64/16)=4 chunks over 4 clusters -> 1 fold.
        assert outer.trips["K"] == 1
        assert outer.active == 4
        assert outer.trips["C"] == 1          # 32/32
        assert outer.trips["Y"] == 4          # ceil(16/5)
        # Inner level: C parallel, ceil(32/4)=8 chunks over 8 PEs -> 1 fold.
        assert inner.trips["C"] == 1
        assert inner.active == 8
        assert inner.trips["K"] == 16         # 16/1
        assert inner.trips["Y"] == 5          # 5/1

    def test_spatial_folding_when_chunks_exceed_clusters(self, layer):
        mapping = make_mapping(
            l2_tiles={"K": 2, "C": 32, "Y": 16, "X": 16, "R": 3, "S": 3},
            l1_tiles={"K": 1, "C": 1, "Y": 1, "X": 1, "R": 1, "S": 1},
            pe_array=(4, 8),
        )
        outer, _ = analyze_levels(layer, mapping)
        # ceil(64/2)=32 chunks over 4 clusters -> 8 temporal folds.
        assert outer.active == 4
        assert outer.trips["K"] == 8

    def test_underutilization_when_dim_too_small(self, layer):
        mapping = make_mapping(
            l2_tiles={"K": 64, "C": 32, "Y": 16, "X": 16, "R": 3, "S": 3},
            l1_tiles={"K": 1, "C": 1, "Y": 1, "X": 1, "R": 1, "S": 1},
            l2_parallel="R",
            pe_array=(16, 8),
        )
        outer, _ = analyze_levels(layer, mapping)
        # R=3 with tile 3 -> only 1 chunk for 16 clusters.
        assert outer.active == 1
        assert outer.utilization == pytest.approx(1.0 / 16.0)

    def test_macro_extent_never_exceeds_parent(self, layer):
        mapping = make_mapping(
            l2_tiles={"K": 30, "C": 32, "Y": 16, "X": 16, "R": 3, "S": 3},
            l1_tiles={"K": 1, "C": 1, "Y": 1, "X": 1, "R": 1, "S": 1},
            pe_array=(4, 8),
        )
        outer, inner = analyze_levels(layer, mapping)
        for dim in DIMS:
            assert outer.macro[dim] <= layer.dims[dim]
            assert inner.macro[dim] <= outer.tile[dim]

    def test_total_trips_product(self, layer):
        mapping = make_mapping(
            l2_tiles={"K": 16, "C": 16, "Y": 8, "X": 8, "R": 3, "S": 3},
            l1_tiles={"K": 1, "C": 1, "Y": 1, "X": 1, "R": 1, "S": 1},
        )
        outer, _ = analyze_levels(layer, mapping)
        expected = 1
        for dim in DIMS:
            expected *= outer.trips[dim]
        assert outer.total_trips == expected


class TestOperandFetches:
    def test_weight_reuse_when_irrelevant_loops_inner(self, layer):
        # Order: C, K outermost; spatial loops (Y, X) innermost -> weights
        # stay resident across Y/X iterations.
        mapping = make_mapping(
            l2_tiles={"K": 8, "C": 8, "Y": 4, "X": 4, "R": 3, "S": 3},
            l1_tiles={"K": 1, "C": 1, "Y": 1, "X": 1, "R": 1, "S": 1},
            l2_order=("C", "K", "R", "S", "Y", "X"),
        )
        outer, _ = analyze_levels(layer, mapping)
        fetches = operand_fetches(outer, ("K", "C", "R", "S"))
        # Innermost relevant loop with >1 trips is K (C has 4 trips too).
        assert fetches == outer.trips["C"] * outer.trips["K"]

    def test_weight_refetch_when_irrelevant_loops_outer(self, layer):
        # Y outermost: every Y iteration re-sweeps the weights.
        mapping = make_mapping(
            l2_tiles={"K": 8, "C": 8, "Y": 4, "X": 4, "R": 3, "S": 3},
            l1_tiles={"K": 1, "C": 1, "Y": 1, "X": 1, "R": 1, "S": 1},
            l2_order=("Y", "X", "C", "K", "R", "S"),
        )
        outer, _ = analyze_levels(layer, mapping)
        fetches = operand_fetches(outer, ("K", "C", "R", "S"))
        expected = (
            outer.trips["Y"] * outer.trips["X"] * outer.trips["C"] * outer.trips["K"]
        )
        assert fetches == expected

    def test_order_changes_fetch_count(self, layer):
        tiles = {"K": 8, "C": 8, "Y": 4, "X": 4, "R": 3, "S": 3}
        inner = {"K": 1, "C": 1, "Y": 1, "X": 1, "R": 1, "S": 1}
        weight_friendly = make_mapping(tiles, inner, l2_order=("C", "K", "Y", "X", "R", "S"))
        weight_hostile = make_mapping(tiles, inner, l2_order=("Y", "X", "C", "K", "R", "S"))
        friendly = operand_fetches(
            analyze_levels(layer, weight_friendly)[0], ("K", "C", "R", "S")
        )
        hostile = operand_fetches(
            analyze_levels(layer, weight_hostile)[0], ("K", "C", "R", "S")
        )
        assert hostile > friendly

    def test_single_fetch_when_everything_fits(self, layer):
        mapping = make_mapping(
            l2_tiles={dim: layer.dims[dim] for dim in DIMS},
            l1_tiles={"K": 1, "C": 1, "Y": 1, "X": 1, "R": 1, "S": 1},
        )
        outer, _ = analyze_levels(layer, mapping)
        assert operand_fetches(outer, ("K", "C", "R", "S")) == 1
        assert operand_fetches(outer, ("C", "Y", "X", "R", "S")) == 1

    def test_fetches_at_least_one(self, layer, simple_mapping):
        for analysis in analyze_levels(layer, simple_mapping):
            for relevant in (("K",), ("C", "Y"), DIMS):
                assert operand_fetches(analysis, relevant) >= 1


class TestSpatialDistinctFactor:
    def test_relevant_parallel_dim_multiplies(self, layer):
        mapping = make_mapping(
            l2_tiles={"K": 4, "C": 32, "Y": 16, "X": 16, "R": 3, "S": 3},
            l1_tiles={"K": 1, "C": 4, "Y": 1, "X": 1, "R": 1, "S": 1},
            l2_parallel="K",
            l1_parallel="C",
            pe_array=(4, 8),
        )
        analyses = analyze_levels(layer, mapping)
        # Weights are indexed by both K (L2 parallel) and C (L1 parallel).
        factor = spatial_distinct_factor(analyses, 1, ("K", "C", "R", "S"))
        assert factor == analyses[0].active * analyses[1].active

    def test_irrelevant_parallel_dim_multicasts(self, layer):
        mapping = make_mapping(
            l2_tiles={"K": 4, "C": 32, "Y": 16, "X": 16, "R": 3, "S": 3},
            l1_tiles={"K": 1, "C": 4, "Y": 1, "X": 1, "R": 1, "S": 1},
            l2_parallel="K",
            l1_parallel="C",
        )
        analyses = analyze_levels(layer, mapping)
        # Outputs are not indexed by C, so the L1 level multicasts...
        # but C is a reduction dim, so outputs still need collection.
        outputs = spatial_distinct_factor(analyses, 1, ("K", "Y", "X"), is_output=True)
        assert outputs == analyses[0].active * analyses[1].active
        # Inputs are not indexed by K: the L2 level multicasts them.
        inputs = spatial_distinct_factor(analyses, 1, ("C", "Y", "X", "R", "S"))
        assert inputs == analyses[1].active
