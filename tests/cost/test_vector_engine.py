"""Bit-identical parity of the vector (population-axis) engine.

The NumPy structure-of-arrays engine evaluates whole batches of
(layer, mapping) rows in one pass; the hard invariant is that every field
of every report — and therefore every fitness, cache entry and search
trajectory — is *bit-identical* to the scalar fast engine and the seed
reference implementation.  These tests sweep seeded random repaired
genomes over real models and platforms and compare with ``==`` (no
tolerances), and additionally exercise every scalar-fallback trigger:
non-two-level hierarchies, oversized layer statics, sub-threshold batches
and 2**53-scale intermediates.
"""

from __future__ import annotations

from dataclasses import fields

import numpy as np
import pytest

from repro.arch.platform import CLOUD, EDGE
from repro.cost.maestro import CostModel, LazyModelPerformance
from repro.cost.vector_engine import MIN_VECTOR_ROWS
from repro.encoding.genome import GenomeSpace
from repro.encoding.repair import repair_genome, repaired_copy
from repro.framework.evaluator import DesignEvaluator
from repro.mapping.mapping import Mapping, mapping_from_cache_key, uniform_mapping
from repro.workloads.layer import Layer
from repro.workloads.model import Model
from repro.workloads.registry import get_model

PLATFORMS = pytest.mark.parametrize("platform", [EDGE, CLOUD], ids=["edge", "cloud"])


def _random_mappings(model, count, seed, num_levels=2):
    space = GenomeSpace.from_model(model, max_pes=4096, num_levels=num_levels)
    rng = np.random.default_rng(seed)
    return [
        repair_genome(space.random_genome(rng), space).to_mapping()
        for _ in range(count)
    ]


def _assert_reports_identical(batch_performance, scalar_performance):
    assert batch_performance.latency == scalar_performance.latency
    assert batch_performance.energy == scalar_performance.energy
    assert (
        batch_performance.l1_requirement_bytes
        == scalar_performance.l1_requirement_bytes
    )
    assert (
        batch_performance.l2_requirement_bytes
        == scalar_performance.l2_requirement_bytes
    )
    for batch_layer, scalar_layer in zip(
        batch_performance.layers, scalar_performance.layers
    ):
        for field in fields(scalar_layer):
            batch_value = getattr(batch_layer, field.name)
            scalar_value = getattr(scalar_layer, field.name)
            assert batch_value == scalar_value, (
                f"{field.name}: vector={batch_value!r} scalar={scalar_value!r}"
            )
            assert type(batch_value) is type(scalar_value), field.name


class TestBatchMatchesScalar:
    @PLATFORMS
    @pytest.mark.parametrize("model_name", ["resnet18", "mobilenet_v2", "dlrm"])
    def test_random_repaired_genomes(self, platform, model_name):
        model = get_model(model_name)
        mappings = _random_mappings(model, 25, seed=2022)
        batch_model = CostModel()
        scalar_model = CostModel()
        batch = batch_model.evaluate_model_batch(
            model, mappings, platform.noc_bandwidth, platform.dram_bandwidth
        )
        for mapping, batch_performance in zip(mappings, batch):
            scalar = scalar_model.evaluate_model(
                model, mapping, platform.noc_bandwidth, platform.dram_bandwidth
            )
            _assert_reports_identical(batch_performance, scalar)
        stats = batch_model.vector_stats
        assert stats["rows_vectorized"] > 0
        assert stats["rows_fallback"] == 0

    def test_reference_engine_agrees(self):
        model = get_model("resnet18")
        mappings = _random_mappings(model, 6, seed=7)
        batch = CostModel().evaluate_model_batch(model, mappings, 64.0, 16.0)
        reference = CostModel(engine="reference")
        for mapping, batch_performance in zip(mappings, batch):
            scalar = reference.evaluate_model(model, mapping, 64.0, 16.0)
            _assert_reports_identical(batch_performance, scalar)

    def test_raw_cache_key_parts_match_mapping_objects(self):
        model = get_model("ncf")
        mappings = _random_mappings(model, 10, seed=3)
        from_mappings = CostModel().evaluate_model_batch(model, mappings, 64.0, 16.0)
        from_parts = CostModel().evaluate_model_batch(
            model, [mapping.cache_key() for mapping in mappings], 64.0, 16.0
        )
        for a, b in zip(from_mappings, from_parts):
            _assert_reports_identical(a, b)

    def test_cache_counters_match_sequential_path(self):
        model = get_model("ncf")
        mappings = _random_mappings(model, 12, seed=5)
        mappings = mappings + mappings[:4]  # duplicates within the batch
        batch_model = CostModel()
        scalar_model = CostModel()
        batch_model.evaluate_model_batch(model, mappings, 64.0, 16.0)
        for mapping in mappings:
            scalar_model.evaluate_model(model, mapping, 64.0, 16.0)
        assert batch_model.cache_stats.hits == scalar_model.cache_stats.hits
        assert batch_model.cache_stats.misses == scalar_model.cache_stats.misses
        assert batch_model.cache_stats.size == scalar_model.cache_stats.size

    def test_batch_warms_the_cache_for_the_scalar_path(self):
        model = get_model("ncf")
        mappings = _random_mappings(model, 5, seed=9)
        cost_model = CostModel()
        cost_model.evaluate_model_batch(model, mappings, 64.0, 16.0)
        before = cost_model.cache_stats
        cost_model.evaluate_model(model, mappings[0], 64.0, 16.0)
        after = cost_model.cache_stats
        assert after.hits - before.hits == len(model.unique_layers())


class TestScalarFallbacks:
    @pytest.mark.parametrize("num_levels", [1, 3])
    def test_non_default_hierarchy_depths(self, num_levels):
        # Depth is a parameter, not a fallback trigger: 1- and 3-level
        # batches ride the vector path and match the scalar engine exactly.
        model = get_model("ncf")
        mappings = _random_mappings(model, 8, seed=11, num_levels=num_levels)
        batch_model = CostModel()
        batch = batch_model.evaluate_model_batch(model, mappings, 64.0, 16.0)
        scalar_model = CostModel()
        for mapping, batch_performance in zip(mappings, batch):
            scalar = scalar_model.evaluate_model(model, mapping, 64.0, 16.0)
            _assert_reports_identical(batch_performance, scalar)
        assert batch_model.vector_stats["rows_vectorized"] > 0
        assert batch_model.vector_stats["fallback_depth"] == 0
        assert batch_model.vector_stats["rows_fallback"] == 0

    def test_mixed_depth_batches_group_by_depth(self):
        # One call containing 1-, 2- and 3-level mappings vectorizes every
        # depth group (each is >= MIN_VECTOR_ROWS rows) without fallback.
        model = get_model("ncf")
        mappings = []
        for num_levels in (1, 2, 3):
            mappings += _random_mappings(
                model, 2 * MIN_VECTOR_ROWS, seed=41 + num_levels,
                num_levels=num_levels,
            )
        batch_model = CostModel()
        batch = batch_model.evaluate_model_batch(model, mappings, 64.0, 16.0)
        scalar_model = CostModel()
        for mapping, batch_performance in zip(mappings, batch):
            scalar = scalar_model.evaluate_model(model, mapping, 64.0, 16.0)
            _assert_reports_identical(batch_performance, scalar)
        assert batch_model.vector_stats["rows_fallback"] == 0
        assert batch_model.vector_stats["rows_vectorized"] > 0

    def test_oversized_layer_statics_fall_back(self):
        # macs = 2**60 >= 2**53: float64 cannot hold the integer chain.
        layer = Layer.conv2d("huge", 2**20, 2**20, (2**10, 2**10), 1)
        model = Model(name="huge", layers=(layer,))
        mappings = _random_mappings(model, 3 * MIN_VECTOR_ROWS, seed=31)
        batch_model = CostModel()
        batch = batch_model.evaluate_model_batch(model, mappings, 64.0, 16.0)
        scalar_model = CostModel()
        for mapping, batch_performance in zip(mappings, batch):
            scalar = scalar_model.evaluate_model(model, mapping, 64.0, 16.0)
            _assert_reports_identical(batch_performance, scalar)
        assert batch_model.vector_stats["rows_vectorized"] == 0
        assert batch_model.vector_stats["rows_fallback"] > 0

    def test_large_intermediate_products_fall_back_row_wise(self):
        # Statics stay vectorizable (macs = 2**40) but the input-halo
        # footprint c * in_y * in_x crosses 2**53 mid-chain on full L2
        # tiles, so such rows are flagged inexact and must reproduce the
        # scalar engine's exact bits.
        layer = Layer.conv2d(
            "strided", 2**10, 1, (2**15, 2**15), 1, stride=2**20
        )
        model = Model(name="strided", layers=(layer,))
        mappings = [uniform_mapping(layer, (4, 4), ("Y", "X"))]
        mappings += _random_mappings(model, 3 * MIN_VECTOR_ROWS, seed=37)
        batch_model = CostModel()
        batch = batch_model.evaluate_model_batch(model, mappings, 64.0, 16.0)
        scalar_model = CostModel()
        for mapping, batch_performance in zip(mappings, batch):
            scalar = scalar_model.evaluate_model(model, mapping, 64.0, 16.0)
            _assert_reports_identical(batch_performance, scalar)
        assert batch_model.vector_stats["rows_fallback"] > 0
        assert batch_model.vector_stats["rows_vectorized"] > 0

    def test_unflagged_final_products_beyond_2_53_stay_exact(self):
        # Traffic terms that only feed the float accumulation carry no
        # exactness flag even past 2**53: IEEE-754 rounds the product of
        # exact operands once, exactly like the scalar engine's int->float
        # conversion.  This pins that reasoning with dram terms ~2**54
        # (unit K/C tiles + K ordered outside C maximise input re-fetch)
        # evaluated WITHOUT any scalar fallback.
        from repro.mapping.directives import LevelMapping

        layer = Layer.conv2d("big", 2**10, 2**10, (2**15, 2**15), 1, stride=4)
        assert layer.macs < 2**53  # stays on the vectorized path
        model = Model(name="big", layers=(layer,))
        order = ("Y", "X", "R", "S", "K", "C")
        inner = LevelMapping(
            spatial_size=4, parallel_dim="X", order=order,
            tiles={"K": 1, "C": 1, "Y": 1, "X": 1, "R": 1, "S": 1},
        )
        mappings = [
            Mapping(levels=(
                LevelMapping(
                    spatial_size=4, parallel_dim="Y", order=order,
                    tiles={"K": 1, "C": c_tile, "Y": 2**15, "X": 2**15,
                           "R": 1, "S": 1},
                ),
                inner,
            ))
            for c_tile in (1, 2, 3, 5, 7, 11, 13, 17, 19)
        ]
        batch_model = CostModel()
        batch = batch_model.evaluate_model_batch(model, mappings, 64.0, 16.0)
        scalar_model = CostModel()
        assert any(
            performance.layers[0].dram_bytes >= 2.0**53 for performance in batch
        )
        for mapping, batch_performance in zip(mappings, batch):
            scalar = scalar_model.evaluate_model(model, mapping, 64.0, 16.0)
            _assert_reports_identical(batch_performance, scalar)
        assert batch_model.vector_stats["rows_fallback"] == 0

    def test_small_batches_use_the_scalar_engine(self):
        model = get_model("ncf")
        num_rows = max(1, (MIN_VECTOR_ROWS - 1) // len(model.unique_layers()))
        mappings = _random_mappings(model, num_rows, seed=13)
        batch_model = CostModel()
        batch = batch_model.evaluate_model_batch(model, mappings, 64.0, 16.0)
        scalar = CostModel()
        for mapping, batch_performance in zip(mappings, batch):
            _assert_reports_identical(
                batch_performance,
                scalar.evaluate_model(model, mapping, 64.0, 16.0),
            )
        assert batch_model.vector_stats["rows_vectorized"] == 0


class TestMappingFromCacheKey:
    def test_rebuilds_field_identical_mappings(self):
        model = get_model("resnet18")
        for mapping in _random_mappings(model, 10, seed=17):
            rebuilt = mapping_from_cache_key(mapping.cache_key())
            assert rebuilt == mapping
            assert rebuilt.cache_key() == mapping.cache_key()
            assert rebuilt.pe_array == mapping.pe_array
            for rebuilt_level, level in zip(rebuilt.levels, mapping.levels):
                assert rebuilt_level.tiles_tuple == level.tiles_tuple
                assert rebuilt_level.order_indexes == level.order_indexes
                assert rebuilt_level.static_key == level.static_key

    def test_rejects_non_permutation_orders(self):
        mapping = _random_mappings(get_model("ncf"), 1, seed=1)[0]
        (static, tiles), rest = mapping.cache_key()[0], mapping.cache_key()[1]
        broken = (((static[0], static[1], (0, 0, 2, 3, 4, 5)), tiles), rest)
        with pytest.raises(ValueError):
            mapping_from_cache_key(broken)


class TestLazyContainers:
    def test_lazy_performance_materializes_consistently(self):
        model = get_model("ncf")
        mapping = _random_mappings(model, 1, seed=19)[0]
        batch = CostModel().evaluate_model_batch(model, [mapping], 64.0, 16.0)[0]
        eager = CostModel().evaluate_model(model, mapping, 64.0, 16.0)
        assert isinstance(batch, LazyModelPerformance)
        # Derived properties that go through the lazy layers.
        assert batch.dram_bytes == eager.dram_bytes
        assert batch.macs == eager.macs
        assert batch.average_utilization == eager.average_utilization
        assert batch.num_pes == eager.num_pes
        assert batch.per_layer().keys() == eager.per_layer().keys()
        assert batch.summary() == eager.summary()

    def test_vector_results_serialize_like_scalar_results(self):
        from repro.serialization import search_result_to_dict
        from repro.framework.search import SearchResult

        model = get_model("ncf")
        vector = DesignEvaluator(model=model, platform=EDGE, engine="vector")
        scalar = DesignEvaluator(model=model, platform=EDGE, engine="fast")
        space = vector.genome_space()
        rng = np.random.default_rng(23)
        genomes = [
            repaired_copy(space.random_genome(rng), space) for _ in range(6)
        ]
        vector_results = vector.evaluate_population(genomes)
        scalar_results = [scalar.evaluate_genome(genome) for genome in genomes]

        def as_dict(result):
            return search_result_to_dict(
                SearchResult(
                    optimizer_name="test",
                    best=result,
                    evaluations=1,
                    sampling_budget=1,
                    wall_time_seconds=1.0,
                )
            )

        for vector_result, scalar_result in zip(vector_results, scalar_results):
            assert as_dict(vector_result) == as_dict(scalar_result)


class TestRepairedCopy:
    def test_matches_repair_of_a_copy(self):
        model = get_model("resnet18")
        space = GenomeSpace.from_model(model, max_pes=4096)
        rng = np.random.default_rng(29)
        for _ in range(40):
            genome = space.random_genome(rng)
            # Corrupt some genes so repair actually has work to do.
            genome.levels[0].spatial_size = int(rng.integers(-3, 9000))
            genome.levels[0].tiles["K"] = int(rng.integers(-2, 9999))
            if rng.random() < 0.5:
                genome.levels[1].order[0] = genome.levels[1].order[1]
            if rng.random() < 0.3:
                genome.levels[1].parallel_dim = "bogus"
            via_copy = repair_genome(genome.copy(), space)
            fused = repaired_copy(genome, space)
            assert fused.cache_key() == via_copy.cache_key()
            for fused_level, copied_level in zip(fused.levels, via_copy.levels):
                assert fused_level.order == copied_level.order
                assert fused_level.tiles == copied_level.tiles
                assert fused_level.spatial_size == copied_level.spatial_size
                assert fused_level.parallel_dim == copied_level.parallel_dim

    def test_leaves_the_original_untouched(self):
        model = get_model("ncf")
        space = GenomeSpace.from_model(model, max_pes=256)
        genome = space.random_genome(np.random.default_rng(0))
        genome.levels[0].tiles["K"] = 10**9
        before = genome.levels[0].tiles["K"]
        repaired_copy(genome, space)
        assert genome.levels[0].tiles["K"] == before
