"""Tests for the MAESTRO-style analytical cost model."""

import pytest

from repro.cost.maestro import CostModel
from repro.mapping.dataflows import dla_like, shi_like
from repro.mapping.directives import LevelMapping
from repro.mapping.mapping import Mapping, uniform_mapping
from repro.workloads.layer import Layer
from repro.workloads.model import build_model

NOC = 32.0
DRAM = 8.0


@pytest.fixture
def cost_model():
    return CostModel()


class TestLayerEvaluation:
    def test_report_fields_are_consistent(self, cost_model, conv_layer, simple_mapping):
        report = cost_model.evaluate_layer(conv_layer, simple_mapping, NOC, DRAM)
        assert report.latency >= max(
            report.compute_cycles, report.noc_cycles, report.dram_cycles
        )
        assert report.macs == conv_layer.macs
        assert report.num_pes == simple_mapping.num_pes
        assert 0 < report.active_pes <= report.num_pes
        assert 0.0 < report.utilization <= 1.0
        assert report.energy > 0
        assert report.bottleneck in ("compute", "noc", "dram")

    def test_latency_at_least_macs_over_pes(self, cost_model, conv_layer, simple_mapping):
        # No schedule can beat perfect parallelization over the active PEs.
        report = cost_model.evaluate_layer(conv_layer, simple_mapping, NOC, DRAM)
        assert report.latency >= conv_layer.macs / report.num_pes

    def test_dram_traffic_at_least_compulsory(self, cost_model, conv_layer, simple_mapping):
        # Each tensor must be moved at least once.
        report = cost_model.evaluate_layer(conv_layer, simple_mapping, NOC, DRAM)
        sizes = conv_layer.tensor_sizes()
        assert report.dram_bytes >= sum(sizes.values())

    def test_more_pes_reduce_compute_cycles(self, cost_model, conv_layer):
        small = uniform_mapping(conv_layer, (2, 2), ("K", "C"))
        small = small.with_level(1, small.levels[1].with_tiles(R=3, S=3))
        large = uniform_mapping(conv_layer, (16, 16), ("K", "C"))
        large = large.with_level(1, large.levels[1].with_tiles(R=3, S=3))
        report_small = cost_model.evaluate_layer(conv_layer, small, NOC, DRAM)
        report_large = cost_model.evaluate_layer(conv_layer, large, NOC, DRAM)
        assert report_large.compute_cycles < report_small.compute_cycles

    def test_higher_bandwidth_never_hurts(self, cost_model, conv_layer, simple_mapping):
        slow = cost_model.evaluate_layer(conv_layer, simple_mapping, NOC, DRAM)
        fast = cost_model.evaluate_layer(conv_layer, simple_mapping, NOC * 4, DRAM * 4)
        assert fast.latency <= slow.latency

    def test_loop_order_affects_traffic(self, cost_model, conv_layer):
        tiles_l2 = {"K": 16, "C": 16, "Y": 4, "X": 4, "R": 3, "S": 3}
        tiles_l1 = {"K": 1, "C": 1, "Y": 1, "X": 1, "R": 3, "S": 3}
        weight_friendly = Mapping(levels=(
            LevelMapping(8, "K", ("C", "K", "R", "S", "Y", "X"), tiles_l2),
            LevelMapping(8, "C", ("C", "K", "R", "S", "Y", "X"), tiles_l1),
        ))
        weight_hostile = Mapping(levels=(
            LevelMapping(8, "K", ("Y", "X", "C", "K", "R", "S"), tiles_l2),
            LevelMapping(8, "C", ("Y", "X", "C", "K", "R", "S"), tiles_l1),
        ))
        friendly = cost_model.evaluate_layer(conv_layer, weight_friendly, NOC, DRAM)
        hostile = cost_model.evaluate_layer(conv_layer, weight_hostile, NOC, DRAM)
        assert friendly.dram_bytes != hostile.dram_bytes

    def test_parallelizing_a_tiny_dim_wastes_pes(self, cost_model, conv_layer):
        # Parallelizing R (=3) over 64 PEs leaves most of them idle.
        good = uniform_mapping(conv_layer, (8, 8), ("K", "C"))
        bad = uniform_mapping(conv_layer, (8, 8), ("R", "S"))
        report_good = cost_model.evaluate_layer(conv_layer, good, NOC, DRAM)
        report_bad = cost_model.evaluate_layer(conv_layer, bad, NOC, DRAM)
        assert report_bad.active_pes < report_good.active_pes
        assert report_bad.compute_cycles > report_good.compute_cycles

    def test_buffer_requirements_forwarded(self, cost_model, conv_layer, simple_mapping):
        report = cost_model.evaluate_layer(conv_layer, simple_mapping, NOC, DRAM)
        assert report.l1_requirement_bytes > 0
        assert report.l2_requirement_bytes >= report.l1_requirement_bytes

    def test_invalid_bandwidths_rejected(self, cost_model, conv_layer, simple_mapping):
        with pytest.raises(ValueError):
            cost_model.evaluate_layer(conv_layer, simple_mapping, 0.0, DRAM)
        with pytest.raises(ValueError):
            cost_model.evaluate_layer(conv_layer, simple_mapping, NOC, -1.0)

    def test_gemm_and_depthwise_layers_evaluate(self, cost_model, gemm_layer, depthwise_layer):
        for layer in (gemm_layer, depthwise_layer):
            mapping = uniform_mapping(layer, (4, 8), ("K", "C"))
            report = cost_model.evaluate_layer(layer, mapping, NOC, DRAM)
            assert report.latency > 0
            assert report.macs == layer.macs

    def test_bytes_per_element_scales_traffic(self, conv_layer, simple_mapping):
        one = CostModel(bytes_per_element=1).evaluate_layer(
            conv_layer, simple_mapping, NOC, DRAM
        )
        two = CostModel(bytes_per_element=2).evaluate_layer(
            conv_layer, simple_mapping, NOC, DRAM
        )
        assert two.dram_bytes == pytest.approx(2 * one.dram_bytes)
        assert two.l2_to_l1_bytes == pytest.approx(2 * one.l2_to_l1_bytes)


class TestDataflowContrast:
    def test_channel_parallel_beats_pixel_parallel_on_late_convs(self, cost_model):
        # A deep, spatially small layer (e.g. ResNet stage 4) has few pixels
        # but many channels, so dla-like (K/C parallel) should clearly beat
        # shi-like (Y/X parallel).  This is the behaviour the co-optimizer
        # exploits when it picks per-model parallelism.
        layer = Layer.conv2d("late", 512, 512, 7, 3)
        dla = cost_model.evaluate_layer(layer, dla_like(layer, (16, 16)), NOC, DRAM)
        shi = cost_model.evaluate_layer(layer, shi_like(layer, (16, 16)), NOC, DRAM)
        assert dla.latency < shi.latency


class TestModelEvaluation:
    def test_model_latency_is_sum_of_layer_latencies(self, cost_model, tiny_model):
        mapping = uniform_mapping(tiny_model.layers[0], (4, 8), ("K", "C"))
        performance = cost_model.evaluate_model(tiny_model, mapping, NOC, DRAM)
        assert performance.latency == pytest.approx(
            sum(layer.total_latency for layer in performance.layers)
        )
        assert performance.model_name == tiny_model.name

    def test_layer_counts_respected(self, cost_model):
        base = Layer.conv2d("once", 16, 16, 8, 3)
        repeated = Layer.conv2d("thrice", 16, 16, 8, 3, count=3)
        model_once = build_model("m1", [base])
        model_thrice = build_model("m3", [repeated])
        mapping = uniform_mapping(base, (4, 4), ("K", "C"))
        once = cost_model.evaluate_model(model_once, mapping, NOC, DRAM)
        thrice = cost_model.evaluate_model(model_thrice, mapping, NOC, DRAM)
        assert thrice.latency == pytest.approx(3 * once.latency)

    def test_per_layer_mapping_dict(self, cost_model, tiny_model):
        mappings = {
            layer.name: uniform_mapping(layer, (4, 8), ("K", "C"))
            for layer in tiny_model.unique_layers()
        }
        performance = cost_model.evaluate_model(tiny_model, mappings, NOC, DRAM)
        assert len(performance.layers) == len(tiny_model.unique_layers())

    def test_missing_mapping_raises(self, cost_model, tiny_model):
        with pytest.raises(KeyError):
            cost_model.evaluate_model(tiny_model, {}, NOC, DRAM)

    def test_callable_mapping_provider(self, cost_model, tiny_model):
        performance = cost_model.evaluate_model(
            tiny_model,
            lambda layer: uniform_mapping(layer, (4, 8), ("K", "C")),
            NOC,
            DRAM,
        )
        assert performance.latency > 0

    def test_requirements_are_max_over_layers(self, cost_model, tiny_model):
        mapping = uniform_mapping(tiny_model.layers[0], (4, 8), ("K", "C"))
        performance = cost_model.evaluate_model(tiny_model, mapping, NOC, DRAM)
        assert performance.l1_requirement_bytes == max(
            layer.l1_requirement_bytes for layer in performance.layers
        )
        assert performance.l2_requirement_bytes == max(
            layer.l2_requirement_bytes for layer in performance.layers
        )

    def test_summary_readable(self, cost_model, tiny_model):
        mapping = uniform_mapping(tiny_model.layers[0], (4, 8), ("K", "C"))
        performance = cost_model.evaluate_model(tiny_model, mapping, NOC, DRAM)
        text = performance.summary()
        assert tiny_model.name in text
        for layer in performance.layers:
            assert layer.layer_name in text
