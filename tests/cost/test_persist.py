"""Tests for the persistent cross-run layer-cache tier.

Covers the on-disk store's crash-safety contract (truncation healing,
torn-index rebuild, version quarantine, tampered records served as
misses), the digest scheme's anti-aliasing, and the end-to-end tiering:
a warm rerun must answer its layer pricings from disk with bit-identical
results.
"""

import hashlib
import pickle

import pytest

from repro.cost.cache import LRUCache
from repro.cost.maestro import CostModel
from repro.cost.persist import (
    FORMAT_NAME,
    PersistentCacheCorruption,
    PersistentLayerCache,
    cache_namespace,
    matrix_row_digest,
    statics_blob,
    tuple_key_digest,
)
from repro.workloads.statics import layer_statics
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.objective import Objective
from repro.optim.registry import get_optimizer

NOC = 32.0
DRAM = 8.0


def _digest(tag: str) -> bytes:
    return hashlib.sha1(tag.encode()).digest()


def _fill(cache: PersistentLayerCache, count: int, tag: str = "row") -> None:
    for i in range(count):
        cache.put(_digest(f"{tag}{i}"), (i, float(i) * 1.5, i * 3))
    cache.flush()


class TestStoreRoundtrip:
    def test_put_flush_get_same_instance(self, tmp_path):
        cache = PersistentLayerCache(tmp_path)
        cache.put(_digest("a"), (1, 2.5, 3))
        assert cache.get(_digest("a")) == (1, 2.5, 3)  # buffered, pre-flush
        cache.flush()
        assert cache.get(_digest("a")) == (1, 2.5, 3)
        assert cache.get(_digest("missing")) is None
        assert cache.counters() == {"l2_hits": 2, "l2_misses": 1, "l2_writes": 1}

    def test_cross_instance_warm_reuse(self, tmp_path):
        first = PersistentLayerCache(tmp_path)
        _fill(first, 5)
        first.close()

        second = PersistentLayerCache(tmp_path)
        for i in range(5):
            assert second.get(_digest(f"row{i}")) == (i, float(i) * 1.5, i * 3)
        assert second.loaded_entries == 5
        assert second.counters()["l2_hits"] == 5
        assert second.counters()["l2_writes"] == 0

    def test_values_round_trip_floats_exactly(self, tmp_path):
        cache = PersistentLayerCache(tmp_path)
        values = (0.1 + 0.2, 1e-300, 2**53 + 1.0, 12345678901234567)
        cache.put(_digest("exact"), values)
        cache.close()
        reopened = PersistentLayerCache(tmp_path)
        assert reopened.get(_digest("exact")) == values

    def test_put_deduplicates(self, tmp_path):
        cache = PersistentLayerCache(tmp_path)
        cache.put(_digest("a"), (1,))
        cache.put(_digest("a"), (1,))
        cache.flush()
        cache.put(_digest("a"), (1,))
        assert cache.counters()["l2_writes"] == 1
        assert cache.entries == 1

    def test_close_is_idempotent_and_reopenable(self, tmp_path):
        cache = PersistentLayerCache(tmp_path)
        _fill(cache, 2)
        cache.close()
        cache.close()
        assert cache.get(_digest("row0")) == (0, 0.0, 0)  # reopens lazily
        cache.put(_digest("late"), (9,))
        cache.close()
        assert PersistentLayerCache(tmp_path).get(_digest("late")) == (9,)

    def test_pickles_by_path_not_contents(self, tmp_path):
        cache = PersistentLayerCache(tmp_path, durability="fsync")
        _fill(cache, 3)
        cache.close()
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.durability == "fsync"
        assert clone.counters()["l2_hits"] == 0  # counters are per-process
        assert clone.get(_digest("row1")) == (1, 1.5, 3)

    def test_rejects_unknown_durability(self, tmp_path):
        with pytest.raises(ValueError, match="durability"):
            PersistentLayerCache(tmp_path, durability="yolo")


class TestCorruptionHandling:
    def test_truncated_data_file_heals(self, tmp_path):
        cache = PersistentLayerCache(tmp_path)
        _fill(cache, 4)
        cache.close()

        # Kill the last record mid-line, as a dying writer would.
        data = cache.data_path.read_bytes()
        cache.data_path.write_bytes(data[:-9])

        with pytest.warns(PersistentCacheCorruption):
            survivor = PersistentLayerCache(tmp_path)
            assert survivor.get(_digest("row3")) is None  # the torn row
        for i in range(3):
            assert survivor.get(_digest(f"row{i}")) is not None
        assert survivor.corrupt_lines == 1

        # The next append closes the partial line; both rows then serve.
        survivor.put(_digest("fresh"), (7,))
        survivor.close()
        healed = PersistentLayerCache(tmp_path)
        assert healed.get(_digest("fresh")) == (7,)
        assert healed.get(_digest("row2")) is not None

    def test_torn_index_is_rebuilt_from_data(self, tmp_path):
        cache = PersistentLayerCache(tmp_path)
        _fill(cache, 4)
        cache.close()

        # Tear the index mid-entry: it is only an accelerator, so every
        # row must still be served after a rescan of the data file.
        raw = cache.index_path.read_bytes()
        cache.index_path.write_bytes(raw[: len(raw) - 7])

        reopened = PersistentLayerCache(tmp_path)
        for i in range(4):
            assert reopened.get(_digest(f"row{i}")) is not None
        assert reopened.corrupt_lines == 0

    def test_missing_index_is_fine(self, tmp_path):
        cache = PersistentLayerCache(tmp_path)
        _fill(cache, 3)
        cache.close()
        cache.index_path.unlink()
        assert PersistentLayerCache(tmp_path).get(_digest("row1")) is not None

    def test_version_mismatch_quarantines(self, tmp_path):
        store = tmp_path / "layers.jsonl"
        store.write_text(
            '{"format": "%s", "version": 1, "key_version": 999}\n'
            '{"k": "%s", "v": [1]}\n' % (FORMAT_NAME, _digest("old").hex())
        )
        with pytest.warns(PersistentCacheCorruption, match="quarantined"):
            cache = PersistentLayerCache(tmp_path)
            assert cache.get(_digest("old")) is None  # never served
        assert (tmp_path / "layers.jsonl.quarantined").exists()
        # The store keeps working after quarantine.
        cache.put(_digest("new"), (2,))
        cache.flush()
        assert cache.get(_digest("new")) == (2,)

    def test_foreign_file_quarantines(self, tmp_path):
        (tmp_path / "layers.jsonl").write_bytes(b"\x00\xffnot a cache\n")
        cache = PersistentLayerCache(tmp_path)
        with pytest.warns(PersistentCacheCorruption):
            assert cache.entries == 0  # first access opens and quarantines

    def test_tampered_record_serves_as_miss(self, tmp_path):
        cache = PersistentLayerCache(tmp_path)
        _fill(cache, 1)
        cache.close()

        # Re-key the record in place (same length) after the index was
        # written: the pread re-verification must refuse to serve it.
        data = cache.data_path.read_bytes()
        honest = _digest("row0").hex().encode()
        forged = _digest("evil").hex().encode()
        cache.data_path.write_bytes(data.replace(honest, forged))

        reopened = PersistentLayerCache(tmp_path)
        with pytest.warns(PersistentCacheCorruption, match="unreadable"):
            assert reopened.get(_digest("row0")) is None
        assert reopened.corrupt_lines == 1
        # Dropped, not retried: the second lookup is a plain miss.
        assert reopened.get(_digest("row0")) is None

    def test_garbage_lines_are_skipped_not_served(self, tmp_path):
        cache = PersistentLayerCache(tmp_path)
        _fill(cache, 2)
        cache.close()
        with cache.data_path.open("ab") as handle:
            handle.write(b"{broken json\n")
        cache.index_path.unlink()  # force a full rescan
        reopened = PersistentLayerCache(tmp_path)
        with pytest.warns(PersistentCacheCorruption):
            assert reopened.get(_digest("row0")) is not None
        assert reopened.corrupt_lines == 1

    def test_verify_reports_damage(self, tmp_path):
        cache = PersistentLayerCache(tmp_path)
        _fill(cache, 2)
        cache.close()
        assert cache.verify()["ok"] is True
        with cache.data_path.open("ab") as handle:
            handle.write(b"nonsense\n")
        report = cache.verify()
        assert report["ok"] is False and report["corrupt_lines"] == 1


class TestDigestScheme:
    def test_namespace_separates_backend_configurations(self):
        base = cache_namespace("analytic", 1, (1.0, 2.0, 3.0))
        assert cache_namespace("zigzag", 1, (1.0, 2.0, 3.0)) != base
        assert cache_namespace("analytic", 2, (1.0, 2.0, 3.0)) != base
        assert cache_namespace("analytic", 1, (1.0, 2.0, 4.0)) != base
        assert cache_namespace("analytic", 1, (1.0, 2.0, 3.0)) == base

    def test_tuple_digest_separates_layers_keys_and_bandwidths(self, conv_layer, gemm_layer):
        namespace = cache_namespace("analytic", 1, (1.0,))
        key = (((4, 0, (0, 1, 2, 3, 4, 5)), (1, 2, 3, 4, 5, 6)),)
        other_key = (((4, 0, (0, 1, 2, 3, 4, 5)), (1, 2, 3, 4, 5, 7)),)
        base = tuple_key_digest(namespace, layer_statics(conv_layer), key, NOC, DRAM)
        assert tuple_key_digest(namespace, layer_statics(gemm_layer), key, NOC, DRAM) != base
        assert tuple_key_digest(namespace, layer_statics(conv_layer), other_key, NOC, DRAM) != base
        assert tuple_key_digest(namespace, layer_statics(conv_layer), key, NOC * 2, DRAM) != base
        assert tuple_key_digest(namespace, layer_statics(conv_layer), key, NOC, DRAM) == base

    def test_oversized_genes_fall_back_deterministically(self, conv_layer):
        namespace = cache_namespace("analytic", 1, (1.0,))
        huge = (((2**70, 0, (0, 1, 2, 3, 4, 5)), (1, 2, 3, 4, 5, 6)),)
        first = tuple_key_digest(namespace, layer_statics(conv_layer), huge, NOC, DRAM)
        again = tuple_key_digest(namespace, layer_statics(conv_layer), huge, NOC, DRAM)
        assert first == again and len(first) == 20

    def test_statics_blob_is_content_not_identity(self, conv_layer):
        blob = statics_blob(layer_statics(conv_layer))
        assert statics_blob(layer_statics(conv_layer)) is blob  # memoized
        assert layer_statics(conv_layer).signature[0].name.encode() in blob

    def test_matrix_digest_strips_only_the_token_column(self, conv_layer):
        namespace = cache_namespace("analytic", 1, (1.0,))
        blob = statics_blob(layer_statics(conv_layer))
        fingerprint = b"TOKEN012" + b"tail-bytes"
        other_token = b"TOKEN999" + b"tail-bytes"
        assert matrix_row_digest(namespace, blob, fingerprint) == matrix_row_digest(
            namespace, blob, other_token
        )


class TestCostModelTiering:
    def test_layer_roundtrip_is_bit_identical(self, conv_layer, simple_mapping, tmp_path):
        cold = CostModel()
        cold.attach_persistent_cache(PersistentLayerCache(tmp_path))
        report = cold.evaluate_layer(conv_layer, simple_mapping, NOC, DRAM)
        stats = cold.vector_stats
        assert stats["l2_misses"] == 1 and stats["l2_writes"] == 1

        warm = CostModel()
        warm.attach_persistent_cache(PersistentLayerCache(tmp_path))
        served = warm.evaluate_layer(conv_layer, simple_mapping, NOC, DRAM)
        assert warm.vector_stats["l2_hits"] == 1
        assert warm.vector_stats["l2_writes"] == 0
        assert served == report

    def test_l1_counters_match_cold_and_warm(self, conv_layer, simple_mapping, tmp_path):
        # An L2 hit still counts as an L1 miss: searches report identical
        # L1 efficiency whether or not a persistent tier is attached.
        runs = []
        for _ in range(2):
            model = CostModel()
            model.attach_persistent_cache(PersistentLayerCache(tmp_path))
            model.evaluate_layer(conv_layer, simple_mapping, NOC, DRAM)
            model.evaluate_layer(conv_layer, simple_mapping, NOC, DRAM)
            runs.append((model.layer_cache.hits, model.layer_cache.misses))
        assert runs[0] == runs[1] == (1, 1)

    def test_disabled_l1_keeps_tier_inactive(self, conv_layer, simple_mapping, tmp_path):
        model = CostModel(cache_size=0)
        model.attach_persistent_cache(PersistentLayerCache(tmp_path))
        model.evaluate_layer(conv_layer, simple_mapping, NOC, DRAM)
        stats = model.vector_stats
        assert stats["l2_hits"] == stats["l2_misses"] == stats["l2_writes"] == 0

    def test_adopt_cache_carries_the_tier(self, tmp_path):
        donor = CostModel()
        tier = PersistentLayerCache(tmp_path)
        donor.attach_persistent_cache(tier)
        adopter = CostModel()
        adopter.adopt_cache(LRUCache(64))
        donor.adopt_cache(adopter.layer_cache)
        assert donor.layer_cache.tier is tier


class TestFrameworkWarmRerun:
    def _search(self, model, platform, directory, seed=3, optimizer="random"):
        framework = CoOptimizationFramework(
            model,
            platform,
            objective=Objective.LATENCY,
            cache_dir=str(directory),
        )
        try:
            result = framework.search(
                get_optimizer(optimizer), sampling_budget=60, seed=seed
            )
            counters = framework.evaluator.persistent_cache.counters()
        finally:
            framework.close()
        return result, counters

    def test_warm_rerun_serves_from_disk_bit_identically(
        self, tiny_model, edge_platform, tmp_path
    ):
        cold_result, cold = self._search(tiny_model, edge_platform, tmp_path)
        assert cold["l2_writes"] > 0 and cold["l2_hits"] == 0

        warm_result, warm = self._search(tiny_model, edge_platform, tmp_path)
        requests = warm["l2_hits"] + warm["l2_misses"]
        assert requests > 0
        assert warm["l2_hits"] / requests >= 0.9
        assert warm["l2_writes"] == 0
        assert warm_result.best.fitness == cold_result.best.fitness
        assert warm_result.history == cold_result.history

    def test_pool_workers_write_the_shared_store(
        self, tiny_model, edge_platform, tmp_path
    ):
        # Workers receive the tier by pickle (path, not contents) and
        # append to the same files; a later in-process run must be warm.
        pooled = CoOptimizationFramework(
            tiny_model,
            edge_platform,
            objective=Objective.LATENCY,
            workers=2,
            cache_dir=str(tmp_path),
        )
        try:
            cold_result = pooled.search(
                get_optimizer("stdga"), sampling_budget=60, seed=3
            )
        finally:
            pooled.close()
        assert PersistentLayerCache(tmp_path).entries > 0

        warm_result, warm = self._search(
            tiny_model, edge_platform, tmp_path, optimizer="stdga"
        )
        requests = warm["l2_hits"] + warm["l2_misses"]
        assert requests > 0 and warm["l2_hits"] / requests >= 0.9
        assert warm_result.best.fitness == cold_result.best.fitness

    def test_results_identical_with_and_without_tier(
        self, tiny_model, edge_platform, tmp_path
    ):
        bare = CoOptimizationFramework(
            tiny_model, edge_platform, objective=Objective.LATENCY
        )
        try:
            baseline = bare.search(get_optimizer("random"), sampling_budget=60, seed=3)
        finally:
            bare.close()
        for _ in range(2):  # cold pass, then fully warm pass
            tiered, _ = self._search(tiny_model, edge_platform, tmp_path)
            assert tiered.best.fitness == baseline.best.fitness
            assert tiered.history == baseline.history
