"""Bit-identical parity of the fast evaluation engine vs the reference path.

The fast engine (:mod:`repro.cost.engine`) re-implements the reference
analysis on tuples and sits behind a memo; the hard invariant of the
evaluation-engine refactor is that every field of every
:class:`LayerPerformance` stays *bit-identical* to the original dict-based
implementation.  These tests sweep seeded random repaired genomes over real
models and platforms and compare with ``==`` (no tolerances).
"""

from __future__ import annotations

from dataclasses import fields

import numpy as np
import pytest

from repro.arch.platform import CLOUD, EDGE
from repro.cost.maestro import CostModel
from repro.encoding.genome import GenomeSpace
from repro.encoding.repair import repair_genome
from repro.mapping.directives import LevelMapping
from repro.mapping.mapping import Mapping
from repro.workloads.dims import DIMS
from repro.workloads.registry import get_model

FAST = CostModel()
REFERENCE = CostModel(engine="reference")


def _assert_identical(fast_report, reference_report):
    for field in fields(fast_report):
        fast_value = getattr(fast_report, field.name)
        reference_value = getattr(reference_report, field.name)
        assert fast_value == reference_value, (
            f"{field.name}: fast={fast_value!r} reference={reference_value!r}"
        )


def _sweep(model_name, platform, num_genomes, seed, num_levels=2):
    model = get_model(model_name)
    space = GenomeSpace.from_model(model, max_pes=4096, num_levels=num_levels)
    rng = np.random.default_rng(seed)
    for _ in range(num_genomes):
        genome = repair_genome(space.random_genome(rng), space)
        mapping = genome.to_mapping()
        for layer in model.unique_layers():
            fast = FAST.evaluate_layer(
                layer, mapping, platform.noc_bandwidth, platform.dram_bandwidth
            )
            # The seed implementation clipped eagerly before evaluating.
            reference = REFERENCE.evaluate_layer(
                layer,
                mapping.clipped_to_layer(layer),
                platform.noc_bandwidth,
                platform.dram_bandwidth,
            )
            _assert_identical(fast, reference)


class TestEnginePacksIdenticalReports:
    @pytest.mark.parametrize("platform", [EDGE, CLOUD], ids=["edge", "cloud"])
    @pytest.mark.parametrize(
        "model_name", ["resnet18", "mobilenet_v2", "bert", "dlrm"]
    )
    def test_random_repaired_genomes(self, platform, model_name):
        _sweep(model_name, platform, num_genomes=12, seed=2022)

    @pytest.mark.parametrize("num_levels", [1, 3])
    def test_non_default_hierarchy_depths(self, num_levels):
        _sweep("resnet18", EDGE, num_genomes=8, seed=7, num_levels=num_levels)


class TestCachedEvaluationsAreIdentical:
    def test_second_lookup_hits_and_matches(self, conv_layer, simple_mapping):
        model = CostModel()
        first = model.evaluate_layer(conv_layer, simple_mapping, 32.0, 8.0)
        before = model.cache_stats
        second = model.evaluate_layer(conv_layer, simple_mapping, 32.0, 8.0)
        after = model.cache_stats
        assert after.hits == before.hits + 1
        _assert_identical(first, second)

    def test_disabled_cache_matches_enabled(self, conv_layer, simple_mapping):
        cached = CostModel().evaluate_layer(conv_layer, simple_mapping, 32.0, 8.0)
        uncached = CostModel(cache_size=0).evaluate_layer(
            conv_layer, simple_mapping, 32.0, 8.0
        )
        _assert_identical(cached, uncached)
        assert CostModel(cache_size=0).cache_stats.requests == 0

    def test_same_shape_layers_share_entries_with_correct_names(self):
        from repro.workloads.layer import Layer

        model = CostModel()
        first = Layer.conv2d("a", 16, 32, 8, 3)
        twin = Layer.conv2d("b", 16, 32, 8, 3, count=4)
        mapping = Mapping(levels=(
            LevelMapping(4, "K", tuple(DIMS), {d: 2 for d in DIMS}),
            LevelMapping(4, "C", tuple(DIMS), {d: 1 for d in DIMS}),
        ))
        report_a = model.evaluate_layer(first, mapping, 32.0, 8.0)
        report_b = model.evaluate_layer(twin, mapping, 32.0, 8.0)
        assert model.cache_stats.hits == 1
        assert report_a.layer_name == "a" and report_a.count == 1
        assert report_b.layer_name == "b" and report_b.count == 4
        assert report_a.latency == report_b.latency
        assert report_a.energy == report_b.energy

    def test_distinct_bandwidths_do_not_collide(self, conv_layer, simple_mapping):
        model = CostModel()
        slow = model.evaluate_layer(conv_layer, simple_mapping, 32.0, 8.0)
        fast_bw = model.evaluate_layer(conv_layer, simple_mapping, 64.0, 16.0)
        assert model.cache_stats.hits == 0
        assert slow.latency != fast_bw.latency

    def test_reference_engine_rejects_bad_name(self):
        with pytest.raises(ValueError):
            CostModel(engine="turbo")
