"""The pluggable cost-backend seam and the ZigZag-style backend.

The zigzag backend is an *independently coded* cost model, so these tests
pin its contract rather than its exact numbers: the protocol surface the
evaluator relies on, exact agreement with the analytic backend on the
shared modeling ground (footprint geometry, buffer sizing, PE counting,
total loop trips), and the stationarity lower-bound relationship on the
quantities the two models intentionally count differently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.backend import BACKENDS, CostBackend, create_backend
from repro.cost.maestro import CostModel
from repro.cost.zigzag import ZigZagCostModel
from repro.encoding.genome import GenomeSpace
from repro.encoding.repair import repair_genome
from repro.workloads.registry import get_model


def _random_mappings(model, count, seed, num_levels=2):
    space = GenomeSpace.from_model(model, max_pes=4096, num_levels=num_levels)
    rng = np.random.default_rng(seed)
    return [
        repair_genome(space.random_genome(rng), space).to_mapping()
        for _ in range(count)
    ]


class TestFactory:
    def test_analytic_builds_cost_model(self):
        backend = create_backend("analytic", bytes_per_element=2)
        assert isinstance(backend, CostModel)
        assert backend.bytes_per_element == 2

    def test_zigzag_builds_zigzag_model(self):
        backend = create_backend("zigzag", cache_size=7)
        assert isinstance(backend, ZigZagCostModel)
        assert backend.layer_cache.maxsize == 7

    def test_unknown_backend_names_valid_choices(self):
        with pytest.raises(ValueError) as excinfo:
            create_backend("timeloop")
        message = str(excinfo.value)
        for name in BACKENDS:
            assert name in message
        assert "timeloop" in message

    @pytest.mark.parametrize("name", BACKENDS)
    def test_every_backend_satisfies_the_protocol(self, name):
        assert isinstance(create_backend(name), CostBackend)


class TestZigZagAgreement:
    """Shared ground agrees exactly; everything else is lower-bounded."""

    @pytest.mark.parametrize("num_levels", [1, 2, 3])
    def test_shared_geometry_and_bounds(self, num_levels):
        model = get_model("ncf")
        mappings = _random_mappings(model, 24, seed=5, num_levels=num_levels)
        analytic = create_backend("analytic")
        zigzag = create_backend("zigzag")
        for a, z in zip(
            analytic.evaluate_model_batch(model, mappings, 64.0, 16.0),
            zigzag.evaluate_model_batch(model, mappings, 64.0, 16.0),
        ):
            for la, lz in zip(a.layers, z.layers):
                # Exact: pure functions of the shared geometry.
                assert la.l1_requirement_bytes == lz.l1_requirement_bytes
                assert la.l2_requirement_bytes == lz.l2_requirement_bytes
                assert la.num_pes == lz.num_pes
                assert la.active_pes == lz.active_pes
                assert la.macs == lz.macs
                assert la.compute_cycles == pytest.approx(
                    lz.compute_cycles, rel=1e-9
                )
                # Bounded: maximal stationarity only removes traffic, and
                # dropping the fill term only shortens latency.
                slack = 1.0 + 1e-9
                assert lz.l2_to_l1_bytes <= la.l2_to_l1_bytes * slack
                assert lz.dram_bytes <= la.dram_bytes * slack
                assert lz.latency <= la.latency * slack
                assert lz.energy <= la.energy * slack


class TestZigZagPlumbing:
    def test_layer_cache_round_trip(self):
        model = get_model("ncf")
        mappings = _random_mappings(model, 4, seed=9)
        backend = create_backend("zigzag")
        first = backend.evaluate_model_batch(model, mappings, 64.0, 16.0)
        misses = backend.cache_stats.misses
        assert misses > 0
        again = backend.evaluate_model_batch(model, mappings, 64.0, 16.0)
        assert backend.cache_stats.misses == misses
        assert backend.cache_stats.hits > 0
        for a, b in zip(first, again):
            assert a.latency == b.latency
            assert a.energy == b.energy

    def test_adopt_cache_shares_warm_reports(self):
        model = get_model("ncf")
        mappings = _random_mappings(model, 4, seed=9)
        warm = create_backend("zigzag")
        warm.evaluate_model_batch(model, mappings, 64.0, 16.0)
        before = warm.cache_stats
        cold = create_backend("zigzag")
        cold.adopt_cache(warm.layer_cache)
        assert cold.layer_cache is warm.layer_cache
        cold.evaluate_model_batch(model, mappings, 64.0, 16.0)
        after = cold.cache_stats
        assert after.misses == before.misses
        assert after.hits > before.hits

    def test_vector_stats_has_every_standard_key(self):
        stats = create_backend("zigzag").vector_stats
        for key in (
            "rows_vectorized",
            "rows_fallback",
            "fallback_depth",
            "fallback_statics_overflow",
            "fallback_intermediate_overflow",
            "fallback_small_batch",
            "fallback_gene_overflow",
            "delta_generations",
            "delta_member_requests",
        ):
            assert stats[key] == 0

    def test_matrix_path_is_rejected(self):
        backend = create_backend("zigzag")
        with pytest.raises(ValueError, match="analytic"):
            backend.evaluate_model_matrix(None, None, 64.0, 16.0)

    def test_cache_clear_resets_counters(self):
        model = get_model("ncf")
        backend = create_backend("zigzag")
        backend.evaluate_model_batch(
            model, _random_mappings(model, 2, seed=3), 64.0, 16.0
        )
        backend.cache_clear()
        assert backend.cache_stats.size == 0
        assert backend.cache_stats.hits == 0
