"""Vectorized and scalar-fallback rows vs the seed reference implementation.

``tests/cost/test_vector_engine.py`` pins the fallback triggers against the
scalar *fast* engine; these tests close the remaining gap required by the
vector engine's contract: every depth the vector path prices (1-, 2- and
3-level hierarchies) and every row that falls back — >= 2**53 statics and
2**53-scale intermediates — must ALSO reproduce
``CostModel(engine="reference")`` bit for bit, with the per-reason fallback
counters in ``CostModel.vector_stats`` accounting for every such row, on
both the mapping-batch and the gene-matrix entry points.
"""

from __future__ import annotations

from dataclasses import fields

import numpy as np
import pytest

from repro.arch.platform import EDGE
from repro.cost.maestro import CostModel
from repro.cost.vector_engine import MIN_VECTOR_ROWS
from repro.encoding.genome import GenomeSpace
from repro.encoding.genome_matrix import GenomeMatrix, repaired_matrix
from repro.encoding.repair import repair_genome
from repro.framework.evaluator import DesignEvaluator
from repro.mapping.mapping import uniform_mapping
from repro.workloads.layer import Layer
from repro.workloads.model import Model
from repro.workloads.registry import get_model


def _random_mappings(model, count, seed, num_levels=2):
    space = GenomeSpace.from_model(model, max_pes=4096, num_levels=num_levels)
    rng = np.random.default_rng(seed)
    return [
        repair_genome(space.random_genome(rng), space).to_mapping()
        for _ in range(count)
    ]


def _assert_layer_fields_identical(batch_performance, reference_performance):
    for batch_layer, reference_layer in zip(
        batch_performance.layers, reference_performance.layers
    ):
        for field in fields(reference_layer):
            batch_value = getattr(batch_layer, field.name)
            reference_value = getattr(reference_layer, field.name)
            assert batch_value == reference_value, (
                f"{field.name}: vector={batch_value!r} "
                f"reference={reference_value!r}"
            )
            assert type(batch_value) is type(reference_value), field.name


class TestFallbacksMatchReference:
    @pytest.mark.parametrize("num_levels", [1, 3])
    def test_non_two_level_hierarchies(self, num_levels):
        # 1- and 3-level hierarchies ride the vector path (no depth
        # fallback) and still match the reference engine bit for bit.
        model = get_model("ncf")
        mappings = _random_mappings(model, 8, seed=101, num_levels=num_levels)
        batch_model = CostModel()
        reference = CostModel(engine="reference")
        batch = batch_model.evaluate_model_batch(model, mappings, 64.0, 16.0)
        stats = batch_model.vector_stats
        assert stats["rows_vectorized"] > 0
        assert stats["fallback_depth"] == 0
        assert stats["rows_fallback"] == 0
        for mapping, performance in zip(mappings, batch):
            _assert_layer_fields_identical(
                performance,
                reference.evaluate_model(model, mapping, 64.0, 16.0),
            )

    def test_oversized_statics(self):
        # macs = 2**60 >= 2**53: the whole layer is non-vectorizable.
        layer = Layer.conv2d("huge", 2**20, 2**20, (2**10, 2**10), 1)
        model = Model(name="huge", layers=(layer,))
        mappings = _random_mappings(model, 3 * MIN_VECTOR_ROWS, seed=103)
        batch_model = CostModel()
        reference = CostModel(engine="reference")
        batch = batch_model.evaluate_model_batch(model, mappings, 64.0, 16.0)
        stats = batch_model.vector_stats
        assert stats["rows_vectorized"] == 0
        assert stats["rows_fallback"] == len(mappings)
        for mapping, performance in zip(mappings, batch):
            _assert_layer_fields_identical(
                performance,
                reference.evaluate_model(model, mapping, 64.0, 16.0),
            )

    def test_oversized_intermediates_fall_back_row_wise(self):
        # Statics stay vectorizable (macs = 2**40), but full-L2 tiles blow
        # the input-halo footprint past 2**53 mid-chain: exactly those rows
        # must be flagged and re-priced by the scalar engine, which in turn
        # mirrors the reference bit for bit.
        layer = Layer.conv2d(
            "strided", 2**10, 1, (2**15, 2**15), 1, stride=2**20
        )
        model = Model(name="strided", layers=(layer,))
        mappings = [uniform_mapping(layer, (4, 4), ("Y", "X"))]
        mappings += _random_mappings(model, 3 * MIN_VECTOR_ROWS, seed=37)
        batch_model = CostModel()
        reference = CostModel(engine="reference")
        batch = batch_model.evaluate_model_batch(model, mappings, 64.0, 16.0)
        stats = batch_model.vector_stats
        assert stats["rows_fallback"] > 0
        assert stats["rows_vectorized"] > 0
        assert (
            stats["rows_fallback"] + stats["rows_vectorized"] == len(mappings)
        )
        for mapping, performance in zip(mappings, batch):
            _assert_layer_fields_identical(
                performance,
                reference.evaluate_model(model, mapping, 64.0, 16.0),
            )


class TestMatrixPathFallbacks:
    """The gene-matrix entry point routes fallback rows identically."""

    def test_oversized_statics_through_evaluate_model_matrix(self):
        layer = Layer.conv2d("huge", 2**20, 2**20, (2**10, 2**10), 1)
        model = Model(name="huge", layers=(layer,))
        space = GenomeSpace.from_model(model, max_pes=1024)
        rng = np.random.default_rng(109)
        genomes = space.random_population(3 * MIN_VECTOR_ROWS, rng)
        matrix = repaired_matrix(GenomeMatrix.from_genomes(genomes), space)
        batch_model = CostModel()
        reference = CostModel(engine="reference")
        performances = batch_model.evaluate_model_matrix(
            model, matrix.data, 64.0, 16.0
        )
        stats = batch_model.vector_stats
        assert stats["rows_vectorized"] == 0
        assert stats["rows_fallback"] > 0
        for index, performance in enumerate(performances):
            _assert_layer_fields_identical(
                performance,
                reference.evaluate_model(
                    model, matrix.genome_at(index).to_mapping(), 64.0, 16.0
                ),
            )

    def test_evaluator_matrix_results_match_reference_evaluator(self):
        layer = Layer.conv2d("huge", 2**20, 2**20, (2**10, 2**10), 1)
        model = Model(name="huge", layers=(layer,))
        vector = DesignEvaluator(model=model, platform=EDGE)
        reference = DesignEvaluator(
            model=model, platform=EDGE, engine="reference", use_cache=False
        )
        space = vector.genome_space()
        rng = np.random.default_rng(113)
        genomes = space.random_population(12, rng)
        matrix = repaired_matrix(GenomeMatrix.from_genomes(genomes), space)
        for result, genome in zip(vector.evaluate_matrix(matrix), genomes):
            want = reference.evaluate_genome(
                repair_genome(genome.copy(), space)
            )
            assert result.fitness == want.fitness
            assert result.latency == want.latency
            assert result.energy == want.energy
        assert vector.cost_model.vector_stats["rows_fallback"] > 0
