"""End-to-end integration tests across the whole library."""

import pytest

import repro
from repro import (
    CLOUD,
    EDGE,
    CoOptimizationFramework,
    CostModel,
    DiGamma,
    GammaMapper,
    Genome,
    Objective,
    get_dataflow,
    get_model,
    get_optimizer,
)
from repro.experiments.settings import make_fixed_hardware


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_flow(self):
        framework = CoOptimizationFramework(get_model("ncf"), EDGE)
        result = framework.search(DiGamma(), sampling_budget=120, seed=0)
        assert result.found_valid


class TestRealModelsEndToEnd:
    @pytest.mark.parametrize("model_name", ["resnet18", "mobilenet_v2", "bert", "dlrm"])
    def test_coopt_finds_valid_edge_designs(self, model_name):
        framework = CoOptimizationFramework(get_model(model_name), EDGE)
        result = framework.search(DiGamma(), sampling_budget=250, seed=0)
        assert result.found_valid
        design = result.best.design
        assert design.area.total <= EDGE.area_budget_um2
        assert design.performance.latency > 0
        assert design.hardware.num_pes >= 1

    def test_cloud_designs_use_more_pes_than_edge(self):
        model = get_model("resnet50")
        edge = CoOptimizationFramework(model, EDGE).search(
            DiGamma(), sampling_budget=400, seed=0
        )
        cloud = CoOptimizationFramework(model, CLOUD).search(
            DiGamma(), sampling_budget=400, seed=0
        )
        assert edge.found_valid and cloud.found_valid
        assert cloud.best.design.hardware.num_pes > edge.best.design.hardware.num_pes
        assert cloud.best_latency < edge.best_latency

    def test_fixed_hw_plus_gamma_pipeline(self):
        model = get_model("mnasnet")
        fixed_hw = make_fixed_hardware(EDGE, 0.75)
        framework = CoOptimizationFramework(model, EDGE, fixed_hardware=fixed_hw)
        result = framework.search(GammaMapper(), sampling_budget=250, seed=0)
        assert result.found_valid
        assert result.best.design.hardware.pe_array == fixed_hw.pe_array

    def test_objective_switch_changes_best_design_selection(self):
        model = get_model("ncf")
        latency_fw = CoOptimizationFramework(model, EDGE, objective=Objective.LATENCY)
        energy_fw = CoOptimizationFramework(model, EDGE, objective=Objective.ENERGY)
        latency_result = latency_fw.search(DiGamma(), sampling_budget=200, seed=0)
        energy_result = energy_fw.search(DiGamma(), sampling_budget=200, seed=0)
        assert latency_result.found_valid and energy_result.found_valid
        assert energy_result.best.design.energy <= latency_result.best.design.energy * 1.2


class TestManualDesignFlow:
    def test_evaluate_a_hand_built_design_point(self):
        # A user can bypass the search entirely: build a mapping from a
        # dataflow template, evaluate it with the cost model and inspect
        # every report field.
        model = get_model("resnet18")
        layer = model.unique_layers()[1]
        mapping = get_dataflow("dla")(layer, (16, 16))
        report = CostModel().evaluate_layer(
            layer, mapping, noc_bandwidth=64.0, dram_bandwidth=16.0
        )
        assert report.latency > 0
        assert report.utilization > 0

    def test_registry_round_trip_with_framework(self):
        framework = CoOptimizationFramework(get_model("ncf"), EDGE)
        for name in ("random", "cma", "digamma"):
            result = framework.search(get_optimizer(name), sampling_budget=60, seed=0)
            assert result.evaluations <= 60

    def test_genome_from_template_evaluates_in_framework(self):
        model = get_model("ncf")
        framework = CoOptimizationFramework(model, EDGE)
        layer = model.unique_layers()[0]
        genome = Genome.from_mapping(get_dataflow("dla")(layer, (8, 8)))
        evaluation = framework.evaluator.evaluate_genome(genome)
        assert evaluation.design.hardware.pe_array == (8, 8)
