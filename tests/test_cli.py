"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestModels:
    def test_lists_all_models(self, capsys):
        assert main(["models"]) == 0
        output = capsys.readouterr().out
        for name in ("resnet18", "bert", "dlrm"):
            assert name in output


class TestSearch:
    def test_search_prints_design_and_saves_json(self, capsys, tmp_path):
        output_path = tmp_path / "design.json"
        exit_code = main([
            "search", "--model", "ncf", "--budget", "80",
            "--optimizer", "digamma", "--output", str(output_path),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "DiGamma" in output
        assert "Mapping" in output
        data = json.loads(output_path.read_text())
        assert data["found_valid"] is True

    def test_search_suite_of_models(self, capsys):
        exit_code = main(["search", "--model", "ncf", "dlrm", "--budget", "60"])
        assert exit_code == 0
        assert "latency" in capsys.readouterr().out

    def test_unknown_optimizer_raises(self):
        with pytest.raises(KeyError):
            main(["search", "--model", "ncf", "--optimizer", "bayesopt", "--budget", "5"])

    def test_search_prints_cache_stats(self, capsys):
        exit_code = main(["search", "--model", "ncf", "--budget", "60"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "design cache:" in output
        assert "layer cache:" in output
        assert "evals/s" in output

    def test_search_no_cache_flag(self, capsys):
        exit_code = main(["search", "--model", "ncf", "--budget", "60", "--no-cache"])
        assert exit_code == 0
        assert "cache: disabled" in capsys.readouterr().out

    def test_search_warm_cache_dir_reproduces_fitness(self, capsys, tmp_path):
        # The CI warm-cache gate in miniature: same search twice against
        # one --cache-dir; the second run must answer >= 90% of its layer
        # pricings from the persistent tier and reproduce the best
        # fitness bit-identically.
        stats = []
        for name in ("cold.json", "warm.json"):
            path = tmp_path / name
            exit_code = main([
                "search", "--model", "ncf", "--budget", "60",
                "--optimizer", "random",
                "--cache-dir", str(tmp_path / "cache"),
                "--cache-stats-json", str(path),
            ])
            assert exit_code == 0
            assert "l2 cache:" in capsys.readouterr().out
            stats.append(json.loads(path.read_text()))
        cold, warm = stats
        assert cold["best_fitness"] is not None
        assert warm["best_fitness"] == cold["best_fitness"]
        assert cold["l2"]["writes"] > 0
        assert warm["l2"]["hit_rate"] >= 0.9
        assert warm["l2"]["writes"] == 0

    def test_search_objectives_prints_front_and_saves_json(self, capsys, tmp_path):
        output_path = tmp_path / "front.json"
        exit_code = main([
            "search", "--model", "ncf", "--budget", "80",
            "--optimizer", "nsga2",
            "--objectives", "latency,energy,area",
            "--output", str(output_path),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "NSGA-II[latency,energy,area]" in output
        assert "front of" in output
        data = json.loads(output_path.read_text())
        assert data["objectives"] == ["latency", "energy", "area"]
        assert data["front"]
        assert data["batch_calls"] > 0

    def test_objective_and_objectives_are_mutually_exclusive(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main([
                "search", "--model", "ncf", "--budget", "20",
                "--objective", "energy", "--objectives", "latency,area",
            ])

    def test_search_objectives_with_scalar_optimizer(self, capsys):
        exit_code = main([
            "search", "--model", "ncf", "--budget", "60",
            "--objectives", "latency,area",
        ])
        assert exit_code == 0
        assert "front of" in capsys.readouterr().out

    def test_search_workers_flag_parses(self):
        parser = build_parser()
        args = parser.parse_args(["search", "--workers", "2", "--no-cache"])
        assert args.workers == 2
        assert args.no_cache is True
        defaults = parser.parse_args(["search"])
        assert defaults.workers is None
        assert defaults.no_cache is False


class TestEvaluate:
    def test_evaluate_dla_on_edge(self, capsys):
        exit_code = main([
            "evaluate", "--model", "ncf", "--dataflow", "dla",
            "--pe-rows", "8", "--pe-cols", "8",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "dla-like" in output
        assert "valid" in output


class TestFigureForwarding:
    def test_fig5_forwarding(self, capsys):
        exit_code = main([
            "fig5", "--platform", "edge", "--budget", "40", "--models", "ncf",
        ])
        assert exit_code == 0
        assert "Fig. 5" in capsys.readouterr().out


class TestParser:
    def test_parser_requires_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["search"])
        assert args.model == ["resnet18"]
        assert args.platform == "edge"
        assert args.budget == 2000
