"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.hardware import HardwareConfig
from repro.arch.platform import CLOUD, EDGE
from repro.encoding.genome import GenomeSpace
from repro.mapping.directives import LevelMapping
from repro.mapping.mapping import Mapping
from repro.workloads.layer import Layer
from repro.workloads.model import Model, build_model


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def conv_layer() -> Layer:
    """A mid-sized convolution layer (ResNet-ish 3x3)."""
    return Layer.conv2d("conv", in_channels=64, out_channels=128, out_hw=28, kernel=3)


@pytest.fixture
def small_conv_layer() -> Layer:
    """A small convolution layer for fast exhaustive-ish checks."""
    return Layer.conv2d("small", in_channels=8, out_channels=16, out_hw=8, kernel=3)


@pytest.fixture
def gemm_layer() -> Layer:
    """A GEMM layer (fully connected)."""
    return Layer.gemm("fc", m=64, n=256, k=512)


@pytest.fixture
def depthwise_layer() -> Layer:
    """A depthwise convolution layer."""
    return Layer.depthwise("dw", channels=96, out_hw=14, kernel=3)


@pytest.fixture
def tiny_model(small_conv_layer, gemm_layer) -> Model:
    """A two-layer model used by search and framework tests."""
    return build_model("tiny", [small_conv_layer, gemm_layer])


@pytest.fixture
def simple_mapping(conv_layer) -> Mapping:
    """A legal two-level mapping for ``conv_layer``."""
    l2 = LevelMapping(
        spatial_size=8,
        parallel_dim="K",
        order=("K", "C", "Y", "X", "R", "S"),
        tiles={"K": 16, "C": 64, "Y": 4, "X": 28, "R": 3, "S": 3},
    )
    l1 = LevelMapping(
        spatial_size=16,
        parallel_dim="C",
        order=("C", "K", "R", "S", "Y", "X"),
        tiles={"K": 1, "C": 4, "Y": 1, "X": 4, "R": 3, "S": 3},
    )
    return Mapping(levels=(l2, l1))


@pytest.fixture
def edge_platform():
    """The paper's edge platform preset."""
    return EDGE


@pytest.fixture
def cloud_platform():
    """The paper's cloud platform preset."""
    return CLOUD


@pytest.fixture
def small_hardware() -> HardwareConfig:
    """A small fixed hardware configuration."""
    return HardwareConfig(
        pe_array=(8, 16),
        l1_size=512,
        l2_size=64 * 1024,
        noc_bandwidth=32.0,
        dram_bandwidth=8.0,
    )


@pytest.fixture
def tiny_space(tiny_model) -> GenomeSpace:
    """A genome space for the tiny model with a modest PE bound."""
    return GenomeSpace.from_model(tiny_model, max_pes=256, num_levels=2)
