"""Ablation benchmark: contribution of DiGamma's specialised operators.

Compares full DiGamma against variants with the HW operator or the
structured mapping operators disabled, and against the blind standard GA,
on ResNet-18 and Mnasnet at edge resources (DESIGN.md experiment A1).
Expected shape: full DiGamma achieves the lowest latency; removing the
structured operators hurts the most.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.ablations import ABLATION_MODELS, run_operator_ablation


def test_operator_ablation_edge(benchmark, settings):
    result = run_once(benchmark, run_operator_ablation, "edge", settings, ABLATION_MODELS)
    print()
    print(result.report("Ablation A1 - DiGamma operators (latency, cycles)"))
    for model_name in ABLATION_MODELS:
        assert set(result.latency[model_name]) == {
            "DiGamma",
            "no-HW-op",
            "no-struct-ops",
            "stdGA",
        }
