"""Benchmark regenerating Fig. 5 (cloud platform).

Same layout as the edge benchmark but under the 7.0 mm^2 cloud budget, where
the design space is wider.  Expected reproduction shape: DiGamma's advantage
over the best baseline grows compared to the edge setting, and more
baselines fail to find valid designs.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig5 import run_fig5


def test_fig5_cloud(benchmark, settings):
    result = run_once(benchmark, run_fig5, "cloud", settings)
    print()
    print(result.report())
    normalized = result.normalized_latency()
    for model_name in settings.models:
        assert model_name in normalized
    assert "GeoMean" in normalized
