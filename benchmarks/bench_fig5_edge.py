"""Benchmark regenerating Fig. 5 (edge platform).

Latency and latency-area-product of the nine optimization algorithms across
the seven DNN models, normalized to CMA.  Expected reproduction shape:
DiGamma has the lowest geomean in both tables, several baselines produce
``N/A`` or large values, and CMA is the strongest generic baseline.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig5 import run_fig5


def test_fig5_edge(benchmark, settings):
    result = run_once(benchmark, run_fig5, "edge", settings)
    print()
    print(result.report())
    # Structural sanity: every model row exists and the reference column is 1.
    normalized = result.normalized_latency()
    for model_name in settings.models:
        assert model_name in normalized
    assert "GeoMean" in normalized
