"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  Because a
full paper-scale run (40K samples per search) takes hours, the benchmarks
default to a scaled-down sampling budget that preserves the relative
ordering of the schemes; both knobs can be overridden through environment
variables:

===========================  =============================================
``REPRO_BENCH_BUDGET``       sampling budget per search (default 600)
``REPRO_BENCH_MODELS``       comma-separated model list (default: all 7)
``REPRO_BENCH_SEED``         random seed (default 0)
===========================  =============================================

Run with ``pytest benchmarks/ --benchmark-only -s`` to also see the
regenerated tables.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.settings import DEFAULT_MODELS, ExperimentSettings

#: Default per-search sampling budget used by the benchmarks.
DEFAULT_BENCH_BUDGET = 600


def bench_settings() -> ExperimentSettings:
    """Experiment settings derived from the benchmark environment variables."""
    budget = int(os.environ.get("REPRO_BENCH_BUDGET", DEFAULT_BENCH_BUDGET))
    seed = int(os.environ.get("REPRO_BENCH_SEED", 0))
    models_env = os.environ.get("REPRO_BENCH_MODELS", "")
    models = (
        tuple(name.strip() for name in models_env.split(",") if name.strip())
        if models_env
        else DEFAULT_MODELS
    )
    return ExperimentSettings(models=models, sampling_budget=budget, seed=seed)


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Session-wide benchmark settings."""
    return bench_settings()


def run_once(benchmark, func, *args, **kwargs):
    """Run an expensive harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
