"""Benchmark regenerating Fig. 7 (solution inspection, Mnasnet at edge).

Prints the encoded solutions found by one representative of each scheme
(HW-opt, Mapping-opt, co-opt) together with latency, area, latency-area
product and the PE:buffer area split.  Expected reproduction shape: the
co-optimized design has the lowest latency-area product and a more balanced
compute-to-buffer split than the HW-opt design.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig7 import run_fig7


def test_fig7_mnasnet_edge(benchmark, settings):
    result = run_once(benchmark, run_fig7, "mnasnet", "edge", settings)
    print()
    print(result.report())
    assert len(result.solutions) == 3
    digamma = result.solutions["HW-Map-co-opt (DiGamma)"]
    assert digamma.found_valid
    assert digamma.row()["area"] <= result.area_budget_um2
