"""Ablation benchmark: the minimum-requirement buffer-allocation strategy.

Compares the paper's exact-requirement buffer allocation against the naive
"fill the leftover area with L2" policy on ResNet-18 at edge resources
(DESIGN.md experiment A2).  Expected shape: exact allocation reaches lower
latency because area not wasted on oversized buffers can be spent on PEs.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_buffer_allocation_ablation


def test_buffer_allocation_ablation_edge(benchmark, settings):
    result = run_once(
        benchmark, run_buffer_allocation_ablation, "edge", settings, ("resnet18",)
    )
    print()
    print(result.report("Ablation A2 - buffer allocation strategy (latency-area product)"))
    assert set(result.latency["resnet18"]) == {"exact", "fill"}
