"""Benchmark regenerating Fig. 6 (cloud platform).

Same layout as the edge benchmark under the cloud budget.  Expected
reproduction shape: the co-optimization advantage widens (the paper reports
2.0x over the best Mapping-opt baseline at cloud vs 1.25x at edge).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig6 import run_fig6


def test_fig6_cloud(benchmark, settings):
    result = run_once(benchmark, run_fig6, "cloud", settings)
    print()
    print(result.report())
    assert "GeoMean" in result.normalized_latency()
