"""Benchmark regenerating Fig. 6 (edge platform).

Latency of HW-opt (grid-searched HW + dla/shi/eye-like fixed mappings),
Mapping-opt (fixed HW + GAMMA) and DiGamma co-optimization, normalized to
the strongest non-co-opt scheme.  Expected reproduction shape: DiGamma's
geomean is below 1.0, the shi-like fixed dataflow is orders of magnitude
worse, and compute-focused HW is the strongest Mapping-opt baseline.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig6 import run_fig6, scheme_names


def test_fig6_edge(benchmark, settings):
    result = run_once(benchmark, run_fig6, "edge", settings)
    print()
    print(result.report())
    normalized = result.normalized_latency()
    assert "GeoMean" in normalized
    assert set(result.latency[settings.models[0]]) == set(scheme_names())
