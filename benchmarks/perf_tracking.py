"""Record evaluation-engine performance into ``BENCH_cost_model.json``.

Measures, on this machine:

* single-layer cost-model latency (fast engine vs the seed reference), and
* end-to-end DiGamma search throughput on ``resnet18`` / edge — the
  gene-matrix population data path with and without cross-generation delta
  evaluation, the scalar engines with and without memoization, and the
  seed reference path — reporting the speedups (and per-generation delta
  reuse rates) the repository's perf work must not regress, and
* cold-vs-warm search throughput over a persistent cache directory
  (``repro.cost.persist``), with the counter-verified warm L2 hit rate.

The medians of several interleaved repetitions are written to
``BENCH_cost_model.json`` at the repository root so the performance
trajectory is tracked across PRs.  Run with::

    PYTHONPATH=src python benchmarks/perf_tracking.py [--budget N] [--reps N]
"""

from __future__ import annotations

import argparse
import json
import platform as platform_module
import time
from pathlib import Path

from repro.arch.platform import get_platform
from repro.cost.maestro import CostModel
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.mapping.dataflows import dla_like
from repro.optim.registry import get_optimizer
from repro.workloads.layer import Layer
from repro.workloads.registry import get_model

SEARCH_CONFIGS = {
    #: The default data path: gene-matrix search loops + cross-generation
    #: delta evaluation on top of the NumPy population engine.
    "delta_cached": {},
    #: Same matrix loops and engine, delta evaluation off.
    "vector_cached": {"use_delta": False},
    "fast_cached": {"engine": "fast"},
    "fast_uncached": {"engine": "fast", "use_cache": False},
    "reference": {"engine": "reference", "use_cache": False},
}

#: The fast-cached evals/s recorded by the PR that introduced the scalar
#: fast path (BENCH_cost_model.json as of that PR, same machine class).
#: The vector engine's acceptance bar is >= 2x this number.
PR1_FAST_CACHED_EVALS_PER_SECOND = 3804.4

#: The vector_cached evals/s recorded by the PR that introduced the NumPy
#: population engine (BENCH_cost_model.json as of that PR, same machine
#: class, population 80).  The gene-matrix + delta-evaluation acceptance
#: bar is >= 1.8x this number.
PR3_VECTOR_CACHED_EVALS_PER_SECOND = 8229.8


def bench_layer_eval(repeats: int = 2000) -> dict:
    """Best-case single-layer evaluation latency (microseconds).

    The minimum over several timing windows is the standard low-noise
    estimator (machine noise is one-sided: runs only ever get slower).
    """
    layer = Layer.conv2d("resnet_block", 256, 256, 14, 3)
    mapping = dla_like(layer, (16, 16))
    timings = {}
    for name, model in (
        ("fast", CostModel(cache_size=0)),
        ("reference", CostModel(engine="reference")),
    ):
        samples = []
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(repeats):
                model.evaluate_layer(layer, mapping, 64.0, 16.0)
            samples.append((time.perf_counter() - start) / repeats * 1e6)
        timings[name] = round(min(samples), 3)
    timings["speedup"] = round(timings["reference"] / timings["fast"], 2)
    return timings


def bench_search_throughput(budget: int, reps: int, seed: int = 0) -> dict:
    """Peak evals/sec of a DiGamma search on resnet18/edge per engine config.

    Configurations are interleaved so machine-noise windows hit them evenly,
    and the best of ``reps`` runs is reported (min-time estimator).
    """
    model = get_model("resnet18")
    samples = {name: [] for name in SEARCH_CONFIGS}
    fitness = {}
    delta_reuse = {}
    names = list(SEARCH_CONFIGS)
    for rep in range(reps):
        # Rotate the order every repetition: a fixed order systematically
        # penalises whichever config follows the multi-second reference
        # run (clock/thermal state), skewing best-of comparisons between
        # the fast configurations.
        rotation = names[rep % len(names) :] + names[: rep % len(names)]
        for name in rotation:
            kwargs = SEARCH_CONFIGS[name]
            framework = CoOptimizationFramework(
                model, get_platform("edge"), **kwargs
            )
            start = time.perf_counter()
            result = framework.search(
                get_optimizer("digamma"), sampling_budget=budget, seed=seed
            )
            elapsed = time.perf_counter() - start
            samples[name].append(result.evaluations / elapsed)
            fitness[name] = result.best.fitness if result.best else None
            if name == "delta_cached":
                stats = framework.evaluator.cost_model.vector_stats
                delta_reuse = {
                    "member_reuse_rate": round(
                        stats["delta_members_reused"]
                        / max(1, stats["delta_member_requests"]),
                        4,
                    ),
                    "row_reuse_rate": round(
                        stats["delta_rows_reused"]
                        / max(1, stats["delta_row_requests"]),
                        4,
                    ),
                    "generations": stats["delta_generations"],
                }
    throughput = {
        name: round(max(values), 1) for name, values in samples.items()
    }
    assert len(set(fitness.values())) == 1, (
        f"engine configurations disagree on the search outcome: {fitness}"
    )
    from repro.optim.digamma.algorithm import DiGammaHyperParameters

    return {
        "budget": budget,
        "reps": reps,
        "population": DiGammaHyperParameters().resolved_population(budget),
        "evals_per_second": throughput,
        "delta_reuse": delta_reuse,
        "speedup_delta_vs_vector_cached": round(
            throughput["delta_cached"] / throughput["vector_cached"], 2
        ),
        "speedup_delta_vs_pr3_vector_cached": round(
            throughput["delta_cached"] / PR3_VECTOR_CACHED_EVALS_PER_SECOND, 2
        ),
        "speedup_delta_vs_fast_cached": round(
            throughput["delta_cached"] / throughput["fast_cached"], 2
        ),
        "speedup_delta_vs_reference": round(
            throughput["delta_cached"] / throughput["reference"], 2
        ),
        "speedup_vector_vs_fast_cached": round(
            throughput["vector_cached"] / throughput["fast_cached"], 2
        ),
        "speedup_vector_vs_pr1_fast_cached": round(
            throughput["vector_cached"] / PR1_FAST_CACHED_EVALS_PER_SECOND, 2
        ),
        "speedup_vector_vs_reference": round(
            throughput["vector_cached"] / throughput["reference"], 2
        ),
        "speedup_cached_vs_reference": round(
            throughput["fast_cached"] / throughput["reference"], 2
        ),
        "speedup_uncached_vs_reference": round(
            throughput["fast_uncached"] / throughput["reference"], 2
        ),
        "best_fitness": fitness["delta_cached"],
    }


def bench_three_level(budget: int, reps: int, seed: int = 0) -> dict:
    """Three-level hierarchy search throughput: vector path vs scalar engine.

    Before the depth-generalized vector engine, three-level searches fell
    off the vector path onto the ~20x-slower scalar fallback; this
    benchmark records the vectorized three-level throughput
    (``three_level_cached``) next to the scalar fast engine on the same
    search (the old fallback's data path) and the uncached reference
    engine (the seed scalar implementation the "20x" is measured
    against), and asserts the depth actually rides the vector path (rows
    vectorized, zero depth fallbacks) with a bit-identical outcome
    across all three engines.
    """
    model = get_model("resnet18")
    configs = {
        "three_level_cached": {},
        "three_level_fast_cached": {"engine": "fast"},
        "three_level_reference": {"engine": "reference", "use_cache": False},
    }
    samples = {name: [] for name in configs}
    fitness = {}
    names = list(configs)
    for rep in range(reps):
        rotation = names[rep % len(names) :] + names[: rep % len(names)]
        for name in rotation:
            framework = CoOptimizationFramework(
                model, get_platform("edge"), num_levels=3, **configs[name]
            )
            start = time.perf_counter()
            result = framework.search(
                get_optimizer("digamma"), sampling_budget=budget, seed=seed
            )
            elapsed = time.perf_counter() - start
            samples[name].append(result.evaluations / elapsed)
            fitness[name] = result.best.fitness if result.best else None
            if name == "three_level_cached":
                stats = framework.evaluator.cost_model.vector_stats
                assert stats["rows_vectorized"] > 0, stats
                assert stats["fallback_depth"] == 0, stats
    throughput = {
        name: round(max(values), 1) for name, values in samples.items()
    }
    assert len(set(fitness.values())) == 1, (
        f"engines disagree on the three-level search outcome: {fitness}"
    )
    return {
        "budget": budget,
        "reps": reps,
        "evals_per_second": throughput,
        "speedup_vector_vs_fast": round(
            throughput["three_level_cached"]
            / throughput["three_level_fast_cached"],
            2,
        ),
        "speedup_vector_vs_reference": round(
            throughput["three_level_cached"]
            / throughput["three_level_reference"],
            2,
        ),
        "best_fitness": fitness["three_level_cached"],
    }


def bench_warm_cache(budget: int, reps: int, seed: int = 0) -> dict:
    """Cold vs warm search throughput over a persistent cache directory.

    Each repetition runs the default data path twice against one fresh
    ``cache_dir``: cold (every layer row priced by the engine and written
    back) then warm (rows answered from the on-disk tier).  The warm L2
    hit rate is counter-verified — never inferred from timing — and both
    phases must land on a bit-identical best fitness: the persistent
    cache is an accelerator, not an oracle allowed to change results.
    """
    import shutil
    import tempfile

    model = get_model("resnet18")
    samples = {"cold": [], "warm": []}
    fitness = {}
    hit_rate = 0.0
    scratch = Path(tempfile.mkdtemp(prefix="repro-warm-bench-"))
    try:
        for rep in range(reps):
            cache_dir = scratch / f"rep{rep}"
            for phase in ("cold", "warm"):
                framework = CoOptimizationFramework(
                    model, get_platform("edge"), cache_dir=str(cache_dir)
                )
                try:
                    start = time.perf_counter()
                    result = framework.search(
                        get_optimizer("digamma"), sampling_budget=budget, seed=seed
                    )
                    elapsed = time.perf_counter() - start
                    counters = framework.evaluator.persistent_cache.counters()
                finally:
                    framework.close()
                samples[phase].append(result.evaluations / elapsed)
                fitness[phase] = result.best.fitness if result.best else None
                if phase == "warm":
                    requests = counters["l2_hits"] + counters["l2_misses"]
                    hit_rate = counters["l2_hits"] / max(1, requests)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    assert fitness["cold"] == fitness["warm"], (
        f"warm rerun changed the search outcome: {fitness}"
    )
    throughput = {
        name: round(max(values), 1) for name, values in samples.items()
    }
    return {
        "budget": budget,
        "reps": reps,
        "evals_per_second": throughput,
        "warm_l2_hit_rate": round(hit_rate, 4),
        "speedup_warm_vs_cold": round(
            throughput["warm"] / throughput["cold"], 2
        ),
        "best_fitness": fitness["warm"],
    }


def _measure_throughput(
    budget: int, reps: int, use_matrix: bool = True, **framework_kwargs
) -> float:
    """Best-of-``reps`` evals/s of a DiGamma search (min-time estimator).

    ``use_matrix=False`` runs the legacy per-genome generation loop
    (bit-identical trajectories) — used to gate apples-to-apples against
    baselines recorded before the gene-matrix loops existed.
    """
    from repro.optim.digamma.algorithm import DiGamma

    model = get_model("resnet18")
    measured = 0.0
    for _ in range(reps):
        framework = CoOptimizationFramework(
            model, get_platform("edge"), **framework_kwargs
        )
        start = time.perf_counter()
        result = framework.search(
            DiGamma(use_matrix=use_matrix), sampling_budget=budget, seed=0
        )
        elapsed = time.perf_counter() - start
        measured = max(measured, result.evaluations / elapsed)
    return measured


def check_regression(
    baseline_path: str,
    tolerance: float,
    reps: int,
    output: str | None = None,
    budget: int | None = None,
    relative: bool = False,
) -> int:
    """Benchmark-regression gate against the recorded baseline.

    Absolute mode (default): re-measures the ``delta_cached`` end-to-end
    search throughput (the default data path: gene-matrix loops + delta
    evaluation, best of ``reps`` runs) and fails when it regresses more
    than ``tolerance`` below the evals/s recorded in
    ``BENCH_cost_model.json``.  The committed baseline is
    machine-specific, so this mode only makes sense on the machine class
    that recorded it.  Baselines from before delta evaluation (no
    ``delta_cached`` entry) gate their ``vector_cached`` number instead.

    Relative mode (``--relative``): additionally measures the scalar
    ``fast_cached`` configuration on the *same* machine in the same run
    and gates the delta/fast speedup ratio against the baseline's
    recorded ``speedup_delta_vs_fast_cached``.  The ratio is
    machine-independent, which is what hosted CI runners need — a slower
    runner scales both measurements, but the matrix data path silently
    degrading to scalar evaluation still collapses the ratio to ~1x.

    The measurement payload is written to ``output`` (when given) so CI
    can upload it as an artifact next to the committed baseline.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    recorded_throughput = baseline["search_throughput"]["evals_per_second"]
    gated = "delta_cached" if "delta_cached" in recorded_throughput else "vector_cached"
    recorded = recorded_throughput[gated]
    if budget is None:
        budget = int(baseline["search_throughput"]["budget"])

    # Measure the configuration the baseline recorded: old baselines
    # predate the gene-matrix loops and delta evaluation, so gating them
    # against the new default path would pad the number and let a real
    # regression of the new path slide under the floor.
    legacy = gated != "delta_cached"
    measured = _measure_throughput(
        budget,
        reps,
        use_matrix=not legacy,
        **({"use_delta": False} if legacy else {}),
    )
    payload = {
        "benchmark": f"{gated} regression gate",
        "machine": {
            "python": platform_module.python_version(),
            "platform": platform_module.platform(),
        },
        "baseline_path": str(baseline_path),
        "mode": "relative" if relative else "absolute",
        "budget": budget,
        "reps": reps,
        "gated_configuration": gated,
        "recorded_evals_per_second": recorded,
        "measured_evals_per_second": round(measured, 1),
        "tolerance": tolerance,
    }
    if relative:
        search_throughput = baseline["search_throughput"]
        ratio_key = (
            "speedup_delta_vs_fast_cached"
            if "speedup_delta_vs_fast_cached" in search_throughput
            else "speedup_vector_vs_fast_cached"
        )
        recorded_ratio = search_throughput[ratio_key]
        fast_measured = _measure_throughput(budget, reps, engine="fast")
        measured_ratio = measured / fast_measured
        floor = recorded_ratio * (1.0 - tolerance)
        passed = measured_ratio >= floor
        payload.update(
            {
                "measured_fast_cached_evals_per_second": round(fast_measured, 1),
                "recorded_speedup_vs_fast_cached": recorded_ratio,
                "measured_speedup_vs_fast_cached": round(measured_ratio, 2),
                "floor_speedup": round(floor, 2),
                "passed": passed,
            }
        )
        subject = (
            f"{gated}/fast speedup {measured_ratio:.2f}x vs floor {floor:.2f}x "
            f"({recorded_ratio:.2f}x recorded, tolerance {tolerance:.0%})"
        )
    else:
        floor = recorded * (1.0 - tolerance)
        passed = measured >= floor
        payload.update(
            {
                "floor_evals_per_second": round(floor, 1),
                "passed": passed,
            }
        )
        subject = (
            f"{gated} {measured:.1f} evals/s vs floor {floor:.1f} "
            f"({recorded:.1f} recorded, tolerance {tolerance:.0%})"
        )
    # Secondary gate: the vectorized three-level path.  Baselines recorded
    # before depth generalization carry no entry and are tolerated; once an
    # entry exists, the three-level throughput (absolute mode) or its
    # vector/fast speedup (relative mode) must not regress either.
    three_level = baseline.get("three_level_search_throughput")
    if three_level is not None:
        recorded_three = three_level["evals_per_second"]["three_level_cached"]
        measured_three = _measure_throughput(budget, reps, num_levels=3)
        three_payload = {
            "recorded_evals_per_second": recorded_three,
            "measured_evals_per_second": round(measured_three, 1),
        }
        if relative:
            recorded_ratio_three = three_level["speedup_vector_vs_fast"]
            fast_three = _measure_throughput(
                budget, reps, num_levels=3, engine="fast"
            )
            measured_ratio_three = measured_three / fast_three
            floor_three = recorded_ratio_three * (1.0 - tolerance)
            three_passed = measured_ratio_three >= floor_three
            three_payload.update(
                {
                    "recorded_speedup_vs_fast": recorded_ratio_three,
                    "measured_speedup_vs_fast": round(measured_ratio_three, 2),
                    "floor_speedup": round(floor_three, 2),
                    "passed": three_passed,
                }
            )
            three_subject = (
                f"three_level_cached/fast speedup {measured_ratio_three:.2f}x "
                f"vs floor {floor_three:.2f}x"
            )
        else:
            floor_three = recorded_three * (1.0 - tolerance)
            three_passed = measured_three >= floor_three
            three_payload.update(
                {
                    "floor_evals_per_second": round(floor_three, 1),
                    "passed": three_passed,
                }
            )
            three_subject = (
                f"three_level_cached {measured_three:.1f} evals/s vs floor "
                f"{floor_three:.1f}"
            )
        payload["three_level"] = three_payload
        passed = passed and three_passed
        subject += "; " + three_subject
    # Tertiary gate: the persistent warm-cache tier.  Baselines recorded
    # before the L2 tier carry no entry and are tolerated; once an entry
    # exists, a warm rerun over one cache directory must keep answering
    # >= 90% of its layer pricings from disk (counter-verified) with a
    # bit-identical outcome — bench_warm_cache asserts the latter itself.
    warm_baseline = baseline.get("warm_cache")
    if warm_baseline is not None:
        warm = bench_warm_cache(budget, reps=1)
        warm_rate = warm["warm_l2_hit_rate"]
        warm_passed = warm_rate >= 0.90
        payload["warm_cache"] = {
            "recorded_warm_l2_hit_rate": warm_baseline["warm_l2_hit_rate"],
            "measured_warm_l2_hit_rate": warm_rate,
            "floor_warm_l2_hit_rate": 0.90,
            "passed": warm_passed,
        }
        passed = passed and warm_passed
        subject += f"; warm L2 hit rate {warm_rate:.1%} vs floor 90%"
    if output:
        Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(("OK: " if passed else "FAIL: ") + subject)
    return 0 if passed else 1


def check_smoke(budget: int = 400) -> int:
    """CI smoke: vector vs fast parity on a small population + micro-bench.

    One DiGamma search per engine on a GA population (budget // 25 members)
    asserting *bit-identical* best fitness, plus a throughput line so CI
    logs track the speed plumbing.  Exits non-zero if the engines disagree
    or the vector path failed to vectorize anything.
    """
    model = get_model("resnet18")
    outcomes = {}
    for name, kwargs in (
        ("vector", {}),
        ("nodelta", {"use_delta": False}),
        ("fast", {"engine": "fast"}),
    ):
        framework = CoOptimizationFramework(model, get_platform("edge"), **kwargs)
        start = time.perf_counter()
        result = framework.search(
            get_optimizer("digamma"), sampling_budget=budget, seed=0
        )
        elapsed = time.perf_counter() - start
        vector_stats = framework.evaluator.cost_model.vector_stats
        outcomes[name] = result
        print(
            f"{name:>7s}: {result.evaluations / elapsed:8.0f} evals/s, "
            f"best fitness {result.best.fitness!r}, "
            f"{vector_stats['rows_vectorized']} rows vectorized "
            f"({vector_stats['rows_fallback']} scalar fallbacks, "
            f"{vector_stats['delta_members_reused']} members + "
            f"{vector_stats['delta_rows_reused']} rows delta-reused)"
        )
        if name == "vector" and vector_stats["rows_vectorized"] == 0:
            print("FAIL: the vector engine never vectorized a row")
            return 1
        if name == "vector" and vector_stats["delta_generations"] == 0:
            print("FAIL: delta evaluation never saw a generation")
            return 1
    for other in ("nodelta", "fast"):
        if outcomes["vector"].best.fitness != outcomes[other].best.fitness:
            print(f"FAIL: vector and {other} disagree on the search outcome")
            return 1
        if outcomes["vector"].history != outcomes[other].history:
            print(f"FAIL: vector and {other} followed different trajectories")
            return 1
    print(
        "OK: gene-matrix path is bit-identical to the scalar fast engine, "
        "with delta evaluation on and off"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=2000)
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI smoke mode: assert vector/fast parity on a small search "
        "and print a micro-benchmark line instead of writing the JSON",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="benchmark-regression gate: re-measure vector_cached search "
        "throughput and fail when it drops more than --tolerance below "
        "the recorded baseline (see --baseline)",
    )
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_cost_model.json"),
        help="recorded baseline JSON the regression gate compares against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression of vector_cached evals/s "
        "(default: 0.30, i.e. fail on >30%% regression)",
    )
    parser.add_argument(
        "--relative",
        action="store_true",
        help="gate the vector/fast speedup ratio instead of absolute "
        "evals/s (machine-independent; use on hosted CI runners)",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_cost_model.json"),
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"--tolerance must be in [0, 1), got {args.tolerance}")
    if args.check_regression:
        output = args.output
        if output == parser.get_default("output"):
            # Never overwrite the committed baseline with a gate measurement.
            output = None
        return check_regression(
            args.baseline,
            args.tolerance,
            args.reps,
            output=output,
            budget=args.budget,
            relative=args.relative,
        )
    if args.check:
        return check_smoke(min(args.budget, 400))

    payload = {
        "benchmark": "cost-model and GA search throughput",
        "machine": {
            "python": platform_module.python_version(),
            "platform": platform_module.platform(),
        },
        "single_layer_eval_us": bench_layer_eval(),
        "search_throughput": bench_search_throughput(args.budget, args.reps),
        "three_level_search_throughput": bench_three_level(
            args.budget, args.reps
        ),
        "warm_cache": bench_warm_cache(args.budget, args.reps),
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nWrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
