"""Record evaluation-engine performance into ``BENCH_cost_model.json``.

Measures, on this machine:

* single-layer cost-model latency (fast engine vs the seed reference), and
* end-to-end DiGamma search throughput on ``resnet18`` / edge — the
  fast-path engine with and without memoization against the seed reference
  path — reporting the speedup the repository's perf work must not regress.

The medians of several interleaved repetitions are written to
``BENCH_cost_model.json`` at the repository root so the performance
trajectory is tracked across PRs.  Run with::

    PYTHONPATH=src python benchmarks/perf_tracking.py [--budget N] [--reps N]
"""

from __future__ import annotations

import argparse
import json
import platform as platform_module
import statistics
import time
from pathlib import Path

from repro.arch.platform import get_platform
from repro.cost.maestro import CostModel
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.mapping.dataflows import dla_like
from repro.optim.registry import get_optimizer
from repro.workloads.layer import Layer
from repro.workloads.registry import get_model

SEARCH_CONFIGS = {
    "vector_cached": {},  # the default engine: NumPy population batching
    "fast_cached": {"engine": "fast"},
    "fast_uncached": {"engine": "fast", "use_cache": False},
    "reference": {"engine": "reference", "use_cache": False},
}

#: The fast-cached evals/s recorded by the PR that introduced the scalar
#: fast path (BENCH_cost_model.json as of that PR, same machine class).
#: The vector engine's acceptance bar is >= 2x this number.
PR1_FAST_CACHED_EVALS_PER_SECOND = 3804.4


def bench_layer_eval(repeats: int = 2000) -> dict:
    """Best-case single-layer evaluation latency (microseconds).

    The minimum over several timing windows is the standard low-noise
    estimator (machine noise is one-sided: runs only ever get slower).
    """
    layer = Layer.conv2d("resnet_block", 256, 256, 14, 3)
    mapping = dla_like(layer, (16, 16))
    timings = {}
    for name, model in (
        ("fast", CostModel(cache_size=0)),
        ("reference", CostModel(engine="reference")),
    ):
        samples = []
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(repeats):
                model.evaluate_layer(layer, mapping, 64.0, 16.0)
            samples.append((time.perf_counter() - start) / repeats * 1e6)
        timings[name] = round(min(samples), 3)
    timings["speedup"] = round(timings["reference"] / timings["fast"], 2)
    return timings


def bench_search_throughput(budget: int, reps: int, seed: int = 0) -> dict:
    """Peak evals/sec of a DiGamma search on resnet18/edge per engine config.

    Configurations are interleaved so machine-noise windows hit them evenly,
    and the best of ``reps`` runs is reported (min-time estimator).
    """
    model = get_model("resnet18")
    samples = {name: [] for name in SEARCH_CONFIGS}
    fitness = {}
    for _ in range(reps):
        for name, kwargs in SEARCH_CONFIGS.items():
            framework = CoOptimizationFramework(
                model, get_platform("edge"), **kwargs
            )
            start = time.perf_counter()
            result = framework.search(
                get_optimizer("digamma"), sampling_budget=budget, seed=seed
            )
            elapsed = time.perf_counter() - start
            samples[name].append(result.evaluations / elapsed)
            fitness[name] = result.best.fitness if result.best else None
    throughput = {
        name: round(max(values), 1) for name, values in samples.items()
    }
    assert len(set(fitness.values())) == 1, (
        f"engine configurations disagree on the search outcome: {fitness}"
    )
    from repro.optim.digamma.algorithm import DiGammaHyperParameters

    return {
        "budget": budget,
        "reps": reps,
        "population": DiGammaHyperParameters().resolved_population(budget),
        "evals_per_second": throughput,
        "speedup_vector_vs_fast_cached": round(
            throughput["vector_cached"] / throughput["fast_cached"], 2
        ),
        "speedup_vector_vs_pr1_fast_cached": round(
            throughput["vector_cached"] / PR1_FAST_CACHED_EVALS_PER_SECOND, 2
        ),
        "speedup_vector_vs_reference": round(
            throughput["vector_cached"] / throughput["reference"], 2
        ),
        "speedup_cached_vs_reference": round(
            throughput["fast_cached"] / throughput["reference"], 2
        ),
        "speedup_uncached_vs_reference": round(
            throughput["fast_uncached"] / throughput["reference"], 2
        ),
        "best_fitness": fitness["vector_cached"],
    }


def check_smoke(budget: int = 400) -> int:
    """CI smoke: vector vs fast parity on a small population + micro-bench.

    One DiGamma search per engine on a GA population (budget // 25 members)
    asserting *bit-identical* best fitness, plus a throughput line so CI
    logs track the speed plumbing.  Exits non-zero if the engines disagree
    or the vector path failed to vectorize anything.
    """
    model = get_model("resnet18")
    outcomes = {}
    for name, kwargs in (
        ("vector", {}),
        ("fast", {"engine": "fast"}),
    ):
        framework = CoOptimizationFramework(model, get_platform("edge"), **kwargs)
        start = time.perf_counter()
        result = framework.search(
            get_optimizer("digamma"), sampling_budget=budget, seed=0
        )
        elapsed = time.perf_counter() - start
        vector_stats = framework.evaluator.cost_model.vector_stats
        outcomes[name] = result
        print(
            f"{name:>6s}: {result.evaluations / elapsed:8.0f} evals/s, "
            f"best fitness {result.best.fitness!r}, "
            f"{vector_stats['rows_vectorized']} rows vectorized "
            f"({vector_stats['rows_fallback']} scalar fallbacks)"
        )
        if name == "vector" and vector_stats["rows_vectorized"] == 0:
            print("FAIL: the vector engine never vectorized a row")
            return 1
    if outcomes["vector"].best.fitness != outcomes["fast"].best.fitness:
        print("FAIL: vector and fast engines disagree on the search outcome")
        return 1
    if outcomes["vector"].history != outcomes["fast"].history:
        print("FAIL: vector and fast engines followed different trajectories")
        return 1
    print("OK: vector engine is bit-identical to the scalar fast engine")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=2000)
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI smoke mode: assert vector/fast parity on a small search "
        "and print a micro-benchmark line instead of writing the JSON",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_cost_model.json"),
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_smoke(min(args.budget, 400))

    payload = {
        "benchmark": "cost-model and GA search throughput",
        "machine": {
            "python": platform_module.python_version(),
            "platform": platform_module.platform(),
        },
        "single_layer_eval_us": bench_layer_eval(),
        "search_throughput": bench_search_throughput(args.budget, args.reps),
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nWrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
