"""Record evaluation-engine performance into ``BENCH_cost_model.json``.

Measures, on this machine:

* single-layer cost-model latency (fast engine vs the seed reference), and
* end-to-end DiGamma search throughput on ``resnet18`` / edge — the
  fast-path engine with and without memoization against the seed reference
  path — reporting the speedup the repository's perf work must not regress.

The medians of several interleaved repetitions are written to
``BENCH_cost_model.json`` at the repository root so the performance
trajectory is tracked across PRs.  Run with::

    PYTHONPATH=src python benchmarks/perf_tracking.py [--budget N] [--reps N]
"""

from __future__ import annotations

import argparse
import json
import platform as platform_module
import time
from pathlib import Path

from repro.arch.platform import get_platform
from repro.cost.maestro import CostModel
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.mapping.dataflows import dla_like
from repro.optim.registry import get_optimizer
from repro.workloads.layer import Layer
from repro.workloads.registry import get_model

SEARCH_CONFIGS = {
    "vector_cached": {},  # the default engine: NumPy population batching
    "fast_cached": {"engine": "fast"},
    "fast_uncached": {"engine": "fast", "use_cache": False},
    "reference": {"engine": "reference", "use_cache": False},
}

#: The fast-cached evals/s recorded by the PR that introduced the scalar
#: fast path (BENCH_cost_model.json as of that PR, same machine class).
#: The vector engine's acceptance bar is >= 2x this number.
PR1_FAST_CACHED_EVALS_PER_SECOND = 3804.4


def bench_layer_eval(repeats: int = 2000) -> dict:
    """Best-case single-layer evaluation latency (microseconds).

    The minimum over several timing windows is the standard low-noise
    estimator (machine noise is one-sided: runs only ever get slower).
    """
    layer = Layer.conv2d("resnet_block", 256, 256, 14, 3)
    mapping = dla_like(layer, (16, 16))
    timings = {}
    for name, model in (
        ("fast", CostModel(cache_size=0)),
        ("reference", CostModel(engine="reference")),
    ):
        samples = []
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(repeats):
                model.evaluate_layer(layer, mapping, 64.0, 16.0)
            samples.append((time.perf_counter() - start) / repeats * 1e6)
        timings[name] = round(min(samples), 3)
    timings["speedup"] = round(timings["reference"] / timings["fast"], 2)
    return timings


def bench_search_throughput(budget: int, reps: int, seed: int = 0) -> dict:
    """Peak evals/sec of a DiGamma search on resnet18/edge per engine config.

    Configurations are interleaved so machine-noise windows hit them evenly,
    and the best of ``reps`` runs is reported (min-time estimator).
    """
    model = get_model("resnet18")
    samples = {name: [] for name in SEARCH_CONFIGS}
    fitness = {}
    for _ in range(reps):
        for name, kwargs in SEARCH_CONFIGS.items():
            framework = CoOptimizationFramework(
                model, get_platform("edge"), **kwargs
            )
            start = time.perf_counter()
            result = framework.search(
                get_optimizer("digamma"), sampling_budget=budget, seed=seed
            )
            elapsed = time.perf_counter() - start
            samples[name].append(result.evaluations / elapsed)
            fitness[name] = result.best.fitness if result.best else None
    throughput = {
        name: round(max(values), 1) for name, values in samples.items()
    }
    assert len(set(fitness.values())) == 1, (
        f"engine configurations disagree on the search outcome: {fitness}"
    )
    from repro.optim.digamma.algorithm import DiGammaHyperParameters

    return {
        "budget": budget,
        "reps": reps,
        "population": DiGammaHyperParameters().resolved_population(budget),
        "evals_per_second": throughput,
        "speedup_vector_vs_fast_cached": round(
            throughput["vector_cached"] / throughput["fast_cached"], 2
        ),
        "speedup_vector_vs_pr1_fast_cached": round(
            throughput["vector_cached"] / PR1_FAST_CACHED_EVALS_PER_SECOND, 2
        ),
        "speedup_vector_vs_reference": round(
            throughput["vector_cached"] / throughput["reference"], 2
        ),
        "speedup_cached_vs_reference": round(
            throughput["fast_cached"] / throughput["reference"], 2
        ),
        "speedup_uncached_vs_reference": round(
            throughput["fast_uncached"] / throughput["reference"], 2
        ),
        "best_fitness": fitness["vector_cached"],
    }


def _measure_throughput(budget: int, reps: int, **framework_kwargs) -> float:
    """Best-of-``reps`` evals/s of a DiGamma search (min-time estimator)."""
    model = get_model("resnet18")
    measured = 0.0
    for _ in range(reps):
        framework = CoOptimizationFramework(
            model, get_platform("edge"), **framework_kwargs
        )
        start = time.perf_counter()
        result = framework.search(
            get_optimizer("digamma"), sampling_budget=budget, seed=0
        )
        elapsed = time.perf_counter() - start
        measured = max(measured, result.evaluations / elapsed)
    return measured


def check_regression(
    baseline_path: str,
    tolerance: float,
    reps: int,
    output: str | None = None,
    budget: int | None = None,
    relative: bool = False,
) -> int:
    """Benchmark-regression gate against the recorded baseline.

    Absolute mode (default): re-measures the ``vector_cached`` end-to-end
    search throughput (the default engine configuration, best of ``reps``
    runs) and fails when it regresses more than ``tolerance`` below the
    evals/s recorded in ``BENCH_cost_model.json``.  The committed baseline
    is machine-specific, so this mode only makes sense on the machine
    class that recorded it.

    Relative mode (``--relative``): additionally measures the scalar
    ``fast_cached`` configuration on the *same* machine in the same run
    and gates the vector/fast speedup ratio against the baseline's
    recorded ``speedup_vector_vs_fast_cached``.  The ratio is
    machine-independent, which is what hosted CI runners need — a slower
    runner scales both measurements, but the vector engine silently
    degrading to scalar evaluation still collapses the ratio to ~1x.

    The measurement payload is written to ``output`` (when given) so CI
    can upload it as an artifact next to the committed baseline.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    recorded_throughput = baseline["search_throughput"]["evals_per_second"]
    recorded = recorded_throughput["vector_cached"]
    if budget is None:
        budget = int(baseline["search_throughput"]["budget"])

    measured = _measure_throughput(budget, reps)
    payload = {
        "benchmark": "vector_cached regression gate",
        "machine": {
            "python": platform_module.python_version(),
            "platform": platform_module.platform(),
        },
        "baseline_path": str(baseline_path),
        "mode": "relative" if relative else "absolute",
        "budget": budget,
        "reps": reps,
        "recorded_evals_per_second": recorded,
        "measured_evals_per_second": round(measured, 1),
        "tolerance": tolerance,
    }
    if relative:
        recorded_ratio = baseline["search_throughput"][
            "speedup_vector_vs_fast_cached"
        ]
        fast_measured = _measure_throughput(budget, reps, engine="fast")
        measured_ratio = measured / fast_measured
        floor = recorded_ratio * (1.0 - tolerance)
        passed = measured_ratio >= floor
        payload.update(
            {
                "measured_fast_cached_evals_per_second": round(fast_measured, 1),
                "recorded_speedup_vector_vs_fast_cached": recorded_ratio,
                "measured_speedup_vector_vs_fast_cached": round(measured_ratio, 2),
                "floor_speedup": round(floor, 2),
                "passed": passed,
            }
        )
        subject = (
            f"vector/fast speedup {measured_ratio:.2f}x vs floor {floor:.2f}x "
            f"({recorded_ratio:.2f}x recorded, tolerance {tolerance:.0%})"
        )
    else:
        floor = recorded * (1.0 - tolerance)
        passed = measured >= floor
        payload.update(
            {
                "floor_evals_per_second": round(floor, 1),
                "passed": passed,
            }
        )
        subject = (
            f"vector_cached {measured:.1f} evals/s vs floor {floor:.1f} "
            f"({recorded:.1f} recorded, tolerance {tolerance:.0%})"
        )
    if output:
        Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(("OK: " if passed else "FAIL: ") + subject)
    return 0 if passed else 1


def check_smoke(budget: int = 400) -> int:
    """CI smoke: vector vs fast parity on a small population + micro-bench.

    One DiGamma search per engine on a GA population (budget // 25 members)
    asserting *bit-identical* best fitness, plus a throughput line so CI
    logs track the speed plumbing.  Exits non-zero if the engines disagree
    or the vector path failed to vectorize anything.
    """
    model = get_model("resnet18")
    outcomes = {}
    for name, kwargs in (
        ("vector", {}),
        ("fast", {"engine": "fast"}),
    ):
        framework = CoOptimizationFramework(model, get_platform("edge"), **kwargs)
        start = time.perf_counter()
        result = framework.search(
            get_optimizer("digamma"), sampling_budget=budget, seed=0
        )
        elapsed = time.perf_counter() - start
        vector_stats = framework.evaluator.cost_model.vector_stats
        outcomes[name] = result
        print(
            f"{name:>6s}: {result.evaluations / elapsed:8.0f} evals/s, "
            f"best fitness {result.best.fitness!r}, "
            f"{vector_stats['rows_vectorized']} rows vectorized "
            f"({vector_stats['rows_fallback']} scalar fallbacks)"
        )
        if name == "vector" and vector_stats["rows_vectorized"] == 0:
            print("FAIL: the vector engine never vectorized a row")
            return 1
    if outcomes["vector"].best.fitness != outcomes["fast"].best.fitness:
        print("FAIL: vector and fast engines disagree on the search outcome")
        return 1
    if outcomes["vector"].history != outcomes["fast"].history:
        print("FAIL: vector and fast engines followed different trajectories")
        return 1
    print("OK: vector engine is bit-identical to the scalar fast engine")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=2000)
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI smoke mode: assert vector/fast parity on a small search "
        "and print a micro-benchmark line instead of writing the JSON",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="benchmark-regression gate: re-measure vector_cached search "
        "throughput and fail when it drops more than --tolerance below "
        "the recorded baseline (see --baseline)",
    )
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_cost_model.json"),
        help="recorded baseline JSON the regression gate compares against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression of vector_cached evals/s "
        "(default: 0.30, i.e. fail on >30%% regression)",
    )
    parser.add_argument(
        "--relative",
        action="store_true",
        help="gate the vector/fast speedup ratio instead of absolute "
        "evals/s (machine-independent; use on hosted CI runners)",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_cost_model.json"),
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"--tolerance must be in [0, 1), got {args.tolerance}")
    if args.check_regression:
        output = args.output
        if output == parser.get_default("output"):
            # Never overwrite the committed baseline with a gate measurement.
            output = None
        return check_regression(
            args.baseline,
            args.tolerance,
            args.reps,
            output=output,
            budget=args.budget,
            relative=args.relative,
        )
    if args.check:
        return check_smoke(min(args.budget, 400))

    payload = {
        "benchmark": "cost-model and GA search throughput",
        "machine": {
            "python": platform_module.python_version(),
            "platform": platform_module.platform(),
        },
        "single_layer_eval_us": bench_layer_eval(),
        "search_throughput": bench_search_throughput(args.budget, args.reps),
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nWrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
