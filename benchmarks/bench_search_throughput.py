"""End-to-end search throughput benchmark (evals/sec at a fixed budget).

This is the speed contract of the fast-path evaluation engine: a whole
DiGamma search on ``resnet18`` (edge platform), measured as evaluations per
wall-clock second, compared against the seed implementation (the reference
engine without memoization).  The same numbers are recorded across PRs by
``benchmarks/perf_tracking.py`` into ``BENCH_cost_model.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_search_throughput.py \
        --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_settings
from repro.arch.platform import get_platform
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.optim.registry import get_optimizer
from repro.workloads.registry import get_model

#: Searches are short enough to time directly with several rounds.
_ROUNDS = 3

ENGINE_CONFIGS = {
    "delta-cached": {},  # the default data path: matrix loops + delta reuse
    "vector-cached": {"use_delta": False},
    "vector-uncached": {"use_cache": False, "use_delta": False},
    "fast-cached": {"engine": "fast"},
    "fast-uncached": {"engine": "fast", "use_cache": False},
    "reference": {"engine": "reference", "use_cache": False},
}


def _run_search(framework_kwargs, budget, seed):
    model = get_model("resnet18")
    framework = CoOptimizationFramework(
        model, get_platform("edge"), **framework_kwargs
    )
    result = framework.search(
        get_optimizer("digamma"), sampling_budget=budget, seed=seed
    )
    assert result.evaluations == budget
    return result


@pytest.mark.parametrize("config_name", sorted(ENGINE_CONFIGS))
def test_ga_search_throughput(benchmark, config_name):
    settings = bench_settings()
    result = benchmark.pedantic(
        _run_search,
        args=(ENGINE_CONFIGS[config_name], settings.sampling_budget, settings.seed),
        rounds=_ROUNDS,
        iterations=1,
    )
    assert result.evals_per_second > 0
