"""Microbenchmarks of the analytical cost model.

The co-optimization loop only works because one fitness evaluation is cheap
(the paper quotes ~20 CPU-minutes for 40K samples, i.e. tens of evaluations
per second including the search overhead).  These benchmarks measure the
evaluator's single-layer and whole-model throughput so regressions in the
hot path are visible.
"""

from __future__ import annotations

import pytest

from repro.cost.maestro import CostModel
from repro.mapping.dataflows import dla_like
from repro.workloads.layer import Layer
from repro.workloads.registry import get_model

COST_MODEL = CostModel()


def test_single_layer_evaluation_throughput(benchmark):
    layer = Layer.conv2d("resnet_block", 256, 256, 14, 3)
    mapping = dla_like(layer, (16, 16))
    report = benchmark(
        COST_MODEL.evaluate_layer, layer, mapping, 64.0, 16.0
    )
    assert report.latency > 0


@pytest.mark.parametrize("model_name", ["resnet18", "bert", "mobilenet_v2"])
def test_whole_model_evaluation_throughput(benchmark, model_name):
    model = get_model(model_name)
    reference_layer = model.unique_layers()[0]
    mapping = dla_like(reference_layer, (16, 16))
    performance = benchmark(
        COST_MODEL.evaluate_model, model, mapping, 64.0, 16.0
    )
    assert performance.latency > 0
