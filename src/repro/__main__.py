"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------

``models``
    List the built-in DNN workloads with layer and MAC counts.
``search``
    Co-optimize HW and mapping for one model (or a suite) and optionally
    save the best design as JSON.
``evaluate``
    Evaluate a fixed dataflow template on a model with a given PE array —
    a search-free sanity check of the cost model.
``fig5`` / ``fig6`` / ``fig7`` / ``ablations``
    Regenerate the paper's figures (thin wrappers over
    ``repro.experiments``).
``pareto``
    Multi-objective Pareto-front suite: one NSGA-II search per model
    yields the whole latency/energy/area trade-off curve (also reachable
    as ``experiments --suite pareto``); ``--verify-store`` checks stored
    fronts in CI.
``experiments``
    The unified sweep runner: compile figure suites (or custom grids) into
    jobs, stream results to a JSONL store, ``--resume`` interrupted sweeps
    and split them with ``--shard i/N``.  Jobs run inside a per-job error
    boundary with retries (``--retries``, ``--retry-backoff``), a watchdog
    timeout (``--job-timeout``) and poison-job quarantine; stores can be
    integrity-checked (``--verify-store``), cleaned (``--repair-store``)
    and summarised (``--status``), ``--checkpoint-dir`` makes killed or
    interrupted searches resume bit-identically mid-search, and
    ``--fault-plan`` injects deterministic chaos for testing.
``crosscheck``
    Cross-backend agreement check: price one design sample on both the
    analytic and the zigzag cost backend and gate their per-objective
    deltas against the documented tolerance (exit 1 on disagreement).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import pareto_front_report
from repro.arch.platform import get_platform
from repro.experiments import ablations as ablations_module
from repro.experiments import fig5 as fig5_module
from repro.experiments import fig6 as fig6_module
from repro.experiments import fig7 as fig7_module
from repro.experiments import pareto as pareto_module
from repro.experiments import runner as runner_module
from repro.cost.backend import BACKENDS
from repro.experiments import crosscheck as crosscheck_module
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.evaluator import ENGINES
from repro.framework.objective import Objective, ObjectiveSet
from repro.mapping.dataflows import DATAFLOW_STYLES, get_dataflow
from repro.optim.registry import available_optimizers, get_optimizer
from repro.serialization import pareto_result_to_dict, save_json, search_result_to_dict
from repro.workloads.registry import available_models, get_model
from repro.workloads.suite import ModelSuite


def _cmd_models(_: argparse.Namespace) -> int:
    print(f"{'model':<16} {'layers':>7} {'unique':>7} {'GMACs':>8}")
    print("-" * 42)
    for name in available_models():
        model = get_model(name)
        print(f"{name:<16} {len(model.layers):>7d} {len(model.unique_layers()):>7d} "
              f"{model.total_macs / 1e9:>8.2f}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    if len(args.model) == 1:
        model = get_model(args.model[0])
    else:
        model = ModelSuite.from_names("suite", args.model).as_model()
    platform = get_platform(args.platform)
    if args.objectives:
        if args.objective is not None:
            raise SystemExit(
                "search: --objective and --objectives are mutually exclusive; "
                "the first entry of --objectives is the primary objective"
            )
        return _run_pareto_search(args, model, platform)
    framework = CoOptimizationFramework(
        model,
        platform,
        objective=Objective.from_name(args.objective or "latency"),
        use_cache=not args.no_cache,
        workers=args.workers,
        engine=args.engine,
        use_delta=not args.no_delta,
        backend=args.backend,
        cache_dir=args.cache_dir,
    )
    optimizer = get_optimizer(args.optimizer)
    try:
        result = framework.search(
            optimizer,
            sampling_budget=args.budget,
            seed=args.seed,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
        )
    finally:
        framework.close()
    print(result.summary())
    _print_cache_stats(framework)
    if args.cache_stats_json:
        best = result.best.fitness if result.found_valid else None
        _write_cache_stats_json(framework, best, args.cache_stats_json)
    if result.found_valid:
        print()
        print(result.best.design.describe())
        if args.output:
            path = save_json(search_result_to_dict(result), args.output)
            print(f"\nSaved search result to {path}")
    return 0 if result.found_valid else 1


def _run_pareto_search(args: argparse.Namespace, model, platform) -> int:
    """The multi-objective branch of ``repro search`` (--objectives)."""
    framework = CoOptimizationFramework(
        model,
        platform,
        objectives=ObjectiveSet.from_names(args.objectives),
        use_cache=not args.no_cache,
        workers=args.workers,
        engine=args.engine,
        use_delta=not args.no_delta,
        backend=args.backend,
        cache_dir=args.cache_dir,
    )
    optimizer = get_optimizer(args.optimizer)
    try:
        result = framework.pareto_search(
            optimizer,
            sampling_budget=args.budget,
            seed=args.seed,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
        )
    finally:
        framework.close()
    print(result.summary())
    _print_cache_stats(framework)
    if args.cache_stats_json:
        front = result.front
        best = max(point.fitness for point in front) if front else None
        _write_cache_stats_json(framework, best, args.cache_stats_json)
    if result.found_valid:
        print()
        print(pareto_front_report(result))
        if args.output:
            path = save_json(pareto_result_to_dict(result), args.output)
            print(f"\nSaved Pareto front to {path}")
    return 0 if result.found_valid else 1


def _print_cache_stats(framework: CoOptimizationFramework) -> None:
    """Report evaluation-cache efficiency of one finished search run."""
    evaluator = framework.evaluator
    if not evaluator.use_cache:
        print("evaluation cache: disabled (--no-cache)")
        return
    if evaluator.workers and evaluator.cache_stats.requests == 0:
        print("evaluation cache: per-worker (stats live in the worker processes)")
        return
    print(f"design cache: {evaluator.design_cache_stats.summary()}")
    print(f"layer cache:  {evaluator.layer_cache_stats.summary()}")
    tier = evaluator.persistent_cache
    if tier is not None:
        counters = tier.counters()
        requests = counters["l2_hits"] + counters["l2_misses"]
        rate = counters["l2_hits"] / requests if requests else 0.0
        print(
            "l2 cache:     "
            f"{counters['l2_hits']}/{requests} hits ({rate:.1%}), "
            f"{counters['l2_writes']} writes, "
            f"{tier.entries} entries on disk"
        )
    stats = evaluator.cost_model.vector_stats
    if stats["delta_generations"] > 0:
        # Delta reuse resolves before the cache probes but still counts as
        # cache hits (sequential evaluation would have hit the memos); this
        # line reports the subset the fingerprint tables absorbed.
        members = stats["delta_member_requests"]
        rows = stats["delta_row_requests"]
        print(
            "delta reuse:  "
            f"{stats['delta_members_reused']}/{members} members "
            f"({stats['delta_members_reused'] / max(1, members):.1%}), "
            f"{stats['delta_rows_reused']}/{rows} layer rows "
            f"({stats['delta_rows_reused'] / max(1, rows):.1%}) "
            f"over {stats['delta_generations']} generations"
        )


def _write_cache_stats_json(
    framework: CoOptimizationFramework,
    best_fitness: Optional[float],
    path: str,
) -> None:
    """Save machine-readable cache statistics for one finished search.

    The CI warm-cache gate runs the same search twice against one
    ``--cache-dir`` and compares these files: the second run must answer
    its layer pricings from the persistent tier (``l2.hit_rate``) while
    reproducing the first run's ``best_fitness`` bit-identically.
    """
    evaluator = framework.evaluator
    record: dict = {
        "best_fitness": best_fitness,
        "l1": {
            "design": {
                "hits": evaluator.design_cache_stats.hits,
                "misses": evaluator.design_cache_stats.misses,
            },
            "layer": {
                "hits": evaluator.layer_cache_stats.hits,
                "misses": evaluator.layer_cache_stats.misses,
            },
        },
    }
    tier = evaluator.persistent_cache
    record["l2"] = tier.stats() if tier is not None else None
    out = save_json(record, path)
    print(f"Saved cache statistics to {out}")


def _cmd_evaluate(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    platform = get_platform(args.platform)
    framework = CoOptimizationFramework(model, platform)
    template = get_dataflow(args.dataflow)
    pe_array = (args.pe_rows, args.pe_cols)
    evaluation = framework.evaluator.evaluate_mapping(
        lambda layer: template(layer, pe_array), pe_array=pe_array
    )
    status = "valid" if evaluation.valid else "INVALID (over budget)"
    print(f"{args.dataflow}-like on {args.pe_rows}x{args.pe_cols} PEs "
          f"({platform.name}): {status}")
    print(evaluation.design.describe())
    return 0 if evaluation.valid else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("models", help="list built-in DNN workloads")

    search = subparsers.add_parser("search", help="co-optimize HW and mapping")
    search.add_argument("--model", nargs="+", default=["resnet18"],
                        help="model name(s); several names form a suite")
    search.add_argument("--platform", choices=("edge", "cloud"), default="edge")
    search.add_argument("--optimizer", default="digamma",
                        help=f"one of {available_optimizers()}")
    search.add_argument("--objective", default=None,
                        choices=[objective.value for objective in Objective],
                        help="scalar objective to minimize (default: latency; "
                             "mutually exclusive with --objectives)")
    search.add_argument("--objectives", default=None,
                        help="comma-separated objective axes (e.g. "
                             "'latency,energy,area'); switches to "
                             "multi-objective Pareto-front search — pair "
                             "with --optimizer nsga2 for a spread front")
    search.add_argument("--budget", type=int, default=2000, help="sampling budget")
    search.add_argument("--seed", type=int, default=0)
    search.add_argument("--output", default=None,
                        help="optional path for the JSON result")
    search.add_argument("--workers", type=int, default=None,
                        help="process-pool width for batched population "
                             "evaluation (default: in-process)")
    search.add_argument("--engine", choices=ENGINES,
                        default="vector",
                        help="evaluation engine (bit-identical results; "
                             "'vector' batches whole populations through "
                             "NumPy, 'fast' is the scalar engine, "
                             "'reference' the seed implementation)")
    search.add_argument("--backend", choices=BACKENDS,
                        default="analytic",
                        help="cost backend: 'analytic' (the paper's "
                             "MAESTRO-style order-aware model, default) or "
                             "'zigzag' (independently coded memory-centric "
                             "model); backends compute different costs")
    search.add_argument("--no-cache", action="store_true",
                        help="disable evaluation memoization (results are "
                             "bit-identical either way)")
    search.add_argument("--no-delta", action="store_true",
                        help="disable cross-generation delta evaluation on "
                             "the gene-matrix path (results are "
                             "bit-identical either way)")
    search.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent cross-run layer-cache directory; "
                             "warm reruns answer repeat layer pricings from "
                             "disk with bit-identical results (see "
                             "repro.cost.persist)")
    search.add_argument("--cache-stats-json", default=None, metavar="PATH",
                        help="save best fitness plus L1/L2 cache counters "
                             "as JSON (used by the CI warm-cache gate)")
    search.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="mid-search checkpoint directory; a killed or "
                             "interrupted search resumes bit-identically "
                             "from its last completed generation on re-run "
                             "(see repro.framework.checkpoint)")
    search.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                        help="save a checkpoint every N generation "
                             "boundaries (default: 1)")

    evaluate = subparsers.add_parser(
        "evaluate", help="evaluate a fixed dataflow on a model"
    )
    evaluate.add_argument("--model", default="resnet18")
    evaluate.add_argument("--platform", choices=("edge", "cloud"), default="edge")
    evaluate.add_argument("--dataflow", choices=DATAFLOW_STYLES, default="dla")
    evaluate.add_argument("--pe-rows", type=int, default=16)
    evaluate.add_argument("--pe-cols", type=int, default=16)

    subparsers.add_parser("fig5", add_help=False)
    subparsers.add_parser("fig6", add_help=False)
    subparsers.add_parser("fig7", add_help=False)
    subparsers.add_parser("ablations", add_help=False)
    subparsers.add_parser("pareto", add_help=False)
    subparsers.add_parser("experiments", add_help=False)
    subparsers.add_parser("crosscheck", add_help=False)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    argv = list(argv) if argv is not None else sys.argv[1:]
    # The figure subcommands forward their remaining arguments unchanged.
    if argv and argv[0] in (
        "fig5", "fig6", "fig7", "ablations", "pareto", "experiments",
        "crosscheck",
    ):
        forwarding = {
            "fig5": fig5_module.main,
            "fig6": fig6_module.main,
            "fig7": fig7_module.main,
            "ablations": ablations_module.main,
            "pareto": pareto_module.main,
            "experiments": runner_module.main,
            "crosscheck": crosscheck_module.main,
        }
        return forwarding[argv[0]](argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "models": _cmd_models,
        "search": _cmd_search,
        "evaluate": _cmd_evaluate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
