"""Post-search analysis utilities.

Helpers for turning raw search outcomes into the quantities papers (and
engineers) actually look at: convergence curves, sample-efficiency
comparisons, latency/area Pareto fronts and side-by-side design reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.framework.evaluator import EvaluationResult
from repro.framework.search import SearchResult


def convergence_curve(result: SearchResult) -> List[Tuple[int, float]]:
    """Best objective value (lower is better) after each improving sample.

    The tracker records fitness (higher is better, negated objective); this
    converts back to objective values and drops invalid-penalty entries, so
    the curve starts at the first valid design found.
    """
    curve: List[Tuple[int, float]] = []
    for evaluation_index, fitness in result.history:
        if fitness <= -1e17:  # graded penalty of an invalid design point
            continue
        curve.append((evaluation_index, -fitness))
    return curve


def samples_to_reach(result: SearchResult, objective_value: float) -> Optional[int]:
    """Number of samples the search needed to reach ``objective_value`` or better.

    Returns ``None`` when the search never reached it.  This is the
    sample-efficiency metric behind the paper's "same sampling budget"
    argument: a better algorithm reaches a given quality with fewer samples.
    """
    for evaluation_index, value in convergence_curve(result):
        if value <= objective_value:
            return evaluation_index
    return None


def speedup_over(
    baseline: SearchResult,
    candidate: SearchResult,
) -> float:
    """Latency speedup of ``candidate``'s best design over ``baseline``'s.

    ``inf`` when only the candidate found a valid design, ``0`` when only
    the baseline did, ``nan`` when neither did.
    """
    if not baseline.found_valid and not candidate.found_valid:
        return float("nan")
    if not candidate.found_valid:
        return 0.0
    if not baseline.found_valid:
        return float("inf")
    return baseline.best_latency / candidate.best_latency


@dataclass(frozen=True)
class ParetoPoint:
    """One design on the latency/area trade-off curve."""

    label: str
    latency: float
    area: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """True when this point is at least as good on both axes and better on one."""
        at_least_as_good = self.latency <= other.latency and self.area <= other.area
        strictly_better = self.latency < other.latency or self.area < other.area
        return at_least_as_good and strictly_better


def pareto_front(points: Iterable[ParetoPoint]) -> List[ParetoPoint]:
    """Non-dominated subset of ``points``, sorted by latency."""
    candidates = list(points)
    front = [
        point
        for point in candidates
        if not any(other.dominates(point) for other in candidates if other is not point)
    ]
    return sorted(front, key=lambda point: (point.latency, point.area))


def results_to_pareto_points(
    results: Mapping[str, SearchResult]
) -> List[ParetoPoint]:
    """Turn a label -> search-result mapping into Pareto points (valid only)."""
    points = []
    for label, result in results.items():
        if result.found_valid:
            points.append(
                ParetoPoint(
                    label=label,
                    latency=result.best_latency,
                    area=result.best.design.area.total,
                )
            )
    return points


def compare_designs(results: Mapping[str, SearchResult]) -> str:
    """Side-by-side text report of the best design of each labelled search."""
    lines = [
        f"{'scheme':<28} {'latency':>12} {'area um^2':>12} {'LAP':>12} "
        f"{'PEs':>6} {'PE:buf':>8}"
    ]
    lines.append("-" * len(lines[0]))
    for label, result in results.items():
        if not result.found_valid:
            lines.append(f"{label:<28} {'N/A':>12}")
            continue
        design = result.best.design
        pe_pct, buffer_pct = design.area.pe_to_buffer_ratio
        lines.append(
            f"{label:<28} {design.latency:>12.3e} {design.area.total:>12.3e} "
            f"{design.latency_area_product:>12.3e} {design.hardware.num_pes:>6d} "
            f"{pe_pct:>4.0f}:{buffer_pct:<3.0f}"
        )
    return "\n".join(lines)
