"""Post-search analysis utilities.

Helpers for turning raw search outcomes into the quantities papers (and
engineers) actually look at: convergence curves, sample-efficiency
comparisons, latency/area Pareto fronts and side-by-side design reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Tuple

from repro.framework.pareto import ParetoResult
from repro.framework.search import SearchResult


def convergence_curve(result: SearchResult) -> List[Tuple[int, float]]:
    """Best objective value (lower is better) after each improving sample.

    The tracker records fitness (higher is better, negated objective); this
    converts back to objective values and drops invalid-penalty entries, so
    the curve starts at the first valid design found.
    """
    curve: List[Tuple[int, float]] = []
    for evaluation_index, fitness in result.history:
        if fitness <= -1e17:  # graded penalty of an invalid design point
            continue
        curve.append((evaluation_index, -fitness))
    return curve


def samples_to_reach(result: SearchResult, objective_value: float) -> Optional[int]:
    """Number of samples the search needed to reach ``objective_value`` or better.

    Returns ``None`` when the search never reached it.  This is the
    sample-efficiency metric behind the paper's "same sampling budget"
    argument: a better algorithm reaches a given quality with fewer samples.
    """
    for evaluation_index, value in convergence_curve(result):
        if value <= objective_value:
            return evaluation_index
    return None


def speedup_over(
    baseline: SearchResult,
    candidate: SearchResult,
) -> float:
    """Latency speedup of ``candidate``'s best design over ``baseline``'s.

    ``inf`` when only the candidate found a valid design, ``0`` when only
    the baseline did, ``nan`` when neither did.
    """
    if not baseline.found_valid and not candidate.found_valid:
        return float("nan")
    if not candidate.found_valid:
        return 0.0
    if not baseline.found_valid:
        return float("inf")
    return baseline.best_latency / candidate.best_latency


@dataclass(frozen=True)
class ParetoPoint:
    """One design on the latency/area trade-off curve."""

    label: str
    latency: float
    area: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """True when this point is at least as good on both axes and better on one."""
        at_least_as_good = self.latency <= other.latency and self.area <= other.area
        strictly_better = self.latency < other.latency or self.area < other.area
        return at_least_as_good and strictly_better


def pareto_front(
    points: Iterable[ParetoPoint], dedupe: bool = False
) -> List[ParetoPoint]:
    """Non-dominated subset of ``points``, sorted by latency.

    Points tied on one axis but better on the other both survive; exact
    duplicates (same latency *and* area) all survive by default because
    equal points never dominate each other.  With ``dedupe=True`` exact
    duplicates collapse to their first occurrence (first label wins),
    which is what front *merging* wants: the same design reached by two
    searches is one point on the combined curve.
    """
    candidates = list(points)
    if dedupe:
        seen = set()
        unique: List[ParetoPoint] = []
        for point in candidates:
            key = (point.latency, point.area)
            if key not in seen:
                seen.add(key)
                unique.append(point)
        candidates = unique
    front = [
        point
        for point in candidates
        if not any(other.dominates(point) for other in candidates if other is not point)
    ]
    return sorted(front, key=lambda point: (point.latency, point.area))


def results_to_pareto_points(
    results: Mapping[str, SearchResult]
) -> List[ParetoPoint]:
    """Turn a label -> search-result mapping into Pareto points (valid only)."""
    points = []
    for label, result in results.items():
        if result.found_valid:
            points.append(
                ParetoPoint(
                    label=label,
                    latency=result.best_latency,
                    area=result.best.design.area.total,
                )
            )
    return points


def pareto_result_to_points(
    result: ParetoResult, label_prefix: str = ""
) -> List[ParetoPoint]:
    """Latency/area view of a multi-objective front.

    Every front member has a decoded design, so the classic latency-area
    curve is available no matter which objectives were searched.  Labels
    are ``{prefix}#{index}`` in front order.
    """
    prefix = label_prefix or result.optimizer_name
    return [
        ParetoPoint(
            label=f"{prefix}#{index}",
            latency=entry.design.latency,
            area=entry.design.area.total,
        )
        for index, entry in enumerate(result.front)
    ]


def merge_pareto_points(
    *point_groups: Iterable[ParetoPoint],
) -> List[ParetoPoint]:
    """Combined non-dominated curve of several point sets.

    This is how a multi-objective front and the per-scheme best designs of
    single-objective searches (:func:`results_to_pareto_points`) merge into
    one trade-off plot: concatenate, dedupe exact duplicates (first label
    wins) and keep the non-dominated subset.
    """
    merged: List[ParetoPoint] = []
    for group in point_groups:
        merged.extend(group)
    return pareto_front(merged, dedupe=True)


def pareto_front_report(result: ParetoResult, title: Optional[str] = None) -> str:
    """Text table of a multi-objective front, one row per design."""
    names = result.objective_names
    header = f"{'#':>3} " + " ".join(f"{name:>14}" for name in names) + (
        f" {'PEs':>6} {'area um^2':>12}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for index, entry in enumerate(result.front):
        values = " ".join(f"{value:>14.4e}" for value in entry.objective_vector)
        lines.append(
            f"{index:>3d} {values} {entry.design.hardware.num_pes:>6d} "
            f"{entry.design.area.total:>12.3e}"
        )
    if not result.front:
        lines.append("(empty front: no valid design found)")
    return "\n".join(lines)


def compare_designs(results: Mapping[str, SearchResult]) -> str:
    """Side-by-side text report of the best design of each labelled search."""
    lines = [
        f"{'scheme':<28} {'latency':>12} {'area um^2':>12} {'LAP':>12} "
        f"{'PEs':>6} {'PE:buf':>8}"
    ]
    lines.append("-" * len(lines[0]))
    for label, result in results.items():
        if not result.found_valid:
            lines.append(f"{label:<28} {'N/A':>12}")
            continue
        design = result.best.design
        pe_pct, buffer_pct = design.area.pe_to_buffer_ratio
        lines.append(
            f"{label:<28} {design.latency:>12.3e} {design.area.total:>12.3e} "
            f"{design.latency_area_product:>12.3e} {design.hardware.num_pes:>6d} "
            f"{pe_pct:>4.0f}:{buffer_pct:<3.0f}"
        )
    return "\n".join(lines)
