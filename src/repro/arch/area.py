"""Parametric silicon-area model.

The paper estimates area from RTL synthesis (Nangate 15nm) plus SRAM
compilation (SAED32).  Here the same role is played by a linear model with
one coefficient per component: area per PE (MAC, pipeline registers,
control) and area per byte of L1 / L2 SRAM.  The defaults are calibrated so
that the paper's edge (0.2 mm^2) and cloud (7.0 mm^2) budgets admit PE
counts and PE:buffer area ratios in the ranges the paper reports (Fig. 7).
All areas are in square micrometres (um^2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.hardware import HardwareConfig


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component area of one design point, in um^2."""

    pe_area: float
    l1_area: float
    l2_area: float

    @property
    def buffer_area(self) -> float:
        """Total SRAM area (all L1s plus L2)."""
        return self.l1_area + self.l2_area

    @property
    def total(self) -> float:
        """Total accelerator area considered by the budget constraint."""
        return self.pe_area + self.buffer_area

    @property
    def pe_to_buffer_ratio(self) -> tuple[float, float]:
        """(PE %, buffer %) split of the total area, as in the paper's Fig. 7."""
        total = self.total
        if total <= 0.0:
            return (0.0, 0.0)
        return (100.0 * self.pe_area / total, 100.0 * self.buffer_area / total)


@dataclass(frozen=True)
class AreaModel:
    """Linear area model: ``area = PEs * a_pe + L1_bytes * a_l1 + L2_bytes * a_l2``.

    Parameters
    ----------
    pe_area_um2:
        Area of one PE (8-bit MAC, operand registers, small control FSM).
    l1_area_per_byte_um2:
        Area per byte of the per-PE L1 scratchpads (small arrays, high
        overhead per byte).
    l2_area_per_byte_um2:
        Area per byte of the shared L2 SRAM (large banked arrays, denser).
    """

    pe_area_um2: float = 450.0
    l1_area_per_byte_um2: float = 0.9
    l2_area_per_byte_um2: float = 0.45

    def __post_init__(self) -> None:
        if self.pe_area_um2 <= 0:
            raise ValueError("pe_area_um2 must be positive")
        if self.l1_area_per_byte_um2 <= 0 or self.l2_area_per_byte_um2 <= 0:
            raise ValueError("SRAM area coefficients must be positive")

    def breakdown(self, hardware: HardwareConfig) -> AreaBreakdown:
        """Area breakdown of the given hardware configuration."""
        return AreaBreakdown(
            pe_area=hardware.num_pes * self.pe_area_um2,
            l1_area=hardware.total_l1_size * self.l1_area_per_byte_um2,
            l2_area=hardware.l2_size * self.l2_area_per_byte_um2,
        )

    def total_area(self, hardware: HardwareConfig) -> float:
        """Total area of the given hardware configuration, in um^2."""
        return self.breakdown(hardware).total

    def max_pes_within(self, area_budget_um2: float) -> int:
        """Largest PE count that fits the budget with no buffers at all.

        This is the upper bound used to size the HW search space.
        """
        if area_budget_um2 <= 0:
            raise ValueError("area budget must be positive")
        return max(1, int(area_budget_um2 // self.pe_area_um2))

    def max_l2_bytes_within(self, area_budget_um2: float) -> int:
        """Largest L2 capacity that fits the budget with no PEs at all."""
        if area_budget_um2 <= 0:
            raise ValueError("area budget must be positive")
        return max(1, int(area_budget_um2 // self.l2_area_per_byte_um2))
