"""Parametric energy model.

Energy is accounted per MAC operation and per byte moved at each level of
the memory hierarchy.  The default coefficients follow the widely used
relative costs of on-chip and off-chip accesses (register/L1 accesses are a
few times a MAC, L2 an order of magnitude, DRAM two orders of magnitude).
Units are arbitrary (normalised to one MAC); only relative comparisons are
used by the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    """Energy coefficients of compute and data movement."""

    mac_energy: float = 1.0
    l1_energy_per_byte: float = 1.5
    l2_energy_per_byte: float = 8.0
    dram_energy_per_byte: float = 150.0

    def __post_init__(self) -> None:
        for name in ("mac_energy", "l1_energy_per_byte", "l2_energy_per_byte",
                     "dram_energy_per_byte"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def compute_energy(self, macs: float) -> float:
        """Energy of performing ``macs`` multiply-accumulates."""
        return macs * self.mac_energy

    def movement_energy(
        self,
        l1_bytes: float,
        l2_bytes: float,
        dram_bytes: float,
    ) -> float:
        """Energy of moving the given traffic at each hierarchy level."""
        return (
            l1_bytes * self.l1_energy_per_byte
            + l2_bytes * self.l2_energy_per_byte
            + dram_bytes * self.dram_energy_per_byte
        )
