"""Accelerator hardware abstraction: resources, area and energy models."""

from repro.arch.area import AreaBreakdown, AreaModel
from repro.arch.energy import EnergyModel
from repro.arch.hardware import HardwareConfig
from repro.arch.platform import CLOUD, EDGE, Platform, get_platform

__all__ = [
    "AreaBreakdown",
    "AreaModel",
    "EnergyModel",
    "HardwareConfig",
    "Platform",
    "EDGE",
    "CLOUD",
    "get_platform",
]
