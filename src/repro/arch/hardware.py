"""Hardware resource configuration of a spatial DNN accelerator.

The paper's accelerator template (Fig. 3(d-e)) is a hierarchy of clusters:
the L2 level instantiates ``pi_l2`` 1-D PE arrays and the L1 level gives each
array ``pi_l1`` PEs.  Each PE holds a MAC and an L1 buffer; a shared L2
buffer feeds the array over a NoC and is itself filled from DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class HardwareConfig:
    """HW resources of one accelerator design point.

    Parameters
    ----------
    pe_array:
        Spatial fan-out per cluster level, outermost first.  A two-level
        hierarchy ``(pi_l2, pi_l1)`` describes a ``pi_l2 x pi_l1`` PE array;
        a three-level hierarchy describes several 2-D arrays.
    l1_size:
        Per-PE local buffer capacity in bytes.
    l2_size:
        Shared global buffer capacity in bytes.
    noc_bandwidth:
        Bytes per cycle deliverable from L2 to the PE array (aggregate).
    dram_bandwidth:
        Bytes per cycle deliverable from off-chip DRAM into L2.
    bytes_per_element:
        Data width of every tensor element (1 = int8, 2 = fp16, ...).
    frequency_mhz:
        Clock frequency, used only to convert cycles to wall-clock time in
        reports.
    """

    pe_array: Tuple[int, ...] = (16, 16)
    l1_size: int = 512
    l2_size: int = 108 * 1024
    noc_bandwidth: float = 64.0
    dram_bandwidth: float = 16.0
    bytes_per_element: int = 1
    frequency_mhz: float = 1000.0

    def __post_init__(self) -> None:
        if not self.pe_array:
            raise ValueError("pe_array must have at least one level")
        if any(int(size) < 1 for size in self.pe_array):
            raise ValueError(f"pe_array entries must be >= 1, got {self.pe_array}")
        object.__setattr__(self, "pe_array", tuple(int(size) for size in self.pe_array))
        if self.l1_size < 1 or self.l2_size < 1:
            raise ValueError("buffer sizes must be positive")
        if self.noc_bandwidth <= 0 or self.dram_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.bytes_per_element < 1:
            raise ValueError("bytes_per_element must be >= 1")
        if self.frequency_mhz <= 0:
            raise ValueError("frequency_mhz must be positive")

    # -- derived quantities ------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Number of cluster levels in the hierarchy."""
        return len(self.pe_array)

    @property
    def num_pes(self) -> int:
        """Total number of processing elements."""
        total = 1
        for size in self.pe_array:
            total *= size
        return total

    @property
    def total_l1_size(self) -> int:
        """Aggregate L1 capacity across all PEs, in bytes."""
        return self.l1_size * self.num_pes

    @property
    def total_buffer_size(self) -> int:
        """Aggregate on-chip SRAM (all L1s plus the L2), in bytes."""
        return self.total_l1_size + self.l2_size

    def with_buffers(self, l1_size: int, l2_size: int) -> "HardwareConfig":
        """Return a copy with the buffer capacities replaced.

        Used by the minimum-buffer allocation strategy: buffer sizes are
        derived from the mapping rather than searched.
        """
        return replace(self, l1_size=int(l1_size), l2_size=int(l2_size))

    def with_pe_array(self, pe_array: Tuple[int, ...]) -> "HardwareConfig":
        """Return a copy with a different PE array shape."""
        return replace(self, pe_array=tuple(int(size) for size in pe_array))

    def describe(self) -> str:
        """One-line human-readable description."""
        shape = "x".join(str(size) for size in self.pe_array)
        return (
            f"PEs={self.num_pes} ({shape}), L1={self.l1_size}B/PE, "
            f"L2={self.l2_size}B, NoC={self.noc_bandwidth:g}B/cyc, "
            f"DRAM={self.dram_bandwidth:g}B/cyc"
        )
