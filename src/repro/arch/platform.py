"""Edge and cloud platform presets.

The paper evaluates two platform classes distinguished by their chip-area
budget for PEs and on-chip buffers: 0.2 mm^2 (edge) and 7.0 mm^2 (cloud).
A platform also fixes the off-chip bandwidth and the NoC bandwidth scaling
used by the cost model, which differ between the two classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.arch.area import AreaModel


@dataclass(frozen=True)
class Platform:
    """A deployment target: an area budget plus bandwidth assumptions."""

    name: str
    area_budget_um2: float
    noc_bandwidth: float
    dram_bandwidth: float

    def __post_init__(self) -> None:
        if self.area_budget_um2 <= 0:
            raise ValueError("area_budget_um2 must be positive")
        if self.noc_bandwidth <= 0 or self.dram_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")

    @property
    def area_budget_mm2(self) -> float:
        """Area budget in mm^2 (1 mm^2 = 1e6 um^2)."""
        return self.area_budget_um2 / 1e6

    def max_pes(self, area_model: AreaModel | None = None) -> int:
        """Largest PE count that could fit the budget (no buffers)."""
        model = area_model if area_model is not None else AreaModel()
        return model.max_pes_within(self.area_budget_um2)


#: Edge platform: 0.2 mm^2 for PEs + on-chip buffers (paper Sec. V-A).
EDGE = Platform(
    name="edge",
    area_budget_um2=0.2e6,
    noc_bandwidth=32.0,
    dram_bandwidth=8.0,
)

#: Cloud platform: 7.0 mm^2 for PEs + on-chip buffers (paper Sec. V-A).
CLOUD = Platform(
    name="cloud",
    area_budget_um2=7.0e6,
    noc_bandwidth=256.0,
    dram_bandwidth=64.0,
)

_PLATFORMS: Dict[str, Platform] = {"edge": EDGE, "cloud": CLOUD}


def get_platform(name: str) -> Platform:
    """Look up a platform preset by name (``"edge"`` or ``"cloud"``)."""
    key = name.strip().lower()
    if key not in _PLATFORMS:
        raise KeyError(f"unknown platform {name!r}; available: {', '.join(_PLATFORMS)}")
    return _PLATFORMS[key]
