"""Ablation studies of DiGamma's design choices (extensions beyond the paper).

Two ablations are provided:

* **Operator ablation** — DiGamma with all specialised operators, without
  the HW operator (i.e. HW genes only move through crossover), without the
  structured mapping operators, and the blind standard GA.  This isolates
  the contribution of the domain-aware operators claimed in Sec. IV-C.
* **Buffer-allocation ablation** — the paper's exact-requirement buffer
  allocation versus the naive "fill the remaining area with L2" policy.

Run from the command line::

    python -m repro.experiments.ablations --budget 1000
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.jobs import JobSpec
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    Outcome,
    ResultStore,
    SweepRunner,
    add_sweep_arguments,
    settings_from_args,
    validate_sweep_args,
)
from repro.experiments.settings import ExperimentSettings
from repro.framework.search import SearchResult

#: Models used by the ablations (small + convolutional, per DESIGN.md A1/A2).
ABLATION_MODELS = ("resnet18", "mnasnet")

#: Operator-ablation variants: scheme label -> DiGamma constructor options
#: (``None`` marks the blind standard GA).
OPERATOR_VARIANTS: Dict[str, Optional[Dict[str, bool]]] = {
    "DiGamma": {},
    "no-HW-op": {"use_hw_operators": False},
    "no-struct-ops": {"use_structured_operators": False},
    "stdGA": None,
}


@dataclass
class AblationResult:
    """Latencies of every ablation variant per model."""

    platform: str
    variant_names: tuple
    #: model -> variant -> latency of the best valid design.
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: model -> variant -> full search result.
    searches: Dict[str, Dict[str, SearchResult]] = field(default_factory=dict)

    def report(self, title: str) -> str:
        """Render the latency table as plain text."""
        return format_table(
            self.latency, self.variant_names, title=title, precision=3
        )


def compile_operator_ablation_jobs(
    platform_name: str,
    settings: ExperimentSettings,
    models: Sequence[str] = ABLATION_MODELS,
) -> List[JobSpec]:
    """Compile the operator ablation (DiGamma variants vs stdGA) into jobs."""
    jobs: List[JobSpec] = []
    for model_name in models:
        for scheme, options in OPERATOR_VARIANTS.items():
            jobs.append(
                JobSpec(
                    model=model_name,
                    platform=platform_name,
                    optimizer="stdga" if options is None else "digamma",
                    optimizer_options=options or {},
                    scheme=scheme,
                    sampling_budget=settings.sampling_budget,
                    seed=settings.seed,
                )
            )
    return jobs


def compile_buffer_allocation_jobs(
    platform_name: str,
    settings: ExperimentSettings,
    models: Sequence[str] = ("resnet18",),
) -> List[JobSpec]:
    """Compile the buffer-allocation ablation (exact vs fill) into jobs."""
    return [
        JobSpec(
            model=model_name,
            platform=platform_name,
            optimizer="digamma",
            buffer_allocation=allocation,
            scheme=allocation,
            sampling_budget=settings.sampling_budget,
            seed=settings.seed,
        )
        for model_name in models
        for allocation in ("exact", "fill")
    ]


def ablation_result_from_outcomes(
    platform_name: str,
    outcomes: Sequence[Outcome],
    metric: str = "latency",
) -> AblationResult:
    """Assemble an ablation table from completed sweep outcomes.

    ``metric`` selects the tabulated quantity: ``"latency"`` (operator
    ablation) or ``"latency_area_product"`` (buffer-allocation ablation —
    over-allocation does not change latency, it wastes area, so the metric
    that exposes the strategy is the latency-area product).
    """
    variant_names = tuple(dict.fromkeys(spec.scheme_label for spec, _ in outcomes))
    result = AblationResult(platform=platform_name, variant_names=variant_names)
    for spec, search in outcomes:
        value = (
            search.best_latency_area_product
            if metric == "latency_area_product"
            else search.best_latency
        )
        result.latency.setdefault(spec.model, {})[spec.scheme_label] = value
        result.searches.setdefault(spec.model, {})[spec.scheme_label] = search
    return result


def run_operator_ablation(
    platform_name: str = "edge",
    settings: Optional[ExperimentSettings] = None,
    models: Sequence[str] = ABLATION_MODELS,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> AblationResult:
    """Compare DiGamma against variants with operators disabled."""
    settings = settings if settings is not None else ExperimentSettings()
    jobs = compile_operator_ablation_jobs(platform_name, settings, models)
    runner = SweepRunner(jobs, settings=settings, store=store, resume=resume)
    return ablation_result_from_outcomes(platform_name, runner.run())


def run_buffer_allocation_ablation(
    platform_name: str = "edge",
    settings: Optional[ExperimentSettings] = None,
    models: Sequence[str] = ("resnet18",),
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> AblationResult:
    """Compare exact-requirement buffer allocation against area filling."""
    settings = settings if settings is not None else ExperimentSettings()
    jobs = compile_buffer_allocation_jobs(platform_name, settings, models)
    runner = SweepRunner(jobs, settings=settings, store=store, resume=resume)
    return ablation_result_from_outcomes(
        platform_name, runner.run(), metric="latency_area_product"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--platform", choices=("edge", "cloud"), default="edge", help="platform resources"
    )
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)
    validate_sweep_args(parser, args)

    settings = settings_from_args(args)
    operator_result = run_operator_ablation(
        args.platform, settings, store=args.store, resume=args.resume
    )
    print(operator_result.report("Ablation A1 - DiGamma operators (latency, cycles)"))
    print()
    buffer_result = run_buffer_allocation_ablation(
        args.platform, settings, store=args.store, resume=args.resume
    )
    print(buffer_result.report(
        "Ablation A2 - buffer allocation strategy (latency-area product)"
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
