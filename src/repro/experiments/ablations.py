"""Ablation studies of DiGamma's design choices (extensions beyond the paper).

Two ablations are provided:

* **Operator ablation** — DiGamma with all specialised operators, without
  the HW operator (i.e. HW genes only move through crossover), without the
  structured mapping operators, and the blind standard GA.  This isolates
  the contribution of the domain-aware operators claimed in Sec. IV-C.
* **Buffer-allocation ablation** — the paper's exact-requirement buffer
  allocation versus the naive "fill the remaining area with L2" policy.

Run from the command line::

    python -m repro.experiments.ablations --budget 1000
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.arch.platform import get_platform
from repro.experiments.reporting import format_table
from repro.experiments.settings import DEFAULT_SAMPLING_BUDGET, ExperimentSettings
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.search import SearchResult
from repro.optim.digamma import DiGamma
from repro.optim.std_ga import StandardGA
from repro.workloads.registry import get_model

#: Models used by the ablations (small + convolutional, per DESIGN.md A1/A2).
ABLATION_MODELS = ("resnet18", "mnasnet")


@dataclass
class AblationResult:
    """Latencies of every ablation variant per model."""

    platform: str
    variant_names: tuple
    #: model -> variant -> latency of the best valid design.
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: model -> variant -> full search result.
    searches: Dict[str, Dict[str, SearchResult]] = field(default_factory=dict)

    def report(self, title: str) -> str:
        """Render the latency table as plain text."""
        return format_table(
            self.latency, self.variant_names, title=title, precision=3
        )


def run_operator_ablation(
    platform_name: str = "edge",
    settings: Optional[ExperimentSettings] = None,
    models: Sequence[str] = ABLATION_MODELS,
) -> AblationResult:
    """Compare DiGamma against variants with operators disabled."""
    settings = settings if settings is not None else ExperimentSettings()
    platform = get_platform(platform_name)
    variants = {
        "DiGamma": lambda: DiGamma(),
        "no-HW-op": lambda: DiGamma(use_hw_operators=False),
        "no-struct-ops": lambda: DiGamma(use_structured_operators=False),
        "stdGA": lambda: StandardGA(),
    }
    result = AblationResult(platform=platform_name, variant_names=tuple(variants))
    for model_name in models:
        model = get_model(model_name)
        framework = CoOptimizationFramework(model, platform)
        result.latency[model_name] = {}
        result.searches[model_name] = {}
        for variant_name, factory in variants.items():
            search = framework.search(
                factory(),
                sampling_budget=settings.sampling_budget,
                seed=settings.seed,
            )
            result.latency[model_name][variant_name] = search.best_latency
            result.searches[model_name][variant_name] = search
    return result


def run_buffer_allocation_ablation(
    platform_name: str = "edge",
    settings: Optional[ExperimentSettings] = None,
    models: Sequence[str] = ("resnet18",),
) -> AblationResult:
    """Compare exact-requirement buffer allocation against area filling."""
    settings = settings if settings is not None else ExperimentSettings()
    platform = get_platform(platform_name)
    variants = ("exact", "fill")
    result = AblationResult(platform=platform_name, variant_names=variants)
    for model_name in models:
        model = get_model(model_name)
        result.latency[model_name] = {}
        result.searches[model_name] = {}
        for allocation in variants:
            framework = CoOptimizationFramework(
                model, platform, buffer_allocation=allocation
            )
            search = framework.search(
                DiGamma(),
                sampling_budget=settings.sampling_budget,
                seed=settings.seed,
            )
            # Buffer over-allocation does not change latency (reuse depends
            # on the mapping, not the capacity), it wastes area: the metric
            # that exposes the strategy is latency-area product.
            result.latency[model_name][allocation] = search.best_latency_area_product
            result.searches[model_name][allocation] = search
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--platform", choices=("edge", "cloud"), default="edge", help="platform resources"
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=DEFAULT_SAMPLING_BUDGET,
        help="sampling budget per search",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args(argv)

    settings = ExperimentSettings(sampling_budget=args.budget, seed=args.seed)
    operator_result = run_operator_ablation(args.platform, settings)
    print(operator_result.report("Ablation A1 - DiGamma operators (latency, cycles)"))
    print()
    buffer_result = run_buffer_allocation_ablation(args.platform, settings)
    print(buffer_result.report(
        "Ablation A2 - buffer allocation strategy (latency-area product)"
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
