"""Shared experiment configuration.

The paper runs every optimizer with a 40K sampling budget (about 20 CPU
minutes per search).  The defaults here are scaled down so the complete
benchmark suite finishes on one machine in minutes; every harness accepts a
``sampling_budget`` (and the CLIs a ``--budget``) to run at paper scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.arch.area import AreaModel
from repro.arch.hardware import HardwareConfig
from repro.arch.platform import Platform
from repro.experiments.faults import FaultPlan
from repro.cost.backend import BACKENDS
from repro.framework.evaluator import ENGINES

#: Accepted result-store durability modes (see ``ResultStore``): ``"flush"``
#: appends each record as one flushed ``write`` syscall (a crash loses at
#: most the in-flight record), ``"fsync"`` additionally forces the record
#: to stable storage before the append returns (a power cut loses nothing).
DURABILITY_MODES = ("flush", "fsync")

#: The seven DNN models of the paper's evaluation, in presentation order.
DEFAULT_MODELS: Tuple[str, ...] = (
    "resnet18",
    "resnet50",
    "mobilenet_v2",
    "mnasnet",
    "bert",
    "ncf",
    "dlrm",
)

#: The nine optimization algorithms compared in Fig. 5 (registry names).
FIG5_OPTIMIZERS: Tuple[str, ...] = (
    "random",
    "stdga",
    "pso",
    "tbpsa",
    "(1+1)-es",
    "de",
    "portfolio",
    "cma",
    "digamma",
)

#: Paper-scale sampling budget (Sec. V-A).
PAPER_SAMPLING_BUDGET = 40_000

#: Scaled-down default used by the shipped benchmarks.
DEFAULT_SAMPLING_BUDGET = 1_500


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by the Fig. 5 / Fig. 6 / Fig. 7 harnesses.

    ``use_cache``, ``workers`` and ``engine`` configure the evaluation
    engine of every search the harness runs: memoization on/off, the
    optional process-pool width for batched population evaluation, and the
    vector/fast/reference engine selector (results are bit-identical for
    every combination).  A job spec may pin its own engine, which
    overrides the settings value for that job.

    The reliability knobs configure the sweep runner's per-job error
    boundary: ``retries`` extra attempts per failed job with exponential
    ``retry_backoff`` (+ deterministic jitter) between them, a per-job
    wall-clock ``job_timeout`` enforced by a watchdog, the result store's
    ``durability`` mode, and an optional ``fault_plan``
    (:class:`~repro.experiments.faults.FaultPlan`) that injects
    deterministic failures for chaos testing.
    """

    models: Tuple[str, ...] = DEFAULT_MODELS
    sampling_budget: int = DEFAULT_SAMPLING_BUDGET
    seed: int = 0
    bytes_per_element: int = 1
    use_cache: bool = True
    workers: Optional[int] = None
    engine: str = "vector"
    #: Cost-backend selector (:mod:`repro.cost.backend`).  Unlike
    #: ``engine``, the backend changes what a search computes, so it joins
    #: job identities (see :class:`~repro.experiments.jobs.JobSpec`).
    backend: str = "analytic"
    #: Cross-generation delta evaluation on the gene-matrix path; results
    #: are bit-identical either way, so the flag is not part of job ids.
    use_delta: bool = True
    #: Optional persistent cross-run layer-cache directory
    #: (:class:`~repro.cost.persist.PersistentLayerCache`).  Purely an
    #: accelerator: cached rows are bit-identical to engine pricing, so the
    #: directory does not join job identities and one directory may be
    #: shared by every job, worker and run.
    cache_dir: Optional[str] = None
    #: Extra attempts per failed job (0 = one attempt, no retry).
    retries: int = 0
    #: Base backoff between attempts, seconds; attempt ``k`` waits
    #: ``retry_backoff * 2**(k-1)`` scaled by deterministic jitter.
    retry_backoff: float = 0.1
    #: Per-job wall-clock timeout, seconds (``None`` = no timeout).
    job_timeout: Optional[float] = None
    #: Result-store durability mode (see :data:`DURABILITY_MODES`).
    durability: str = "flush"
    #: Optional mid-search checkpoint directory
    #: (:mod:`repro.framework.checkpoint`).  Jobs write generation-granular
    #: checkpoints keyed by job id and resume bit-identically after a
    #: crash, timeout, retry or interruption; ``None`` disables
    #: checkpointing.  Like ``cache_dir``, checkpoints never change what a
    #: search computes, so the directory is not part of job identities.
    checkpoint_dir: Optional[str] = None
    #: Checkpoint cadence: save every N generation boundaries (pending
    #: interruptions always force a save regardless).
    checkpoint_every: int = 1
    #: Optional fault-injection plan for chaos testing; ``None`` in
    #: production.  Not part of any job identity — faults never change
    #: what a successful search computes, only whether an attempt fails.
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.sampling_budget < 1:
            raise ValueError("sampling_budget must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 when given")
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(
                f"job_timeout must be > 0 when given, got {self.job_timeout}"
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.durability not in DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {DURABILITY_MODES}, "
                f"got {self.durability!r}"
            )
        object.__setattr__(self, "models", tuple(self.models))

    def framework_options(self) -> Dict[str, object]:
        """Evaluation-engine kwargs for :class:`CoOptimizationFramework`."""
        return {
            "use_cache": self.use_cache,
            "workers": self.workers,
            "use_delta": self.use_delta,
            "cache_dir": self.cache_dir,
        }


def make_fixed_hardware(
    platform: Platform,
    compute_fraction: float,
    area_model: AreaModel | None = None,
    l1_fraction: float = 0.3,
) -> HardwareConfig:
    """Build a fixed HW configuration spending ``compute_fraction`` of the budget on PEs.

    This constructs the paper's Mapping-opt baselines: "Compute-focused"
    (large PE array, small buffers), "Buffer-focused" (the opposite) and
    "Medium-Buf-Com" (balanced).  The remaining area is split between the
    per-PE L1 scratchpads (``l1_fraction``) and the shared L2.
    """
    if not 0.0 < compute_fraction < 1.0:
        raise ValueError("compute_fraction must be in (0, 1)")
    if not 0.0 < l1_fraction < 1.0:
        raise ValueError("l1_fraction must be in (0, 1)")
    model = area_model if area_model is not None else AreaModel()
    budget = platform.area_budget_um2

    pe_budget = budget * compute_fraction
    num_pes = max(1, int(pe_budget // model.pe_area_um2))
    rows = max(1, int(math.sqrt(num_pes)))
    cols = max(1, num_pes // rows)

    buffer_budget = budget * (1.0 - compute_fraction)
    l1_total_bytes = buffer_budget * l1_fraction / model.l1_area_per_byte_um2
    l1_size = max(1, int(l1_total_bytes // (rows * cols)))
    l2_size = max(1, int(buffer_budget * (1.0 - l1_fraction) // model.l2_area_per_byte_um2))

    return HardwareConfig(
        pe_array=(rows, cols),
        l1_size=l1_size,
        l2_size=l2_size,
        noc_bandwidth=platform.noc_bandwidth,
        dram_bandwidth=platform.dram_bandwidth,
    )


#: The three fixed-HW styles of the Mapping-opt baseline (paper Sec. V-A):
#: fraction of the area budget spent on compute.
FIXED_HW_STYLES: Dict[str, float] = {
    "Buffer-focused": 0.25,
    "Medium-Buf-Com": 0.50,
    "Compute-focused": 0.75,
}
