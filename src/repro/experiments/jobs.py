"""Declarative job specifications for experiment sweeps.

A :class:`JobSpec` names one search — model x platform x optimizer x
objective x seed, plus the scheme-specific knobs the figure harnesses need
(fixed-HW style for the Mapping-opt baselines, a dataflow style for the
HW-opt grid search, the buffer-allocation strategy for the ablation).  Specs
are plain frozen dataclasses: hashable, JSON-serializable and equipped with
a stable ``job_id``, which is what lets a sweep be resumed (skip ids already
in the result store) and sharded (split the job list across processes or
machines) without any coordination beyond the JSONL store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.arch.platform import get_platform
from repro.experiments.settings import (
    FIXED_HW_STYLES,
    ExperimentSettings,
    make_fixed_hardware,
)
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.objective import Objective, ObjectiveSet
from repro.optim.base import Optimizer
from repro.optim.grid_search import HardwareGridSearch
from repro.optim.registry import optimizer_class
from repro.cost.backend import BACKENDS
from repro.framework.evaluator import ENGINES
from repro.workloads.registry import get_model


@dataclass(frozen=True)
class JobSpec:
    """One search of a sweep, fully described by data.

    Parameters
    ----------
    model / platform / optimizer:
        Registry names.  ``optimizer`` additionally accepts ``"grid"`` for
        the HW-opt grid-search baseline (configured through
        ``optimizer_options``, e.g. ``{"dataflow": "dla"}``).
    sampling_budget / seed / objective:
        The search knobs; ``objective`` is an :class:`Objective` value name.
    objectives:
        Optional tuple of objective names (or a comma-separated string)
        enabling multi-objective Pareto-front search: the job runs through
        :meth:`CoOptimizationFramework.pareto_search` and stores a front
        instead of a single best.  The scalar ``objective`` field is
        aligned to the first entry (it drives the tracker's scalar
        fitness), and the set joins the ``job_id``.
    optimizer_options:
        Constructor keyword arguments for the optimizer (e.g. DiGamma
        ablation switches).  Mappings are normalized to a sorted tuple of
        pairs so specs stay hashable and their ids deterministic.
    fixed_hw_style:
        Optional key of :data:`FIXED_HW_STYLES`; enables the Fixed-HW use
        case (Mapping-opt baselines).
    buffer_allocation:
        ``"exact"`` (default) or ``"fill"`` (buffer-allocation ablation).
    engine:
        Evaluation-engine selector (``"vector"`` / ``"fast"`` /
        ``"reference"``).  ``None`` (default) inherits the sweep settings'
        engine; an explicit value pins this job and becomes part of its
        ``job_id``.  Engines are bit-identical, so the id component only
        matters for benchmarking sweeps that compare them.
    backend:
        Cost-backend selector (``"analytic"`` / ``"zigzag"``, see
        :mod:`repro.cost.backend`).  ``None`` (default) inherits the sweep
        settings' backend; an explicit value pins this job and joins its
        ``job_id``.  Unlike ``engine``, backends compute *different*
        costs, so the sweep runner pins any non-default settings backend
        onto every spec — two jobs differing only in backend are different
        experiments and never share an id.
    scheme:
        Optional display label used as the table column; defaults to the
        optimizer's own display name.
    """

    model: str
    platform: str
    optimizer: str
    sampling_budget: int
    seed: int = 0
    objective: str = "latency"
    objectives: Tuple[str, ...] = ()
    optimizer_options: Tuple[Tuple[str, Any], ...] = ()
    fixed_hw_style: Optional[str] = None
    buffer_allocation: str = "exact"
    engine: Optional[str] = None
    backend: Optional[str] = None
    scheme: Optional[str] = None

    def __post_init__(self) -> None:
        if self.sampling_budget < 1:
            raise ValueError("sampling_budget must be >= 1")
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES} (or None), got {self.engine!r}"
            )
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS} (or None), got {self.backend!r}"
            )
        objectives = self.objectives
        if objectives:
            # Validate and canonicalize the names; the scalar objective is
            # the set's primary, so one field cannot contradict the other.
            objective_set = ObjectiveSet.from_names(objectives)
            object.__setattr__(self, "objectives", objective_set.names)
            object.__setattr__(self, "objective", objective_set.primary.value)
        else:
            object.__setattr__(self, "objectives", ())
        options = self.optimizer_options
        if isinstance(options, Mapping):
            options = tuple(sorted(options.items()))
        else:
            options = tuple(sorted((str(key), value) for key, value in options))
        object.__setattr__(self, "optimizer_options", options)

    @property
    def is_multi_objective(self) -> bool:
        """True when this job searches a Pareto front instead of one best."""
        return bool(self.objectives)

    # -- identity ----------------------------------------------------------

    @property
    def job_id(self) -> str:
        """Stable, human-readable identity of this job within a sweep."""
        parts = [self.model, self.platform, self.objective, self.optimizer]
        if self.objectives:
            parts.append("mo=" + "+".join(self.objectives))
        if self.optimizer_options:
            parts.append(",".join(f"{k}={v}" for k, v in self.optimizer_options))
        if self.fixed_hw_style is not None:
            parts.append(f"hw={self.fixed_hw_style}")
        if self.buffer_allocation != "exact":
            parts.append(f"alloc={self.buffer_allocation}")
        if self.engine is not None:
            parts.append(f"engine={self.engine}")
        if self.backend is not None:
            parts.append(f"backend={self.backend}")
        parts.append(f"b{self.sampling_budget}")
        parts.append(f"s{self.seed}")
        return "/".join(parts)

    @property
    def framework_key(self) -> Tuple:
        """Jobs with equal keys can share one framework (and worker pool)."""
        return (
            self.model,
            self.platform,
            self.objective,
            self.objectives,
            self.fixed_hw_style,
            self.buffer_allocation,
            self.engine,
            self.backend,
        )

    @property
    def evaluator_cache_key(self) -> Tuple:
        """Jobs with equal keys can share one warm layer-report cache.

        Per-layer cost reports are pure functions of (layer statics,
        clipped mapping, platform bandwidths) — independent of the
        objective — so this is :attr:`framework_key` minus the objective:
        the sweep runner hands one warm cache to every objective's
        framework for the same model x platform x constraint combination.
        """
        return (
            self.model,
            self.platform,
            self.fixed_hw_style,
            self.buffer_allocation,
            self.engine,
            self.backend,
        )

    @property
    def scheme_label(self) -> str:
        """Column label in the rendered tables."""
        if self.scheme is not None:
            return self.scheme
        if self.optimizer == "grid":
            dataflow = dict(self.optimizer_options).get("dataflow", "dla")
            return f"Grid-S+{dataflow}-like"
        # Registry optimizers carry their display name on the class, so no
        # instance needs to be built just to label a table column.
        return optimizer_class(self.optimizer).name


# -- building the runtime objects ---------------------------------------------


def build_optimizer(spec: JobSpec) -> Optimizer:
    """Instantiate the optimizer a spec describes."""
    options = dict(spec.optimizer_options)
    if spec.optimizer == "grid":
        return HardwareGridSearch(**options)
    return optimizer_class(spec.optimizer)(**options)


def build_framework(
    spec: JobSpec, settings: Optional[ExperimentSettings] = None
) -> CoOptimizationFramework:
    """Build the co-optimization framework a spec's searches run through.

    Engine knobs that never change results — workers, memoization,
    delta evaluation, the persistent ``cache_dir`` tier — arrive via
    ``settings.framework_options()`` and stay out of job identities;
    knobs that *do* change what a search computes (backend, objective,
    budget, ...) live on the spec and join its ``job_id``.
    """
    settings = settings if settings is not None else ExperimentSettings()
    platform = get_platform(spec.platform)
    fixed_hardware = None
    if spec.fixed_hw_style is not None:
        fixed_hardware = make_fixed_hardware(
            platform, FIXED_HW_STYLES[spec.fixed_hw_style]
        )
    return CoOptimizationFramework(
        get_model(spec.model),
        platform,
        objective=Objective.from_name(spec.objective),
        objectives=(
            ObjectiveSet.from_names(spec.objectives) if spec.objectives else None
        ),
        fixed_hardware=fixed_hardware,
        buffer_allocation=spec.buffer_allocation,
        bytes_per_element=settings.bytes_per_element,
        engine=spec.engine if spec.engine is not None else settings.engine,
        backend=spec.backend if spec.backend is not None else settings.backend,
        **settings.framework_options(),
    )


# -- (de)serialization ---------------------------------------------------------


def job_to_dict(spec: JobSpec) -> Dict[str, Any]:
    """Serialize a job spec (inverse of :func:`job_from_dict`)."""
    return {
        "model": spec.model,
        "platform": spec.platform,
        "optimizer": spec.optimizer,
        "sampling_budget": spec.sampling_budget,
        "seed": spec.seed,
        "objective": spec.objective,
        "objectives": list(spec.objectives),
        "optimizer_options": dict(spec.optimizer_options),
        "fixed_hw_style": spec.fixed_hw_style,
        "buffer_allocation": spec.buffer_allocation,
        "engine": spec.engine,
        "backend": spec.backend,
        "scheme": spec.scheme,
    }


def job_from_dict(data: Dict[str, Any]) -> JobSpec:
    """Rebuild a job spec from :func:`job_to_dict` output."""
    return JobSpec(
        model=str(data["model"]),
        platform=str(data["platform"]),
        optimizer=str(data["optimizer"]),
        sampling_budget=int(data["sampling_budget"]),
        seed=int(data.get("seed", 0)),
        objective=str(data.get("objective", "latency")),
        objectives=tuple(data.get("objectives", ())),
        optimizer_options=dict(data.get("optimizer_options", {})),
        fixed_hw_style=data.get("fixed_hw_style"),
        buffer_allocation=str(data.get("buffer_allocation", "exact")),
        engine=data.get("engine"),
        backend=data.get("backend"),
        scheme=data.get("scheme"),
    )


# -- grid compilation ----------------------------------------------------------


def compile_grid(
    models: Iterable[str],
    platforms: Iterable[str],
    optimizers: Iterable[str],
    sampling_budget: int,
    seeds: Sequence[int] = (0,),
    objectives: Sequence[str] = ("latency",),
) -> List[JobSpec]:
    """Compile the cross product of the given axes into a job list.

    The order is deterministic (platform, model, optimizer, objective,
    seed — outermost to innermost), which is what sharding relies on: every
    shard of the same grid sees the same list and takes every N-th job.
    """
    jobs: List[JobSpec] = []
    for platform in platforms:
        for model in models:
            for optimizer in optimizers:
                for objective in objectives:
                    for seed in seeds:
                        jobs.append(
                            JobSpec(
                                model=model,
                                platform=platform,
                                optimizer=optimizer,
                                sampling_budget=sampling_budget,
                                seed=seed,
                                objective=objective,
                            )
                        )
    return jobs
