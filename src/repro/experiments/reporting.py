"""Table formatting and normalization helpers for the experiment harnesses."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

#: Rendering of searches that found no valid design (paper's "N/A").
NOT_AVAILABLE = "N/A"


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive, finite values; ``inf``/invalid values are skipped."""
    usable = [value for value in values if value > 0 and math.isfinite(value)]
    if not usable:
        return float("nan")
    return math.exp(sum(math.log(value) for value in usable) / len(usable))


def normalize_by_column(
    table: Mapping[str, Mapping[str, float]],
    reference_column: str,
) -> Dict[str, Dict[str, float]]:
    """Normalize every row of ``table`` by the value in ``reference_column``.

    ``table`` maps row name -> column name -> raw value.  Missing or
    non-finite reference values leave the row unnormalized (all ``inf``),
    mirroring how the paper handles a failed reference search.
    """
    normalized: Dict[str, Dict[str, float]] = {}
    for row_name, row in table.items():
        reference = row.get(reference_column, float("nan"))
        normalized[row_name] = {}
        for column, value in row.items():
            if reference and math.isfinite(reference) and reference > 0:
                normalized[row_name][column] = value / reference
            else:
                normalized[row_name][column] = float("inf")
    return normalized


def format_cell(value: float, precision: int = 2) -> str:
    """Render one numeric cell; non-finite values become ``N/A``."""
    if value is None or not math.isfinite(value):
        return NOT_AVAILABLE
    if value != 0 and (abs(value) >= 1e4 or abs(value) < 1e-2):
        return f"{value:.{precision}e}"
    return f"{value:.{precision}f}"


def format_table(
    table: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    title: Optional[str] = None,
    row_label: str = "model",
    precision: int = 2,
) -> str:
    """Render a row-major table of floats as aligned plain text."""
    rows: List[str] = []
    if title:
        rows.append(title)
    widths = [max(12, len(column) + 1) for column in columns]
    header = [row_label.ljust(16)] + [
        column.rjust(width) for column, width in zip(columns, widths)
    ]
    rows.append(" ".join(header))
    rows.append("-" * len(rows[-1]))
    for row_name, row in table.items():
        cells = [str(row_name).ljust(16)]
        cells.extend(
            format_cell(row.get(column, float("nan")), precision).rjust(width)
            for column, width in zip(columns, widths)
        )
        rows.append(" ".join(cells))
    return "\n".join(rows)


def append_geomean_row(
    table: Dict[str, Dict[str, float]],
    columns: Sequence[str],
    label: str = "GeoMean",
) -> Dict[str, Dict[str, float]]:
    """Add a geometric-mean row across all existing rows, as in Fig. 5 / Fig. 6."""
    geomean_row = {
        column: geometric_mean(row.get(column, float("nan")) for row in table.values())
        for column in columns
    }
    table[label] = geomean_row
    return table
