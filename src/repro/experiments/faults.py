"""Deterministic fault injection for the sweep and evaluation stack.

Reliability code is only trustworthy when every failure path runs in CI, so
this module turns the failure modes a long sweep actually meets — a job
raising, a worker process dying under the OOM-killer, a search hanging past
its deadline, a store file truncated mid-append by a power cut — into
*deterministic, seedable* fault plans that the runner and evaluator execute
on purpose:

* ``raise-in-job`` — an exception thrown inside a job's error boundary.
* ``kill-worker`` — ``os._exit`` inside a process-pool worker, which breaks
  the pool (:class:`~concurrent.futures.process.BrokenProcessPool`).
* ``hang`` — a sleep injected at job start, long enough to trip the
  runner's per-job watchdog timeout.
* ``truncate-store`` — the result store loses the tail of the record it
  just appended and the sweep aborts, simulating a hard crash mid-write.
* ``kill-generation`` — ``os._exit`` at a chosen generation boundary
  *inside* the optimizer loop, simulating preemption mid-search (the
  checkpoint subsystem's reason to exist).
* ``sigterm`` — the process sends itself SIGTERM at a chosen generation
  boundary, driving the runner's graceful-interruption path: checkpoint,
  ``interrupted`` record, non-zero exit, resume.

A plan is a tuple of :class:`FaultSpec` entries plus a filesystem *state
directory*.  Specs that must fire a bounded number of times across several
processes (worker kills, store truncation) claim one-shot token files in
that directory with ``O_CREAT | O_EXCL``, so "exactly ``times`` firings"
holds even when the claimants are separate worker processes or a resumed
run sharing the same state directory.

Plans are installed through ``ExperimentSettings.fault_plan`` (the sweep
runner forwards them to every framework it builds) or directly on a
:class:`~repro.framework.evaluator.DesignEvaluator` via its ``fault_plan``
attribute; the CLIs accept the JSON form through ``--fault-plan``.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import time
import zlib
from dataclasses import dataclass, fields
from pathlib import Path
from random import Random
from typing import Iterable, List, Optional, Sequence, Tuple, Union

#: The fault kinds the harness can inject.
FAULT_KINDS = (
    "raise",
    "kill-worker",
    "hang",
    "truncate-store",
    "kill-generation",
    "sigterm",
)

#: Kinds that fire at generation boundaries inside an optimizer loop.
GENERATION_KINDS = ("kill-generation", "sigterm", "hang")


class FaultInjected(RuntimeError):
    """The exception raised by a ``raise`` fault inside a job."""


class SweepAborted(RuntimeError):
    """A simulated hard crash: the runner re-raises this instead of
    retrying, so the whole sweep stops exactly as if the process died."""


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    job:
        Which job(s) the fault applies to: an ``int`` matches the job's
        position in the runner's shard, a ``str`` matches as a substring of
        the ``job_id``, ``None`` matches every job.  Ignored by
        ``kill-worker`` (workers do not know which job they serve).
    attempt:
        Which attempt the fault fires on (1-based).  ``None`` fires on
        every attempt — a ``raise`` spec with ``attempt=None`` survives all
        retries and drives the job into quarantine.
    times:
        Firing budget of token-claimed kinds (``kill-worker`` /
        ``truncate-store``), enforced across processes via the plan's
        state directory.
    duration:
        Sleep length of a ``hang`` fault, seconds.
    truncate_bytes:
        How many bytes ``truncate-store`` removes from the end of the
        store file.  ``None`` picks a value deterministically from the
        plan's seed.
    generation:
        The 1-based generation boundary a ``kill-generation`` / ``sigterm``
        fault fires at (required for those kinds).  A ``hang`` spec with a
        generation set sleeps at that boundary (token-claimed, one-shot
        per ``times``) instead of at job start — the deterministic way to
        outlast ``--job-timeout`` *after* checkpoints exist.  Generation
        firings are one-shot per state directory, so a resumed run passing
        the same boundary does not re-fire them.
    message:
        Human-readable tag carried by the injected exception.
    """

    kind: str
    job: Union[int, str, None] = None
    attempt: Optional[int] = 1
    times: int = 1
    duration: float = 0.25
    truncate_bytes: Optional[int] = 20
    generation: Optional[int] = None
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.attempt is not None and self.attempt < 1:
            raise ValueError(f"attempt must be >= 1 or None, got {self.attempt}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if self.generation is not None and self.generation < 1:
            raise ValueError(
                f"generation must be >= 1 when given, got {self.generation}"
            )
        if self.kind in ("kill-generation", "sigterm") and self.generation is None:
            raise ValueError(
                f"{self.kind!r} faults fire at generation boundaries and "
                "need an explicit 'generation'"
            )

    def matches(self, job_id: str, index: int, attempt: int) -> bool:
        """True when this spec applies to (job, attempt)."""
        if isinstance(self.job, int) and self.job != index:
            return False
        if isinstance(self.job, str) and self.job not in job_id:
            return False
        if self.attempt is not None and self.attempt != attempt:
            return False
        return True


class FaultPlan:
    """A deterministic schedule of faults, shared across processes.

    The plan is picklable (it travels to pool workers inside the
    evaluator) and all cross-process coordination goes through one-shot
    token files under ``state_dir``, so firing counts are exact no matter
    how many workers, retries or resumed runs consult the same plan.
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec],
        state_dir: Union[str, Path, None] = None,
        seed: int = 0,
    ):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        if state_dir is None:
            state_dir = tempfile.mkdtemp(prefix="repro-faults-")
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.seed = seed

    # -- (de)serialization --------------------------------------------------

    @classmethod
    def from_json(
        cls,
        text: str,
        state_dir: Union[str, Path, None] = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """Build a plan from a JSON list of spec dicts (the CLI form).

        Example::

            [{"kind": "raise", "job": 1, "attempt": 1},
             {"kind": "kill-worker"}]
        """
        data = json.loads(text)
        if not isinstance(data, list):
            raise ValueError(
                f"fault plan must be a JSON list of spec objects, got {text!r}"
            )
        known = {field.name for field in fields(FaultSpec)}
        specs = []
        for entry in data:
            if not isinstance(entry, dict) or "kind" not in entry:
                raise ValueError(f"each fault spec needs a 'kind', got {entry!r}")
            unknown = set(entry) - known
            if unknown:
                raise ValueError(
                    f"unknown fault spec field(s) {sorted(unknown)}; "
                    f"known fields: {sorted(known)}"
                )
            specs.append(FaultSpec(**entry))
        return cls(specs, state_dir=state_dir, seed=seed)

    def to_json(self) -> str:
        """JSON form of the specs (inverse of :meth:`from_json`)."""
        return json.dumps(
            [
                {
                    field.name: getattr(spec, field.name)
                    for field in fields(FaultSpec)
                }
                for spec in self.specs
            ]
        )

    # -- hooks the instrumented code calls ----------------------------------

    def on_job_start(self, job_id: str, index: int, attempt: int) -> None:
        """Runner hook: fire ``hang`` and ``raise`` faults for this attempt.

        Called inside the watchdog-supervised section, so a ``hang`` that
        outlasts ``--job-timeout`` is observed as a job timeout.
        """
        for spec in self.specs:
            if (
                spec.kind == "hang"
                and spec.generation is None
                and spec.matches(job_id, index, attempt)
            ):
                time.sleep(spec.duration)
        for spec in self.specs:
            if spec.kind == "raise" and spec.matches(job_id, index, attempt):
                raise FaultInjected(
                    f"{spec.message} (job {job_id!r}, attempt {attempt})"
                )

    def on_generation(self, run_label: str, generation: int) -> None:
        """Tracker hook: fire generation-boundary faults for this search.

        Called by :meth:`SearchTracker.checkpoint_generation` at the top of
        every generation — *before* the boundary's checkpoint save, so a
        firing observes the previous boundary's checkpoint, exactly like a
        real preemption.  ``job`` matches as a substring of the run label
        (job id under the sweep runner); positional ``int`` matching is
        meaningless inside a search and never fires.  Every firing claims a
        one-shot token, so a resumed run re-entering the same boundary does
        not re-fire.
        """
        for position, spec in enumerate(self.specs):
            if spec.kind not in GENERATION_KINDS or spec.generation is None:
                continue
            if spec.generation != generation:
                continue
            if isinstance(spec.job, int):
                continue
            if isinstance(spec.job, str) and spec.job not in run_label:
                continue
            for shot in range(spec.times):
                if not self._claim(f"{spec.kind}-gen-{position}-{shot}"):
                    continue
                if spec.kind == "hang":
                    time.sleep(spec.duration)
                elif spec.kind == "kill-generation":
                    os._exit(1)
                else:
                    os.kill(os.getpid(), signal.SIGTERM)
                break

    def on_worker_chunk(self) -> None:
        """Worker hook: die hard if a ``kill-worker`` firing is unclaimed.

        ``os._exit`` skips all cleanup, exactly like a SIGKILL from the
        OOM-killer — the parent observes a broken process pool.
        """
        for position, spec in enumerate(self.specs):
            if spec.kind != "kill-worker":
                continue
            for shot in range(spec.times):
                if self._claim(f"kill-{position}-{shot}"):
                    os._exit(1)

    def after_append(self, path: Union[str, Path], job_id: str,
                     index: int, attempt: int) -> None:
        """Runner hook: truncate the store mid-record and abort the sweep."""
        for position, spec in enumerate(self.specs):
            if spec.kind != "truncate-store":
                continue
            if not spec.matches(job_id, index, attempt):
                continue
            for shot in range(spec.times):
                if not self._claim(f"truncate-{position}-{shot}"):
                    continue
                drop = spec.truncate_bytes
                if drop is None:
                    drop = 5 + self.rng(f"truncate-{position}-{shot}").randrange(26)
                size = os.path.getsize(path)
                os.truncate(path, max(0, size - drop))
                raise SweepAborted(
                    f"{spec.message}: truncated {drop} byte(s) off {path} "
                    f"after job {job_id!r} (simulated crash)"
                )

    # -- internals ----------------------------------------------------------

    def rng(self, label: str) -> Random:
        """A deterministic RNG scoped to (plan seed, label)."""
        return Random(zlib.crc32(label.encode()) ^ self.seed)

    def _claim(self, token: str) -> bool:
        """Atomically claim a one-shot token; True exactly once per token."""
        try:
            os.close(
                os.open(
                    self.state_dir / token,
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                    0o644,
                )
            )
            return True
        except FileExistsError:
            return False

    def claimed_tokens(self) -> List[str]:
        """Tokens claimed so far (observability for tests and debugging)."""
        return sorted(entry.name for entry in self.state_dir.iterdir())


def parse_fault_plan(
    text: Optional[str],
    state_dir: Union[str, Path, None] = None,
    seed: int = 0,
) -> Optional[FaultPlan]:
    """CLI helper: ``--fault-plan`` JSON → plan (``None`` passes through)."""
    if not text:
        return None
    return FaultPlan.from_json(text, state_dir=state_dir, seed=seed)


__all__: Sequence[str] = (
    "FAULT_KINDS",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "SweepAborted",
    "parse_fault_plan",
)
