"""Experiment harnesses that regenerate the paper's tables and figures.

Every harness compiles its grid into :class:`~repro.experiments.jobs.JobSpec`
jobs and executes them through the shared
:class:`~repro.experiments.runner.SweepRunner` engine, which streams results
to a JSONL :class:`~repro.experiments.runner.ResultStore` and supports
resuming and sharding (``python -m repro experiments --help``).  The runner
wraps every job in an error boundary (structured failure records, retry with
backoff, watchdog timeout, poison-job quarantine); the failure paths are
exercised deterministically through :mod:`repro.experiments.faults`.
"""

from repro.experiments.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    SweepAborted,
    parse_fault_plan,
)
from repro.experiments.jobs import (
    JobSpec,
    build_framework,
    build_optimizer,
    compile_grid,
    job_from_dict,
    job_to_dict,
)
from repro.experiments.reporting import (
    format_table,
    geometric_mean,
    normalize_by_column,
)
from repro.experiments.runner import (
    ResultStore,
    SweepRunner,
    full_outcomes,
    parse_shard,
    select_shard,
)
from repro.experiments.settings import (
    DEFAULT_MODELS,
    ExperimentSettings,
    FIG5_OPTIMIZERS,
    make_fixed_hardware,
)

__all__ = [
    "DEFAULT_MODELS",
    "ExperimentSettings",
    "FIG5_OPTIMIZERS",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "JobSpec",
    "ResultStore",
    "SweepAborted",
    "SweepRunner",
    "build_framework",
    "build_optimizer",
    "compile_grid",
    "format_table",
    "full_outcomes",
    "geometric_mean",
    "job_from_dict",
    "job_to_dict",
    "make_fixed_hardware",
    "normalize_by_column",
    "parse_fault_plan",
    "parse_shard",
    "select_shard",
]
