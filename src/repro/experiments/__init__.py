"""Experiment harnesses that regenerate the paper's tables and figures."""

from repro.experiments.settings import (
    DEFAULT_MODELS,
    ExperimentSettings,
    FIG5_OPTIMIZERS,
    make_fixed_hardware,
)
from repro.experiments.reporting import (
    format_table,
    geometric_mean,
    normalize_by_column,
)

__all__ = [
    "DEFAULT_MODELS",
    "ExperimentSettings",
    "FIG5_OPTIMIZERS",
    "make_fixed_hardware",
    "format_table",
    "geometric_mean",
    "normalize_by_column",
]
