"""Fig. 5 — comparison of optimization algorithms on the co-opt problem.

For every DNN model and platform, each of the nine optimization algorithms
searches the HW-Mapping space under the same sampling budget.  The harness
reports the latency and latency-area-product of the best valid design each
algorithm found, normalized to CMA (the strongest generic baseline), with a
geometric-mean row — the same layout as the paper's Fig. 5.

Run from the command line::

    python -m repro.experiments.fig5 --platform edge --budget 1500
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.jobs import JobSpec
from repro.experiments.reporting import (
    append_geomean_row,
    format_table,
    normalize_by_column,
)
from repro.experiments.runner import (
    Outcome,
    ResultStore,
    SweepRunner,
    add_sweep_arguments,
    settings_from_args,
    validate_sweep_args,
)
from repro.experiments.settings import (
    DEFAULT_MODELS,
    FIG5_OPTIMIZERS,
    ExperimentSettings,
)
from repro.framework.search import SearchResult
from repro.optim.registry import optimizer_class


@dataclass
class Fig5Result:
    """Raw and normalized results of one Fig. 5 run (one platform)."""

    platform: str
    optimizer_names: Tuple[str, ...]
    #: model -> optimizer display name -> latency (cycles) of best valid design.
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: model -> optimizer display name -> latency-area product.
    latency_area_product: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: model -> optimizer display name -> full search result.
    searches: Dict[str, Dict[str, SearchResult]] = field(default_factory=dict)

    def normalized_latency(self, reference: str = "CMA") -> Dict[str, Dict[str, float]]:
        """Latency normalized by ``reference`` with a GeoMean row (paper layout)."""
        table = normalize_by_column(self.latency, reference)
        return append_geomean_row(table, self.optimizer_names)

    def normalized_latency_area_product(
        self, reference: str = "CMA"
    ) -> Dict[str, Dict[str, float]]:
        """Latency-area product normalized by ``reference`` with a GeoMean row."""
        table = normalize_by_column(self.latency_area_product, reference)
        return append_geomean_row(table, self.optimizer_names)

    def report(self) -> str:
        """Render both normalized tables as plain text."""
        parts = [
            format_table(
                self.normalized_latency(),
                self.optimizer_names,
                title=f"Fig. 5 ({self.platform}) - latency normalized to CMA (lower is better)",
            ),
            "",
            format_table(
                self.normalized_latency_area_product(),
                self.optimizer_names,
                title=(
                    f"Fig. 5 ({self.platform}) - latency-area-product normalized to CMA "
                    "(lower is better)"
                ),
            ),
        ]
        return "\n".join(parts)


def compile_fig5_jobs(
    platform_name: str,
    settings: ExperimentSettings,
    optimizers: Sequence[str] = FIG5_OPTIMIZERS,
) -> List[JobSpec]:
    """Compile the Fig. 5 grid (model x optimizer on one platform) into jobs."""
    return [
        JobSpec(
            model=model_name,
            platform=platform_name,
            optimizer=optimizer_name,
            sampling_budget=settings.sampling_budget,
            seed=settings.seed,
        )
        for model_name in settings.models
        for optimizer_name in optimizers
    ]


def fig5_result_from_outcomes(
    platform_name: str,
    optimizers: Sequence[str],
    outcomes: Sequence[Outcome],
) -> Fig5Result:
    """Assemble the Fig. 5 tables from completed sweep outcomes."""
    display_names = tuple(optimizer_class(name).name for name in optimizers)
    result = Fig5Result(platform=platform_name, optimizer_names=display_names)
    for spec, search in outcomes:
        label = spec.scheme_label
        result.latency.setdefault(spec.model, {})[label] = search.best_latency
        result.latency_area_product.setdefault(spec.model, {})[label] = (
            search.best_latency_area_product
        )
        result.searches.setdefault(spec.model, {})[label] = search
    return result


def run_fig5(
    platform_name: str = "edge",
    settings: Optional[ExperimentSettings] = None,
    optimizers: Sequence[str] = FIG5_OPTIMIZERS,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> Fig5Result:
    """Run the Fig. 5 comparison on one platform."""
    settings = settings if settings is not None else ExperimentSettings()
    jobs = compile_fig5_jobs(platform_name, settings, optimizers)
    runner = SweepRunner(jobs, settings=settings, store=store, resume=resume)
    return fig5_result_from_outcomes(platform_name, optimizers, runner.run())


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--platform",
        choices=("edge", "cloud", "both"),
        default="edge",
        help="platform resources to evaluate (default: edge)",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=list(DEFAULT_MODELS),
        help="models to evaluate (default: the paper's seven models)",
    )
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)
    validate_sweep_args(parser, args)

    settings = settings_from_args(args, models=args.models)
    platforms = ("edge", "cloud") if args.platform == "both" else (args.platform,)
    for platform_name in platforms:
        result = run_fig5(platform_name, settings, store=args.store, resume=args.resume)
        print(result.report())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
