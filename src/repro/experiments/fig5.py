"""Fig. 5 — comparison of optimization algorithms on the co-opt problem.

For every DNN model and platform, each of the nine optimization algorithms
searches the HW-Mapping space under the same sampling budget.  The harness
reports the latency and latency-area-product of the best valid design each
algorithm found, normalized to CMA (the strongest generic baseline), with a
geometric-mean row — the same layout as the paper's Fig. 5.

Run from the command line::

    python -m repro.experiments.fig5 --platform edge --budget 1500
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.arch.platform import get_platform
from repro.experiments.reporting import (
    append_geomean_row,
    format_table,
    normalize_by_column,
)
from repro.experiments.settings import (
    DEFAULT_MODELS,
    DEFAULT_SAMPLING_BUDGET,
    FIG5_OPTIMIZERS,
    ExperimentSettings,
)
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.search import SearchResult
from repro.optim.registry import get_optimizer
from repro.workloads.registry import get_model


@dataclass
class Fig5Result:
    """Raw and normalized results of one Fig. 5 run (one platform)."""

    platform: str
    optimizer_names: Tuple[str, ...]
    #: model -> optimizer display name -> latency (cycles) of best valid design.
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: model -> optimizer display name -> latency-area product.
    latency_area_product: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: model -> optimizer display name -> full search result.
    searches: Dict[str, Dict[str, SearchResult]] = field(default_factory=dict)

    def normalized_latency(self, reference: str = "CMA") -> Dict[str, Dict[str, float]]:
        """Latency normalized by ``reference`` with a GeoMean row (paper layout)."""
        table = normalize_by_column(self.latency, reference)
        return append_geomean_row(table, self.optimizer_names)

    def normalized_latency_area_product(
        self, reference: str = "CMA"
    ) -> Dict[str, Dict[str, float]]:
        """Latency-area product normalized by ``reference`` with a GeoMean row."""
        table = normalize_by_column(self.latency_area_product, reference)
        return append_geomean_row(table, self.optimizer_names)

    def report(self) -> str:
        """Render both normalized tables as plain text."""
        parts = [
            format_table(
                self.normalized_latency(),
                self.optimizer_names,
                title=f"Fig. 5 ({self.platform}) - latency normalized to CMA (lower is better)",
            ),
            "",
            format_table(
                self.normalized_latency_area_product(),
                self.optimizer_names,
                title=(
                    f"Fig. 5 ({self.platform}) - latency-area-product normalized to CMA "
                    "(lower is better)"
                ),
            ),
        ]
        return "\n".join(parts)


def run_fig5(
    platform_name: str = "edge",
    settings: Optional[ExperimentSettings] = None,
    optimizers: Sequence[str] = FIG5_OPTIMIZERS,
) -> Fig5Result:
    """Run the Fig. 5 comparison on one platform."""
    settings = settings if settings is not None else ExperimentSettings()
    platform = get_platform(platform_name)

    display_names = tuple(get_optimizer(name).name for name in optimizers)
    result = Fig5Result(platform=platform_name, optimizer_names=display_names)

    for model_name in settings.models:
        model = get_model(model_name)
        framework = CoOptimizationFramework(
            model,
            platform,
            bytes_per_element=settings.bytes_per_element,
            **settings.framework_options(),
        )
        result.latency[model_name] = {}
        result.latency_area_product[model_name] = {}
        result.searches[model_name] = {}
        try:
            for optimizer_name in optimizers:
                optimizer = get_optimizer(optimizer_name)
                search = framework.search(
                    optimizer,
                    sampling_budget=settings.sampling_budget,
                    seed=settings.seed,
                )
                result.latency[model_name][optimizer.name] = search.best_latency
                result.latency_area_product[model_name][optimizer.name] = (
                    search.best_latency_area_product
                )
                result.searches[model_name][optimizer.name] = search
        finally:
            framework.close()
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--platform",
        choices=("edge", "cloud", "both"),
        default="edge",
        help="platform resources to evaluate (default: edge)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=DEFAULT_SAMPLING_BUDGET,
        help="sampling budget per search (paper uses 40000)",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=list(DEFAULT_MODELS),
        help="models to evaluate (default: the paper's seven models)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args(argv)

    settings = ExperimentSettings(
        models=tuple(args.models),
        sampling_budget=args.budget,
        seed=args.seed,
    )
    platforms = ("edge", "cloud") if args.platform == "both" else (args.platform,)
    for platform_name in platforms:
        result = run_fig5(platform_name, settings)
        print(result.report())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
