"""Cross-backend agreement check (``repro crosscheck``).

Prices one random (repaired) design sample on both cost backends — the
analytic MAESTRO-style engine and the independently coded ZigZag-style
memory-centric model (:mod:`repro.cost.zigzag`) — and gates their
per-objective deltas.  Two independent implementations agreeing within the
documented envelope is a correctness oracle a single model cannot provide:
a bug in shared geometry (footprints, buffer sizing, PE counting) or in
either engine's loop analysis breaks one of the gates.

Documented tolerance
--------------------

The backends share footprint geometry, buffer sizing, PE counting and the
energy coefficient structure, but count data movement differently (the
analytic engine scans the concrete loop order; ZigZag-style counting
assumes maximal per-operand stationarity, a *lower bound* on the
order-aware count) and the analytic engine adds a pipeline-fill latency
term.  The gates encode exactly that relationship:

* **area** — agrees exactly (relative delta <= 1e-12 per design), and the
  two backends must agree on which designs are valid.  Area is a pure
  function of the shared geometry.
* **compute cycles** — agree exactly (relative delta <= 1e-9 per design):
  both engines count the same total loop trips.
* **lower bound** — zigzag latency and energy never exceed the analytic
  value (per design, within float slack): stationarity can only remove
  traffic, and dropping the fill term can only shorten latency.
* **latency** — median relative delta <= ``--tolerance`` (default 0.35)
  and Spearman rank correlation >= ``--min-rank-corr`` (default 0.9):
  compute-bound designs agree almost exactly, traffic-bound ones diverge,
  and both backends must still *order* designs consistently.
* **energy** — reported (median / p90 / max deltas and rank correlation)
  but not magnitude-gated: energy is dominated by the traffic counts the
  two models intentionally disagree on; the lower-bound gate above is the
  invariant that must hold.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.arch.platform import get_platform
from repro.encoding.genome_matrix import GenomeMatrix, repaired_matrix
from repro.framework.evaluator import DesignEvaluator
from repro.workloads.registry import get_model

#: Per-design relative slack on the exact-agreement and bound gates.
EXACT_TOLERANCE = 1e-12
COMPUTE_TOLERANCE = 1e-9
BOUND_SLACK = 1e-9

#: Default gates on the latency distribution (see module docstring).
DEFAULT_TOLERANCE = 0.35
DEFAULT_MIN_RANK_CORR = 0.9

DEFAULT_DESIGNS = 120


def _relative_deltas(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    scale = np.maximum(np.maximum(np.abs(a), np.abs(b)), 1e-300)
    return np.abs(a - b) / scale

def _rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (1.0 when either side is constant-rank)."""
    rank_a = np.argsort(np.argsort(a)).astype(np.float64)
    rank_b = np.argsort(np.argsort(b)).astype(np.float64)
    rank_a -= rank_a.mean()
    rank_b -= rank_b.mean()
    norm = np.sqrt((rank_a**2).sum() * (rank_b**2).sum())
    if norm == 0.0:
        return 1.0
    return float((rank_a * rank_b).sum() / norm)


def _stats_line(label: str, deltas: np.ndarray, rho: float) -> str:
    return (
        f"  {label:<8} rel delta median {np.median(deltas):.2e}  "
        f"p90 {np.quantile(deltas, 0.9):.2e}  max {deltas.max():.2e}  "
        f"rank corr {rho:+.3f}"
    )


def run_crosscheck(
    model_name: str = "resnet18",
    platform_name: str = "edge",
    designs: int = DEFAULT_DESIGNS,
    num_levels: int = 2,
    seed: int = 0,
    tolerance: float = DEFAULT_TOLERANCE,
    min_rank_corr: float = DEFAULT_MIN_RANK_CORR,
    out=None,
) -> int:
    """Price ``designs`` random designs on both backends and gate the deltas.

    Returns the process exit code: 0 on agreement, 1 with one line per
    violated gate otherwise.
    """
    if designs < 2:
        raise ValueError(f"designs must be >= 2, got {designs}")
    if out is None:
        out = sys.stdout
    model = get_model(model_name)
    platform = get_platform(platform_name)
    evaluators = {
        backend: DesignEvaluator(
            model=model, platform=platform, backend=backend
        )
        for backend in ("analytic", "zigzag")
    }
    space = evaluators["analytic"].genome_space(num_levels=num_levels)
    rng = np.random.default_rng(seed)
    genomes = space.random_population(designs, rng)
    matrix = repaired_matrix(GenomeMatrix.from_genomes(genomes), space)
    sample = matrix.to_genomes()

    results = {
        backend: evaluator.evaluate_population(sample, workers=1)
        for backend, evaluator in evaluators.items()
    }
    values = {
        backend: {
            "latency": np.array([r.design.latency for r in rs]),
            "energy": np.array([r.design.energy for r in rs]),
            "area": np.array([r.design.area.total for r in rs]),
            "compute": np.array(
                [
                    sum(
                        layer.compute_cycles * layer.count
                        for layer in r.design.performance.layers
                    )
                    for r in rs
                ]
            ),
            "valid": np.array([r.valid for r in rs]),
        }
        for backend, rs in results.items()
    }
    analytic, zigzag = values["analytic"], values["zigzag"]

    failures: List[str] = []
    if not np.array_equal(analytic["valid"], zigzag["valid"]):
        differing = int((analytic["valid"] != zigzag["valid"]).sum())
        failures.append(
            f"validity: backends disagree on {differing} of {designs} designs"
        )

    area_deltas = _relative_deltas(analytic["area"], zigzag["area"])
    if area_deltas.max() > EXACT_TOLERANCE:
        failures.append(
            f"area: max relative delta {area_deltas.max():.2e} "
            f"> {EXACT_TOLERANCE:.0e} (shared geometry must agree exactly)"
        )
    compute_deltas = _relative_deltas(analytic["compute"], zigzag["compute"])
    if compute_deltas.max() > COMPUTE_TOLERANCE:
        failures.append(
            f"compute cycles: max relative delta {compute_deltas.max():.2e} "
            f"> {COMPUTE_TOLERANCE:.0e}"
        )
    for objective in ("latency", "energy"):
        bound = analytic[objective] * (1.0 + BOUND_SLACK)
        violations = int((zigzag[objective] > bound).sum())
        if violations:
            failures.append(
                f"{objective}: zigzag exceeds the analytic value on "
                f"{violations} of {designs} designs (stationarity must be "
                f"a lower bound)"
            )

    latency_deltas = _relative_deltas(analytic["latency"], zigzag["latency"])
    latency_median = float(np.median(latency_deltas))
    latency_rho = _rank_correlation(analytic["latency"], zigzag["latency"])
    if latency_median > tolerance:
        failures.append(
            f"latency: median relative delta {latency_median:.3f} "
            f"> tolerance {tolerance}"
        )
    if latency_rho < min_rank_corr:
        failures.append(
            f"latency: rank correlation {latency_rho:.3f} "
            f"< {min_rank_corr}"
        )

    energy_deltas = _relative_deltas(analytic["energy"], zigzag["energy"])
    energy_rho = _rank_correlation(analytic["energy"], zigzag["energy"])

    print(
        f"crosscheck: {model_name} on {platform_name}, {designs} designs, "
        f"{num_levels} levels, seed {seed}",
        file=out,
    )
    print(_stats_line("area", area_deltas, _rank_correlation(
        analytic["area"], zigzag["area"])), file=out)
    print(_stats_line("latency", latency_deltas, latency_rho), file=out)
    print(_stats_line("energy", energy_deltas, energy_rho), file=out)
    if failures:
        print("crosscheck FAILED:", file=out)
        for failure in failures:
            print(f"  - {failure}", file=out)
        return 1
    print(
        f"crosscheck OK: backends agree within tolerance "
        f"(latency median delta {latency_median:.3f} <= {tolerance}, "
        f"rank corr {latency_rho:.3f} >= {min_rank_corr}, area exact)",
        file=out,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro crosscheck", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--model", default="resnet18")
    parser.add_argument(
        "--platform", choices=("edge", "cloud"), default="edge"
    )
    parser.add_argument(
        "--designs",
        type=int,
        default=DEFAULT_DESIGNS,
        help=f"sample size (default: {DEFAULT_DESIGNS})",
    )
    parser.add_argument(
        "--num-levels",
        type=int,
        default=2,
        help="hierarchy depth of the sampled designs (default: 2)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="gate on the median relative latency delta "
        f"(default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--min-rank-corr",
        type=float,
        default=DEFAULT_MIN_RANK_CORR,
        help="gate on the latency rank correlation "
        f"(default: {DEFAULT_MIN_RANK_CORR})",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_crosscheck(
        model_name=args.model,
        platform_name=args.platform,
        designs=args.designs,
        num_levels=args.num_levels,
        seed=args.seed,
        tolerance=args.tolerance,
        min_rank_corr=args.min_rank_corr,
    )


if __name__ == "__main__":
    raise SystemExit(main())
