"""Fig. 7 — inspection of the solutions found by the three schemes.

For Mnasnet at edge resources, the harness runs one representative of each
scheme family (HW-opt with the dla-like mapping, Mapping-opt with the
Compute-focused HW, and DiGamma co-optimization) and reports, for the best
design each found: the encoded mapping, latency, area, latency-area product
and the PE:buffer area split — the same quantities as the paper's Fig. 7.

Run from the command line::

    python -m repro.experiments.fig7 --budget 1500
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.arch.platform import get_platform
from repro.experiments.settings import (
    DEFAULT_SAMPLING_BUDGET,
    FIXED_HW_STYLES,
    ExperimentSettings,
    make_fixed_hardware,
)
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.search import SearchResult
from repro.optim.digamma import DiGamma
from repro.optim.gamma import GammaMapper
from repro.optim.grid_search import HardwareGridSearch
from repro.workloads.registry import get_model


@dataclass(frozen=True)
class SchemeSolution:
    """One row of the Fig. 7 table."""

    scheme: str
    search: SearchResult

    @property
    def found_valid(self) -> bool:
        """Whether the scheme found a budget-respecting design."""
        return self.search.found_valid

    def row(self) -> Dict[str, float]:
        """Numeric columns of the Fig. 7 table."""
        if not self.found_valid:
            return {
                "latency": float("inf"),
                "area": float("inf"),
                "latency_area_product": float("inf"),
                "pe_area_pct": float("nan"),
                "buffer_area_pct": float("nan"),
            }
        design = self.search.best.design
        pe_pct, buffer_pct = design.area.pe_to_buffer_ratio
        return {
            "latency": design.latency,
            "area": design.area.total,
            "latency_area_product": design.latency_area_product,
            "pe_area_pct": pe_pct,
            "buffer_area_pct": buffer_pct,
        }

    def describe(self) -> str:
        """Multi-line description including the found encoding."""
        if not self.found_valid:
            return f"{self.scheme}: no valid solution found"
        design = self.search.best.design
        row = self.row()
        lines = [
            f"{self.scheme}:",
            f"  latency = {row['latency']:.3e} cycles",
            f"  area = {row['area']:.3e} um^2 "
            f"(PE {row['pe_area_pct']:.0f}% : buffer {row['buffer_area_pct']:.0f}%)",
            f"  latency-area product = {row['latency_area_product']:.3e}",
            "  found encoding:",
        ]
        lines.extend("    " + line for line in design.mapping.describe().splitlines())
        return "\n".join(lines)


@dataclass(frozen=True)
class Fig7Result:
    """Solutions of the three schemes for one model and platform."""

    model: str
    platform: str
    area_budget_um2: float
    solutions: Dict[str, SchemeSolution]

    def report(self) -> str:
        """Render the full Fig. 7-style report."""
        lines = [
            f"Fig. 7 - solutions found for {self.model} at {self.platform} resources "
            f"(area constraint {self.area_budget_um2:.2e} um^2)",
            "",
        ]
        for solution in self.solutions.values():
            lines.append(solution.describe())
            lines.append("")
        return "\n".join(lines)


def run_fig7(
    model_name: str = "mnasnet",
    platform_name: str = "edge",
    settings: Optional[ExperimentSettings] = None,
) -> Fig7Result:
    """Run the three representative schemes and collect their best solutions."""
    settings = settings if settings is not None else ExperimentSettings()
    platform = get_platform(platform_name)
    model = get_model(model_name)

    solutions: Dict[str, SchemeSolution] = {}

    co_framework = CoOptimizationFramework(
        model,
        platform,
        bytes_per_element=settings.bytes_per_element,
        **settings.framework_options(),
    )

    try:
        # HW-opt representative: grid-searched HW with the dla-like mapping.
        search = co_framework.search(
            HardwareGridSearch("dla"),
            sampling_budget=settings.sampling_budget,
            seed=settings.seed,
        )
        solutions["HW-opt (Grid-S + dla-like)"] = SchemeSolution(
            scheme="HW-opt (Grid-S + dla-like)", search=search
        )

        # Mapping-opt representative: Compute-focused fixed HW with GAMMA.
        fixed_hw = make_fixed_hardware(platform, FIXED_HW_STYLES["Compute-focused"])
        mapping_framework = CoOptimizationFramework(
            model,
            platform,
            fixed_hardware=fixed_hw,
            bytes_per_element=settings.bytes_per_element,
            **settings.framework_options(),
        )
        try:
            search = mapping_framework.search(
                GammaMapper(),
                sampling_budget=settings.sampling_budget,
                seed=settings.seed,
            )
        finally:
            mapping_framework.close()
        solutions["Mapping-opt (Compute-focused + Gamma)"] = SchemeSolution(
            scheme="Mapping-opt (Compute-focused + Gamma)", search=search
        )

        # Co-optimization: DiGamma.
        search = co_framework.search(
            DiGamma(),
            sampling_budget=settings.sampling_budget,
            seed=settings.seed,
        )
        solutions["HW-Map-co-opt (DiGamma)"] = SchemeSolution(
            scheme="HW-Map-co-opt (DiGamma)", search=search
        )
    finally:
        co_framework.close()

    return Fig7Result(
        model=model_name,
        platform=platform_name,
        area_budget_um2=platform.area_budget_um2,
        solutions=solutions,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="mnasnet", help="model to inspect")
    parser.add_argument(
        "--platform", choices=("edge", "cloud"), default="edge", help="platform resources"
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=DEFAULT_SAMPLING_BUDGET,
        help="sampling budget per search (paper uses 40000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args(argv)

    settings = ExperimentSettings(sampling_budget=args.budget, seed=args.seed)
    result = run_fig7(args.model, args.platform, settings)
    print(result.report())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
