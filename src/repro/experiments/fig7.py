"""Fig. 7 — inspection of the solutions found by the three schemes.

For Mnasnet at edge resources, the harness runs one representative of each
scheme family (HW-opt with the dla-like mapping, Mapping-opt with the
Compute-focused HW, and DiGamma co-optimization) and reports, for the best
design each found: the encoded mapping, latency, area, latency-area product
and the PE:buffer area split — the same quantities as the paper's Fig. 7.

Run from the command line::

    python -m repro.experiments.fig7 --budget 1500
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.arch.platform import get_platform
from repro.experiments.jobs import JobSpec
from repro.experiments.runner import (
    Outcome,
    ResultStore,
    SweepRunner,
    add_sweep_arguments,
    settings_from_args,
    validate_sweep_args,
)
from repro.experiments.settings import ExperimentSettings
from repro.framework.search import SearchResult


@dataclass(frozen=True)
class SchemeSolution:
    """One row of the Fig. 7 table."""

    scheme: str
    search: SearchResult

    @property
    def found_valid(self) -> bool:
        """Whether the scheme found a budget-respecting design."""
        return self.search.found_valid

    def row(self) -> Dict[str, float]:
        """Numeric columns of the Fig. 7 table."""
        if not self.found_valid:
            return {
                "latency": float("inf"),
                "area": float("inf"),
                "latency_area_product": float("inf"),
                "pe_area_pct": float("nan"),
                "buffer_area_pct": float("nan"),
            }
        design = self.search.best.design
        pe_pct, buffer_pct = design.area.pe_to_buffer_ratio
        return {
            "latency": design.latency,
            "area": design.area.total,
            "latency_area_product": design.latency_area_product,
            "pe_area_pct": pe_pct,
            "buffer_area_pct": buffer_pct,
        }

    def describe(self) -> str:
        """Multi-line description including the found encoding."""
        if not self.found_valid:
            return f"{self.scheme}: no valid solution found"
        design = self.search.best.design
        row = self.row()
        lines = [
            f"{self.scheme}:",
            f"  latency = {row['latency']:.3e} cycles",
            f"  area = {row['area']:.3e} um^2 "
            f"(PE {row['pe_area_pct']:.0f}% : buffer {row['buffer_area_pct']:.0f}%)",
            f"  latency-area product = {row['latency_area_product']:.3e}",
            "  found encoding:",
        ]
        lines.extend("    " + line for line in design.mapping.describe().splitlines())
        return "\n".join(lines)


@dataclass(frozen=True)
class Fig7Result:
    """Solutions of the three schemes for one model and platform."""

    model: str
    platform: str
    area_budget_um2: float
    solutions: Dict[str, SchemeSolution]

    def report(self) -> str:
        """Render the full Fig. 7-style report."""
        lines = [
            f"Fig. 7 - solutions found for {self.model} at {self.platform} resources "
            f"(area constraint {self.area_budget_um2:.2e} um^2)",
            "",
        ]
        for solution in self.solutions.values():
            lines.append(solution.describe())
            lines.append("")
        return "\n".join(lines)


def compile_fig7_jobs(
    model_name: str,
    platform_name: str,
    settings: ExperimentSettings,
) -> List[JobSpec]:
    """Compile the three representative schemes into jobs."""
    common = dict(
        model=model_name,
        platform=platform_name,
        sampling_budget=settings.sampling_budget,
        seed=settings.seed,
    )
    return [
        JobSpec(
            optimizer="grid",
            optimizer_options={"dataflow": "dla"},
            scheme="HW-opt (Grid-S + dla-like)",
            **common,
        ),
        JobSpec(
            optimizer="gamma",
            fixed_hw_style="Compute-focused",
            scheme="Mapping-opt (Compute-focused + Gamma)",
            **common,
        ),
        JobSpec(optimizer="digamma", scheme="HW-Map-co-opt (DiGamma)", **common),
    ]


def fig7_result_from_outcomes(
    model_name: str,
    platform_name: str,
    outcomes: Sequence[Outcome],
) -> Fig7Result:
    """Assemble the Fig. 7 report from completed sweep outcomes."""
    solutions: Dict[str, SchemeSolution] = {
        spec.scheme_label: SchemeSolution(scheme=spec.scheme_label, search=search)
        for spec, search in outcomes
    }
    return Fig7Result(
        model=model_name,
        platform=platform_name,
        area_budget_um2=get_platform(platform_name).area_budget_um2,
        solutions=solutions,
    )


def run_fig7(
    model_name: str = "mnasnet",
    platform_name: str = "edge",
    settings: Optional[ExperimentSettings] = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> Fig7Result:
    """Run the three representative schemes and collect their best solutions."""
    settings = settings if settings is not None else ExperimentSettings()
    jobs = compile_fig7_jobs(model_name, platform_name, settings)
    runner = SweepRunner(jobs, settings=settings, store=store, resume=resume)
    return fig7_result_from_outcomes(model_name, platform_name, runner.run())


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="mnasnet", help="model to inspect")
    parser.add_argument(
        "--platform", choices=("edge", "cloud"), default="edge", help="platform resources"
    )
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)
    validate_sweep_args(parser, args)

    settings = settings_from_args(args)
    result = run_fig7(
        args.model, args.platform, settings, store=args.store, resume=args.resume
    )
    print(result.report())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
