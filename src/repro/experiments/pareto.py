"""Pareto suite — one multi-objective search per model and platform.

Where Fig. 5/6/7 scalarize the trade-offs into separate searches per
objective, this suite runs one NSGA-II search per model x platform and
stores the whole latency/energy/area front: every point on the stored
curve is a full decoded design, so downstream consumers pick their
operating point after the fact instead of re-searching.

Run from the command line::

    python -m repro experiments --suite pareto --budget 1500
    python -m repro pareto --platform edge --budget 1500

The module doubles as the CI gate for the multi-objective path::

    python -m repro pareto --verify-store results.jsonl

which asserts that every stored front is non-dominated and that the
search used the batched evaluation fast path (``batch_calls > 0``) — the
exact regression the portfolio budget-slice fix guarded against for
scalar optimizers.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis import pareto_front_report
from repro.experiments.jobs import JobSpec
from repro.experiments.runner import (
    Outcome,
    ResultStore,
    SweepRunner,
    add_sweep_arguments,
    settings_from_args,
    validate_sweep_args,
)
from repro.experiments.settings import DEFAULT_MODELS, ExperimentSettings
from repro.framework.pareto import ParetoResult, non_dominated_indices

#: The default multi-objective axis set of the suite.
PARETO_OBJECTIVES: Tuple[str, ...] = ("latency", "energy", "area")

#: The optimizer driving the suite's searches.
PARETO_OPTIMIZER = "nsga2"


@dataclass
class ParetoSuiteResult:
    """Per-model fronts of one Pareto-suite run (one platform)."""

    platform: str
    objectives: Tuple[str, ...]
    #: model -> Pareto front of the model's search.
    fronts: Dict[str, ParetoResult] = field(default_factory=dict)

    def report(self) -> str:
        """Render every model's front as a plain-text table."""
        parts = []
        for model_name, front in self.fronts.items():
            parts.append(
                pareto_front_report(
                    front,
                    title=(
                        f"Pareto front ({self.platform}/{model_name}) - "
                        f"{front.summary()}"
                    ),
                )
            )
            parts.append("")
        return "\n".join(parts).rstrip()


def compile_pareto_jobs(
    platform_name: str,
    settings: ExperimentSettings,
    models: Optional[Sequence[str]] = None,
    objectives: Sequence[str] = PARETO_OBJECTIVES,
    optimizer: str = PARETO_OPTIMIZER,
) -> List[JobSpec]:
    """Compile the Pareto grid (one front per model) into job specs."""
    return [
        JobSpec(
            model=model_name,
            platform=platform_name,
            optimizer=optimizer,
            sampling_budget=settings.sampling_budget,
            seed=settings.seed,
            objectives=tuple(objectives),
        )
        for model_name in (models if models is not None else settings.models)
    ]


def pareto_result_from_outcomes(
    platform_name: str,
    outcomes: Sequence[Outcome],
    objectives: Sequence[str] = PARETO_OBJECTIVES,
) -> ParetoSuiteResult:
    """Assemble the suite result from completed sweep outcomes."""
    result = ParetoSuiteResult(
        platform=platform_name, objectives=tuple(objectives)
    )
    for spec, outcome in outcomes:
        if isinstance(outcome, ParetoResult):
            result.fronts[spec.model] = outcome
    return result


def run_pareto(
    platform_name: str = "edge",
    settings: Optional[ExperimentSettings] = None,
    models: Optional[Sequence[str]] = None,
    objectives: Sequence[str] = PARETO_OBJECTIVES,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> ParetoSuiteResult:
    """Run the Pareto suite on one platform."""
    settings = settings if settings is not None else ExperimentSettings()
    jobs = compile_pareto_jobs(platform_name, settings, models, objectives)
    runner = SweepRunner(jobs, settings=settings, store=store, resume=resume)
    return pareto_result_from_outcomes(platform_name, runner.run(), objectives)


# -- CI verification -----------------------------------------------------------


def verify_store(path: Union[str, Path]) -> List[str]:
    """Invariant check of every Pareto record in a result store.

    Returns a list of human-readable problems (empty means the store
    passes): a front must be non-empty, mutually non-dominated, its
    members' objective vectors must match the declared objective count,
    and the search must have used the batched evaluation views
    (``batch_calls > 0`` — multi-objective search must not silently drop
    the vector-engine fast path).
    """
    problems: List[str] = []
    records = ResultStore(path).records()
    pareto_records = [
        record for record in records if "front" in record.get("result", {})
    ]
    if not pareto_records:
        problems.append(f"{path}: no Pareto records found among {len(records)}")
        return problems
    from repro.serialization import pareto_result_from_dict

    for record in pareto_records:
        job_id = record.get("job_id", "<missing id>")
        front = pareto_result_from_dict(record["result"])
        if not front.front:
            problems.append(f"{job_id}: empty front")
            continue
        values = front.front_values
        if any(len(vector) != len(front.objectives) for vector in values):
            problems.append(f"{job_id}: objective vector arity mismatch")
        if len(non_dominated_indices(values)) != len(values):
            problems.append(f"{job_id}: stored front is not non-dominated")
        if len(set(values)) != len(values):
            problems.append(f"{job_id}: stored front has duplicate vectors")
        if front.batch_calls <= 0:
            problems.append(
                f"{job_id}: batch_calls == 0 (batched fast path not engaged)"
            )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--platform",
        choices=("edge", "cloud", "both"),
        default="edge",
        help="platform resources to evaluate (default: edge)",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=list(DEFAULT_MODELS),
        help="models to evaluate (default: the paper's seven models)",
    )
    parser.add_argument(
        "--objectives",
        default=",".join(PARETO_OBJECTIVES),
        help="comma-separated objective axes (default: %(default)s)",
    )
    parser.add_argument(
        "--verify-store",
        default=None,
        metavar="PATH",
        help="verify the Pareto records of a JSONL store (non-dominated, "
        "batched fast path engaged) instead of running searches",
    )
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)
    if args.verify_store:
        problems = verify_store(args.verify_store)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        print(f"OK: {args.verify_store} Pareto records verified")
        return 0
    validate_sweep_args(parser, args)

    settings = settings_from_args(args, models=args.models)
    objectives = tuple(
        name.strip() for name in args.objectives.split(",") if name.strip()
    )
    platforms = ("edge", "cloud") if args.platform == "both" else (args.platform,)
    for platform_name in platforms:
        result = run_pareto(
            platform_name,
            settings,
            models=args.models,
            objectives=objectives,
            store=args.store,
            resume=args.resume,
        )
        print(result.report())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
