"""Unified experiment execution: one engine for every sweep.

The figure harnesses (Fig. 5/6/7, ablations) used to hand-roll the same
model x platform x optimizer loop, framework lifecycle and argparse each.
This module is the shared engine they now compile into:

* :class:`ResultStore` — an append-only JSONL store of completed searches
  (one ``{"job_id", "spec", "result"}`` record per line, written and
  flushed as soon as each search finishes, so a killed sweep loses at most
  the in-flight job).
* :class:`SweepRunner` — executes a list of :class:`JobSpec` jobs through
  shared :class:`CoOptimizationFramework` instances (one per
  model/platform/constraint combination, so evaluation caches and worker
  pools are reused across jobs), streams results to the store, and supports
  ``resume`` (skip jobs whose ids are already stored) and ``shard i/N``
  (take every N-th job of the full list).
* a CLI, reachable as ``python -m repro experiments``, that compiles the
  figure suites into job lists, runs them and renders the tables from the
  result store.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.jobs import (
    ENGINES,
    JobSpec,
    build_framework,
    build_optimizer,
    job_from_dict,
    job_to_dict,
)
from repro.experiments.settings import (
    DEFAULT_MODELS,
    DEFAULT_SAMPLING_BUDGET,
    FIG5_OPTIMIZERS,
    ExperimentSettings,
)
from repro.framework.pareto import ParetoResult
from repro.framework.search import SearchResult
from repro.serialization import result_from_dict, result_to_dict

#: Either kind of search outcome: a single best or a Pareto front.
AnyResult = Union[SearchResult, ParetoResult]

#: One completed job: its spec plus the search outcome.
Outcome = Tuple[JobSpec, AnyResult]

#: Smoke-sweep shape: one tiny model, three cheap-but-representative
#: optimizers (CMA included so the tables' normalization reference exists),
#: and a budget that finishes in seconds.  Used by ``--smoke`` and CI.
SMOKE_MODELS = ("ncf",)
SMOKE_OPTIMIZERS = ("random", "cma", "digamma")
SMOKE_BUDGET = 40


class ResultStore:
    """Append-only JSONL store of completed search results.

    Each line is an independent JSON record ``{"job_id": ..., "spec": ...,
    "result": ...}``; later records for the same id win.  Malformed lines
    (e.g. the partial last line of a killed writer) are skipped on load, so
    a store surviving a crash is always resumable.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def append(
        self,
        spec: JobSpec,
        result: AnyResult,
        extra: Optional[dict] = None,
    ) -> None:
        """Persist one completed job; flushed immediately.

        ``extra`` merges additional top-level keys into the record (e.g.
        the runner's per-search cache statistics); readers ignore keys they
        do not know, so the store stays backward compatible.  The record is
        emitted as one ``write`` syscall on an ``O_APPEND`` descriptor (not
        through buffered text I/O, which splits multi-KB records into
        several syscalls), so shard processes sharing one store file do not
        interleave each other's lines.
        """
        record = {
            "job_id": spec.job_id,
            "spec": job_to_dict(spec),
            "result": result_to_dict(result),
        }
        if extra:
            record.update(extra)
        data = (json.dumps(record, sort_keys=True) + "\n").encode()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        descriptor = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            view = memoryview(data)
            while view:  # short writes (ENOSPC mid-write, signals) must not
                view = view[os.write(descriptor, view) :]  # silently truncate
        finally:
            os.close(descriptor)

    def records(self) -> List[dict]:
        """All well-formed records, in file order."""
        if not self.path.exists():
            return []
        records = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # partial line from a killed writer
        return records

    def completed_ids(self) -> set:
        """Ids of every job with a stored result."""
        return {record["job_id"] for record in self.records()}

    def load_results(self, only: Optional[set] = None) -> Dict[str, AnyResult]:
        """Deserialize stored results, keyed by job id.

        Records round-trip as whatever they were stored as (Pareto fronts
        come back as :class:`ParetoResult`).  ``only`` restricts
        deserialization to the given ids — rebuilding a result (designs,
        per-layer reports, genomes) is the expensive part, so a shard
        resuming against a large shared store should not pay it for every
        other shard's records.
        """
        return {
            record["job_id"]: result_from_dict(record["result"])
            for record in self.records()
            if only is None or record["job_id"] in only
        }

    def load_jobs(self) -> Dict[str, JobSpec]:
        """Deserialize every stored job spec, keyed by job id."""
        return {
            record["job_id"]: job_from_dict(record["spec"])
            for record in self.records()
        }


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``--shard i/N`` argument into a 1-based (index, count) pair."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError as error:
        raise ValueError(f"shard must look like 'i/N', got {text!r}") from error
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"shard index must satisfy 1 <= i <= N, got {text!r}")
    return index, count


def select_shard(jobs: Sequence[JobSpec], index: int, count: int) -> List[JobSpec]:
    """Shard ``index`` of ``count`` (1-based): every ``count``-th job."""
    return list(jobs[index - 1 :: count])


class SweepRunner:
    """Execute a job list through shared framework/worker-pool lifecycles.

    Parameters
    ----------
    jobs:
        The full sweep, in a deterministic order (sharding depends on it).
    settings:
        Evaluation-engine knobs shared by every job (cache, workers,
        bytes-per-element).  ``models`` / ``sampling_budget`` / ``seed`` on
        the settings are ignored here — those live on the specs.
    store:
        Optional :class:`ResultStore` (or path); every completed search is
        appended immediately.
    resume:
        Skip jobs whose ids are already in the store and return their
        stored results instead of re-running them.
    shard:
        Optional 1-based ``(index, count)`` pair; only that slice of the
        job list is executed.
    progress:
        Optional callable receiving one human-readable line per job.
    """

    def __init__(
        self,
        jobs: Sequence[JobSpec],
        settings: Optional[ExperimentSettings] = None,
        store: Union[ResultStore, str, Path, None] = None,
        resume: bool = False,
        shard: Optional[Tuple[int, int]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ):
        self.jobs = list(jobs)
        self.settings = settings if settings is not None else ExperimentSettings()
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.resume = resume
        if shard is not None:
            index, count = shard
            if count < 1 or not 1 <= index <= count:
                raise ValueError(f"invalid shard {shard!r}")
        self.shard = shard
        self.progress = progress

    @property
    def shard_jobs(self) -> List[JobSpec]:
        """The slice of the sweep this runner executes."""
        if self.shard is None:
            return list(self.jobs)
        return select_shard(self.jobs, *self.shard)

    def run(self) -> List[Outcome]:
        """Execute (or reload) every job of this runner's shard, in order.

        Jobs are deduplicated by ``job_id``: an id encodes everything that
        affects the search outcome (the ``scheme`` label does not), so
        specs sharing an id — e.g. the same DiGamma search appearing in two
        suites under different labels — are executed once and the result is
        returned for each of them.
        """
        jobs = self.shard_jobs
        completed: Dict[str, AnyResult] = {}
        if self.resume and self.store is not None:
            completed = self.store.load_results(
                only={spec.job_id for spec in jobs}
            )
        # Frameworks are shared across jobs and closed as soon as the last
        # job needing them has run, bounding memory on large sweeps.  Warm
        # layer-report caches are shared one level wider — across
        # objectives with the same model x platform x constraint x engine —
        # because per-layer costs are objective-independent, so a later job
        # starts with every layer the earlier jobs already priced.
        last_use: Dict[tuple, int] = {}
        cache_last_use: Dict[tuple, int] = {}
        for position, spec in enumerate(jobs):
            last_use[spec.framework_key] = position
            cache_last_use[spec.evaluator_cache_key] = position

        outcomes: List[Outcome] = []
        frameworks: Dict[tuple, object] = {}
        shared_caches: Dict[tuple, object] = {}
        try:
            for position, spec in enumerate(jobs):
                known = completed.get(spec.job_id)
                if known is not None:
                    outcomes.append((spec, known))
                    self._say(f"[{position + 1}/{len(jobs)}] skip (stored): {spec.job_id}")
                else:
                    framework = frameworks.get(spec.framework_key)
                    if framework is None:
                        framework = build_framework(spec, self.settings)
                        frameworks[spec.framework_key] = framework
                        self._share_layer_cache(spec, framework, shared_caches)
                    evaluator = framework.evaluator
                    design_before = evaluator.design_cache_stats
                    layer_before = evaluator.layer_cache_stats
                    delta_before = dict(evaluator.cost_model.vector_stats)
                    run_search = (
                        framework.pareto_search
                        if spec.is_multi_objective
                        else framework.search
                    )
                    search = run_search(
                        build_optimizer(spec),
                        sampling_budget=spec.sampling_budget,
                        seed=spec.seed,
                    )
                    design_stats = evaluator.design_cache_stats.since(design_before)
                    layer_stats = evaluator.layer_cache_stats.since(layer_before)
                    delta_stats = {
                        key: value - delta_before.get(key, 0)
                        for key, value in
                        evaluator.cost_model.vector_stats.items()
                    }
                    if self.store is not None:
                        self.store.append(
                            spec,
                            search,
                            extra={
                                "cache": _cache_record(
                                    design_stats, layer_stats, delta_stats
                                )
                            },
                        )
                    completed[spec.job_id] = search
                    outcomes.append((spec, search))
                    self._say(
                        f"[{position + 1}/{len(jobs)}] {spec.job_id}: "
                        f"{search.summary()} "
                        f"[design cache {design_stats.hit_rate:.0%} of "
                        f"{design_stats.requests}, layer cache "
                        f"{layer_stats.hit_rate:.0%} of {layer_stats.requests}]"
                    )
                if last_use[spec.framework_key] == position:
                    framework = frameworks.pop(spec.framework_key, None)
                    if framework is not None:
                        framework.close()
                if cache_last_use[spec.evaluator_cache_key] == position:
                    shared_caches.pop(spec.evaluator_cache_key, None)
        finally:
            for framework in frameworks.values():
                framework.close()
        return outcomes

    def _share_layer_cache(
        self, spec: JobSpec, framework, shared_caches: Dict[tuple, object]
    ) -> None:
        """Hand a freshly built framework the warm cache of its cache key."""
        if not self.settings.use_cache:
            return
        engine = spec.engine if spec.engine is not None else self.settings.engine
        if engine == "reference":
            return  # the reference path never consults the cache
        key = spec.evaluator_cache_key
        cache = shared_caches.get(key)
        if cache is None:
            shared_caches[key] = framework.evaluator.cost_model.layer_cache
        else:
            framework.evaluator.cost_model.adopt_cache(cache)

    def _say(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)


def _cache_record(
    design: "CacheStats", layer: "CacheStats", delta: dict
) -> dict:
    """JSON-ready per-search cache statistics for the result store.

    The ``delta`` section only appears for searches that actually ran
    through the delta-filtered gene-matrix path; jobs on the scalar
    engines (or with ``--no-delta``) keep their records free of all-zero
    noise.
    """
    record = {
        "design": {
            "hits": design.hits,
            "misses": design.misses,
            "hit_rate": round(design.hit_rate, 4),
        },
        "layer": {
            "hits": layer.hits,
            "misses": layer.misses,
            "hit_rate": round(layer.hit_rate, 4),
        },
    }
    member_requests = delta.get("delta_member_requests", 0)
    row_requests = delta.get("delta_row_requests", 0)
    if member_requests or row_requests:
        record["delta"] = {
            "members_reused": delta.get("delta_members_reused", 0),
            "member_requests": member_requests,
            "member_reuse_rate": round(
                delta.get("delta_members_reused", 0) / member_requests, 4
            )
            if member_requests
            else 0.0,
            "rows_reused": delta.get("delta_rows_reused", 0),
            "row_requests": row_requests,
            "row_reuse_rate": round(
                delta.get("delta_rows_reused", 0) / row_requests, 4
            )
            if row_requests
            else 0.0,
            "generations": delta.get("delta_generations", 0),
        }
    return record


def full_outcomes(
    jobs: Sequence[JobSpec],
    outcomes: Sequence[Outcome],
    store: Optional[ResultStore] = None,
    stored_results: Optional[Dict[str, AnyResult]] = None,
) -> Optional[List[Outcome]]:
    """Outcomes for the *whole* sweep, merging this run with the store.

    Returns ``None`` while some jobs have no result yet (e.g. other shards
    still running) — callers should then skip table rendering.  Pass
    ``stored_results`` (a preloaded ``store.load_results()`` dict) when
    rendering several suites from one store, to avoid re-reading and
    re-deserializing the whole file per suite.
    """
    have: Dict[str, AnyResult] = {}
    if stored_results is not None:
        have.update(stored_results)
    elif store is not None:
        have.update(store.load_results())
    have.update({spec.job_id: result for spec, result in outcomes})
    if any(spec.job_id not in have for spec in jobs):
        return None
    return [(spec, have[spec.job_id]) for spec in jobs]


# -- shared CLI plumbing -------------------------------------------------------


def add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Args shared by the figure harness CLIs and ``repro experiments``."""
    parser.add_argument(
        "--budget",
        type=int,
        default=DEFAULT_SAMPLING_BUDGET,
        help="sampling budget per search (paper uses 40000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--store",
        default=None,
        help="JSONL result store; completed searches stream into it",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip jobs whose ids are already in the store",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width for batched population evaluation",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="vector",
        help="evaluation engine: 'vector' (NumPy population batching, "
        "default), 'fast' (scalar tuple engine) or 'reference' (seed "
        "implementation); all three are bit-identical",
    )
    parser.add_argument(
        "--no-delta",
        action="store_true",
        help="disable cross-generation delta evaluation on the gene-matrix "
        "path (results are bit-identical either way)",
    )


def validate_sweep_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Reject argument combinations that would silently do the wrong thing."""
    if args.resume and not args.store:
        parser.error("--resume requires --store (there is nothing to resume from)")


def settings_from_args(
    args: argparse.Namespace, models: Optional[Sequence[str]] = None
) -> ExperimentSettings:
    """Build :class:`ExperimentSettings` from parsed sweep arguments."""
    return ExperimentSettings(
        models=tuple(models) if models is not None else DEFAULT_MODELS,
        sampling_budget=args.budget,
        seed=args.seed,
        workers=args.workers,
        engine=getattr(args, "engine", "vector"),
        use_delta=not getattr(args, "no_delta", False),
    )


# -- the ``repro experiments`` CLI ---------------------------------------------


def _compile_suites(args: argparse.Namespace) -> List[Tuple[str, List[JobSpec], Callable[[List[Outcome]], str]]]:
    """Compile the requested suites into (label, jobs, renderer) entries."""
    from repro.experiments import ablations as ablations_module
    from repro.experiments import fig5 as fig5_module
    from repro.experiments import fig6 as fig6_module
    from repro.experiments import fig7 as fig7_module
    from repro.experiments import pareto as pareto_module

    settings = settings_from_args(args, models=args.models)
    platforms = ("edge", "cloud") if args.platform == "both" else (args.platform,)
    suites = (
        ("fig5", "fig6", "fig7", "ablations", "pareto")
        if args.suite == "all"
        else (args.suite,)
    )
    optimizers = tuple(args.optimizers)

    entries: List[Tuple[str, List[JobSpec], Callable[[List[Outcome]], str]]] = []
    for platform in platforms:
        if "fig5" in suites:
            jobs = fig5_module.compile_fig5_jobs(platform, settings, optimizers)
            entries.append(
                (
                    f"fig5/{platform}",
                    jobs,
                    lambda outcomes, platform=platform, optimizers=optimizers: (
                        fig5_module.fig5_result_from_outcomes(
                            platform, optimizers, outcomes
                        ).report()
                    ),
                )
            )
        if "fig6" in suites:
            jobs = fig6_module.compile_fig6_jobs(platform, settings)
            entries.append(
                (
                    f"fig6/{platform}",
                    jobs,
                    lambda outcomes, platform=platform: (
                        fig6_module.fig6_result_from_outcomes(platform, outcomes).report()
                    ),
                )
            )
        if "fig7" in suites:
            jobs = fig7_module.compile_fig7_jobs(args.model, platform, settings)
            entries.append(
                (
                    f"fig7/{platform}",
                    jobs,
                    lambda outcomes, platform=platform: (
                        fig7_module.fig7_result_from_outcomes(
                            args.model, platform, outcomes
                        ).report()
                    ),
                )
            )
        if "pareto" in suites:
            pareto_jobs = pareto_module.compile_pareto_jobs(
                platform, settings, models=args.models
            )
            entries.append(
                (
                    f"pareto/{platform}",
                    pareto_jobs,
                    lambda outcomes, platform=platform: (
                        pareto_module.pareto_result_from_outcomes(
                            platform, outcomes
                        ).report()
                    ),
                )
            )
        if "ablations" in suites:
            operator_jobs = ablations_module.compile_operator_ablation_jobs(
                platform, settings, models=args.models or ablations_module.ABLATION_MODELS
            )
            entries.append(
                (
                    f"ablations-operators/{platform}",
                    operator_jobs,
                    lambda outcomes, platform=platform: (
                        ablations_module.ablation_result_from_outcomes(
                            platform, outcomes
                        ).report("Ablation A1 - DiGamma operators (latency, cycles)")
                    ),
                )
            )
            buffer_jobs = ablations_module.compile_buffer_allocation_jobs(
                platform, settings, models=args.models or ("resnet18",)
            )
            entries.append(
                (
                    f"ablations-buffers/{platform}",
                    buffer_jobs,
                    lambda outcomes, platform=platform: (
                        ablations_module.ablation_result_from_outcomes(
                            platform, outcomes, metric="latency_area_product"
                        ).report(
                            "Ablation A2 - buffer allocation strategy "
                            "(latency-area product)"
                        )
                    ),
                )
            )
    return entries


def build_parser() -> argparse.ArgumentParser:
    """The ``repro experiments`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro experiments",
        description="Unified experiment runner: compile figure suites (or a "
        "custom grid) into jobs, execute them through one shared engine, "
        "stream results to a JSONL store, resume and shard at will.",
    )
    parser.add_argument(
        "--suite",
        choices=("fig5", "fig6", "fig7", "ablations", "pareto", "all"),
        default="fig5",
        help="which experiment suite to compile (default: fig5)",
    )
    parser.add_argument(
        "--platform",
        choices=("edge", "cloud", "both"),
        default="edge",
        help="platform resources to evaluate (default: edge)",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=None,
        help="models to evaluate (default: the suite's own model set)",
    )
    parser.add_argument(
        "--optimizers",
        nargs="+",
        default=list(FIG5_OPTIMIZERS),
        help="optimizers for the fig5 grid (default: the paper's nine)",
    )
    parser.add_argument(
        "--model",
        default="mnasnet",
        help="model inspected by the fig7 suite (default: mnasnet)",
    )
    add_sweep_arguments(parser)
    parser.add_argument(
        "--shard",
        default=None,
        help="run only shard i/N of the job list (requires --store to merge)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sweep (ncf; random, cma, digamma; budget 40) for CI smoke tests",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro experiments``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.smoke:
        args.models = list(SMOKE_MODELS)
        args.optimizers = list(SMOKE_OPTIMIZERS)
        args.budget = min(args.budget, SMOKE_BUDGET)

    entries = _compile_suites(args)
    # Dedupe by job_id across suites BEFORE sharding: an id encodes the
    # search outcome, so overlapping suites (e.g. DiGamma in fig5, fig6 and
    # the ablations) contribute one job, and positional sharding never hands
    # the same search to two shards.  full_outcomes re-fans results out to
    # every suite's specs by id when rendering.
    jobs: List[JobSpec] = []
    seen_ids: set = set()
    for _, suite_jobs, _ in entries:
        for spec in suite_jobs:
            if spec.job_id not in seen_ids:
                seen_ids.add(spec.job_id)
                jobs.append(spec)
    shard = None
    if args.shard:
        try:
            shard = parse_shard(args.shard)
        except ValueError as error:
            parser.error(str(error))
    validate_sweep_args(parser, args)
    store = ResultStore(args.store) if args.store else None
    if shard is not None and store is None:
        parser.error("--shard requires --store (shards merge through the store)")

    progress = None if args.quiet else lambda line: print(line, file=sys.stderr)
    runner = SweepRunner(
        jobs,
        settings=settings_from_args(args, models=args.models),
        store=store,
        resume=args.resume,
        shard=shard,
        progress=progress,
    )
    outcomes = runner.run()

    rendered_any = False
    # Other processes' results only matter when sharded; a whole-sweep run
    # already holds every outcome it compiled, so skip re-reading the store.
    stored_results = (
        store.load_results() if (store is not None and shard is not None) else {}
    )
    for label, suite_jobs, render in entries:
        merged = full_outcomes(suite_jobs, outcomes, stored_results=stored_results)
        if merged is None:
            done = sum(
                1
                for spec in suite_jobs
                if any(spec.job_id == ran.job_id for ran, _ in outcomes)
            )
            print(f"{label}: {done}/{len(suite_jobs)} jobs done in this shard; "
                  "tables pending remaining shards")
            continue
        print(render(merged))
        print()
        rendered_any = True
    if not rendered_any and shard is not None:
        print(f"shard {args.shard}: {len(outcomes)} job(s) completed into {store.path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
