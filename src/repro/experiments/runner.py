"""Unified experiment execution: one engine for every sweep.

The figure harnesses (Fig. 5/6/7, ablations) used to hand-roll the same
model x platform x optimizer loop, framework lifecycle and argparse each.
This module is the shared engine they now compile into:

* :class:`ResultStore` — an append-only JSONL store of completed searches
  (one ``{"job_id", "spec", "result"}`` record per line, written and
  flushed as soon as each search finishes, so a killed sweep loses at most
  the in-flight job).  Failed attempts are stored too, as structured
  failure records, and loads tolerate corruption: undecodable lines are
  counted, warned about and quarantined into ``<store>.corrupt`` instead
  of silently dropped (``verify()`` / ``repair()`` expose the same checks
  programmatically and through ``--verify-store``).
* :class:`SweepRunner` — executes a list of :class:`JobSpec` jobs through
  shared :class:`CoOptimizationFramework` instances (one per
  model/platform/constraint combination, so evaluation caches and worker
  pools are reused across jobs), streams results to the store, and supports
  ``resume`` (skip jobs whose ids are already stored) and ``shard i/N``
  (take every N-th job of the full list).  Every job runs inside an error
  boundary: exceptions become failure records and the sweep continues,
  failed jobs retry with exponential backoff + jitter (``--retries``), a
  watchdog enforces a per-job wall-clock timeout (``--job-timeout``), and
  jobs that exhaust their attempts are quarantined — ``--resume`` re-runs
  failed-but-retryable jobs while skipping quarantined ones.
* a CLI, reachable as ``python -m repro experiments``, that compiles the
  figure suites into job lists, runs them and renders the tables from the
  result store.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
import traceback
import warnings
import zlib
from dataclasses import replace
from pathlib import Path
from random import Random
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.faults import SweepAborted
from repro.experiments.jobs import (
    BACKENDS,
    ENGINES,
    JobSpec,
    build_framework,
    build_optimizer,
    job_from_dict,
    job_to_dict,
)
from repro.experiments.settings import (
    DEFAULT_MODELS,
    DEFAULT_SAMPLING_BUDGET,
    DURABILITY_MODES,
    FIG5_OPTIMIZERS,
    ExperimentSettings,
)
from repro.framework.pareto import ParetoResult
from repro.framework.search import SearchInterrupted, SearchResult
from repro.serialization import result_from_dict, result_to_dict

#: Either kind of search outcome: a single best or a Pareto front.
AnyResult = Union[SearchResult, ParetoResult]

#: One completed job: its spec plus the search outcome.
Outcome = Tuple[JobSpec, AnyResult]

#: Job statuses a store record can carry.  Success records predate the
#: field and stay unmarked for backward (and byte-) compatibility, so a
#: missing ``"status"`` key reads as ``"ok"``.  ``failed`` and
#: ``interrupted`` are both resumable (``--resume`` re-runs them);
#: ``interrupted`` additionally promises a mid-search checkpoint exists
#: when the sweep ran with ``--checkpoint-dir``.
JOB_STATUSES = ("ok", "failed", "quarantined", "interrupted")

#: Statuses ``--resume`` re-runs instead of skipping.
RESUMABLE_STATUSES = ("failed", "interrupted")

#: Smoke-sweep shape: one tiny model, three cheap-but-representative
#: optimizers (CMA included so the tables' normalization reference exists),
#: and a budget that finishes in seconds.  Used by ``--smoke`` and CI.
SMOKE_MODELS = ("ncf",)
SMOKE_OPTIMIZERS = ("random", "cma", "digamma")
SMOKE_BUDGET = 40


class JobTimeout(RuntimeError):
    """A job exceeded the runner's per-job wall-clock timeout."""


class SweepInterrupted(RuntimeError):
    """The sweep stopped on SIGINT/SIGTERM after an orderly shutdown.

    Raised by :class:`SweepRunner` once the in-flight job has been wound
    down (checkpoint saved, ``interrupted`` record appended, store write
    completed).  Carries the signal number so the CLI can exit with the
    conventional ``128 + signum`` code.
    """

    def __init__(self, signum: int, job_id: Optional[str] = None):
        self.signum = signum
        self.job_id = job_id
        try:
            name = signal.Signals(signum).name
        except ValueError:
            name = f"signal {signum}"
        detail = f" during job {job_id!r}" if job_id else " between jobs"
        super().__init__(f"received {name}{detail}")

    @property
    def exit_code(self) -> int:
        """Conventional shell exit code for death-by-signal."""
        return 128 + self.signum


class ResultStoreCorruption(UserWarning):
    """Warning category for undecodable lines found in a result store."""


class ResultStore:
    """Append-only JSONL store of completed search results.

    Each line is an independent JSON record ``{"job_id": ..., "spec": ...,
    "result": ...}`` for a success, or ``{"job_id": ..., "spec": ...,
    "status": "failed"|"quarantined", "failure": {...}}`` for a failed
    attempt; later records for the same id win.  Malformed lines (e.g. the
    partial last line of a killed writer) are counted, warned about and
    quarantined into ``<store>.corrupt`` on load, so a store surviving a
    crash is always resumable and never *silently* lossy.

    ``durability`` selects how hard appends push each record toward disk:
    ``"flush"`` (default) performs one unbuffered ``write`` syscall on an
    ``O_APPEND`` descriptor; ``"fsync"`` additionally forces the record to
    stable storage before the append returns.
    """

    def __init__(self, path: Union[str, Path], durability: str = "flush"):
        if durability not in DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {DURABILITY_MODES}, "
                f"got {durability!r}"
            )
        self.path = Path(path)
        self.durability = durability
        #: Undecodable lines encountered by the most recent load.
        self.skipped_lines = 0

    @property
    def corrupt_path(self) -> Path:
        """Side file that quarantined undecodable lines accumulate in."""
        return self.path.with_name(self.path.name + ".corrupt")

    def append(
        self,
        spec: JobSpec,
        result: AnyResult,
        extra: Optional[dict] = None,
    ) -> None:
        """Persist one completed job; flushed immediately.

        ``extra`` merges additional top-level keys into the record (e.g.
        the runner's per-search cache statistics); readers ignore keys they
        do not know, so the store stays backward compatible.
        """
        record = {
            "job_id": spec.job_id,
            "spec": job_to_dict(spec),
            "result": result_to_dict(result),
        }
        if extra:
            record.update(extra)
        self._append_record(record)

    def append_failure(
        self,
        spec: JobSpec,
        failure: dict,
        quarantined: bool = False,
        status: Optional[str] = None,
    ) -> None:
        """Persist one failed attempt as a structured failure record.

        ``failure`` carries the boundary's diagnosis (``error``,
        ``traceback``, ``attempt``, ``elapsed``); ``quarantined`` marks the
        terminal attempt after which ``--resume`` stops retrying the job.
        ``status`` overrides the failed/quarantined choice with another
        non-``ok`` member of :data:`JOB_STATUSES` (``"interrupted"``).
        """
        if status is None:
            status = "quarantined" if quarantined else "failed"
        if status not in JOB_STATUSES or status == "ok":
            raise ValueError(
                f"failure status must be a non-ok member of {JOB_STATUSES}, "
                f"got {status!r}"
            )
        record = {
            "job_id": spec.job_id,
            "spec": job_to_dict(spec),
            "status": status,
            "failure": dict(failure),
        }
        self._append_record(record)

    def _append_record(self, record: dict) -> None:
        """Atomically append one record as a self-contained JSONL line.

        The record is emitted as one ``write`` syscall on an ``O_APPEND``
        descriptor (not through buffered text I/O, which splits multi-KB
        records into several syscalls), so shard processes sharing one
        store file do not interleave each other's lines.  If a previous
        writer died mid-line, the new record first closes the partial line
        with a newline, so one crash can never corrupt two records.  With
        ``durability="fsync"`` the record is forced to stable storage
        before the append returns.
        """
        data = (json.dumps(record, sort_keys=True) + "\n").encode()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # O_RDWR (not O_WRONLY): the partial-line check below preads the
        # current last byte through the same descriptor.
        descriptor = os.open(
            self.path, os.O_RDWR | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            size = os.fstat(descriptor).st_size
            if size > 0 and hasattr(os, "pread"):
                if os.pread(descriptor, 1, size - 1) != b"\n":
                    data = b"\n" + data
            view = memoryview(data)
            while view:  # short writes (ENOSPC mid-write, signals) must not
                view = view[os.write(descriptor, view) :]  # silently truncate
            if self.durability == "fsync":
                os.fsync(descriptor)
        finally:
            os.close(descriptor)

    def _scan(self) -> Tuple[List[Tuple[int, str, dict]], List[Tuple[int, str]]]:
        """Parse the store without side effects.

        Returns ``(good, corrupt)``: well-formed records as ``(line_number,
        raw_line, parsed)`` triples and undecodable lines as
        ``(line_number, raw_line)`` pairs, both in file order.
        """
        if not self.path.exists():
            return [], []
        good: List[Tuple[int, str, dict]] = []
        corrupt: List[Tuple[int, str]] = []
        for number, line in enumerate(self.path.read_text().splitlines(), 1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                good.append((number, line, json.loads(stripped)))
            except json.JSONDecodeError:
                corrupt.append((number, line))
        return good, corrupt

    def records(self) -> List[dict]:
        """All well-formed records, in file order.

        Undecodable lines (the partial last line of a killed writer, disk
        corruption) are never silently dropped: they are counted in
        :attr:`skipped_lines`, quarantined into :attr:`corrupt_path` and
        reported through a :class:`ResultStoreCorruption` warning.
        """
        good, corrupt = self._scan()
        self.skipped_lines = len(corrupt)
        if corrupt:
            quarantined = self._quarantine(corrupt)
            warnings.warn(
                f"{self.path}: skipped {len(corrupt)} undecodable line(s) "
                f"(line {', '.join(str(n) for n, _ in corrupt)}); "
                f"{quarantined} new line(s) quarantined to {self.corrupt_path}"
                " — run repair() (or `repro experiments --repair-store`) to"
                " drop them from the store",
                ResultStoreCorruption,
                stacklevel=2,
            )
        return [record for _, _, record in good]

    def _quarantine(self, corrupt: List[Tuple[int, str]]) -> int:
        """Copy undecodable lines into the ``.corrupt`` side file (deduped).

        Returns how many lines were newly quarantined; lines already in the
        side file (repeated loads of the same damaged store) are not
        duplicated.
        """
        known = set()
        if self.corrupt_path.exists():
            known = set(self.corrupt_path.read_text().splitlines())
        fresh = [line for _, line in corrupt if line not in known]
        if fresh:
            with self.corrupt_path.open("a") as handle:
                handle.write("".join(line + "\n" for line in fresh))
        return len(fresh)

    def verify(self) -> dict:
        """Integrity report of the store; read-only.

        ``ok`` is True when every line decodes.  ``jobs`` counts each job
        id once by its *latest* record's status, which is what resume
        semantics key off.
        """
        good, corrupt = self._scan()
        latest: Dict[str, str] = {}
        failure_records = 0
        for _, _, record in good:
            status = record.get("status", "ok")
            if status != "ok":
                failure_records += 1
            latest[record.get("job_id", "<missing id>")] = status
        jobs = {status: 0 for status in JOB_STATUSES}
        for status in latest.values():
            jobs[status] = jobs.get(status, 0) + 1
        return {
            "path": str(self.path),
            "records": len(good),
            "failure_records": failure_records,
            "jobs": jobs,
            "corrupt_lines": len(corrupt),
            "corrupt_line_numbers": [number for number, _ in corrupt],
            "ok": not corrupt,
        }

    def repair(self) -> dict:
        """Drop undecodable lines from the store, quarantining them first.

        Well-formed lines are preserved byte-for-byte; the cleaned store is
        written to a temporary file, fsynced and atomically renamed over
        the original, so a crash mid-repair leaves either the old or the
        new store — never a half-written one.  Returns a report with the
        number of ``removed_lines``.
        """
        good, corrupt = self._scan()
        if corrupt:
            self._quarantine(corrupt)
            replacement = self.path.with_name(self.path.name + ".repair")
            data = "".join(line + "\n" for _, line, _ in good).encode()
            descriptor = os.open(
                replacement, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
            )
            try:
                view = memoryview(data)
                while view:
                    view = view[os.write(descriptor, view) :]
                os.fsync(descriptor)
            finally:
                os.close(descriptor)
            os.replace(replacement, self.path)
        return {
            "path": str(self.path),
            "records": len(good),
            "removed_lines": len(corrupt),
            "quarantine": str(self.corrupt_path) if corrupt else None,
        }

    def statuses(self, only: Optional[set] = None) -> Dict[str, str]:
        """Latest status per job id (a member of :data:`JOB_STATUSES`);
        later records win, success records (which carry no status field)
        read as ``"ok"``."""
        table: Dict[str, str] = {}
        for record in self.records():
            job_id = record.get("job_id")
            if only is not None and job_id not in only:
                continue
            table[job_id] = record.get("status", "ok")
        return table

    def completed_ids(self) -> set:
        """Ids of every job whose latest record is a successful result."""
        return {
            job_id
            for job_id, status in self.statuses().items()
            if status == "ok"
        }

    def load_results(self, only: Optional[set] = None) -> Dict[str, AnyResult]:
        """Deserialize stored results, keyed by job id.

        Records round-trip as whatever they were stored as (Pareto fronts
        come back as :class:`ParetoResult`); failure records carry no
        result and are skipped.  ``only`` restricts deserialization to the
        given ids — rebuilding a result (designs, per-layer reports,
        genomes) is the expensive part, so a shard resuming against a
        large shared store should not pay it for every other shard's
        records.
        """
        return {
            record["job_id"]: result_from_dict(record["result"])
            for record in self.records()
            if "result" in record
            and (only is None or record["job_id"] in only)
        }

    def load_jobs(self) -> Dict[str, JobSpec]:
        """Deserialize every stored job spec, keyed by job id."""
        return {
            record["job_id"]: job_from_dict(record["spec"])
            for record in self.records()
        }


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``--shard i/N`` argument into a 1-based (index, count) pair."""
    head, separator, tail = text.partition("/")
    if not separator:
        raise ValueError(
            f"shard must look like 'i/N' (shard i of N, e.g. '2/8'); "
            f"got {text!r}, which has no '/'"
        )
    try:
        index, count = int(head), int(tail)
    except ValueError as error:
        raise ValueError(
            f"shard must look like 'i/N' with integer i and N (e.g. '2/8'); "
            f"got {text!r}"
        ) from error
    if count < 1:
        raise ValueError(
            f"shard count N must be >= 1; got N={count} in {text!r}"
        )
    if not 1 <= index <= count:
        raise ValueError(
            f"shard index i is 1-based and must satisfy 1 <= i <= N; "
            f"got i={index} with N={count} in {text!r}"
        )
    return index, count


def select_shard(jobs: Sequence[JobSpec], index: int, count: int) -> List[JobSpec]:
    """Shard ``index`` of ``count`` (1-based): every ``count``-th job."""
    return list(jobs[index - 1 :: count])


def pin_settings_backend(
    jobs: Sequence[JobSpec], settings: ExperimentSettings
) -> List[JobSpec]:
    """Pin a non-default sweep backend onto every spec that inherits it.

    An explicit backend always lands in ``job_id``: runs under different
    backends are different experiments and must never collide in (or
    resume from) each other's store records.  Table rendering compiles
    suite specs independently of the runner, so both sides pin through
    this one helper to agree on ids.
    """
    if settings.backend == "analytic":
        return list(jobs)
    return [
        spec
        if spec.backend is not None
        else replace(spec, backend=settings.backend)
        for spec in jobs
    ]


class SweepRunner:
    """Execute a job list through shared framework/worker-pool lifecycles.

    Every job runs inside an error boundary: an exception (or watchdog
    timeout) becomes a structured failure record in the store and the sweep
    moves on.  Failed jobs retry up to ``settings.retries`` extra times
    with exponential backoff and deterministic jitter; a job that exhausts
    its attempts is quarantined.  ``resume`` re-runs jobs whose latest
    stored record is a retryable failure and skips quarantined ones.

    Parameters
    ----------
    jobs:
        The full sweep, in a deterministic order (sharding depends on it).
    settings:
        Evaluation-engine knobs shared by every job (cache, workers,
        bytes-per-element) plus the reliability knobs (``retries``,
        ``retry_backoff``, ``job_timeout``, ``durability``,
        ``fault_plan``).  ``models`` / ``sampling_budget`` / ``seed`` on
        the settings are ignored here — those live on the specs.
    store:
        Optional :class:`ResultStore` (or path); every completed search and
        every failed attempt is appended immediately.
    resume:
        Skip jobs whose ids already have a stored success (returning the
        stored result) or a quarantine marker; retryable failures re-run.
    shard:
        Optional 1-based ``(index, count)`` pair; only that slice of the
        job list is executed.
    progress:
        Optional callable receiving one human-readable line per job.
    """

    def __init__(
        self,
        jobs: Sequence[JobSpec],
        settings: Optional[ExperimentSettings] = None,
        store: Union[ResultStore, str, Path, None] = None,
        resume: bool = False,
        shard: Optional[Tuple[int, int]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ):
        self.settings = settings if settings is not None else ExperimentSettings()
        self.jobs = pin_settings_backend(jobs, self.settings)
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store, durability=self.settings.durability)
        self.store = store
        self.resume = resume
        if shard is not None:
            index, count = shard
            if count < 1 or not 1 <= index <= count:
                raise ValueError(f"invalid shard {shard!r}")
        self.shard = shard
        self.progress = progress
        #: Signal number of a pending graceful-shutdown request, set by the
        #: SIGINT/SIGTERM handler and polled at generation and job
        #: boundaries.  Handlers only set this flag — all actual shutdown
        #: work (checkpoint, store record, exit code) happens at the next
        #: boundary, so no store append is ever torn by a signal.
        self._interrupt: Optional[int] = None
        self._previous_handlers: Dict[int, object] = {}

    @property
    def shard_jobs(self) -> List[JobSpec]:
        """The slice of the sweep this runner executes."""
        if self.shard is None:
            return list(self.jobs)
        return select_shard(self.jobs, *self.shard)

    def run(self) -> List[Outcome]:
        """Execute (or reload) every job of this runner's shard, in order.

        Jobs are deduplicated by ``job_id``: an id encodes everything that
        affects the search outcome (the ``scheme`` label does not), so
        specs sharing an id — e.g. the same DiGamma search appearing in two
        suites under different labels — are executed once and the result is
        returned for each of them.  Failed and quarantined jobs contribute
        no outcome; their records live in the store.

        SIGINT/SIGTERM are handled gracefully for the duration of the run:
        the in-flight search checkpoints and stops at its next generation
        boundary, an ``interrupted`` record is appended, and
        :class:`SweepInterrupted` propagates so the CLI exits ``128 +
        signum`` with a resume hint.  A second signal aborts immediately.
        """
        self._install_signal_handlers()
        try:
            return self._run_jobs()
        finally:
            self._restore_signal_handlers()

    def _run_jobs(self) -> List[Outcome]:
        jobs = self.shard_jobs
        completed: Dict[str, AnyResult] = {}
        quarantined: set = set()
        if self.resume and self.store is not None:
            stored = self.store.statuses(only={spec.job_id for spec in jobs})
            quarantined = {
                job_id
                for job_id, status in stored.items()
                if status == "quarantined"
            }
            completed = self.store.load_results(
                only={
                    job_id
                    for job_id, status in stored.items()
                    if status == "ok"
                }
            )
        # Frameworks are shared across jobs and closed as soon as the last
        # job needing them has run, bounding memory on large sweeps.  Warm
        # layer-report caches are shared one level wider — across
        # objectives with the same model x platform x constraint x engine —
        # because per-layer costs are objective-independent, so a later job
        # starts with every layer the earlier jobs already priced.
        last_use: Dict[tuple, int] = {}
        cache_last_use: Dict[tuple, int] = {}
        for position, spec in enumerate(jobs):
            last_use[spec.framework_key] = position
            cache_last_use[spec.evaluator_cache_key] = position

        outcomes: List[Outcome] = []
        frameworks: Dict[tuple, object] = {}
        shared_caches: Dict[tuple, object] = {}
        try:
            for position, spec in enumerate(jobs):
                if self._interrupt is not None:
                    # The signal arrived between jobs (or between a job's
                    # store write and here): nothing is in flight, so stop
                    # before starting the next search.
                    raise SweepInterrupted(self._interrupt)
                prefix = f"[{position + 1}/{len(jobs)}]"
                known = completed.get(spec.job_id)
                if known is not None:
                    outcomes.append((spec, known))
                    self._say(f"{prefix} skip (stored): {spec.job_id}")
                elif spec.job_id in quarantined:
                    self._say(f"{prefix} skip (quarantined): {spec.job_id}")
                else:
                    search = self._run_job(
                        spec, position, prefix, frameworks, shared_caches
                    )
                    if search is not None:
                        completed[spec.job_id] = search
                        outcomes.append((spec, search))
                    else:
                        quarantined.add(spec.job_id)
                if last_use[spec.framework_key] == position:
                    framework = frameworks.pop(spec.framework_key, None)
                    if framework is not None:
                        framework.close()
                if cache_last_use[spec.evaluator_cache_key] == position:
                    shared_caches.pop(spec.evaluator_cache_key, None)
        finally:
            # Close every shared pool even when a framework's own close
            # raises (e.g. a pool broken by a killed worker) — the
            # exception path must not leak the other frameworks' pools.
            for framework in frameworks.values():
                try:
                    framework.close()
                except Exception:
                    pass
        return outcomes

    # -- the per-job error boundary ----------------------------------------

    def _run_job(
        self,
        spec: JobSpec,
        position: int,
        prefix: str,
        frameworks: Dict[tuple, object],
        shared_caches: Dict[tuple, object],
    ) -> Optional[AnyResult]:
        """Run one job with retries; None means the job was quarantined.

        Each attempt runs inside a try boundary: the failure is recorded to
        the store (with error, traceback, attempt number and elapsed time),
        the job's framework is discarded (a timed-out search may still be
        running on its watchdog thread; a crashed one may hold a broken
        pool), and the next attempt starts from a fresh framework after an
        exponentially backed-off, deterministically jittered pause.
        :class:`SweepAborted` (the fault harness's simulated hard crash)
        is never caught — it stops the sweep like a real crash would.
        """
        attempts = self.settings.retries + 1
        for attempt in range(1, attempts + 1):
            start = time.perf_counter()
            try:
                framework = self._framework_for(spec, frameworks, shared_caches)
                search, extra, cache_line = self._supervised_search(
                    spec, framework, position, attempt
                )
            except SweepAborted:
                raise
            except SearchInterrupted as stop:
                # Graceful shutdown: the search already checkpointed and
                # unwound at a generation boundary.  Record the job as
                # interrupted (resumable) and stop the sweep.
                elapsed = time.perf_counter() - start
                failure = {
                    "job_id": spec.job_id,
                    "error": f"{type(stop).__name__}: {stop}",
                    "attempt": attempt,
                    "elapsed": round(elapsed, 6),
                }
                if self.store is not None:
                    self.store.append_failure(
                        spec, failure, status="interrupted"
                    )
                self._say(
                    f"{prefix} INTERRUPTED: {spec.job_id} ({stop}); "
                    "re-run with --resume to continue"
                )
                signum = (
                    self._interrupt
                    if self._interrupt is not None
                    else signal.SIGINT
                )
                raise SweepInterrupted(signum, spec.job_id) from stop
            except Exception as error:
                elapsed = time.perf_counter() - start
                terminal = attempt == attempts
                failure = {
                    "job_id": spec.job_id,
                    "error": f"{type(error).__name__}: {error}",
                    "traceback": traceback.format_exc(),
                    "attempt": attempt,
                    "elapsed": round(elapsed, 6),
                }
                if self.store is not None:
                    self.store.append_failure(
                        spec, failure, quarantined=terminal
                    )
                self._discard_framework(spec, frameworks)
                if terminal:
                    self._say(
                        f"{prefix} QUARANTINED after {attempt} attempt(s): "
                        f"{spec.job_id} ({failure['error']})"
                    )
                    return None
                self._say(
                    f"{prefix} attempt {attempt}/{attempts} failed: "
                    f"{spec.job_id} ({failure['error']}); retrying"
                )
                self._backoff(spec, attempt)
                continue
            if self.store is not None:
                self.store.append(spec, search, extra=extra)
                plan = self.settings.fault_plan
                if plan is not None:
                    plan.after_append(
                        self.store.path, spec.job_id, position, attempt
                    )
            self._say(f"{prefix} {spec.job_id}: {search.summary()} {cache_line}")
            return search
        return None  # pragma: no cover — the loop always returns

    def _supervised_search(
        self,
        spec: JobSpec,
        framework,
        position: int,
        attempt: int,
    ) -> Tuple[AnyResult, dict, str]:
        """Run one attempt's search under the watchdog, with fault hooks.

        Returns the search result, the ``extra`` dict destined for the
        store record, and a pre-rendered cache-statistics tail for the
        progress line (which must never leak into the record).
        """
        evaluator = framework.evaluator
        design_before = evaluator.design_cache_stats
        layer_before = evaluator.layer_cache_stats
        delta_before = dict(evaluator.cost_model.vector_stats)
        plan = self.settings.fault_plan

        def execute() -> AnyResult:
            if plan is not None:
                plan.on_job_start(spec.job_id, position, attempt)
            run_search = (
                framework.pareto_search
                if spec.is_multi_objective
                else framework.search
            )
            kwargs: dict = {
                "sampling_budget": spec.sampling_budget,
                "seed": spec.seed,
                "run_label": spec.job_id,
                "interrupt_check": self._interrupt_requested,
            }
            if self.settings.checkpoint_dir is not None:
                # Keyed by job_id: everything that affects the search is in
                # the id, so a retry/resumed run (and nothing else) finds
                # this search's checkpoint.
                kwargs.update(
                    checkpoint_dir=self.settings.checkpoint_dir,
                    checkpoint_every=self.settings.checkpoint_every,
                    checkpoint_key=spec.job_id,
                )
            return run_search(build_optimizer(spec), **kwargs)

        search = self._with_timeout(execute, spec)
        design_stats = evaluator.design_cache_stats.since(design_before)
        layer_stats = evaluator.layer_cache_stats.since(layer_before)
        delta_stats = {
            key: value - delta_before.get(key, 0)
            for key, value in evaluator.cost_model.vector_stats.items()
        }
        extra = {"cache": _cache_record(design_stats, layer_stats, delta_stats)}
        cache_line = (
            f"[design cache {design_stats.hit_rate:.0%} of "
            f"{design_stats.requests}, layer cache "
            f"{layer_stats.hit_rate:.0%} of {layer_stats.requests}]"
        )
        return search, extra, cache_line

    def _with_timeout(self, execute: Callable[[], AnyResult], spec: JobSpec):
        """Enforce ``settings.job_timeout`` with a watchdog thread.

        The attempt runs on a daemon thread; if it outlives the deadline
        the main thread raises :class:`JobTimeout` and abandons it (the
        caller discards the job's framework, so the zombie thread keeps no
        shared state alive).  Without a timeout the attempt runs inline.
        """
        timeout = self.settings.job_timeout
        if timeout is None:
            return execute()
        box: dict = {}

        def target() -> None:
            try:
                box["result"] = execute()
            except BaseException as error:  # noqa: BLE001 — relayed below
                box["error"] = error

        thread = threading.Thread(
            target=target, daemon=True, name=f"job:{spec.job_id}"
        )
        thread.start()
        thread.join(timeout)
        if thread.is_alive():
            raise JobTimeout(
                f"job exceeded --job-timeout={timeout}s wall clock"
            )
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _framework_for(
        self,
        spec: JobSpec,
        frameworks: Dict[tuple, object],
        shared_caches: Dict[tuple, object],
    ):
        """Fetch (or build) the shared framework for a spec."""
        framework = frameworks.get(spec.framework_key)
        if framework is None:
            framework = build_framework(spec, self.settings)
            frameworks[spec.framework_key] = framework
            self._share_layer_cache(spec, framework, shared_caches)
            if self.settings.fault_plan is not None:
                framework.evaluator.fault_plan = self.settings.fault_plan
        return framework

    def _discard_framework(
        self, spec: JobSpec, frameworks: Dict[tuple, object]
    ) -> None:
        """Drop a failed job's framework so the retry starts fresh.

        A timed-out attempt may still be executing on its watchdog thread
        and a crashed one may hold a broken worker pool, so the framework
        is shut down without waiting and never reused.  Its checkpoint
        sessions are closed first: the abandoned thread must not overwrite
        the checkpoint the retry is about to resume from.  (The close race
        is benign — at most one already-in-flight save can land, and any
        generation-boundary checkpoint of the same search resumes to the
        same bit-identical end state.)
        """
        framework = frameworks.pop(spec.framework_key, None)
        if framework is None:
            return
        for session in getattr(framework, "checkpoint_sessions", ()):
            try:
                session.close()
            except Exception:
                pass
        try:
            framework.evaluator.shutdown(wait=False)
        except Exception:
            pass

    def _backoff(self, spec: JobSpec, attempt: int) -> None:
        """Sleep before the next attempt: exponential base, jittered.

        The jitter factor (1.0–2.0x) is deterministic per (job, attempt) so
        chaos tests reproduce exactly, while concurrent shards retrying the
        same store still spread out.
        """
        base = self.settings.retry_backoff * (2 ** (attempt - 1))
        if base <= 0:
            return
        seed = zlib.crc32(spec.job_id.encode()) + attempt
        time.sleep(base * (1.0 + Random(seed).random()))

    def _share_layer_cache(
        self, spec: JobSpec, framework, shared_caches: Dict[tuple, object]
    ) -> None:
        """Hand a freshly built framework the warm cache of its cache key."""
        if not self.settings.use_cache:
            return
        engine = spec.engine if spec.engine is not None else self.settings.engine
        if engine == "reference":
            return  # the reference path never consults the cache
        key = spec.evaluator_cache_key
        cache = shared_caches.get(key)
        if cache is None:
            shared_caches[key] = framework.evaluator.cost_model.layer_cache
        else:
            framework.evaluator.cost_model.adopt_cache(cache)

    # -- graceful shutdown ---------------------------------------------------

    def _interrupt_requested(self) -> bool:
        """Interrupt poll handed to every search (generation boundaries)."""
        return self._interrupt is not None

    def _handle_signal(self, signum: int, frame) -> None:
        """SIGINT/SIGTERM handler: request a graceful stop, escalate on repeat.

        Only sets the flag — the actual shutdown (checkpoint save, store
        record) runs at the next generation/job boundary in normal code,
        never inside the handler.  A second signal means the operator is
        done waiting: escalate to KeyboardInterrupt immediately.
        """
        if self._interrupt is not None:
            raise KeyboardInterrupt
        self._interrupt = signum
        self._say(
            "interrupt requested; finishing at the next generation "
            "boundary (signal again to abort immediately)"
        )

    def _install_signal_handlers(self) -> None:
        """Install graceful handlers; a no-op off the main thread.

        ``signal.signal`` only works in the main thread (and can fail in
        exotic embeddings), so runners driven from worker threads simply
        keep the process's existing behavior.
        """
        self._previous_handlers = {}
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous = signal.signal(signum, self._handle_signal)
            except (ValueError, OSError):
                continue
            self._previous_handlers[signum] = previous

    def _restore_signal_handlers(self) -> None:
        for signum, handler in self._previous_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
        self._previous_handlers = {}

    def _say(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)


def _cache_record(
    design: "CacheStats", layer: "CacheStats", delta: dict
) -> dict:
    """JSON-ready per-search cache statistics for the result store.

    The ``delta`` and ``vector`` sections only appear for searches that
    actually ran through the delta-filtered gene-matrix path / the vector
    engine; jobs on the scalar engines (or with ``--no-delta``) keep
    their records free of all-zero noise.  ``vector`` splits the scalar
    fallbacks by reason, so a sweep record shows at a glance *why* rows
    left the vector path (``fallback_depth`` in particular is a
    regression detector: the depth-generalized engine prices every
    hierarchy depth, so it must stay 0).
    """
    record = {
        "design": {
            "hits": design.hits,
            "misses": design.misses,
            "hit_rate": round(design.hit_rate, 4),
        },
        "layer": {
            "hits": layer.hits,
            "misses": layer.misses,
            "hit_rate": round(layer.hit_rate, 4),
        },
    }
    l2_hits = delta.get("l2_hits", 0)
    l2_misses = delta.get("l2_misses", 0)
    l2_writes = delta.get("l2_writes", 0)
    if l2_hits or l2_misses or l2_writes:
        l2_requests = l2_hits + l2_misses
        record["l2"] = {
            "hits": l2_hits,
            "misses": l2_misses,
            "writes": l2_writes,
            "hit_rate": round(l2_hits / l2_requests, 4) if l2_requests else 0.0,
        }
    member_requests = delta.get("delta_member_requests", 0)
    row_requests = delta.get("delta_row_requests", 0)
    if member_requests or row_requests:
        record["delta"] = {
            "members_reused": delta.get("delta_members_reused", 0),
            "member_requests": member_requests,
            "member_reuse_rate": round(
                delta.get("delta_members_reused", 0) / member_requests, 4
            )
            if member_requests
            else 0.0,
            "rows_reused": delta.get("delta_rows_reused", 0),
            "row_requests": row_requests,
            "row_reuse_rate": round(
                delta.get("delta_rows_reused", 0) / row_requests, 4
            )
            if row_requests
            else 0.0,
            "generations": delta.get("delta_generations", 0),
        }
    rows_vectorized = delta.get("rows_vectorized", 0)
    rows_fallback = delta.get("rows_fallback", 0)
    if rows_vectorized or rows_fallback:
        record["vector"] = {
            "rows_vectorized": rows_vectorized,
            "rows_fallback": rows_fallback,
            "fallback_depth": delta.get("fallback_depth", 0),
            "fallback_statics_overflow": delta.get(
                "fallback_statics_overflow", 0
            ),
            "fallback_intermediate_overflow": delta.get(
                "fallback_intermediate_overflow", 0
            ),
            "fallback_small_batch": delta.get("fallback_small_batch", 0),
            "fallback_gene_overflow": delta.get("fallback_gene_overflow", 0),
        }
    return record


def full_outcomes(
    jobs: Sequence[JobSpec],
    outcomes: Sequence[Outcome],
    store: Optional[ResultStore] = None,
    stored_results: Optional[Dict[str, AnyResult]] = None,
) -> Optional[List[Outcome]]:
    """Outcomes for the *whole* sweep, merging this run with the store.

    Returns ``None`` while some jobs have no result yet (e.g. other shards
    still running, or jobs failed/quarantined) — callers should then skip
    table rendering.  Pass ``stored_results`` (a preloaded
    ``store.load_results()`` dict) when rendering several suites from one
    store, to avoid re-reading and re-deserializing the whole file per
    suite.
    """
    have: Dict[str, AnyResult] = {}
    if stored_results is not None:
        have.update(stored_results)
    elif store is not None:
        have.update(store.load_results())
    have.update({spec.job_id: result for spec, result in outcomes})
    if any(spec.job_id not in have for spec in jobs):
        return None
    return [(spec, have[spec.job_id]) for spec in jobs]


# -- shared CLI plumbing -------------------------------------------------------


def add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Args shared by the figure harness CLIs and ``repro experiments``."""
    parser.add_argument(
        "--budget",
        type=int,
        default=DEFAULT_SAMPLING_BUDGET,
        help="sampling budget per search (paper uses 40000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--store",
        default=None,
        help="JSONL result store; completed searches stream into it",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip jobs already stored as success or quarantined; re-run "
        "jobs whose latest record is a retryable failure",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width for batched population evaluation",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="vector",
        help="evaluation engine: 'vector' (NumPy population batching, "
        "default), 'fast' (scalar tuple engine) or 'reference' (seed "
        "implementation); all three are bit-identical",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="analytic",
        help="cost backend: 'analytic' (the paper's MAESTRO-style "
        "order-aware model, default) or 'zigzag' (independently coded "
        "memory-centric model); unlike --engine, backends compute "
        "different costs and join every job id",
    )
    parser.add_argument(
        "--no-delta",
        action="store_true",
        help="disable cross-generation delta evaluation on the gene-matrix "
        "path (results are bit-identical either way)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent cross-run layer-cache directory shared by every "
        "job and worker; rows are bit-identical to engine pricing, so "
        "warm reruns only get faster (see repro.cost.persist)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per failed job before it is quarantined "
        "(default: 0, no retry)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="base pause between attempts; attempt k waits "
        "backoff * 2**(k-1), jittered (default: 0.1)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock timeout enforced by a watchdog; a "
        "timed-out job counts as a failed attempt (default: none)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="mid-search checkpoint directory: searches save their full "
        "loop state at generation boundaries and a killed/timed-out/"
        "interrupted job resumes bit-identically from its last checkpoint "
        "instead of restarting (see repro.framework.checkpoint)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint cadence in generation boundaries (default: 1; "
        "interruptions always checkpoint regardless)",
    )
    parser.add_argument(
        "--durability",
        choices=DURABILITY_MODES,
        default="flush",
        help="result-store append durability: 'flush' = one flushed write "
        "syscall per record (default), 'fsync' = force each record to "
        "stable storage",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON",
        help="chaos testing: JSON list of fault specs to inject, e.g. "
        '\'[{"kind": "raise", "job": 1}, {"kind": "kill-worker"}]\' '
        "(see repro.experiments.faults)",
    )


def validate_sweep_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Reject argument combinations that would silently do the wrong thing."""
    if args.resume and not args.store:
        parser.error("--resume requires --store (there is nothing to resume from)")


def settings_from_args(
    args: argparse.Namespace, models: Optional[Sequence[str]] = None
) -> ExperimentSettings:
    """Build :class:`ExperimentSettings` from parsed sweep arguments."""
    from repro.experiments.faults import parse_fault_plan

    return ExperimentSettings(
        models=tuple(models) if models is not None else DEFAULT_MODELS,
        sampling_budget=args.budget,
        seed=args.seed,
        workers=args.workers,
        engine=getattr(args, "engine", "vector"),
        backend=getattr(args, "backend", "analytic"),
        use_delta=not getattr(args, "no_delta", False),
        cache_dir=getattr(args, "cache_dir", None),
        retries=getattr(args, "retries", 0),
        retry_backoff=getattr(args, "retry_backoff", 0.1),
        job_timeout=getattr(args, "job_timeout", None),
        durability=getattr(args, "durability", "flush"),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        checkpoint_every=getattr(args, "checkpoint_every", 1),
        fault_plan=parse_fault_plan(getattr(args, "fault_plan", None)),
    )


# -- the ``repro experiments`` CLI ---------------------------------------------


def _compile_suites(args: argparse.Namespace) -> List[Tuple[str, List[JobSpec], Callable[[List[Outcome]], str]]]:
    """Compile the requested suites into (label, jobs, renderer) entries."""
    from repro.experiments import ablations as ablations_module
    from repro.experiments import fig5 as fig5_module
    from repro.experiments import fig6 as fig6_module
    from repro.experiments import fig7 as fig7_module
    from repro.experiments import pareto as pareto_module

    settings = settings_from_args(args, models=args.models)
    platforms = ("edge", "cloud") if args.platform == "both" else (args.platform,)
    suites = (
        ("fig5", "fig6", "fig7", "ablations", "pareto")
        if args.suite == "all"
        else (args.suite,)
    )
    optimizers = tuple(args.optimizers)

    entries: List[Tuple[str, List[JobSpec], Callable[[List[Outcome]], str]]] = []
    for platform in platforms:
        if "fig5" in suites:
            jobs = fig5_module.compile_fig5_jobs(platform, settings, optimizers)
            entries.append(
                (
                    f"fig5/{platform}",
                    jobs,
                    lambda outcomes, platform=platform, optimizers=optimizers: (
                        fig5_module.fig5_result_from_outcomes(
                            platform, optimizers, outcomes
                        ).report()
                    ),
                )
            )
        if "fig6" in suites:
            jobs = fig6_module.compile_fig6_jobs(platform, settings)
            entries.append(
                (
                    f"fig6/{platform}",
                    jobs,
                    lambda outcomes, platform=platform: (
                        fig6_module.fig6_result_from_outcomes(platform, outcomes).report()
                    ),
                )
            )
        if "fig7" in suites:
            jobs = fig7_module.compile_fig7_jobs(args.model, platform, settings)
            entries.append(
                (
                    f"fig7/{platform}",
                    jobs,
                    lambda outcomes, platform=platform: (
                        fig7_module.fig7_result_from_outcomes(
                            args.model, platform, outcomes
                        ).report()
                    ),
                )
            )
        if "pareto" in suites:
            pareto_jobs = pareto_module.compile_pareto_jobs(
                platform, settings, models=args.models
            )
            entries.append(
                (
                    f"pareto/{platform}",
                    pareto_jobs,
                    lambda outcomes, platform=platform: (
                        pareto_module.pareto_result_from_outcomes(
                            platform, outcomes
                        ).report()
                    ),
                )
            )
        if "ablations" in suites:
            operator_jobs = ablations_module.compile_operator_ablation_jobs(
                platform, settings, models=args.models or ablations_module.ABLATION_MODELS
            )
            entries.append(
                (
                    f"ablations-operators/{platform}",
                    operator_jobs,
                    lambda outcomes, platform=platform: (
                        ablations_module.ablation_result_from_outcomes(
                            platform, outcomes
                        ).report("Ablation A1 - DiGamma operators (latency, cycles)")
                    ),
                )
            )
            buffer_jobs = ablations_module.compile_buffer_allocation_jobs(
                platform, settings, models=args.models or ("resnet18",)
            )
            entries.append(
                (
                    f"ablations-buffers/{platform}",
                    buffer_jobs,
                    lambda outcomes, platform=platform: (
                        ablations_module.ablation_result_from_outcomes(
                            platform, outcomes, metric="latency_area_product"
                        ).report(
                            "Ablation A2 - buffer allocation strategy "
                            "(latency-area product)"
                        )
                    ),
                )
            )
    return entries


def build_parser() -> argparse.ArgumentParser:
    """The ``repro experiments`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro experiments",
        description="Unified experiment runner: compile figure suites (or a "
        "custom grid) into jobs, execute them through one shared engine, "
        "stream results to a JSONL store, resume and shard at will.",
    )
    parser.add_argument(
        "--suite",
        choices=("fig5", "fig6", "fig7", "ablations", "pareto", "all"),
        default="fig5",
        help="which experiment suite to compile (default: fig5)",
    )
    parser.add_argument(
        "--platform",
        choices=("edge", "cloud", "both"),
        default="edge",
        help="platform resources to evaluate (default: edge)",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=None,
        help="models to evaluate (default: the suite's own model set)",
    )
    parser.add_argument(
        "--optimizers",
        nargs="+",
        default=list(FIG5_OPTIMIZERS),
        help="optimizers for the fig5 grid (default: the paper's nine)",
    )
    parser.add_argument(
        "--model",
        default="mnasnet",
        help="model inspected by the fig7 suite (default: mnasnet)",
    )
    add_sweep_arguments(parser)
    parser.add_argument(
        "--shard",
        default=None,
        help="run only shard i/N of the job list (requires --store to merge)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sweep (ncf; random, cma, digamma; budget 40) for CI smoke tests",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )
    parser.add_argument(
        "--verify-store",
        default=None,
        metavar="PATH",
        help="integrity-check a JSONL result store (decodable lines, "
        "per-status job counts) instead of running a sweep; exits 1 on "
        "corruption",
    )
    parser.add_argument(
        "--repair-store",
        default=None,
        metavar="PATH",
        help="quarantine a store's undecodable lines into <store>.corrupt "
        "and atomically rewrite it clean, instead of running a sweep",
    )
    parser.add_argument(
        "--status",
        default=None,
        metavar="PATH",
        help="report a store's fleet health (per-status job counts and "
        "resumable job ids) instead of running a sweep",
    )
    return parser


def _print_store_report(report: dict) -> None:
    """Render one verify()/repair() report for the CLI."""
    jobs = report.get("jobs")
    if jobs is not None:
        print(
            f"{report['path']}: {report['records']} record(s), "
            f"{jobs['ok']} job(s) ok, {jobs['failed']} failed, "
            f"{jobs['quarantined']} quarantined, "
            f"{jobs.get('interrupted', 0)} interrupted, "
            f"{report['corrupt_lines']} corrupt line(s)"
            + (
                f" at line {', '.join(str(n) for n in report['corrupt_line_numbers'])}"
                if report["corrupt_lines"]
                else ""
            )
        )
    else:
        print(
            f"{report['path']}: {report['records']} record(s) kept, "
            f"{report['removed_lines']} corrupt line(s) removed"
            + (
                f" (quarantined to {report['quarantine']})"
                if report["quarantine"]
                else ""
            )
        )


def _print_status_report(store: ResultStore) -> None:
    """Render a store's fleet health: per-status counts + resumable ids."""
    statuses = store.statuses()
    counts = {status: 0 for status in JOB_STATUSES}
    for status in statuses.values():
        counts[status] = counts.get(status, 0) + 1
    print(
        f"{store.path}: {len(statuses)} job(s): "
        + ", ".join(f"{counts[status]} {status}" for status in JOB_STATUSES)
    )
    resumable = sorted(
        job_id
        for job_id, status in statuses.items()
        if status in RESUMABLE_STATUSES
    )
    if resumable:
        print(f"{len(resumable)} resumable job(s) (re-run with --resume):")
        for job_id in resumable:
            print(f"  {job_id}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro experiments``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verify_store or args.repair_store or args.status:
        status = 0
        if args.repair_store:
            _print_store_report(ResultStore(args.repair_store).repair())
        if args.verify_store:
            report = ResultStore(args.verify_store).verify()
            _print_store_report(report)
            status = 0 if report["ok"] else 1
        if args.status:
            _print_status_report(ResultStore(args.status))
        return status
    if args.smoke:
        args.models = list(SMOKE_MODELS)
        args.optimizers = list(SMOKE_OPTIMIZERS)
        args.budget = min(args.budget, SMOKE_BUDGET)

    entries = _compile_suites(args)
    # Dedupe by job_id across suites BEFORE sharding: an id encodes the
    # search outcome, so overlapping suites (e.g. DiGamma in fig5, fig6 and
    # the ablations) contribute one job, and positional sharding never hands
    # the same search to two shards.  full_outcomes re-fans results out to
    # every suite's specs by id when rendering.
    jobs: List[JobSpec] = []
    seen_ids: set = set()
    for _, suite_jobs, _ in entries:
        for spec in suite_jobs:
            if spec.job_id not in seen_ids:
                seen_ids.add(spec.job_id)
                jobs.append(spec)
    shard = None
    if args.shard:
        try:
            shard = parse_shard(args.shard)
        except ValueError as error:
            parser.error(str(error))
    validate_sweep_args(parser, args)
    settings = settings_from_args(args, models=args.models)
    if settings.backend != "analytic":
        # Rendering matches outcomes to suite specs by job_id, and the
        # runner pins the sweep backend into ids — pin the suite copies
        # identically or every lookup misses.
        entries = [
            (label, pin_settings_backend(suite_jobs, settings), render)
            for label, suite_jobs, render in entries
        ]
        jobs = pin_settings_backend(jobs, settings)
    store = (
        ResultStore(args.store, durability=settings.durability)
        if args.store
        else None
    )
    if shard is not None and store is None:
        parser.error("--shard requires --store (shards merge through the store)")

    progress = None if args.quiet else lambda line: print(line, file=sys.stderr)
    runner = SweepRunner(
        jobs,
        settings=settings,
        store=store,
        resume=args.resume,
        shard=shard,
        progress=progress,
    )
    try:
        outcomes = runner.run()
    except SweepAborted as crash:
        print(f"sweep aborted: {crash}", file=sys.stderr)
        return 1
    except SweepInterrupted as stop:
        hint = "re-run with --resume to continue"
        if settings.checkpoint_dir is not None:
            hint += " from the last mid-search checkpoint"
        print(f"sweep interrupted: {stop}; {hint}", file=sys.stderr)
        return stop.exit_code

    rendered_any = False
    # Other processes' results only matter when sharded; a whole-sweep run
    # already holds every outcome it compiled, so skip re-reading the store.
    stored_results = (
        store.load_results() if (store is not None and shard is not None) else {}
    )
    for label, suite_jobs, render in entries:
        merged = full_outcomes(suite_jobs, outcomes, stored_results=stored_results)
        if merged is None:
            done = sum(
                1
                for spec in suite_jobs
                if any(spec.job_id == ran.job_id for ran, _ in outcomes)
            )
            print(f"{label}: {done}/{len(suite_jobs)} jobs done in this shard; "
                  "tables pending remaining shards or failed jobs")
            continue
        print(render(merged))
        print()
        rendered_any = True
    if not rendered_any and shard is not None:
        print(f"shard {args.shard}: {len(outcomes)} job(s) completed into {store.path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
