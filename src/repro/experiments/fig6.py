"""Fig. 6 — HW-opt and Mapping-opt baselines vs. HW-Mapping co-optimization.

Three scheme families are compared for every model and platform:

* **HW-opt**: grid search over HW configurations with a fixed, manually
  designed mapping (dla-like, shi-like or eye-like).
* **Mapping-opt**: GAMMA mapping search over a fixed, manually chosen HW
  configuration (Buffer-focused, Medium-Buf-Com or Compute-focused).
* **HW-Map-co-opt**: DiGamma searching both together.

Latencies are normalized to the strongest non-co-opt scheme
(Compute-focused + Gamma), as in the paper.

Run from the command line::

    python -m repro.experiments.fig6 --platform edge --budget 1500
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.arch.platform import get_platform
from repro.experiments.reporting import (
    append_geomean_row,
    format_table,
    normalize_by_column,
)
from repro.experiments.settings import (
    DEFAULT_MODELS,
    DEFAULT_SAMPLING_BUDGET,
    FIXED_HW_STYLES,
    ExperimentSettings,
    make_fixed_hardware,
)
from repro.framework.cooptimizer import CoOptimizationFramework
from repro.framework.search import SearchResult
from repro.mapping.dataflows import DATAFLOW_STYLES
from repro.optim.digamma import DiGamma
from repro.optim.gamma import GammaMapper
from repro.optim.grid_search import HardwareGridSearch
from repro.workloads.registry import get_model

#: Reference scheme used for normalization (the paper's best baseline).
REFERENCE_SCHEME = "Compute-focused+Gamma"


@dataclass
class Fig6Result:
    """Raw and normalized results of one Fig. 6 run (one platform)."""

    platform: str
    scheme_names: Tuple[str, ...]
    #: model -> scheme -> latency (cycles) of the best valid design.
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: model -> scheme -> full search result.
    searches: Dict[str, Dict[str, SearchResult]] = field(default_factory=dict)

    def normalized_latency(
        self, reference: str = REFERENCE_SCHEME
    ) -> Dict[str, Dict[str, float]]:
        """Latency normalized by ``reference`` with a GeoMean row."""
        table = normalize_by_column(self.latency, reference)
        return append_geomean_row(table, self.scheme_names)

    def report(self) -> str:
        """Render the normalized table as plain text."""
        return format_table(
            self.normalized_latency(),
            self.scheme_names,
            title=(
                f"Fig. 6 ({self.platform}) - latency normalized to "
                f"{REFERENCE_SCHEME} (lower is better)"
            ),
        )


def scheme_names() -> Tuple[str, ...]:
    """Display names of all schemes, in the paper's column order."""
    hw_opt = tuple(f"Grid-S+{style}-like" for style in DATAFLOW_STYLES)
    mapping_opt = tuple(f"{style}+Gamma" for style in FIXED_HW_STYLES)
    return hw_opt + mapping_opt + ("DiGamma",)


def run_fig6(
    platform_name: str = "edge",
    settings: Optional[ExperimentSettings] = None,
) -> Fig6Result:
    """Run the Fig. 6 comparison on one platform."""
    settings = settings if settings is not None else ExperimentSettings()
    platform = get_platform(platform_name)
    result = Fig6Result(platform=platform_name, scheme_names=scheme_names())

    for model_name in settings.models:
        model = get_model(model_name)
        result.latency[model_name] = {}
        result.searches[model_name] = {}

        # HW-opt: fixed dataflows, grid-searched hardware.
        co_framework = CoOptimizationFramework(
            model,
            platform,
            bytes_per_element=settings.bytes_per_element,
            **settings.framework_options(),
        )
        try:
            for style in DATAFLOW_STYLES:
                search = co_framework.search(
                    HardwareGridSearch(style),
                    sampling_budget=settings.sampling_budget,
                    seed=settings.seed,
                )
                _record(result, model_name, f"Grid-S+{style}-like", search)

            # Mapping-opt: fixed hardware, GAMMA-searched mapping.
            for style, compute_fraction in FIXED_HW_STYLES.items():
                fixed_hw = make_fixed_hardware(platform, compute_fraction)
                framework = CoOptimizationFramework(
                    model,
                    platform,
                    fixed_hardware=fixed_hw,
                    bytes_per_element=settings.bytes_per_element,
                    **settings.framework_options(),
                )
                try:
                    search = framework.search(
                        GammaMapper(),
                        sampling_budget=settings.sampling_budget,
                        seed=settings.seed,
                    )
                finally:
                    framework.close()
                _record(result, model_name, f"{style}+Gamma", search)

            # HW-Map co-optimization: DiGamma.
            search = co_framework.search(
                DiGamma(),
                sampling_budget=settings.sampling_budget,
                seed=settings.seed,
            )
            _record(result, model_name, "DiGamma", search)
        finally:
            co_framework.close()
    return result


def _record(result: Fig6Result, model_name: str, scheme: str, search: SearchResult) -> None:
    result.latency[model_name][scheme] = search.best_latency
    result.searches[model_name][scheme] = search


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--platform",
        choices=("edge", "cloud", "both"),
        default="edge",
        help="platform resources to evaluate (default: edge)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=DEFAULT_SAMPLING_BUDGET,
        help="sampling budget per search (paper uses 40000)",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=list(DEFAULT_MODELS),
        help="models to evaluate (default: the paper's seven models)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args(argv)

    settings = ExperimentSettings(
        models=tuple(args.models),
        sampling_budget=args.budget,
        seed=args.seed,
    )
    platforms = ("edge", "cloud") if args.platform == "both" else (args.platform,)
    for platform_name in platforms:
        result = run_fig6(platform_name, settings)
        print(result.report())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
