"""Fig. 6 — HW-opt and Mapping-opt baselines vs. HW-Mapping co-optimization.

Three scheme families are compared for every model and platform:

* **HW-opt**: grid search over HW configurations with a fixed, manually
  designed mapping (dla-like, shi-like or eye-like).
* **Mapping-opt**: GAMMA mapping search over a fixed, manually chosen HW
  configuration (Buffer-focused, Medium-Buf-Com or Compute-focused).
* **HW-Map-co-opt**: DiGamma searching both together.

Latencies are normalized to the strongest non-co-opt scheme
(Compute-focused + Gamma), as in the paper.

Run from the command line::

    python -m repro.experiments.fig6 --platform edge --budget 1500
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.jobs import JobSpec
from repro.experiments.reporting import (
    append_geomean_row,
    format_table,
    normalize_by_column,
)
from repro.experiments.runner import (
    Outcome,
    ResultStore,
    SweepRunner,
    add_sweep_arguments,
    settings_from_args,
    validate_sweep_args,
)
from repro.experiments.settings import (
    DEFAULT_MODELS,
    FIXED_HW_STYLES,
    ExperimentSettings,
)
from repro.framework.search import SearchResult
from repro.mapping.dataflows import DATAFLOW_STYLES

#: Reference scheme used for normalization (the paper's best baseline).
REFERENCE_SCHEME = "Compute-focused+Gamma"


@dataclass
class Fig6Result:
    """Raw and normalized results of one Fig. 6 run (one platform)."""

    platform: str
    scheme_names: Tuple[str, ...]
    #: model -> scheme -> latency (cycles) of the best valid design.
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: model -> scheme -> full search result.
    searches: Dict[str, Dict[str, SearchResult]] = field(default_factory=dict)

    def normalized_latency(
        self, reference: str = REFERENCE_SCHEME
    ) -> Dict[str, Dict[str, float]]:
        """Latency normalized by ``reference`` with a GeoMean row."""
        table = normalize_by_column(self.latency, reference)
        return append_geomean_row(table, self.scheme_names)

    def report(self) -> str:
        """Render the normalized table as plain text."""
        return format_table(
            self.normalized_latency(),
            self.scheme_names,
            title=(
                f"Fig. 6 ({self.platform}) - latency normalized to "
                f"{REFERENCE_SCHEME} (lower is better)"
            ),
        )


def scheme_names() -> Tuple[str, ...]:
    """Display names of all schemes, in the paper's column order."""
    hw_opt = tuple(f"Grid-S+{style}-like" for style in DATAFLOW_STYLES)
    mapping_opt = tuple(f"{style}+Gamma" for style in FIXED_HW_STYLES)
    return hw_opt + mapping_opt + ("DiGamma",)


def compile_fig6_jobs(
    platform_name: str,
    settings: ExperimentSettings,
) -> List[JobSpec]:
    """Compile the Fig. 6 scheme comparison into jobs.

    Per model: HW-opt grid searches (one per dataflow style), Mapping-opt
    GAMMA searches (one per fixed-HW style) and the DiGamma co-optimization,
    in the paper's column order.
    """
    jobs: List[JobSpec] = []
    for model_name in settings.models:
        common = dict(
            model=model_name,
            platform=platform_name,
            sampling_budget=settings.sampling_budget,
            seed=settings.seed,
        )
        for style in DATAFLOW_STYLES:
            jobs.append(
                JobSpec(
                    optimizer="grid",
                    optimizer_options={"dataflow": style},
                    scheme=f"Grid-S+{style}-like",
                    **common,
                )
            )
        for style in FIXED_HW_STYLES:
            jobs.append(
                JobSpec(
                    optimizer="gamma",
                    fixed_hw_style=style,
                    scheme=f"{style}+Gamma",
                    **common,
                )
            )
        jobs.append(JobSpec(optimizer="digamma", scheme="DiGamma", **common))
    return jobs


def fig6_result_from_outcomes(
    platform_name: str, outcomes: Sequence[Outcome]
) -> Fig6Result:
    """Assemble the Fig. 6 table from completed sweep outcomes."""
    result = Fig6Result(platform=platform_name, scheme_names=scheme_names())
    for spec, search in outcomes:
        result.latency.setdefault(spec.model, {})[spec.scheme_label] = (
            search.best_latency
        )
        result.searches.setdefault(spec.model, {})[spec.scheme_label] = search
    return result


def run_fig6(
    platform_name: str = "edge",
    settings: Optional[ExperimentSettings] = None,
    store: Union[ResultStore, str, Path, None] = None,
    resume: bool = False,
) -> Fig6Result:
    """Run the Fig. 6 comparison on one platform."""
    settings = settings if settings is not None else ExperimentSettings()
    jobs = compile_fig6_jobs(platform_name, settings)
    runner = SweepRunner(jobs, settings=settings, store=store, resume=resume)
    return fig6_result_from_outcomes(platform_name, runner.run())


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--platform",
        choices=("edge", "cloud", "both"),
        default="edge",
        help="platform resources to evaluate (default: edge)",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=list(DEFAULT_MODELS),
        help="models to evaluate (default: the paper's seven models)",
    )
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)
    validate_sweep_args(parser, args)

    settings = settings_from_args(args, models=args.models)
    platforms = ("edge", "cloud") if args.platform == "both" else (args.platform,)
    for platform_name in platforms:
        result = run_fig6(platform_name, settings, store=args.store, resume=args.resume)
        print(result.report())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
