"""Multi-model workload suites.

The Co-opt Framework "takes in any DNN model(s)" (paper Sec. I): when an
accelerator must serve several networks, the search should optimize one HW
configuration against all of them.  A :class:`ModelSuite` bundles several
models (optionally weighted by how often each runs) and flattens them into a
single :class:`~repro.workloads.model.Model` whose layer multiplicities
carry the weights, so the whole framework works on suites unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.workloads.layer import Layer
from repro.workloads.model import Model
from repro.workloads.registry import get_model


@dataclass(frozen=True)
class ModelSuite:
    """A weighted collection of models served by one accelerator.

    Parameters
    ----------
    name:
        Suite name (used as the combined model's name).
    models:
        The member models.
    weights:
        Optional positive integer weight per model: how many inferences of
        that model run per "unit" of work.  Defaults to one each.
    """

    name: str
    models: Tuple[Model, ...]
    weights: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError("a suite needs at least one model")
        object.__setattr__(self, "models", tuple(self.models))
        if not self.weights:
            object.__setattr__(self, "weights", tuple(1 for _ in self.models))
        else:
            object.__setattr__(self, "weights", tuple(int(w) for w in self.weights))
        if len(self.weights) != len(self.models):
            raise ValueError("weights must match the number of models")
        if any(weight < 1 for weight in self.weights):
            raise ValueError("weights must be positive integers")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_names(
        name: str,
        model_names: Sequence[str],
        weights: Optional[Sequence[int]] = None,
    ) -> "ModelSuite":
        """Build a suite from registry model names."""
        models = tuple(get_model(model_name) for model_name in model_names)
        resolved = tuple(weights) if weights is not None else tuple(1 for _ in models)
        return ModelSuite(name=name, models=models, weights=resolved)

    # -- flattening --------------------------------------------------------

    def as_model(self) -> Model:
        """Flatten the suite into one model with weighted layer counts.

        Layer names are prefixed with their model's name so the combined
        model has unique names; identical shapes across models still merge
        in :meth:`Model.unique_layers`, which is what makes suite evaluation
        no more expensive than evaluating the union of unique shapes.
        """
        layers = []
        model_names = [model.name for model in self.models]
        for index, (model, weight) in enumerate(zip(self.models, self.weights)):
            # Disambiguate repeated models so layer names stay unique.
            prefix = (
                model.name
                if model_names.count(model.name) == 1
                else f"{model.name}#{index}"
            )
            for layer in model.layers:
                layers.append(
                    Layer(
                        name=f"{prefix}.{layer.name}",
                        op_type=layer.op_type,
                        dims=layer.dims,
                        stride=layer.stride,
                        count=layer.count * weight,
                    )
                )
        return Model(name=self.name, layers=tuple(layers))

    @property
    def total_macs(self) -> int:
        """Weighted MACs of one unit of suite work."""
        return sum(
            model.total_macs * weight for model, weight in zip(self.models, self.weights)
        )

    def per_model_macs(self) -> Dict[str, int]:
        """Weighted MACs contributed by each member model."""
        return {
            model.name: model.total_macs * weight
            for model, weight in zip(self.models, self.weights)
        }

    def summary(self) -> str:
        """Human-readable description of the suite."""
        lines = [f"Suite {self.name}: {len(self.models)} models, "
                 f"{self.total_macs:,} weighted MACs"]
        for model, weight in zip(self.models, self.weights):
            lines.append(
                f"  {model.name:<16s} weight={weight:<3d} "
                f"{len(model.layers):>3d} layers {model.total_macs:>15,d} MACs"
            )
        return "\n".join(lines)
