"""NCF (neural collaborative filtering, NeuMF variant) workload.

The compute of NCF is the MLP tower plus the final prediction layer over the
concatenated GMF and MLP outputs; embedding gathers carry no MACs.  The
tower widths follow the NeuMF paper's largest configuration; the batch
dimension is the GEMM ``M``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.workloads.layer import Layer
from repro.workloads.model import Model, build_model

#: MLP tower widths: concatenated user/item embeddings down to the factor size.
_MLP_TOWER: Sequence[int] = (256, 256, 128, 64)


def ncf(batch_size: int = 512) -> Model:
    """NeuMF-style NCF at the given inference batch size."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    layers: List[Layer] = []
    for index in range(len(_MLP_TOWER) - 1):
        layers.append(
            Layer.gemm(
                f"mlp.fc{index}",
                m=batch_size,
                n=_MLP_TOWER[index + 1],
                k=_MLP_TOWER[index],
            )
        )
    # Final prediction layer over concatenated GMF (64) + MLP (64) factors.
    layers.append(Layer.gemm("predict", m=batch_size, n=1, k=128))
    return build_model("ncf", layers)
