"""Built-in DNN model definitions used in the paper's evaluation."""

from repro.workloads.models.bert import bert_base
from repro.workloads.models.dlrm import dlrm
from repro.workloads.models.mnasnet import mnasnet
from repro.workloads.models.mobilenet_v2 import mobilenet_v2
from repro.workloads.models.ncf import ncf
from repro.workloads.models.resnet import resnet18, resnet50

__all__ = [
    "bert_base",
    "dlrm",
    "mnasnet",
    "mobilenet_v2",
    "ncf",
    "resnet18",
    "resnet50",
]
