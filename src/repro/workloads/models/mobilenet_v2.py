"""MobileNetV2 layer table (ImageNet, 224x224 input).

The model is built from the standard inverted-residual block table
``(expansion t, output channels c, repeats n, stride s)``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.layer import Layer
from repro.workloads.model import Model, build_model

#: (expansion, out_channels, repeats, stride) per the MobileNetV2 paper.
_BLOCK_TABLE: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _inverted_residual(
    prefix: str,
    in_channels: int,
    out_channels: int,
    expansion: int,
    out_hw: int,
    stride: int,
    kernel: int = 3,
) -> List[Layer]:
    """Expand one inverted-residual block into expand / depthwise / project."""
    hidden = in_channels * expansion
    layers: List[Layer] = []
    if expansion != 1:
        in_hw = out_hw * stride
        layers.append(Layer.conv2d(f"{prefix}.expand", in_channels, hidden, in_hw, 1))
    layers.append(Layer.depthwise(f"{prefix}.dwise", hidden, out_hw, kernel, stride=stride))
    layers.append(Layer.conv2d(f"{prefix}.project", hidden, out_channels, out_hw, 1))
    return layers


def mobilenet_v2(input_size: int = 224) -> Model:
    """MobileNetV2 with the standard width multiplier of 1.0."""
    if input_size != 224:
        raise ValueError("only the 224x224 ImageNet configuration is provided")
    layers: List[Layer] = [Layer.conv2d("conv_stem", 3, 32, 112, 3, stride=2)]

    in_channels = 32
    hw = 112
    block_index = 0
    for expansion, out_channels, repeats, stride in _BLOCK_TABLE:
        for repeat in range(repeats):
            block_stride = stride if repeat == 0 else 1
            hw = hw // block_stride
            layers.extend(
                _inverted_residual(
                    prefix=f"block{block_index}",
                    in_channels=in_channels,
                    out_channels=out_channels,
                    expansion=expansion,
                    out_hw=hw,
                    stride=block_stride,
                )
            )
            in_channels = out_channels
            block_index += 1

    layers.append(Layer.conv2d("conv_head", 320, 1280, 7, 1))
    layers.append(Layer.gemm("classifier", m=1, n=1000, k=1280))
    return build_model("mobilenet_v2", layers)
