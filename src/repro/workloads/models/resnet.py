"""ResNet-18 and ResNet-50 layer tables (ImageNet, 224x224 input)."""

from __future__ import annotations

from typing import List

from repro.workloads.layer import Layer
from repro.workloads.model import Model, build_model


def _stem() -> List[Layer]:
    return [Layer.conv2d("conv1", 3, 64, 112, 7, stride=2)]


def resnet18(input_size: int = 224) -> Model:
    """ResNet-18: basic residual blocks (two 3x3 convolutions each)."""
    if input_size != 224:
        raise ValueError("only the 224x224 ImageNet configuration is provided")
    layers: List[Layer] = list(_stem())

    # layer1: 56x56, 64 channels, 2 basic blocks -> 4 identical 3x3 convs.
    layers.append(Layer.conv2d("layer1.conv3x3", 64, 64, 56, 3, count=4))

    # layer2: 28x28, 128 channels.
    layers.append(Layer.conv2d("layer2.0.conv1", 64, 128, 28, 3, stride=2))
    layers.append(Layer.conv2d("layer2.0.downsample", 64, 128, 28, 1, stride=2))
    layers.append(Layer.conv2d("layer2.conv3x3", 128, 128, 28, 3, count=3))

    # layer3: 14x14, 256 channels.
    layers.append(Layer.conv2d("layer3.0.conv1", 128, 256, 14, 3, stride=2))
    layers.append(Layer.conv2d("layer3.0.downsample", 128, 256, 14, 1, stride=2))
    layers.append(Layer.conv2d("layer3.conv3x3", 256, 256, 14, 3, count=3))

    # layer4: 7x7, 512 channels.
    layers.append(Layer.conv2d("layer4.0.conv1", 256, 512, 7, 3, stride=2))
    layers.append(Layer.conv2d("layer4.0.downsample", 256, 512, 7, 1, stride=2))
    layers.append(Layer.conv2d("layer4.conv3x3", 512, 512, 7, 3, count=3))

    # classifier.
    layers.append(Layer.gemm("fc", m=1, n=1000, k=512))
    return build_model("resnet18", layers)


def _bottleneck(
    prefix: str,
    in_channels: int,
    mid_channels: int,
    out_channels: int,
    out_hw: int,
    stride: int,
    blocks: int,
) -> List[Layer]:
    """Expand one ResNet-50 stage of bottleneck blocks into layers.

    The first block downsamples (stride) and projects the residual; the
    remaining ``blocks - 1`` blocks share identical shapes and are expressed
    with ``count``.
    """
    layers: List[Layer] = [
        Layer.conv2d(f"{prefix}.0.conv1", in_channels, mid_channels, out_hw, 1, stride=1),
        Layer.conv2d(f"{prefix}.0.conv2", mid_channels, mid_channels, out_hw, 3, stride=stride),
        Layer.conv2d(f"{prefix}.0.conv3", mid_channels, out_channels, out_hw, 1),
        Layer.conv2d(f"{prefix}.0.downsample", in_channels, out_channels, out_hw, 1, stride=stride),
    ]
    if blocks > 1:
        layers.extend(
            [
                Layer.conv2d(f"{prefix}.rest.conv1", out_channels, mid_channels, out_hw, 1,
                             count=blocks - 1),
                Layer.conv2d(f"{prefix}.rest.conv2", mid_channels, mid_channels, out_hw, 3,
                             count=blocks - 1),
                Layer.conv2d(f"{prefix}.rest.conv3", mid_channels, out_channels, out_hw, 1,
                             count=blocks - 1),
            ]
        )
    return layers


def resnet50(input_size: int = 224) -> Model:
    """ResNet-50: bottleneck residual blocks (1x1, 3x3, 1x1)."""
    if input_size != 224:
        raise ValueError("only the 224x224 ImageNet configuration is provided")
    layers: List[Layer] = list(_stem())
    layers.extend(_bottleneck("layer1", 64, 64, 256, 56, stride=1, blocks=3))
    layers.extend(_bottleneck("layer2", 256, 128, 512, 28, stride=2, blocks=4))
    layers.extend(_bottleneck("layer3", 512, 256, 1024, 14, stride=2, blocks=6))
    layers.extend(_bottleneck("layer4", 1024, 512, 2048, 7, stride=2, blocks=3))
    layers.append(Layer.gemm("fc", m=1, n=1000, k=2048))
    return build_model("resnet50", layers)
