"""MnasNet-B1 layer table (ImageNet, 224x224 input).

MnasNet mixes 3x3 and 5x5 depthwise kernels across its MBConv stages, which
is the property the paper exploits (its found mappings differ from the CNN
baselines).  The block table follows the MnasNet-B1 architecture.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.layer import Layer
from repro.workloads.model import Model, build_model

#: (expansion, out_channels, repeats, stride, kernel) per MnasNet-B1.
_BLOCK_TABLE: Tuple[Tuple[int, int, int, int, int], ...] = (
    (3, 24, 3, 2, 3),
    (3, 40, 3, 2, 5),
    (6, 80, 3, 2, 5),
    (6, 96, 2, 1, 3),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
)


def mnasnet(input_size: int = 224) -> Model:
    """MnasNet-B1 with depth multiplier 1.0."""
    if input_size != 224:
        raise ValueError("only the 224x224 ImageNet configuration is provided")
    layers: List[Layer] = [
        Layer.conv2d("conv_stem", 3, 32, 112, 3, stride=2),
        # SepConv block: depthwise 3x3 + pointwise to 16 channels.
        Layer.depthwise("sepconv.dwise", 32, 112, 3),
        Layer.conv2d("sepconv.project", 32, 16, 112, 1),
    ]

    in_channels = 16
    hw = 112
    block_index = 0
    for expansion, out_channels, repeats, stride, kernel in _BLOCK_TABLE:
        for repeat in range(repeats):
            block_stride = stride if repeat == 0 else 1
            hw = hw // block_stride
            hidden = in_channels * expansion
            in_hw = hw * block_stride
            prefix = f"mbconv{block_index}"
            layers.append(Layer.conv2d(f"{prefix}.expand", in_channels, hidden, in_hw, 1))
            layers.append(
                Layer.depthwise(f"{prefix}.dwise", hidden, hw, kernel, stride=block_stride)
            )
            layers.append(Layer.conv2d(f"{prefix}.project", hidden, out_channels, hw, 1))
            in_channels = out_channels
            block_index += 1

    layers.append(Layer.conv2d("conv_head", 320, 1280, 7, 1))
    layers.append(Layer.gemm("classifier", m=1, n=1000, k=1280))
    return build_model("mnasnet", layers)
