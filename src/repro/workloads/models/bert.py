"""BERT-base encoder workload expressed as GEMM layers.

Each of the 12 encoder layers contributes the projection and feed-forward
GEMMs; the attention score / context batched matrix multiplies are expressed
as per-head GEMMs with the head count folded into ``count``.
"""

from __future__ import annotations

from typing import List

from repro.workloads.layer import Layer
from repro.workloads.model import Model, build_model


def bert_base(sequence_length: int = 512) -> Model:
    """BERT-base: 12 layers, hidden size 768, 12 heads, FFN size 3072."""
    if sequence_length < 1:
        raise ValueError("sequence_length must be positive")
    hidden = 768
    heads = 12
    head_dim = hidden // heads
    ffn = 3072
    encoder_layers = 12
    seq = sequence_length

    layers: List[Layer] = [
        # Q, K and V projections share a shape: one gene, count = 3 per layer.
        Layer.gemm("attention.qkv_proj", m=seq, n=hidden, k=hidden,
                   count=3 * encoder_layers),
        # Attention scores: (seq x head_dim) x (head_dim x seq) per head.
        Layer.gemm("attention.scores", m=seq, n=seq, k=head_dim,
                   count=heads * encoder_layers),
        # Attention context: (seq x seq) x (seq x head_dim) per head.
        Layer.gemm("attention.context", m=seq, n=head_dim, k=seq,
                   count=heads * encoder_layers),
        # Attention output projection.
        Layer.gemm("attention.out_proj", m=seq, n=hidden, k=hidden,
                   count=encoder_layers),
        # Feed-forward network.
        Layer.gemm("ffn.intermediate", m=seq, n=ffn, k=hidden, count=encoder_layers),
        Layer.gemm("ffn.output", m=seq, n=hidden, k=ffn, count=encoder_layers),
    ]
    return build_model("bert", layers)
