"""DLRM (deep learning recommendation model) MLP workload.

DLRM's compute is dominated by its bottom and top MLPs; embedding-table
gathers are pure memory operations with no MACs and are therefore not part
of the mapping search (consistent with mapper studies on DLRM).  The MLP
sizes follow the open-source DLRM "RM" configuration; the batch dimension is
the GEMM ``M``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.workloads.layer import Layer
from repro.workloads.model import Model, build_model

#: Bottom MLP layer widths (dense features -> embedding dimension).
_BOTTOM_MLP: Sequence[int] = (13, 512, 256, 64)
#: Top MLP layer widths (feature-interaction output -> click probability).
_TOP_MLP: Sequence[int] = (512, 1024, 1024, 512, 256, 1)


def _mlp(prefix: str, widths: Sequence[int], batch: int) -> List[Layer]:
    layers = []
    for index in range(len(widths) - 1):
        layers.append(
            Layer.gemm(f"{prefix}.fc{index}", m=batch, n=widths[index + 1], k=widths[index])
        )
    return layers


def dlrm(batch_size: int = 512) -> Model:
    """DLRM MLP stack at the given inference batch size."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    layers: List[Layer] = []
    layers.extend(_mlp("bottom_mlp", _BOTTOM_MLP, batch_size))
    layers.extend(_mlp("top_mlp", _TOP_MLP, batch_size))
    return build_model("dlrm", layers)
