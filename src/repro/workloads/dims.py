"""The mapping dimensions of a DNN layer.

The paper (Fig. 3(g)) uses six tensor dimensions to describe a layer:

========  =============================================
``K``     output channels
``C``     input channels (reduction dimension)
``Y``     output feature-map height
``X``     output feature-map width
``R``     weight (filter) height
``S``     weight (filter) width
========  =============================================

GEMM-style layers (fully-connected, attention projections) are expressed in
the same vocabulary: ``M -> Y``, ``N -> K``, reduction ``K -> C`` with
``X = R = S = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

#: Canonical ordering of the six mapping dimensions.
DIMS: Tuple[str, ...] = ("K", "C", "Y", "X", "R", "S")

#: Position of each dimension in the canonical ordering (fast-path indexing).
DIM_INDEX: Dict[str, int] = {dim: index for index, dim in enumerate(DIMS)}

#: Dimensions that index the weight tensor.
WEIGHT_DIMS: Tuple[str, ...] = ("K", "C", "R", "S")

#: Dimensions that index the input activation tensor (via the sliding window).
INPUT_DIMS: Tuple[str, ...] = ("C", "Y", "X", "R", "S")

#: Dimensions that index the output activation tensor.
OUTPUT_DIMS: Tuple[str, ...] = ("K", "Y", "X")

#: Reduction dimensions: iterating them accumulates into the same output.
REDUCTION_DIMS: Tuple[str, ...] = ("C", "R", "S")


def validate_dim(name: str) -> str:
    """Return ``name`` if it is a known dimension, raise ``ValueError`` otherwise."""
    if name not in DIMS:
        raise ValueError(f"unknown dimension {name!r}; expected one of {DIMS}")
    return name


@dataclass(frozen=True)
class LayerDims(Mapping[str, int]):
    """Immutable sizes of the six mapping dimensions of one layer.

    Behaves like a read-only mapping ``{"K": ..., "C": ..., ...}`` so that
    cost-model and encoding code can iterate over it generically.
    """

    K: int = 1
    C: int = 1
    Y: int = 1
    X: int = 1
    R: int = 1
    S: int = 1

    def __post_init__(self) -> None:
        for dim in DIMS:
            value = getattr(self, dim)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"dimension {dim} must be a positive int, got {value!r}")

    def __getitem__(self, key: str) -> int:
        validate_dim(key)
        return int(getattr(self, key))

    def __iter__(self) -> Iterator[str]:
        return iter(DIMS)

    def __len__(self) -> int:
        return len(DIMS)

    def as_dict(self) -> Dict[str, int]:
        """Return a plain ``dict`` copy, in canonical dimension order."""
        return {dim: self[dim] for dim in DIMS}

    @property
    def volume(self) -> int:
        """Product of all dimension sizes (the MAC count of a dense layer)."""
        product = 1
        for dim in DIMS:
            product *= self[dim]
        return product

    def replace(self, **changes: int) -> "LayerDims":
        """Return a copy with the given dimensions replaced."""
        values = self.as_dict()
        for key, value in changes.items():
            validate_dim(key)
            values[key] = value
        return LayerDims(**values)
