"""Registry of the built-in workloads evaluated in the paper."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.model import Model
from repro.workloads.models import (
    bert_base,
    dlrm,
    mnasnet,
    mobilenet_v2,
    ncf,
    resnet18,
    resnet50,
)

_REGISTRY: Dict[str, Callable[[], Model]] = {
    "mobilenet_v2": mobilenet_v2,
    "resnet18": resnet18,
    "resnet50": resnet50,
    "mnasnet": mnasnet,
    "bert": bert_base,
    "dlrm": dlrm,
    "ncf": ncf,
}

#: Aliases accepted by :func:`get_model` in addition to the canonical names.
_ALIASES: Dict[str, str] = {
    "mbnet-v2": "mobilenet_v2",
    "mbnetv2": "mobilenet_v2",
    "mobilenetv2": "mobilenet_v2",
    "resnet-18": "resnet18",
    "resnet-50": "resnet50",
    "bert-base": "bert",
}


def available_models() -> List[str]:
    """Names of all built-in models, in the paper's presentation order."""
    return list(_REGISTRY)


def get_model(name: str) -> Model:
    """Build the named model.

    Accepts canonical names (``available_models()``) and common aliases such
    as ``"mbnet-v2"``; matching is case-insensitive.
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available models: {', '.join(available_models())}"
        )
    return _REGISTRY[key]()
