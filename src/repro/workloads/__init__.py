"""DNN workload descriptions.

A workload is a :class:`~repro.workloads.model.Model`: an ordered list of
:class:`~repro.workloads.layer.Layer` objects, each described by the seven
mapping dimensions used throughout the paper (K, C, Y, X, R, S, plus an
implicit batch folded into the GEMM ``M`` dimension).

The seven models evaluated in the paper (MobileNetV2, ResNet18, ResNet50,
MnasNet, BERT, DLRM, NCF) are available through
:func:`~repro.workloads.registry.get_model`.
"""

from repro.workloads.dims import DIMS, LayerDims
from repro.workloads.layer import Layer, OpType
from repro.workloads.model import Model
from repro.workloads.registry import available_models, get_model
from repro.workloads.suite import ModelSuite

__all__ = [
    "DIMS",
    "LayerDims",
    "Layer",
    "OpType",
    "Model",
    "ModelSuite",
    "available_models",
    "get_model",
]
