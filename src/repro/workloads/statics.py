"""Precomputed per-layer invariants ("layer statics").

Every cost-model evaluation of a layer needs the same handful of derived
facts: the six dimension sizes in canonical order, the operand/dimension
relevance of the operator type, the full tensor sizes and the MAC count.
The seed implementation re-derived all of them from dicts on every call;
this table computes them once per unique layer *shape* and hands the fast
evaluation engine plain tuples indexed by dimension position.

Statics are keyed on :meth:`Layer.signature`, so layers that share a shape
(e.g. the repeated blocks of a ResNet stage) share one entry, and the entry
is additionally memoized on the layer instance to skip even the signature
hash on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, Tuple

from repro.workloads.dims import (
    DIM_INDEX,
    INPUT_DIMS,
    OUTPUT_DIMS,
    REDUCTION_DIMS,
    WEIGHT_DIMS,
)
from repro.workloads.layer import Layer, OpType

#: Indexes (into ``DIMS``) of the reduction dimensions.
REDUCTION_INDEXES: FrozenSet[int] = frozenset(DIM_INDEX[d] for d in REDUCTION_DIMS)

#: Depthwise output is indexed by ``C`` instead of ``K``.
_DWCONV_WEIGHT_DIMS: Tuple[str, ...] = ("C", "R", "S")
_DWCONV_OUTPUT_DIMS: Tuple[str, ...] = ("C", "Y", "X")


def _index_set(dims: Tuple[str, ...]) -> FrozenSet[int]:
    return frozenset(DIM_INDEX[d] for d in dims)


@dataclass(frozen=True, eq=False)
class LayerStatics:
    """Shape-derived invariants of one layer, in fast-path form.

    ``dims`` is the layer's dimension sizes as a tuple in ``DIMS`` order;
    the ``*_indexes`` sets hold the positions (into ``DIMS``) of the
    dimensions indexing each operand, so inner loops test membership on
    small integers instead of strings.

    Instances are canonical — one per distinct :meth:`Layer.signature`, via
    the ``lru_cache`` below — so equality and hashing are by identity
    (``eq=False``), which keeps statics cheap to use as cache-key parts.
    """

    signature: Tuple
    op_type: OpType
    dims: Tuple[int, ...]
    stride: int
    is_depthwise: bool
    macs: int
    weight_elements: int
    input_elements: int
    output_elements: int
    weight_indexes: FrozenSet[int]
    input_indexes: FrozenSet[int]
    output_indexes: FrozenSet[int]
    #: Memo used by the evaluation engine: loop order -> positions of the
    #: (W, I, O) relevant dimensions within that order.
    order_positions: Dict[Tuple[int, ...], Tuple] = field(default_factory=dict)


@lru_cache(maxsize=None)
def _statics_from_signature(signature: Tuple) -> LayerStatics:
    op_type, dims, stride = signature
    k, c, y, x, r, s = dims
    in_y = (y - 1) * stride + r
    in_x = (x - 1) * stride + s
    is_depthwise = op_type is OpType.DWCONV
    if is_depthwise:
        weight = c * r * s
        output = c * y * x
        weight_dims, output_dims = _DWCONV_WEIGHT_DIMS, _DWCONV_OUTPUT_DIMS
    else:
        weight = k * c * r * s
        output = k * y * x
        weight_dims, output_dims = WEIGHT_DIMS, OUTPUT_DIMS
    macs = 1
    for size in dims:
        macs *= size
    return LayerStatics(
        signature=signature,
        op_type=op_type,
        dims=dims,
        stride=stride,
        is_depthwise=is_depthwise,
        macs=macs,
        weight_elements=weight,
        input_elements=c * in_y * in_x,
        output_elements=output,
        weight_indexes=_index_set(weight_dims),
        input_indexes=_index_set(INPUT_DIMS),
        output_indexes=_index_set(output_dims),
    )


def layer_statics(layer: Layer) -> LayerStatics:
    """Statics of ``layer``, memoized on the instance and shared by shape."""
    statics = layer.__dict__.get("_statics")
    if statics is None:
        statics = _statics_from_signature(layer.signature())
        object.__setattr__(layer, "_statics", statics)
    return statics


def model_statics(model) -> Tuple[Tuple[Layer, LayerStatics], ...]:
    """(unique layer, statics) pairs of a model, memoized on the instance."""
    pairs = model.__dict__.get("_layer_statics")
    if pairs is None:
        pairs = tuple(
            (layer, layer_statics(layer)) for layer in model.unique_layers()
        )
        object.__setattr__(model, "_layer_statics", pairs)
    return pairs
