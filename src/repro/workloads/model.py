"""A DNN model: an ordered collection of layers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.workloads.layer import Layer


@dataclass(frozen=True)
class Model:
    """An ordered, immutable list of layers with a name.

    The co-optimization framework searches one accelerator design point and
    evaluates it against every (unique) layer of the model, weighting each
    layer by its multiplicity.
    """

    name: str
    layers: Tuple[Layer, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"model {self.name!r} has no layers")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ValueError(f"model {self.name!r} has duplicate layer names")
        object.__setattr__(self, "layers", tuple(self.layers))

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def total_macs(self) -> int:
        """Total MACs of the model, counting layer multiplicities."""
        return sum(layer.total_macs for layer in self.layers)

    @property
    def total_weight_elements(self) -> int:
        """Total weight elements of the model, counting layer multiplicities."""
        return sum(layer.tensor_sizes()["W"] * layer.count for layer in self.layers)

    def unique_layers(self) -> List[Layer]:
        """Collapse layers with identical shape signatures.

        Returns new :class:`Layer` objects whose ``count`` is the sum of the
        multiplicities of all matching layers; the first occurrence's name is
        kept.  Mapping search tools evaluate each unique shape once.

        The merged list is memoized (the model is immutable and this sits on
        the fitness-evaluation hot path); a fresh list is returned each call
        so callers may reorder it freely.
        """
        cached = self.__dict__.get("_unique_layers")
        if cached is not None:
            return list(cached)
        merged: Dict[Tuple, Layer] = {}
        order: List[Tuple] = []
        for layer in self.layers:
            key = layer.signature()
            if key in merged:
                existing = merged[key]
                merged[key] = Layer(
                    name=existing.name,
                    op_type=existing.op_type,
                    dims=existing.dims,
                    stride=existing.stride,
                    count=existing.count + layer.count,
                )
            else:
                merged[key] = layer
                order.append(key)
        unique = tuple(merged[key] for key in order)
        object.__setattr__(self, "_unique_layers", unique)
        return list(unique)

    def summary(self) -> str:
        """Human-readable multi-line summary of the model."""
        lines = [f"Model {self.name}: {len(self.layers)} layers "
                 f"({len(self.unique_layers())} unique), {self.total_macs:,} MACs"]
        for layer in self.layers:
            dims = layer.dims
            lines.append(
                f"  {layer.name:<28s} {layer.op_type.value:<7s} "
                f"K={dims['K']:<5d} C={dims['C']:<5d} Y={dims['Y']:<4d} X={dims['X']:<4d} "
                f"R={dims['R']} S={dims['S']} stride={layer.stride} x{layer.count}"
            )
        return "\n".join(lines)


def build_model(name: str, layers: Sequence[Layer]) -> Model:
    """Convenience constructor accepting any layer sequence."""
    return Model(name=name, layers=tuple(layers))
