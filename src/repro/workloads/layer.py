"""Layer-level workload description.

Each layer carries the six mapping dimensions (:class:`LayerDims`), its
operator type, convolution stride and a multiplicity ``count`` used when a
model contains several layers with identical shape (mappers search the unique
shapes once and multiply the cost).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.workloads.dims import (
    DIMS,
    INPUT_DIMS,
    OUTPUT_DIMS,
    WEIGHT_DIMS,
    LayerDims,
)


class OpType(enum.Enum):
    """Operator class of a layer.

    The operator class decides the operand/dimension relevance used by the
    cost model (depthwise convolutions tie the output tensor to ``C``).
    """

    CONV = "conv"
    DWCONV = "dwconv"
    GEMM = "gemm"


@dataclass(frozen=True)
class Layer:
    """A single DNN layer expressed in the paper's dimension vocabulary.

    Parameters
    ----------
    name:
        Human-readable layer name (unique within a model).
    op_type:
        Operator class; see :class:`OpType`.
    dims:
        Sizes of the six mapping dimensions.  ``Y``/``X`` are *output*
        spatial sizes; the cost model derives input halos from ``R``, ``S``
        and ``stride``.
    stride:
        Convolution stride (both spatial directions).  Ignored for GEMMs.
    count:
        Number of identically-shaped instances of this layer in the model.
    """

    name: str
    op_type: OpType
    dims: LayerDims
    stride: int = 1
    count: int = 1

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.op_type is OpType.DWCONV and self.dims["K"] != 1:
            raise ValueError(
                "depthwise layers must use K=1 and carry channels in C "
                f"(got K={self.dims['K']})"
            )

    # -- tensor sizes ------------------------------------------------------

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations of one instance of this layer."""
        return self.dims.volume

    @property
    def total_macs(self) -> int:
        """MACs of all ``count`` instances."""
        return self.macs * self.count

    def input_spatial(self) -> Tuple[int, int]:
        """Input feature-map (height, width) including the sliding-window halo."""
        height = (self.dims["Y"] - 1) * self.stride + self.dims["R"]
        width = (self.dims["X"] - 1) * self.stride + self.dims["S"]
        return height, width

    def tensor_sizes(self) -> Dict[str, int]:
        """Element counts of the weight (W), input (I) and output (O) tensors."""
        in_y, in_x = self.input_spatial()
        dims = self.dims
        if self.op_type is OpType.DWCONV:
            weight = dims["C"] * dims["R"] * dims["S"]
            output = dims["C"] * dims["Y"] * dims["X"]
        else:
            weight = dims["K"] * dims["C"] * dims["R"] * dims["S"]
            output = dims["K"] * dims["Y"] * dims["X"]
        inputs = dims["C"] * in_y * in_x
        return {"W": weight, "I": inputs, "O": output}

    # -- constructors ------------------------------------------------------

    @staticmethod
    def conv2d(
        name: str,
        in_channels: int,
        out_channels: int,
        out_hw: int | Tuple[int, int],
        kernel: int | Tuple[int, int],
        stride: int = 1,
        count: int = 1,
    ) -> "Layer":
        """Build a standard dense convolution layer."""
        out_y, out_x = _pair(out_hw)
        r, s = _pair(kernel)
        dims = LayerDims(K=out_channels, C=in_channels, Y=out_y, X=out_x, R=r, S=s)
        return Layer(name=name, op_type=OpType.CONV, dims=dims, stride=stride, count=count)

    @staticmethod
    def depthwise(
        name: str,
        channels: int,
        out_hw: int | Tuple[int, int],
        kernel: int | Tuple[int, int],
        stride: int = 1,
        count: int = 1,
    ) -> "Layer":
        """Build a depthwise convolution layer (one filter per channel)."""
        out_y, out_x = _pair(out_hw)
        r, s = _pair(kernel)
        dims = LayerDims(K=1, C=channels, Y=out_y, X=out_x, R=r, S=s)
        return Layer(name=name, op_type=OpType.DWCONV, dims=dims, stride=stride, count=count)

    @staticmethod
    def gemm(
        name: str,
        m: int,
        n: int,
        k: int,
        count: int = 1,
    ) -> "Layer":
        """Build a GEMM layer ``[M, K] x [K, N] -> [M, N]``.

        The paper's convention maps ``N -> K`` (output channels), the GEMM
        reduction ``K -> C`` and ``M -> Y``.
        """
        dims = LayerDims(K=n, C=k, Y=m, X=1, R=1, S=1)
        return Layer(name=name, op_type=OpType.GEMM, dims=dims, stride=1, count=count)

    # -- relevance ---------------------------------------------------------

    def relevance(self) -> Dict[str, Tuple[str, ...]]:
        """Dimension relevance of each operand for this layer's operator type.

        Returns a mapping ``{"W": dims, "I": dims, "O": dims}``.  For
        depthwise convolutions the output is additionally indexed by ``C``.
        """
        if self.op_type is OpType.DWCONV:
            return {
                "W": ("C", "R", "S"),
                "I": INPUT_DIMS,
                "O": ("C", "Y", "X"),
            }
        return {"W": WEIGHT_DIMS, "I": INPUT_DIMS, "O": OUTPUT_DIMS}

    def signature(self) -> Tuple:
        """Hashable shape signature used to deduplicate identical layers."""
        cached = self.__dict__.get("_signature")
        if cached is None:
            cached = (self.op_type, tuple(self.dims[d] for d in DIMS), self.stride)
            object.__setattr__(self, "_signature", cached)
        return cached


def _pair(value: int | Tuple[int, int]) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return int(value[0]), int(value[1])
    return int(value), int(value)
