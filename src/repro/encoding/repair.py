"""Legality repair of genomes after genetic perturbation.

The genetic operators are free to produce out-of-range genes; repair clamps
them back into the :class:`GenomeSpace` so that every individual decodes to
a syntactically valid design point (semantic validity — fitting the area
budget — is the constraint checker's job, as in the paper).
"""

from __future__ import annotations

from typing import List

from repro.encoding.genome import Genome, GenomeSpace, LevelGenes
from repro.workloads.dims import DIMS

_DIMS_SET = frozenset(DIMS)


def repair_genome(genome: Genome, space: GenomeSpace) -> Genome:
    """Return ``genome`` clamped into ``space`` (modified in place and returned)."""
    _repair_hw(genome, space)
    for level in genome.levels:
        _repair_order(level.order)
        if level.parallel_dim not in DIMS:
            level.parallel_dim = level.order[0]
        for dim in DIMS:
            bound = space.dim_bounds[dim]
            value = int(level.tiles.get(dim, 1))
            level.tiles[dim] = max(1, min(bound, value))
    return genome


def repaired_copy(genome: Genome, space: GenomeSpace) -> Genome:
    """A repaired deep copy of ``genome``; the original is left untouched.

    Equivalent to ``repair_genome(genome.copy(), space)`` — the evaluation
    paths call that pair per individual, and building the clamped copy in
    one pass saves the intermediate copy's allocations on the hot path.
    """
    source_levels = genome.levels
    if space.hw_is_fixed:
        spatials = [int(size) for size in space.fixed_pe_array]
        if len(source_levels) > len(spatials):
            # Extra levels keep their spatial genes, as in _repair_hw's zip.
            spatials += [
                level.spatial_size for level in source_levels[len(spatials):]
            ]
    else:
        max_pes = space.max_pes
        spatials = [
            max(1, min(max_pes, int(level.spatial_size)))
            for level in source_levels
        ]
        product = 1
        for spatial in spatials:
            product *= spatial
        # Shrink the innermost levels first (mirrors _repair_hw).
        for index in range(len(spatials) - 1, -1, -1):
            if product <= max_pes:
                break
            others = product // spatials[index]
            allowed = max(1, max_pes // max(1, others))
            product = others * allowed
            spatials[index] = allowed
    bounds = space.dim_bounds
    levels: List[LevelGenes] = []
    for level, spatial in zip(source_levels, spatials):
        source_order = level.order
        if len(source_order) == len(DIMS) and set(source_order) == _DIMS_SET:
            order = list(source_order)
        else:
            order = list(source_order)
            _repair_order(order)
        parallel = level.parallel_dim
        if parallel not in _DIMS_SET:
            parallel = order[0]
        source_tiles = level.tiles
        tiles = {}
        for dim in DIMS:
            bound = bounds[dim]
            value = int(source_tiles.get(dim, 1))
            tiles[dim] = value if 1 <= value <= bound else max(1, min(bound, value))
        levels.append(
            LevelGenes(
                spatial_size=spatial,
                parallel_dim=parallel,
                order=order,
                tiles=tiles,
            )
        )
    return Genome(levels=levels)


def _repair_hw(genome: Genome, space: GenomeSpace) -> None:
    """Clamp spatial sizes; pin them when the HW is fixed."""
    if space.hw_is_fixed:
        for level, fixed in zip(genome.levels, space.fixed_pe_array):
            level.spatial_size = int(fixed)
        return
    for level in genome.levels:
        level.spatial_size = max(1, min(space.max_pes, int(level.spatial_size)))
    # Keep the PE product within the absolute bound by shrinking the
    # innermost levels first (they are cheapest to re-grow).
    product = genome.num_pes
    for level in reversed(genome.levels):
        if product <= space.max_pes:
            break
        others = product // level.spatial_size
        allowed = max(1, space.max_pes // max(1, others))
        product = others * allowed
        level.spatial_size = allowed


def _repair_order(order: List[str]) -> None:
    """Rebuild ``order`` into a permutation of the six dims, preserving prefix."""
    seen = []
    for dim in order:
        if dim in DIMS and dim not in seen:
            seen.append(dim)
    for dim in DIMS:
        if dim not in seen:
            seen.append(dim)
    order[:] = seen
