"""The population as a first-class NumPy gene matrix.

A :class:`GenomeMatrix` stores a whole population as one ``int64``
member x gene array instead of a list of :class:`Genome` objects.  Each
cluster level occupies :data:`LEVEL_WIDTH` consecutive columns in the exact
order the vector engine's packed gene matrix consumes them
(:meth:`repro.cost.vector_engine.VectorEngine.evaluate_packed`):

========  =======================================================
``0``     spatial size (the HW gene ``pi``)
``1``     parallel dimension index (position in ``DIMS``)
``2:8``   loop order as dimension indexes, outermost first
``8:14``  tile sizes in canonical ``DIMS`` order
========  =======================================================

so a repaired row *is* the flattened :meth:`Genome.cache_key` and feeds the
cost model without any per-member object construction.  The matrix can only
represent syntactically valid genomes (dimension names are indexes, orders
stay permutations under every shipped operator), which is what makes the
vectorized repair below so small: it clamps magnitudes, never names.

Search loops keep genomes on the boundary: populations are sampled as
genomes (same RNG stream as always) and packed once; winning rows
materialize back into genomes lazily.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.encoding.genome import Genome, GenomeSpace, LevelGenes
from repro.mapping.mapping import Mapping, mapping_from_cache_key
from repro.workloads.dims import DIM_INDEX, DIMS

#: Columns per cluster level: spatial, parallel index, 6 order slots, 6 tiles.
LEVEL_WIDTH = 14

#: Column offsets within one level block.
SPATIAL_COL = 0
PARALLEL_COL = 1
ORDER_COLS = slice(2, 8)
TILE_COLS = slice(8, 14)


class GenomeMatrix:
    """A population of encoded design points as one int64 gene matrix."""

    __slots__ = ("data", "num_levels")

    def __init__(self, data: np.ndarray, num_levels: int):
        if data.ndim != 2 or data.shape[1] != LEVEL_WIDTH * num_levels:
            raise ValueError(
                f"expected a (members, {LEVEL_WIDTH * num_levels}) matrix for "
                f"{num_levels} levels, got shape {data.shape}"
            )
        self.data = np.ascontiguousarray(data, dtype=np.int64)
        self.num_levels = num_levels

    def __len__(self) -> int:
        return len(self.data)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_genomes(cls, genomes: Sequence[Genome]) -> "GenomeMatrix":
        """Pack a genome population into a matrix (genomes must be valid)."""
        if not genomes:
            raise ValueError("cannot pack an empty population")
        num_levels = genomes[0].num_levels
        data = np.array(
            [genome_to_genes(genome) for genome in genomes], dtype=np.int64
        )
        return cls(data, num_levels)

    @classmethod
    def empty(cls, size: int, num_levels: int) -> "GenomeMatrix":
        """An uninitialized population of ``size`` members."""
        return cls(
            np.empty((size, LEVEL_WIDTH * num_levels), dtype=np.int64), num_levels
        )

    def copy(self) -> "GenomeMatrix":
        """Deep copy of the population."""
        return GenomeMatrix(self.data.copy(), self.num_levels)

    def truncated(self, size: int) -> "GenomeMatrix":
        """The first ``size`` members (a view, not a copy)."""
        return GenomeMatrix(self.data[:size], self.num_levels)

    # -- genome boundary ---------------------------------------------------

    def genome_at(self, index: int) -> Genome:
        """Materialize one member as a :class:`Genome`."""
        return row_to_genome(self.data[index], self.num_levels)

    def to_genomes(self) -> List[Genome]:
        """Materialize the whole population (boundary/debugging use)."""
        return [self.genome_at(index) for index in range(len(self))]


def genome_to_genes(genome: Genome) -> List[int]:
    """Flatten one genome into a plain gene list (raises on bad dim names).

    The list form is what the search inner loops mutate: Python list
    indexing beats NumPy scalar indexing by a wide margin at this row
    width, and a generation's children convert to the matrix in one
    ``np.array`` call.
    """
    genes: List[int] = []
    for level in genome.levels:
        genes.append(int(level.spatial_size))
        genes.append(DIM_INDEX[level.parallel_dim])
        genes.extend(DIM_INDEX[dim] for dim in level.order)
        tiles = level.tiles
        genes.extend(int(tiles[dim]) for dim in DIMS)
    return genes


def genome_to_row(genome: Genome) -> np.ndarray:
    """Flatten one genome into a gene row (raises on invalid dim names)."""
    return np.array(genome_to_genes(genome), dtype=np.int64)


def row_to_genome(row: np.ndarray, num_levels: int) -> Genome:
    """Rebuild a :class:`Genome` from one gene row."""
    genes = [int(value) for value in row]
    levels: List[LevelGenes] = []
    for level_index in range(num_levels):
        base = level_index * LEVEL_WIDTH
        levels.append(
            LevelGenes(
                spatial_size=genes[base + SPATIAL_COL],
                parallel_dim=DIMS[genes[base + PARALLEL_COL]],
                order=[DIMS[genes[base + column]] for column in range(2, 8)],
                tiles={
                    dim: genes[base + 8 + position]
                    for position, dim in enumerate(DIMS)
                },
            )
        )
    return Genome(levels=levels)


def row_cache_key(row: Sequence[int], num_levels: int) -> tuple:
    """The member's :meth:`Genome.cache_key` built straight from its genes.

    ``row`` must be repaired (spatial >= 1, tiles >= 1), which makes the
    key's clamping a no-op; pass ``row.tolist()`` for plain-int tuples.
    """
    parts = []
    for level_index in range(num_levels):
        base = level_index * LEVEL_WIDTH
        parts.append(
            (
                (row[base], row[base + 1], tuple(row[base + 2 : base + 8])),
                tuple(row[base + 8 : base + 14]),
            )
        )
    return tuple(parts)


def mapping_from_row(row: np.ndarray, num_levels: int) -> Mapping:
    """Decode one repaired gene row into an immutable :class:`Mapping`."""
    return mapping_from_cache_key(row_cache_key(row.tolist(), num_levels))


def mapping_from_fingerprint(fingerprint: bytes, num_levels: int) -> Mapping:
    """Decode a row fingerprint (the row's raw bytes) back into a mapping."""
    row = np.frombuffer(fingerprint, dtype=np.int64)
    return mapping_from_row(row, num_levels)


def repaired_matrix(matrix: GenomeMatrix, space: GenomeSpace) -> GenomeMatrix:
    """Vectorized counterpart of :func:`repro.encoding.repair.repaired_copy`.

    Returns a repaired copy of the whole population in a handful of array
    operations; per-member results are bit-identical to running
    ``repaired_copy(genome, space)`` member by member (pinned by
    ``tests/encoding/test_genome_matrix.py``).  Only magnitudes need
    clamping: the matrix encoding cannot represent invalid dimension names
    or (under the shipped operators) non-permutation orders.
    """
    num_levels = matrix.num_levels
    data = matrix.data.copy()
    view = data.reshape(len(data), num_levels, LEVEL_WIDTH)
    spatials = view[:, :, SPATIAL_COL]
    if space.hw_is_fixed:
        fixed = space.fixed_pe_array
        spatials[:, : len(fixed)] = np.asarray(fixed, dtype=np.int64)
    else:
        max_pes = space.max_pes
        np.clip(spatials, 1, max_pes, out=spatials)
        # Shrink the innermost levels first until the PE product fits,
        # mirroring repaired_copy's scalar loop with masked array updates.
        product = spatials.prod(axis=1)
        for index in range(num_levels - 1, -1, -1):
            over = product > max_pes
            if not over.any():
                break
            column = spatials[over, index]
            others = product[over] // column
            allowed = np.maximum(1, max_pes // np.maximum(1, others))
            product[over] = others * allowed
            spatials[over, index] = allowed
    tiles = view[:, :, TILE_COLS]
    bounds = np.array([space.dim_bounds[dim] for dim in DIMS], dtype=np.int64)
    np.clip(tiles, 1, bounds, out=tiles)
    return GenomeMatrix(data, num_levels)
