"""Structured genome: the paper's HW-Mapping design-point encoding."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mapping.directives import LevelMapping
from repro.mapping.mapping import Mapping
from repro.workloads.dims import DIM_INDEX, DIMS
from repro.workloads.model import Model


@dataclass
class LevelGenes:
    """Genes of one cluster level (one "config" row in the paper's Fig. 3).

    ``spatial_size`` is the HW gene (``pi``); ``parallel_dim``, ``order``
    and ``tiles`` are the mapping genes.  Instances are mutable on purpose:
    genetic operators perturb them in place on copies.
    """

    spatial_size: int
    parallel_dim: str
    order: List[str]
    tiles: Dict[str, int]

    def copy(self) -> "LevelGenes":
        """Deep copy (lists and dicts are not shared)."""
        return LevelGenes(
            spatial_size=self.spatial_size,
            parallel_dim=self.parallel_dim,
            order=list(self.order),
            tiles=dict(self.tiles),
        )

    def to_level_mapping(self) -> LevelMapping:
        """Freeze into an immutable :class:`LevelMapping`."""
        return LevelMapping(
            spatial_size=max(1, int(self.spatial_size)),
            parallel_dim=self.parallel_dim,
            order=tuple(self.order),
            tiles={dim: max(1, int(self.tiles[dim])) for dim in DIMS},
        )


@dataclass
class Genome:
    """A complete encoded design point: one :class:`LevelGenes` per level."""

    levels: List[LevelGenes]

    def copy(self) -> "Genome":
        """Deep copy of the genome."""
        return Genome(levels=[level.copy() for level in self.levels])

    @property
    def num_levels(self) -> int:
        """Number of cluster levels (the clustering gene)."""
        return len(self.levels)

    @property
    def num_pes(self) -> int:
        """Total PEs implied by the HW genes."""
        total = 1
        for level in self.levels:
            total *= max(1, int(level.spatial_size))
        return total

    @property
    def pe_array(self) -> Tuple[int, ...]:
        """Spatial fan-out per level, outermost first."""
        return tuple(max(1, int(level.spatial_size)) for level in self.levels)

    def to_mapping(self) -> Mapping:
        """Freeze into an immutable :class:`Mapping`."""
        return Mapping(levels=tuple(level.to_level_mapping() for level in self.levels))

    def cache_key(self) -> Tuple:
        """The :meth:`Mapping.cache_key` of the decoded mapping, without decoding.

        Applies the same gene clamping as :meth:`to_mapping`, so
        ``genome.cache_key() == genome.to_mapping().cache_key()`` whenever
        the genome decodes successfully; malformed genomes (bad dimension
        names) raise ``KeyError`` here and ``ValueError`` on decode, and
        genomes with non-permutation orders produce keys no valid mapping
        can share.  Lets the evaluator consult its design memo before paying
        for mapping construction.
        """
        dim_index = DIM_INDEX
        parts = []
        for level in self.levels:
            tiles = level.tiles
            spatial = int(level.spatial_size)
            parts.append(
                (
                    (
                        spatial if spatial > 1 else 1,
                        dim_index[level.parallel_dim],
                        tuple([dim_index[dim] for dim in level.order]),
                    ),
                    tuple([max(1, int(tiles[dim])) for dim in DIMS]),
                )
            )
        return tuple(parts)

    @staticmethod
    def from_mapping(mapping: Mapping) -> "Genome":
        """Build a genome from an existing mapping (e.g. a dataflow template)."""
        return Genome(
            levels=[
                LevelGenes(
                    spatial_size=level.spatial_size,
                    parallel_dim=level.parallel_dim,
                    order=list(level.order),
                    tiles=dict(level.tiles),
                )
                for level in mapping.levels
            ]
        )

    def describe(self) -> str:
        """Compact rendering in the paper's key/value style."""
        return self.to_mapping().describe()


@dataclass(frozen=True)
class GenomeSpace:
    """Bounds of the encoded design space for one model and platform.

    Parameters
    ----------
    dim_bounds:
        Maximum meaningful tile size per dimension: the largest extent of
        that dimension over the model's unique layers.
    max_pes:
        Largest PE count the platform's area budget could possibly afford
        (with zero buffer area); used to bound the HW genes.
    num_levels:
        Number of cluster levels in the hierarchy (2 = the paper's default
        L2 + L1 accelerator).
    fixed_pe_array:
        When set (Fixed-HW use case), the HW genes are pinned to this array
        and only mapping genes are searched.
    """

    dim_bounds: Dict[str, int]
    max_pes: int
    num_levels: int = 2
    fixed_pe_array: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        bounds = {dim: max(1, int(self.dim_bounds.get(dim, 1))) for dim in DIMS}
        object.__setattr__(self, "dim_bounds", bounds)
        if self.max_pes < 1:
            raise ValueError("max_pes must be >= 1")
        if self.num_levels < 1:
            raise ValueError("num_levels must be >= 1")
        if self.fixed_pe_array is not None:
            array = tuple(int(size) for size in self.fixed_pe_array)
            if len(array) != self.num_levels:
                raise ValueError(
                    "fixed_pe_array must have one entry per level "
                    f"({self.num_levels}), got {array}"
                )
            object.__setattr__(self, "fixed_pe_array", array)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_model(
        model: Model,
        max_pes: int,
        num_levels: int = 2,
        fixed_pe_array: Optional[Sequence[int]] = None,
    ) -> "GenomeSpace":
        """Derive tile bounds from a model's unique layers."""
        bounds = {dim: 1 for dim in DIMS}
        for layer in model.unique_layers():
            for dim in DIMS:
                bounds[dim] = max(bounds[dim], layer.dims[dim])
        fixed = tuple(fixed_pe_array) if fixed_pe_array is not None else None
        return GenomeSpace(
            dim_bounds=bounds,
            max_pes=max_pes,
            num_levels=num_levels,
            fixed_pe_array=fixed,
        )

    # -- sampling ----------------------------------------------------------

    @property
    def hw_is_fixed(self) -> bool:
        """True when the HW genes are pinned (Fixed-HW use case)."""
        return self.fixed_pe_array is not None

    def spatial_bound(self, level_index: int) -> int:
        """Upper bound on one level's spatial size gene."""
        if self.hw_is_fixed:
            return self.fixed_pe_array[level_index]
        return max(1, self.max_pes)

    def random_genome(self, rng: np.random.Generator) -> Genome:
        """Sample a random (legal-by-construction) genome."""
        levels: List[LevelGenes] = []
        remaining_pes = self.max_pes
        for level_index in range(self.num_levels):
            if self.hw_is_fixed:
                spatial = self.fixed_pe_array[level_index]
            else:
                levels_left = self.num_levels - level_index
                # Keep the product of spatial sizes within max_pes by sampling
                # each level in log space against the remaining budget.
                bound = max(1, int(round(remaining_pes ** (1.0 / levels_left))) * 2)
                bound = min(bound, remaining_pes)
                spatial = log_uniform_int(rng, 1, max(1, bound))
                remaining_pes = max(1, remaining_pes // spatial)
            order = list(DIMS)
            rng.shuffle(order)
            tiles = {
                dim: log_uniform_int(rng, 1, self.dim_bounds[dim]) for dim in DIMS
            }
            # integers()-indexing draws the same stream as rng.choice,
            # several microseconds cheaper per call.
            parallel_dim = DIMS[rng.integers(len(DIMS))]
            levels.append(
                LevelGenes(
                    spatial_size=int(spatial),
                    parallel_dim=parallel_dim,
                    order=order,
                    tiles=tiles,
                )
            )
        return Genome(levels=levels)

    def random_population(self, size: int, rng: np.random.Generator) -> List[Genome]:
        """Sample ``size`` independent random genomes."""
        if size < 1:
            raise ValueError("population size must be >= 1")
        return [self.random_genome(rng) for _ in range(size)]


def log_uniform_int(rng: np.random.Generator, low: int, high: int) -> int:
    """Sample an integer log-uniformly from ``[low, high]`` (inclusive)."""
    if low < 1:
        raise ValueError("low must be >= 1")
    if high <= low:
        return int(low)
    log_low = math.log(low)
    log_high = math.log(high + 1)
    value = int(math.exp(rng.uniform(log_low, log_high)))
    return max(low, min(high, value))
