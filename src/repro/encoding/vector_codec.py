"""Flat real-vector view of the design-point encoding.

Generic black-box optimizers (CMA-ES, PSO, differential evolution, ...) work
on fixed-length real vectors.  :class:`VectorCodec` maps a ``[0, 1]^n``
vector to a :class:`Genome` and back:

* one coordinate per level for the spatial size (log scale),
* one coordinate per level selecting the parallel dimension,
* six coordinates per level whose ranks give the loop order,
* six coordinates per level for the tile sizes (log scale).

Every vector decodes to a syntactically valid genome, so the black-box
algorithms never see hard failures — only the constraint checker's
penalties, exactly as in the paper's framework.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.encoding.genome import Genome, GenomeSpace, LevelGenes
from repro.encoding.genome_matrix import LEVEL_WIDTH, GenomeMatrix
from repro.workloads.dims import DIMS

#: Coordinates per level: spatial, parallel-dim selector, 6 order keys, 6 tiles.
_PER_LEVEL = 1 + 1 + len(DIMS) + len(DIMS)


class VectorCodec:
    """Bidirectional mapping between ``[0, 1]^n`` vectors and genomes."""

    def __init__(self, space: GenomeSpace):
        self.space = space
        self.dimension = _PER_LEVEL * space.num_levels

    # -- decoding ----------------------------------------------------------

    def decode(self, vector: np.ndarray) -> Genome:
        """Decode a real vector into a genome (values are clipped to [0, 1])."""
        values = np.clip(np.asarray(vector, dtype=float).ravel(), 0.0, 1.0)
        if values.size != self.dimension:
            raise ValueError(
                f"expected a vector of length {self.dimension}, got {values.size}"
            )
        levels: List[LevelGenes] = []
        remaining_pes = self.space.max_pes
        for level_index in range(self.space.num_levels):
            chunk = values[level_index * _PER_LEVEL : (level_index + 1) * _PER_LEVEL]
            spatial = self._decode_spatial(chunk[0], level_index, remaining_pes)
            remaining_pes = max(1, remaining_pes // spatial)
            parallel_dim = DIMS[min(len(DIMS) - 1, int(chunk[1] * len(DIMS)))]
            order_keys = chunk[2 : 2 + len(DIMS)]
            order = [DIMS[i] for i in np.argsort(order_keys, kind="stable")]
            tile_keys = chunk[2 + len(DIMS) :]
            tiles = {
                dim: _scale_log(tile_keys[i], 1, self.space.dim_bounds[dim])
                for i, dim in enumerate(DIMS)
            }
            levels.append(
                LevelGenes(
                    spatial_size=spatial,
                    parallel_dim=parallel_dim,
                    order=order,
                    tiles=tiles,
                )
            )
        return Genome(levels=levels)

    def decode_matrix(self, vectors) -> GenomeMatrix:
        """Decode a batch of vectors straight into gene-matrix rows.

        Row ``i`` carries exactly the genes of ``self.decode(vectors[i])``
        (same scalar log-scaling per gene, so the decoded values are
        bit-identical), without constructing any :class:`Genome` — this is
        how the flat-vector optimizers (DE, PSO, CMA) enter the population
        data path.
        """
        num_levels = self.space.num_levels
        rows = np.empty((len(vectors), LEVEL_WIDTH * num_levels), dtype=np.int64)
        dims_count = len(DIMS)
        bounds = [self.space.dim_bounds[dim] for dim in DIMS]
        for row, vector in zip(rows, vectors):
            values = np.clip(np.asarray(vector, dtype=float).ravel(), 0.0, 1.0)
            if values.size != self.dimension:
                raise ValueError(
                    f"expected a vector of length {self.dimension}, "
                    f"got {values.size}"
                )
            remaining_pes = self.space.max_pes
            for level_index in range(num_levels):
                chunk = values[
                    level_index * _PER_LEVEL : (level_index + 1) * _PER_LEVEL
                ]
                base = level_index * LEVEL_WIDTH
                spatial = self._decode_spatial(chunk[0], level_index, remaining_pes)
                remaining_pes = max(1, remaining_pes // spatial)
                row[base] = spatial
                row[base + 1] = min(dims_count - 1, int(chunk[1] * dims_count))
                row[base + 2 : base + 8] = np.argsort(
                    chunk[2 : 2 + dims_count], kind="stable"
                )
                tile_keys = chunk[2 + dims_count :]
                for position in range(dims_count):
                    row[base + 8 + position] = _scale_log(
                        tile_keys[position], 1, bounds[position]
                    )
        return GenomeMatrix(rows, num_levels)

    # -- encoding ----------------------------------------------------------

    def encode(self, genome: Genome) -> np.ndarray:
        """Approximate inverse of :meth:`decode` (useful for seeding searches)."""
        if genome.num_levels != self.space.num_levels:
            raise ValueError(
                f"genome has {genome.num_levels} levels, codec expects "
                f"{self.space.num_levels}"
            )
        vector = np.zeros(self.dimension, dtype=float)
        remaining_pes = self.space.max_pes
        for level_index, level in enumerate(genome.levels):
            base = level_index * _PER_LEVEL
            bound = max(1, remaining_pes) if not self.space.hw_is_fixed else 1
            vector[base] = _unscale_log(level.spatial_size, 1, max(1, bound))
            remaining_pes = max(1, remaining_pes // max(1, level.spatial_size))
            vector[base + 1] = (DIMS.index(level.parallel_dim) + 0.5) / len(DIMS)
            for rank, dim in enumerate(level.order):
                vector[base + 2 + DIMS.index(dim)] = (rank + 0.5) / len(DIMS)
            for i, dim in enumerate(DIMS):
                vector[base + 2 + len(DIMS) + i] = _unscale_log(
                    level.tiles[dim], 1, self.space.dim_bounds[dim]
                )
        return vector

    def random_vector(self, rng: np.random.Generator) -> np.ndarray:
        """Sample a uniform random vector in ``[0, 1]^n``."""
        return rng.random(self.dimension)

    # -- internals ---------------------------------------------------------

    def _decode_spatial(self, value: float, level_index: int, remaining: int) -> int:
        if self.space.hw_is_fixed:
            return self.space.fixed_pe_array[level_index]
        return _scale_log(value, 1, max(1, remaining))


def _scale_log(value: float, low: int, high: int) -> int:
    """Map ``value`` in [0, 1] to an integer in [low, high] on a log scale."""
    if high <= low:
        return int(low)
    log_low = math.log(low)
    log_high = math.log(high + 1)
    scaled = int(math.exp(log_low + float(value) * (log_high - log_low)))
    return max(low, min(high, scaled))


def _unscale_log(value: int, low: int, high: int) -> float:
    """Map an integer in [low, high] back to [0, 1] on a log scale."""
    if high <= low:
        return 0.5
    log_low = math.log(low)
    log_high = math.log(high + 1)
    return min(1.0, max(0.0, (math.log(max(low, value)) - log_low) / (log_high - log_low)))
