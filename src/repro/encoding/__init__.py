"""Design-point encoding.

The paper's contribution #2: a compact per-level gene list describing both
HW (``pi`` spatial sizes; buffers are derived, not encoded) and mapping
(parallel dimension, loop order, tile sizes).  Two views are provided:

* :class:`~repro.encoding.genome.Genome` — the structured gene list DiGamma
  and the GAMMA-style operators manipulate directly.
* :class:`~repro.encoding.genome_matrix.GenomeMatrix` — a whole population
  as one int64 member x gene NumPy array, the representation the search
  inner loops and the vector cost engine operate on.
* :class:`~repro.encoding.vector_codec.VectorCodec` — a fixed-length
  ``[0, 1]`` real vector so that generic black-box optimizers (CMA, PSO,
  DE, ...) can be plugged into the same framework.
"""

from repro.encoding.genome import Genome, GenomeSpace, LevelGenes
from repro.encoding.genome_matrix import GenomeMatrix, repaired_matrix
from repro.encoding.repair import repair_genome
from repro.encoding.vector_codec import VectorCodec

__all__ = [
    "Genome",
    "GenomeMatrix",
    "GenomeSpace",
    "LevelGenes",
    "VectorCodec",
    "repair_genome",
    "repaired_matrix",
]
