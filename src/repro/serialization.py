"""JSON (de)serialization of design points and search results.

Design-space exploration only pays off if the winning design can leave the
search process: these helpers turn hardware configurations, mappings,
genomes and full accelerator designs into plain JSON-compatible dictionaries
(and back, for the searchable objects), so results can be stored, diffed and
shipped to RTL or compiler toolchains.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.arch.area import AreaBreakdown
from repro.arch.hardware import HardwareConfig
from repro.encoding.genome import Genome, LevelGenes
from repro.framework.designpoint import AcceleratorDesign
from repro.framework.search import SearchResult
from repro.mapping.directives import LevelMapping
from repro.mapping.mapping import Mapping
from repro.workloads.dims import DIMS

PathLike = Union[str, Path]


# -- hardware ----------------------------------------------------------------


def hardware_to_dict(hardware: HardwareConfig) -> Dict[str, Any]:
    """Serialize a hardware configuration."""
    return {
        "pe_array": list(hardware.pe_array),
        "l1_size": hardware.l1_size,
        "l2_size": hardware.l2_size,
        "noc_bandwidth": hardware.noc_bandwidth,
        "dram_bandwidth": hardware.dram_bandwidth,
        "bytes_per_element": hardware.bytes_per_element,
        "frequency_mhz": hardware.frequency_mhz,
    }


def hardware_from_dict(data: Dict[str, Any]) -> HardwareConfig:
    """Rebuild a hardware configuration from :func:`hardware_to_dict` output."""
    return HardwareConfig(
        pe_array=tuple(data["pe_array"]),
        l1_size=int(data["l1_size"]),
        l2_size=int(data["l2_size"]),
        noc_bandwidth=float(data["noc_bandwidth"]),
        dram_bandwidth=float(data["dram_bandwidth"]),
        bytes_per_element=int(data.get("bytes_per_element", 1)),
        frequency_mhz=float(data.get("frequency_mhz", 1000.0)),
    )


# -- mapping and genome --------------------------------------------------------


def mapping_to_dict(mapping: Mapping) -> Dict[str, Any]:
    """Serialize a mapping (same layout as ``Mapping.as_dict``)."""
    return mapping.as_dict()


def mapping_from_dict(data: Dict[str, Any]) -> Mapping:
    """Rebuild a mapping from :func:`mapping_to_dict` output."""
    levels = []
    for level in data["levels"]:
        levels.append(
            LevelMapping(
                spatial_size=int(level["spatial_size"]),
                parallel_dim=str(level["parallel_dim"]),
                order=tuple(level["order"]),
                tiles={dim: int(level["tiles"][dim]) for dim in DIMS},
            )
        )
    return Mapping(levels=tuple(levels))


def genome_to_dict(genome: Genome) -> Dict[str, Any]:
    """Serialize a genome."""
    return {
        "levels": [
            {
                "spatial_size": level.spatial_size,
                "parallel_dim": level.parallel_dim,
                "order": list(level.order),
                "tiles": {dim: level.tiles[dim] for dim in DIMS},
            }
            for level in genome.levels
        ]
    }


def genome_from_dict(data: Dict[str, Any]) -> Genome:
    """Rebuild a genome from :func:`genome_to_dict` output."""
    levels = []
    for level in data["levels"]:
        levels.append(
            LevelGenes(
                spatial_size=int(level["spatial_size"]),
                parallel_dim=str(level["parallel_dim"]),
                order=list(level["order"]),
                tiles={dim: int(level["tiles"][dim]) for dim in DIMS},
            )
        )
    return Genome(levels=levels)


# -- designs and results -------------------------------------------------------


def design_to_dict(design: AcceleratorDesign) -> Dict[str, Any]:
    """Serialize a decoded accelerator design with its headline metrics."""
    pe_pct, buffer_pct = design.area.pe_to_buffer_ratio
    return {
        "hardware": hardware_to_dict(design.hardware),
        "mapping": mapping_to_dict(design.mapping),
        "metrics": {
            "latency_cycles": design.latency,
            "energy": design.energy,
            "latency_area_product": design.latency_area_product,
            "area_um2": design.area.total,
            "pe_area_pct": pe_pct,
            "buffer_area_pct": buffer_pct,
            "num_pes": design.hardware.num_pes,
            "average_utilization": design.performance.average_utilization,
            "dram_bytes": design.performance.dram_bytes,
        },
        "per_layer": [
            {
                "name": layer.layer_name,
                "count": layer.count,
                "latency_cycles": layer.latency,
                "utilization": layer.utilization,
                "bottleneck": layer.bottleneck,
                "dram_bytes": layer.dram_bytes,
            }
            for layer in design.performance.layers
        ],
    }


def search_result_to_dict(result: SearchResult) -> Dict[str, Any]:
    """Serialize a search outcome (best design plus convergence history)."""
    payload: Dict[str, Any] = {
        "optimizer": result.optimizer_name,
        "evaluations": result.evaluations,
        "sampling_budget": result.sampling_budget,
        "wall_time_seconds": result.wall_time_seconds,
        "found_valid": result.found_valid,
        "history": [list(point) for point in result.history],
    }
    if result.found_valid:
        payload["best"] = design_to_dict(result.best.design)
        if result.best.genome is not None:
            payload["best"]["genome"] = genome_to_dict(result.best.genome)
    return payload


# -- file helpers --------------------------------------------------------------


def save_json(data: Dict[str, Any], path: PathLike) -> Path:
    """Write a serialized object to ``path`` as indented JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(data, indent=2, sort_keys=True))
    return target


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read a JSON file previously written by :func:`save_json`."""
    return json.loads(Path(path).read_text())
