"""JSON (de)serialization of design points and search results.

Design-space exploration only pays off if the winning design can leave the
search process: these helpers turn hardware configurations, mappings,
genomes and full accelerator designs into plain JSON-compatible dictionaries
(and back, for the searchable objects), so results can be stored, diffed and
shipped to RTL or compiler toolchains.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.arch.area import AreaBreakdown
from repro.arch.hardware import HardwareConfig
from repro.cost.performance import LayerPerformance, ModelPerformance
from repro.encoding.genome import Genome, LevelGenes
from repro.framework.designpoint import AcceleratorDesign
from repro.framework.evaluator import EvaluationResult
from repro.framework.objective import Objective
from repro.framework.pareto import ParetoResult
from repro.framework.search import SearchResult
from repro.mapping.directives import LevelMapping
from repro.mapping.mapping import Mapping
from repro.workloads.dims import DIMS

PathLike = Union[str, Path]


# -- hardware ----------------------------------------------------------------


def hardware_to_dict(hardware: HardwareConfig) -> Dict[str, Any]:
    """Serialize a hardware configuration."""
    return {
        "pe_array": list(hardware.pe_array),
        "l1_size": hardware.l1_size,
        "l2_size": hardware.l2_size,
        "noc_bandwidth": hardware.noc_bandwidth,
        "dram_bandwidth": hardware.dram_bandwidth,
        "bytes_per_element": hardware.bytes_per_element,
        "frequency_mhz": hardware.frequency_mhz,
    }


def hardware_from_dict(data: Dict[str, Any]) -> HardwareConfig:
    """Rebuild a hardware configuration from :func:`hardware_to_dict` output."""
    return HardwareConfig(
        pe_array=tuple(data["pe_array"]),
        l1_size=int(data["l1_size"]),
        l2_size=int(data["l2_size"]),
        noc_bandwidth=float(data["noc_bandwidth"]),
        dram_bandwidth=float(data["dram_bandwidth"]),
        bytes_per_element=int(data.get("bytes_per_element", 1)),
        frequency_mhz=float(data.get("frequency_mhz", 1000.0)),
    )


# -- mapping and genome --------------------------------------------------------


def mapping_to_dict(mapping: Mapping) -> Dict[str, Any]:
    """Serialize a mapping (same layout as ``Mapping.as_dict``)."""
    return mapping.as_dict()


def mapping_from_dict(data: Dict[str, Any]) -> Mapping:
    """Rebuild a mapping from :func:`mapping_to_dict` output."""
    levels = []
    for level in data["levels"]:
        levels.append(
            LevelMapping(
                spatial_size=int(level["spatial_size"]),
                parallel_dim=str(level["parallel_dim"]),
                order=tuple(level["order"]),
                tiles={dim: int(level["tiles"][dim]) for dim in DIMS},
            )
        )
    return Mapping(levels=tuple(levels))


def genome_to_dict(genome: Genome) -> Dict[str, Any]:
    """Serialize a genome."""
    return {
        "levels": [
            {
                "spatial_size": level.spatial_size,
                "parallel_dim": level.parallel_dim,
                "order": list(level.order),
                "tiles": {dim: level.tiles[dim] for dim in DIMS},
            }
            for level in genome.levels
        ]
    }


def genome_from_dict(data: Dict[str, Any]) -> Genome:
    """Rebuild a genome from :func:`genome_to_dict` output."""
    levels = []
    for level in data["levels"]:
        levels.append(
            LevelGenes(
                spatial_size=int(level["spatial_size"]),
                parallel_dim=str(level["parallel_dim"]),
                order=list(level["order"]),
                tiles={dim: int(level["tiles"][dim]) for dim in DIMS},
            )
        )
    return Genome(levels=levels)


# -- designs and results -------------------------------------------------------


def layer_performance_to_dict(layer: LayerPerformance) -> Dict[str, Any]:
    """Serialize one layer's cost-model report (lossless)."""
    return {
        "name": layer.layer_name,
        "count": layer.count,
        "latency_cycles": layer.latency,
        "compute_cycles": layer.compute_cycles,
        "noc_cycles": layer.noc_cycles,
        "dram_cycles": layer.dram_cycles,
        "macs": layer.macs,
        "l2_to_l1_bytes": layer.l2_to_l1_bytes,
        "dram_bytes": layer.dram_bytes,
        "l1_access_bytes": layer.l1_access_bytes,
        "energy": layer.energy,
        "active_pes": layer.active_pes,
        "num_pes": layer.num_pes,
        "l1_requirement_bytes": layer.l1_requirement_bytes,
        "l2_requirement_bytes": layer.l2_requirement_bytes,
        # Derived quantities, kept for human consumption of the JSON.
        "utilization": layer.utilization,
        "bottleneck": layer.bottleneck,
    }


def layer_performance_from_dict(data: Dict[str, Any]) -> LayerPerformance:
    """Rebuild one layer report from :func:`layer_performance_to_dict` output."""
    return LayerPerformance(
        layer_name=str(data["name"]),
        latency=float(data["latency_cycles"]),
        compute_cycles=float(data["compute_cycles"]),
        noc_cycles=float(data["noc_cycles"]),
        dram_cycles=float(data["dram_cycles"]),
        macs=int(data["macs"]),
        l2_to_l1_bytes=float(data["l2_to_l1_bytes"]),
        dram_bytes=float(data["dram_bytes"]),
        l1_access_bytes=float(data["l1_access_bytes"]),
        energy=float(data["energy"]),
        active_pes=int(data["active_pes"]),
        num_pes=int(data["num_pes"]),
        l1_requirement_bytes=int(data["l1_requirement_bytes"]),
        l2_requirement_bytes=int(data["l2_requirement_bytes"]),
        count=int(data.get("count", 1)),
    )


def design_to_dict(design: AcceleratorDesign) -> Dict[str, Any]:
    """Serialize a decoded accelerator design with its headline metrics.

    The payload is lossless: :func:`design_from_dict` rebuilds an equal
    design (hardware, mapping, per-layer performance and area breakdown),
    which is what lets a JSONL result store feed ``--resume`` and render
    byte-identical tables without re-evaluating anything.
    """
    pe_pct, buffer_pct = design.area.pe_to_buffer_ratio
    return {
        "model": design.performance.model_name,
        "hardware": hardware_to_dict(design.hardware),
        "mapping": mapping_to_dict(design.mapping),
        "area": {
            "pe_area": design.area.pe_area,
            "l1_area": design.area.l1_area,
            "l2_area": design.area.l2_area,
        },
        "metrics": {
            "latency_cycles": design.latency,
            "energy": design.energy,
            "latency_area_product": design.latency_area_product,
            "area_um2": design.area.total,
            "pe_area_pct": pe_pct,
            "buffer_area_pct": buffer_pct,
            "num_pes": design.hardware.num_pes,
            "average_utilization": design.performance.average_utilization,
            "dram_bytes": design.performance.dram_bytes,
        },
        "per_layer": [
            layer_performance_to_dict(layer) for layer in design.performance.layers
        ],
    }


def design_from_dict(data: Dict[str, Any]) -> AcceleratorDesign:
    """Rebuild an accelerator design from :func:`design_to_dict` output."""
    performance = ModelPerformance(
        model_name=str(data.get("model", "")),
        layers=tuple(
            layer_performance_from_dict(layer) for layer in data["per_layer"]
        ),
    )
    area = AreaBreakdown(
        pe_area=float(data["area"]["pe_area"]),
        l1_area=float(data["area"]["l1_area"]),
        l2_area=float(data["area"]["l2_area"]),
    )
    return AcceleratorDesign(
        hardware=hardware_from_dict(data["hardware"]),
        mapping=mapping_from_dict(data["mapping"]),
        performance=performance,
        area=area,
    )


def evaluation_result_to_dict(result: EvaluationResult) -> Dict[str, Any]:
    """Serialize one evaluation result losslessly — valid or not.

    Unlike the store-facing result payloads (which only ship valid bests),
    this captures the *complete* tracker-visible state of a result:
    fitness (including graded invalid penalties), violations and the
    per-objective vector when present.  The search checkpoints
    (:mod:`repro.framework.checkpoint`) rely on this round-tripping
    exactly — a resumed search compares new candidates against the
    restored best's bit-identical fitness.
    """
    payload: Dict[str, Any] = {
        "fitness": result.fitness,
        "valid": result.valid,
        "objective": result.objective.value,
        "objective_value": result.objective_value,
        "design": design_to_dict(result.design),
        "violations": list(result.violations),
    }
    if result.genome is not None:
        payload["genome"] = genome_to_dict(result.genome)
    if result.objective_vector is not None:
        payload["objective_vector"] = list(result.objective_vector)
    return payload


def evaluation_result_from_dict(data: Dict[str, Any]) -> EvaluationResult:
    """Rebuild an evaluation result from :func:`evaluation_result_to_dict`."""
    vector = data.get("objective_vector")
    return EvaluationResult(
        fitness=float(data["fitness"]),
        valid=bool(data["valid"]),
        objective=Objective.from_name(data["objective"]),
        objective_value=float(data["objective_value"]),
        design=design_from_dict(data["design"]),
        violations=tuple(data.get("violations", ())),
        genome=(
            genome_from_dict(data["genome"]) if "genome" in data else None
        ),
        objective_vector=(
            tuple(float(value) for value in vector) if vector is not None else None
        ),
    )


def search_result_to_dict(result: SearchResult) -> Dict[str, Any]:
    """Serialize a search outcome (best design plus convergence history)."""
    payload: Dict[str, Any] = {
        "optimizer": result.optimizer_name,
        "evaluations": result.evaluations,
        "sampling_budget": result.sampling_budget,
        "wall_time_seconds": result.wall_time_seconds,
        "found_valid": result.found_valid,
        "history": [list(point) for point in result.history],
    }
    if result.found_valid:
        payload["best"] = design_to_dict(result.best.design)
        payload["best"]["fitness"] = result.best.fitness
        payload["best"]["objective"] = result.best.objective.value
        payload["best"]["objective_value"] = result.best.objective_value
        if result.best.genome is not None:
            payload["best"]["genome"] = genome_to_dict(result.best.genome)
    return payload


def search_result_from_dict(data: Dict[str, Any]) -> SearchResult:
    """Rebuild a search outcome from :func:`search_result_to_dict` output.

    The best design (and its genome, when stored) is reconstructed in full,
    so every derived metric the experiment tables use — ``best_latency``,
    ``best_latency_area_product``, ``best_objective_value`` — matches the
    original result exactly.  Results that found no valid design come back
    with ``best=None``; the invalid best-so-far point (if any) is not
    serialized in the first place.
    """
    best: "EvaluationResult | None" = None
    if data.get("found_valid") and "best" in data:
        stored = data["best"]
        design = design_from_dict(stored)
        objective = Objective.from_name(stored.get("objective", "latency"))
        genome = (
            genome_from_dict(stored["genome"]) if "genome" in stored else None
        )
        objective_value = float(
            stored.get("objective_value", stored["metrics"]["latency_cycles"])
        )
        best = EvaluationResult(
            fitness=float(stored.get("fitness", -objective_value)),
            valid=True,
            objective=objective,
            objective_value=objective_value,
            design=design,
            violations=(),
            genome=genome,
        )
    return SearchResult(
        optimizer_name=str(data["optimizer"]),
        best=best,
        evaluations=int(data["evaluations"]),
        sampling_budget=int(data["sampling_budget"]),
        wall_time_seconds=float(data["wall_time_seconds"]),
        history=tuple(
            (int(index), float(fitness)) for index, fitness in data.get("history", ())
        ),
    )


# -- Pareto fronts -------------------------------------------------------------


def pareto_result_to_dict(result: ParetoResult) -> Dict[str, Any]:
    """Serialize a multi-objective search outcome (lossless front).

    Every front member ships its full design (the same payload as a
    single-objective best) plus its per-objective value vector, so a stored
    front can be re-rendered, merged with other fronts and fed to
    downstream toolchains without re-evaluating anything.
    """
    front = []
    for entry in result.front:
        member: Dict[str, Any] = {
            "design": design_to_dict(entry.design),
            "fitness": entry.fitness,
            "objective": entry.objective.value,
            "objective_value": entry.objective_value,
            "objective_values": list(entry.objective_vector),
        }
        if entry.genome is not None:
            member["genome"] = genome_to_dict(entry.genome)
        front.append(member)
    return {
        "optimizer": result.optimizer_name,
        "objectives": list(result.objective_names),
        "evaluations": result.evaluations,
        "sampling_budget": result.sampling_budget,
        "wall_time_seconds": result.wall_time_seconds,
        "batch_calls": result.batch_calls,
        "batched_evaluations": result.batched_evaluations,
        "front": front,
    }


def pareto_result_from_dict(data: Dict[str, Any]) -> ParetoResult:
    """Rebuild a multi-objective outcome from :func:`pareto_result_to_dict`."""
    objectives = tuple(Objective.from_name(name) for name in data["objectives"])
    front = []
    for member in data["front"]:
        vector = tuple(float(value) for value in member["objective_values"])
        objective = Objective.from_name(member.get("objective", objectives[0].value))
        objective_value = float(member.get("objective_value", vector[0]))
        genome = (
            genome_from_dict(member["genome"]) if "genome" in member else None
        )
        front.append(
            EvaluationResult(
                fitness=float(member.get("fitness", -objective_value)),
                valid=True,
                objective=objective,
                objective_value=objective_value,
                design=design_from_dict(member["design"]),
                violations=(),
                genome=genome,
                objective_vector=vector,
            )
        )
    return ParetoResult(
        optimizer_name=str(data["optimizer"]),
        objectives=objectives,
        front=tuple(front),
        evaluations=int(data["evaluations"]),
        sampling_budget=int(data["sampling_budget"]),
        wall_time_seconds=float(data["wall_time_seconds"]),
        batch_calls=int(data.get("batch_calls", 0)),
        batched_evaluations=int(data.get("batched_evaluations", 0)),
    )


def result_to_dict(result: Union[SearchResult, ParetoResult]) -> Dict[str, Any]:
    """Serialize either kind of search outcome (dispatch by type)."""
    if isinstance(result, ParetoResult):
        return pareto_result_to_dict(result)
    return search_result_to_dict(result)


def result_from_dict(data: Dict[str, Any]) -> Union[SearchResult, ParetoResult]:
    """Rebuild either kind of search outcome (dispatch on the payload).

    Pareto payloads are recognized by their ``"front"`` key; everything
    else deserializes as a single-objective :class:`SearchResult`, so
    stores written before multi-objective search existed keep loading.
    """
    if "front" in data:
        return pareto_result_from_dict(data)
    return search_result_from_dict(data)


# -- file helpers --------------------------------------------------------------


def save_json(data: Dict[str, Any], path: PathLike) -> Path:
    """Write a serialized object to ``path`` as indented JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(data, indent=2, sort_keys=True))
    return target


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read a JSON file previously written by :func:`save_json`."""
    return json.loads(Path(path).read_text())
