"""DiGamma reproduction: HW-Mapping co-optimization for DNN accelerators.

Reproduction of "DiGamma: Domain-aware Genetic Algorithm for HW-Mapping
Co-optimization for DNN Accelerators" (DATE 2022).  The top-level package
re-exports the pieces most users need:

>>> from repro import CoOptimizationFramework, DiGamma, get_model, EDGE
>>> framework = CoOptimizationFramework(get_model("resnet18"), EDGE)
>>> result = framework.search(DiGamma(), sampling_budget=500, seed=0)
>>> result.found_valid
True
"""

from repro.arch import CLOUD, EDGE, AreaModel, EnergyModel, HardwareConfig, Platform, get_platform
from repro.cost import CostModel
from repro.encoding import Genome, GenomeSpace, VectorCodec
from repro.framework import (
    AcceleratorDesign,
    CoOptimizationFramework,
    DesignEvaluator,
    Objective,
    SearchResult,
)
from repro.mapping import Mapping, get_dataflow
from repro.optim import (
    CMAES,
    DiGamma,
    GammaMapper,
    HardwareGridSearch,
    available_optimizers,
    get_optimizer,
)
from repro.workloads import Layer, Model, ModelSuite, available_models, get_model

__version__ = "1.0.0"

__all__ = [
    "AcceleratorDesign",
    "AreaModel",
    "CLOUD",
    "CMAES",
    "CoOptimizationFramework",
    "CostModel",
    "DesignEvaluator",
    "DiGamma",
    "EDGE",
    "EnergyModel",
    "GammaMapper",
    "Genome",
    "GenomeSpace",
    "HardwareConfig",
    "HardwareGridSearch",
    "Layer",
    "Mapping",
    "Model",
    "ModelSuite",
    "Objective",
    "Platform",
    "SearchResult",
    "VectorCodec",
    "available_models",
    "available_optimizers",
    "get_dataflow",
    "get_model",
    "get_optimizer",
    "get_platform",
    "__version__",
]
