"""Persistent cross-run layer-report cache: the L2 tier under the LRU.

Layer reports are pure functions of (layer shape, clipped mapping key,
bandwidths, cost-backend configuration), and the gene-matrix path already
fingerprints that whole composite key into content-addressed row bytes
(see :meth:`repro.cost.maestro.CostModel.evaluate_model_matrix`).  This
module turns those fingerprints into a crash-safe on-disk store so the
in-memory :class:`~repro.cost.cache.LRUCache` becomes an L1 over an L2
shared by worker processes, sweep jobs and successive runs: repeat
queries become lookups instead of engine evaluations.

Keying
------

Entries are addressed by a SHA-1 digest of three parts:

* a **namespace** — :data:`KEY_VERSION`, the cost-backend name, the
  element width and the energy coefficients — so rows priced under
  different backends or technology models can never alias;
* a **statics blob** — the layer's canonical shape signature (operator
  name, dimension sizes, stride).  The in-memory fingerprints embed a
  *process-local* statics token (``LRUCache.tokens``); the digest
  replaces it with this content form, which is what makes the key stable
  across processes and runs; and
* the **gene tail** — the per-level (spatial, parallel, order, tiles)
  integers plus both bandwidth float bit patterns, exactly the layout of
  a matrix work row after its token column.

The scalar tuple keys and the packed matrix rows canonicalize to the same
digest, so a search warmed on one engine path serves every other.

Durability
----------

The data file is append-only JSONL with a header record, written with the
:class:`~repro.experiments.runner.ResultStore` discipline: one ``write``
syscall per flush on an ``O_APPEND`` descriptor (concurrent writers never
interleave bytes), partial trailing lines healed by prefixing a newline,
undecodable lines counted and reported via
:class:`PersistentCacheCorruption` — a damaged record is *never served*;
lookups re-verify the stored digest before returning a row.  The binary
index sidecar is a rebuildable accelerator: any inconsistency (torn
entry, stale header, wrong version) discards it and rescans the data
file, which remains the single source of truth.  A data file whose header
does not match :data:`FORMAT_NAME`/:data:`KEY_VERSION` is quarantined
(renamed aside) and the cache starts fresh rather than risk serving rows
keyed under different rules.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import warnings
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

#: Bump when the digest composition or the record layout changes; stores
#: written under another version are quarantined, never reinterpreted.
KEY_VERSION = 1

#: Header ``format`` field of the data file.
FORMAT_NAME = "repro-layer-cache"

#: File names inside the cache directory.
DATA_FILE = "layers.jsonl"
INDEX_FILE = "layers.index"

_INDEX_MAGIC = b"RPLC"
_INDEX_VERSION = 1
#: magic, index version, key version, covered data size, entry count.
_INDEX_HEADER = struct.Struct("<4sIIQQ")
#: 20-byte SHA-1 digest, data-file offset, record length.
_INDEX_RECORD = struct.Struct("<20sQI")


class PersistentCacheCorruption(UserWarning):
    """A persistent cache file contained damaged or mismatched content.

    Mirrors :class:`~repro.experiments.runner.ResultStoreCorruption`
    semantics: the store heals or quarantines and keeps working; nothing
    damaged is ever served back as a layer report.
    """


# -- digest helpers ------------------------------------------------------------

#: Content blobs per canonical statics instance (statics are identity-
#: hashed and immortal — see :mod:`repro.workloads.statics` — so this
#: memo is bounded by the number of distinct layer shapes ever seen).
_STATICS_BLOBS: Dict[object, bytes] = {}


def cache_namespace(
    backend: str,
    bytes_per_element: int,
    energy_coefficients: Sequence[float],
) -> bytes:
    """Digest scoping every key to one cost-backend configuration.

    Joins :data:`KEY_VERSION`, so a format bump invalidates every old
    digest at once; bandwidths live in the gene tail, and the model
    identity is carried by each row's statics blob, so neither needs to
    appear here.
    """
    blob = repr(
        (
            KEY_VERSION,
            str(backend),
            int(bytes_per_element),
            tuple(float(value) for value in energy_coefficients),
        )
    ).encode()
    return hashlib.sha1(blob).digest()


def statics_blob(statics) -> bytes:
    """Stable content form of one layer-shape signature."""
    blob = _STATICS_BLOBS.get(statics)
    if blob is None:
        op_type, dims, stride = statics.signature
        blob = repr((op_type.name, tuple(dims), int(stride))).encode()
        _STATICS_BLOBS[statics] = blob
    return blob


def row_digest(namespace: bytes, blob: bytes, tail: bytes) -> bytes:
    """SHA-1 of (namespace, statics blob, gene tail) — the L2 address."""
    digest = hashlib.sha1(namespace)
    digest.update(blob)
    digest.update(tail)
    return digest.digest()


def matrix_row_digest(namespace: bytes, blob: bytes, fingerprint: bytes) -> bytes:
    """Digest of one packed work row (token column stripped, tail kept)."""
    return row_digest(namespace, blob, fingerprint[8:])


def tuple_key_digest(
    namespace: bytes,
    statics,
    key: tuple,
    noc_bandwidth: float,
    dram_bandwidth: float,
) -> bytes:
    """Digest of one scalar-path composite cache key.

    Flattens the per-level ``((spatial, parallel, order), tiles)`` tuples
    in matrix gene order and appends both bandwidth float bit patterns,
    reproducing a packed work row's byte tail exactly, so scalar- and
    matrix-path queries for the same logical row share one digest.  Keys
    whose integers exceed int64 (possible on the exact tuple path, never
    on a matrix row) fall back to a ``repr`` tail: still deterministic,
    just not shared with the matrix form that cannot represent them.
    """
    genes = []
    for (spatial, parallel, order), tiles in key:
        genes.append(spatial)
        genes.append(parallel)
        genes.extend(order)
        genes.extend(tiles)
    try:
        tail = struct.pack(f"={len(genes)}q", *genes)
    except (struct.error, OverflowError):
        tail = repr(key).encode()
    tail += struct.pack("=dd", noc_bandwidth, dram_bandwidth)
    return row_digest(namespace, statics_blob(statics), tail)


def _plain(value: Union[int, float]) -> Union[int, float]:
    """Coerce a report scalar to a JSON-exact built-in int or float."""
    kind = type(value)
    if kind is int or kind is float:
        return value
    if isinstance(value, float):
        return float(value)
    return int(value)


class PersistentLayerCache:
    """Crash-safe shared on-disk store of layer-report value tuples.

    One instance fronts one cache directory.  Opening is lazy (the first
    ``get``/``put`` touches disk), writes buffer in memory until
    :meth:`flush` — which the cost models call once per evaluation pass,
    emitting the whole batch as a single ``O_APPEND`` write — and
    :meth:`close` additionally rewrites the index sidecar atomically.  A
    closed cache transparently reopens on the next lookup, so sharing one
    instance across sweep jobs (via ``adopt_cache``) is safe even when a
    finished job closes its evaluator.

    Instances pickle as (directory, durability) and reopen lazily on the
    other side, so worker processes of an evaluation pool read and append
    the same store; the ``O_APPEND`` single-write discipline keeps
    concurrent appends intact at line granularity.
    """

    def __init__(self, directory, durability: str = "flush"):
        if durability not in ("flush", "fsync"):
            raise ValueError(
                f"durability must be 'flush' or 'fsync', got {durability!r}"
            )
        self.directory = Path(directory)
        self.durability = durability
        #: Tier counters (this process; workers count in their own copy).
        self.l2_hits = 0
        self.l2_misses = 0
        self.l2_writes = 0
        #: Undecodable / mismatched data lines seen while scanning.
        self.corrupt_lines = 0
        #: Entries found on disk at open — the cross-run carryover.
        self.loaded_entries = 0
        self._offsets: Optional[Dict[bytes, Tuple[int, int]]] = None
        self._buffer: Dict[bytes, tuple] = {}
        self._descriptor: Optional[int] = None

    # -- paths -------------------------------------------------------------

    @property
    def data_path(self) -> Path:
        return self.directory / DATA_FILE

    @property
    def index_path(self) -> Path:
        return self.directory / INDEX_FILE

    # -- lookups / inserts -------------------------------------------------

    def get(self, digest: bytes) -> Optional[tuple]:
        """Return the stored value tuple for ``digest`` or ``None``.

        Every served row is re-verified against its stored digest: a
        record that fails to parse or keys differently (bit rot, torn
        write) counts as corruption and reads as a miss — the caller
        falls back to engine pricing, never to a wrong row.
        """
        if self._offsets is None:
            self._open()
        value = self._buffer.get(digest)
        if value is not None:
            self.l2_hits += 1
            return value
        location = self._offsets.get(digest)
        if location is None:
            self.l2_misses += 1
            return None
        offset, length = location
        values = self._read_record(digest, offset, length)
        if values is None:
            del self._offsets[digest]
            self.corrupt_lines += 1
            self.l2_misses += 1
            warnings.warn(
                f"{self.data_path}: dropped one unreadable cache record at "
                f"offset {offset} (served as a miss)",
                PersistentCacheCorruption,
                stacklevel=2,
            )
            return None
        self.l2_hits += 1
        return values

    def put(self, digest: bytes, values: Sequence[Union[int, float]]) -> None:
        """Buffer one freshly priced row for the next :meth:`flush`."""
        if self._offsets is None:
            self._open()
        if digest in self._buffer or digest in self._offsets:
            return
        self._buffer[digest] = tuple(_plain(value) for value in values)
        self.l2_writes += 1

    def flush(self) -> None:
        """Append all buffered rows as one crash-safe ``write`` syscall."""
        if not self._buffer:
            return
        descriptor = self._ensure_descriptor()
        size = os.fstat(descriptor).st_size
        prefix = b""
        if size > 0 and os.pread(descriptor, 1, size - 1) != b"\n":
            # A previous writer died mid-line: close its partial line so
            # one crash can never corrupt two records.
            prefix = b"\n"
        pieces = []
        locations = []
        cursor = size + len(prefix)
        for digest, values in self._buffer.items():
            line = (
                json.dumps({"k": digest.hex(), "v": list(values)}) + "\n"
            ).encode()
            pieces.append(line)
            locations.append((digest, cursor, len(line)))
            cursor += len(line)
        data = prefix + b"".join(pieces)
        view = memoryview(data)
        while view:  # short writes (ENOSPC, signals) must not truncate
            view = view[os.write(descriptor, view) :]
        if self.durability == "fsync":
            os.fsync(descriptor)
        for digest, offset, length in locations:
            self._offsets[digest] = (offset, length)
        self._buffer.clear()

    def close(self) -> None:
        """Flush, persist the index sidecar and release the descriptor.

        Idempotent, and not terminal: the next lookup reopens the store
        (now with a fresh index, so reopening is cheap).
        """
        if self._offsets is None:
            return
        self.flush()
        self._write_index()
        if self._descriptor is not None:
            os.close(self._descriptor)
            self._descriptor = None
        self._offsets = None

    # -- introspection -----------------------------------------------------

    @property
    def entries(self) -> int:
        """Rows addressable right now (opens the store if needed)."""
        if self._offsets is None:
            self._open()
        return len(self._offsets) + len(self._buffer)

    def counters(self) -> Dict[str, int]:
        """The three tier counters, in ``vector_stats`` key form."""
        return {
            "l2_hits": self.l2_hits,
            "l2_misses": self.l2_misses,
            "l2_writes": self.l2_writes,
        }

    def stats(self) -> Dict[str, Union[int, float, str]]:
        """JSON-ready tier statistics (counters, sizes, hit rate)."""
        requests = self.l2_hits + self.l2_misses
        return {
            "directory": str(self.directory),
            "hits": self.l2_hits,
            "misses": self.l2_misses,
            "writes": self.l2_writes,
            "hit_rate": (self.l2_hits / requests) if requests else 0.0,
            "entries": self.entries,
            "loaded_entries": self.loaded_entries,
            "corrupt_lines": self.corrupt_lines,
        }

    def verify(self) -> Dict[str, Union[int, bool, str]]:
        """Read-only integrity report of the data file."""
        offsets, corrupt = self._scan_data(0, {})
        return {
            "path": str(self.data_path),
            "entries": len(offsets),
            "corrupt_lines": corrupt,
            "ok": corrupt == 0,
        }

    # -- internals ---------------------------------------------------------

    def _open(self) -> None:
        """Load (or initialize) the store: header check, index, tail scan."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.data_path
        offsets: Dict[bytes, Tuple[int, int]] = {}
        if path.exists() and path.stat().st_size > 0:
            if not self._header_ok():
                self._quarantine()
            else:
                covered = 0
                from_index = self._load_index(offsets)
                if from_index is not None:
                    covered = from_index
                offsets, corrupt = self._scan_data(covered, offsets)
                if corrupt:
                    warnings.warn(
                        f"{path}: skipped {corrupt} undecodable cache "
                        "line(s); damaged rows are re-priced by the "
                        "engine, never served",
                        PersistentCacheCorruption,
                        stacklevel=3,
                    )
                    self.corrupt_lines += corrupt
        if not path.exists() or path.stat().st_size == 0:
            header = (
                json.dumps(
                    {
                        "format": FORMAT_NAME,
                        "version": 1,
                        "key_version": KEY_VERSION,
                    }
                )
                + "\n"
            ).encode()
            descriptor = os.open(
                path, os.O_RDWR | os.O_APPEND | os.O_CREAT, 0o644
            )
            try:
                if os.fstat(descriptor).st_size == 0:
                    view = memoryview(header)
                    while view:
                        view = view[os.write(descriptor, view) :]
            finally:
                os.close(descriptor)
        self._offsets = offsets
        self.loaded_entries = len(offsets)

    def _header_ok(self) -> bool:
        """True when the data file's first line matches this format/version."""
        try:
            with self.data_path.open("rb") as handle:
                first = handle.readline(4096)
            header = json.loads(first.decode())
            return (
                header.get("format") == FORMAT_NAME
                and header.get("key_version") == KEY_VERSION
            )
        except (OSError, ValueError, UnicodeDecodeError):
            return False

    def _quarantine(self) -> None:
        """Move a mismatched/unreadable store aside and start fresh."""
        for path in (self.data_path, self.index_path):
            if path.exists():
                target = path.with_name(path.name + ".quarantined")
                suffix = 0
                while target.exists():
                    suffix += 1
                    target = path.with_name(
                        f"{path.name}.quarantined.{suffix}"
                    )
                os.replace(path, target)
        warnings.warn(
            f"{self.data_path}: header does not match "
            f"{FORMAT_NAME} v{KEY_VERSION}; quarantined the old store and "
            "started fresh (rows keyed under other rules are never served)",
            PersistentCacheCorruption,
            stacklevel=3,
        )

    def _load_index(self, offsets: Dict[bytes, Tuple[int, int]]) -> Optional[int]:
        """Load the sidecar into ``offsets``; None means rebuild by scan.

        Returns the data size the index covers, so the caller only scans
        the tail appended since the index was written.  Any inconsistency
        — wrong magic/version, torn entry, count mismatch, covering more
        data than exists — discards the index (it is an accelerator, the
        data file is the source of truth).
        """
        path = self.index_path
        if not path.exists():
            return None
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        if len(raw) < _INDEX_HEADER.size:
            return None
        magic, version, key_version, covered, count = _INDEX_HEADER.unpack_from(
            raw, 0
        )
        payload = raw[_INDEX_HEADER.size :]
        if (
            magic != _INDEX_MAGIC
            or version != _INDEX_VERSION
            or key_version != KEY_VERSION
            or len(payload) % _INDEX_RECORD.size != 0
            or len(payload) // _INDEX_RECORD.size != count
            or covered > self.data_path.stat().st_size
        ):
            return None
        for position in range(count):
            digest, offset, length = _INDEX_RECORD.unpack_from(
                payload, position * _INDEX_RECORD.size
            )
            if offset + length > covered:
                offsets.clear()
                return None
            offsets[digest] = (offset, length)
        return covered

    def _write_index(self) -> None:
        """Atomically persist the offset table (temp + fsync + replace)."""
        covered = 0
        if self._descriptor is not None:
            covered = os.fstat(self._descriptor).st_size
        elif self.data_path.exists():
            covered = self.data_path.stat().st_size
        entries = self._offsets or {}
        pieces = [
            _INDEX_HEADER.pack(
                _INDEX_MAGIC, _INDEX_VERSION, KEY_VERSION, covered, len(entries)
            )
        ]
        for digest, (offset, length) in entries.items():
            pieces.append(_INDEX_RECORD.pack(digest, offset, length))
        data = b"".join(pieces)
        replacement = self.index_path.with_name(self.index_path.name + ".tmp")
        descriptor = os.open(
            replacement, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
        )
        try:
            view = memoryview(data)
            while view:
                view = view[os.write(descriptor, view) :]
            os.fsync(descriptor)
        finally:
            os.close(descriptor)
        os.replace(replacement, self.index_path)

    def _scan_data(
        self, start: int, offsets: Dict[bytes, Tuple[int, int]]
    ) -> Tuple[Dict[bytes, Tuple[int, int]], int]:
        """Index data records from byte ``start`` on; returns corrupt count.

        A trailing line without a newline is a partial record from a
        killed writer: it is counted corrupt here (it cannot be served)
        and healed by the newline-prefix check on the next append.
        """
        corrupt = 0
        try:
            with self.data_path.open("rb") as handle:
                handle.seek(start)
                cursor = start
                for line in handle:
                    length = len(line)
                    offset = cursor
                    cursor += length
                    stripped = line.strip()
                    if not stripped or not line.endswith(b"\n"):
                        corrupt += 1 if stripped else 0
                        continue
                    try:
                        record = json.loads(stripped)
                        key = record["k"]
                        values = record["v"]
                        digest = bytes.fromhex(key)
                        if len(digest) != 20 or not isinstance(values, list):
                            raise ValueError("malformed record")
                    except (ValueError, KeyError, TypeError):
                        if offset == 0 or b'"format"' in stripped:
                            continue  # the header line is not a record
                        corrupt += 1
                        continue
                    offsets[digest] = (offset, length)
        except OSError:
            pass
        return offsets, corrupt

    def _read_record(
        self, digest: bytes, offset: int, length: int
    ) -> Optional[tuple]:
        """Fetch and re-verify one record; None when it cannot be trusted."""
        descriptor = self._ensure_descriptor()
        try:
            raw = os.pread(descriptor, length, offset)
            record = json.loads(raw.decode())
            if record["k"] != digest.hex():
                return None
            values = record["v"]
            if not isinstance(values, list):
                return None
            return tuple(values)
        except (OSError, ValueError, KeyError, TypeError, UnicodeDecodeError):
            return None

    def _ensure_descriptor(self) -> int:
        if self._descriptor is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._descriptor = os.open(
                self.data_path, os.O_RDWR | os.O_APPEND | os.O_CREAT, 0o644
            )
        return self._descriptor

    # -- pickling (worker pools share the store by path) -------------------

    def __getstate__(self) -> dict:
        return {"directory": str(self.directory), "durability": self.durability}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["directory"], state.get("durability", "flush"))

    def __del__(self) -> None:
        try:
            if self._buffer and self._descriptor is not None:
                self.flush()
            if self._descriptor is not None:
                os.close(self._descriptor)
        except Exception:
            pass
