"""Loop-nest reuse analysis.

For every cluster level the analysis derives, from the mapping's tile sizes
and spatial fan-out:

* temporal trip counts per dimension (spatial folding of the parallel
  dimension included),
* the number of spatially active sub-clusters,
* per-operand fetch counts from the parent level, driven by the loop order
  (an operand tile stays resident across consecutive iterations of loops
  that are irrelevant to it and inner to its innermost relevant loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.mapping.mapping import Mapping
from repro.workloads.dims import DIMS, REDUCTION_DIMS
from repro.workloads.layer import Layer


@dataclass(frozen=True)
class LevelAnalysis:
    """Static analysis of one cluster level of a mapping applied to a layer."""

    #: Effective (clipped) per-sub-cluster tile sizes at this level.
    tile: Dict[str, int]
    #: Extent covered by all active sub-clusters (macro tile).
    macro: Dict[str, int]
    #: Temporal trip count per dimension (parallel dimension folds included).
    trips: Dict[str, int]
    #: Loop order at this level (outermost first).
    order: Tuple[str, ...]
    #: Dimension spatially distributed at this level.
    parallel_dim: str
    #: Sub-clusters instantiated at this level (the HW ``pi`` gene).
    spatial_size: int
    #: Sub-clusters that actually receive work.
    active: int

    @property
    def total_trips(self) -> int:
        """Product of all temporal trip counts at this level."""
        product = 1
        for dim in DIMS:
            product *= self.trips[dim]
        return product

    @property
    def utilization(self) -> float:
        """Fraction of this level's sub-clusters doing useful work."""
        return self.active / self.spatial_size


def analyze_levels(layer: Layer, mapping: Mapping) -> List[LevelAnalysis]:
    """Analyze every level of ``mapping`` applied to ``layer``, outermost first."""
    analyses: List[LevelAnalysis] = []
    parent = {dim: layer.dims[dim] for dim in DIMS}
    for level in mapping.levels:
        tile = {dim: max(1, min(level.tiles[dim], parent[dim])) for dim in DIMS}
        parallel = level.parallel_dim
        chunks = _ceil_div(parent[parallel], tile[parallel])
        active = min(level.spatial_size, chunks)
        folds = _ceil_div(chunks, active)

        trips = {}
        for dim in DIMS:
            if dim == parallel:
                trips[dim] = folds
            else:
                trips[dim] = _ceil_div(parent[dim], tile[dim])

        macro = dict(tile)
        macro[parallel] = min(parent[parallel], tile[parallel] * active)

        analyses.append(
            LevelAnalysis(
                tile=tile,
                macro=macro,
                trips=trips,
                order=level.order,
                parallel_dim=parallel,
                spatial_size=level.spatial_size,
                active=active,
            )
        )
        parent = tile
    return analyses


def operand_fetches(analysis: LevelAnalysis, relevant_dims: Sequence[str]) -> int:
    """Times an operand's tile must be fetched from the parent level.

    With single-tile residency, the operand is re-fetched once per iteration
    of every loop at or outside its innermost *effective* relevant loop
    (loops with a single trip are transparent).  If no relevant loop
    iterates more than once, the operand is fetched exactly once.
    """
    relevant = set(relevant_dims)
    innermost_relevant = -1
    for position, dim in enumerate(analysis.order):
        if dim in relevant and analysis.trips[dim] > 1:
            innermost_relevant = position
    if innermost_relevant < 0:
        return 1
    fetches = 1
    for position in range(innermost_relevant + 1):
        fetches *= analysis.trips[analysis.order[position]]
    return fetches


def spatial_distinct_factor(
    analyses: Sequence[LevelAnalysis],
    up_to_level: int,
    relevant_dims: Sequence[str],
    is_output: bool = False,
) -> int:
    """Multiplier for spatially distinct copies of an operand.

    Traffic into level ``up_to_level`` multiplies by the number of active
    sub-clusters at every level whose parallel dimension indexes the operand
    (distinct data per sub-cluster); levels parallelising an irrelevant
    dimension multicast one copy.  Output operands additionally count levels
    that parallelise a reduction dimension, because partial sums from every
    sub-cluster must be collected and reduced.
    """
    relevant = set(relevant_dims)
    factor = 1
    for analysis in analyses[: up_to_level + 1]:
        parallel = analysis.parallel_dim
        needs_distinct = parallel in relevant
        if is_output and parallel in REDUCTION_DIMS:
            needs_distinct = True
        if needs_distinct:
            factor *= analysis.active
    return factor


def _ceil_div(numerator: int, denominator: int) -> int:
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    return -(-int(numerator) // int(denominator))
