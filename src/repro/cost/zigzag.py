"""ZigZag-style memory-centric cost backend.

A second, independently coded implementation of the cost-backend protocol
(:mod:`repro.cost.backend`), modeled on the temporal-mapping engine MATCH
plugs in per target (ZigZag): data movement is counted *memory-centrically*
— each operand's traffic at a memory level is its tile footprint times the
product of the operand's relevant temporal loop trips at and above that
level — instead of the analytic engine's order-aware innermost-scan.

Documented modeling differences vs :mod:`repro.cost.engine`:

* **Refresh counting.**  ZigZag-style refreshes assume maximal per-operand
  stationarity: only loops over an operand's *relevant* dimensions force a
  re-fetch, regardless of where irrelevant loops sit in the loop order.
  The analytic engine scans the concrete loop order and charges re-fetches
  for everything below the innermost relevant iterating loop, so its
  traffic is always >= the ZigZag count for the same mapping.
* **No pipeline-fill term.**  Latency is the plain max of the compute, NoC
  and DRAM phases; the analytic engine adds a startup (buffer fill) term.
* **Shared modeling ground.**  Operand footprint geometry, buffer sizing,
  PE counting and the energy coefficient structure are identical, so
  constraint checking, area and the search spaces behave the same across
  backends.

Because of the first two differences, agreement with the analytic backend
is *bounded*, not bit-exact: latency and energy deltas stay within the
tolerance gated by ``repro crosscheck``, while area-side quantities
(buffer requirements, PE counts) match exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from repro.arch.energy import EnergyModel
from repro.cost.cache import CacheStats, LRUCache
from repro.cost.engine import (
    LayerMappingKey,
    energy_coefficients,
    layer_mapping_key,
    make_report,
    report_values,
)
from repro.cost.maestro import DEFAULT_LAYER_CACHE_SIZE, _resolve_mapping
from repro.cost.persist import (
    PersistentLayerCache,
    cache_namespace,
    tuple_key_digest,
)
from repro.cost.performance import LayerPerformance, ModelPerformance
from repro.mapping.mapping import Mapping, mapping_from_cache_key
from repro.workloads.model import Model
from repro.workloads.statics import (
    REDUCTION_INDEXES,
    LayerStatics,
    model_statics,
)


def _operand_footprints(
    statics: LayerStatics, extents: Sequence[int]
) -> Tuple[int, int, int]:
    """Weight / input / output element counts of one tile (shared geometry)."""
    k, c, y, x, r, s = extents
    in_y = (y - 1) * statics.stride + r
    in_x = (x - 1) * statics.stride + s
    weight = c * r * s if statics.is_depthwise else k * c * r * s
    output = (c if statics.is_depthwise else k) * y * x
    inputs = c * in_y * in_x
    return weight, inputs, output


def _relevant_trips(trips: Sequence[int], indexes) -> int:
    """Refresh count: product of the operand-relevant loop trip counts."""
    product = 1
    for dim in indexes:
        product *= trips[dim]
    return product


def evaluate_layer_zigzag(
    statics: LayerStatics,
    key: LayerMappingKey,
    noc_bandwidth: float,
    dram_bandwidth: float,
    bpe: int,
    energy: Tuple[float, float, float, float],
    layer_name: str,
    count: int,
) -> LayerPerformance:
    """One (layer, clipped mapping key) pair through the ZigZag-style model."""
    rel_w = statics.weight_indexes
    rel_i = statics.input_indexes
    rel_o = statics.output_indexes

    # Per-level loop analysis: ceil-div trip counts with spatial folding at
    # the parallel dimension, plus the macro extent covered per step.
    parent = statics.dims
    num_pes = 1
    active_pes = 1
    total_steps = 1
    # Per level: (tile, macro, trips, active, parallel_index)
    levels: List[tuple] = []
    for (spatial, p_idx, _order), tile in key:
        trips = [-(-parent[dim] // tile[dim]) for dim in range(6)]
        chunks = trips[p_idx]
        active = spatial if spatial < chunks else chunks
        trips[p_idx] = -(-chunks // active)
        covered = tile[p_idx] * active
        macro = list(tile)
        macro[p_idx] = min(parent[p_idx], covered)
        level_total = 1
        for trip in trips:
            level_total *= trip
        levels.append((tile, tuple(macro), tuple(trips), active, p_idx))
        num_pes *= spatial
        active_pes *= active
        total_steps *= level_total
        parent = tile

    num_levels = len(levels)
    inner_volume = 1
    for size in levels[-1][0]:
        inner_volume *= size
    compute_cycles = float(inner_volume * total_steps)

    # Off-chip traffic: outer-level macro tiles, refreshed once per
    # relevant-loop iteration of the outermost level.
    trips0 = levels[0][2]
    macro_w, macro_i, macro_o = _operand_footprints(statics, levels[0][1])
    dram_bytes = float(macro_w * _relevant_trips(trips0, rel_w) * bpe)
    dram_bytes += macro_i * _relevant_trips(trips0, rel_i) * bpe
    out_moves = macro_o * _relevant_trips(trips0, rel_o)
    spills = max(0.0, float(out_moves - statics.output_elements))
    dram_bytes += (statics.output_elements + 2.0 * spills) * bpe

    # On-chip traffic: each inner level's tiles are refreshed once per
    # relevant-loop iteration at or above that level, multicast to the
    # spatially distinct consumers (relevant parallel dims; reduction dims
    # force distinct output accumulators).
    l2_to_l1_bytes = 0.0
    for level_index in range(1, num_levels):
        tile_w, tile_i, tile_o = _operand_footprints(
            statics, levels[level_index][0]
        )
        for footprint, relevant, is_output in (
            (tile_w, rel_w, False),
            (tile_i, rel_i, False),
            (tile_o, rel_o, True),
        ):
            refreshes = 1
            distinct = 1
            for outer_index in range(level_index + 1):
                _, _, trips_m, active_m, p_m = levels[outer_index]
                refreshes *= _relevant_trips(trips_m, relevant)
                if p_m in relevant or (
                    is_output and p_m in REDUCTION_INDEXES
                ):
                    distinct *= active_m
            l2_to_l1_bytes += refreshes * footprint * distinct * bpe

    noc_cycles = l2_to_l1_bytes / noc_bandwidth
    dram_cycles = dram_bytes / dram_bandwidth
    # Phase overlap with no fill term (modeling difference vs analytic).
    latency = max(compute_cycles, noc_cycles, dram_cycles)

    macs = statics.macs
    l1_access_bytes = 2.0 * macs * bpe + l2_to_l1_bytes
    l2_access_bytes = l2_to_l1_bytes + dram_bytes
    mac_energy, l1_energy, l2_energy, dram_energy = energy
    total_energy = macs * mac_energy + (
        l1_access_bytes * l1_energy
        + l2_access_bytes * l2_energy
        + dram_bytes * dram_energy
    )

    # Buffer sizing is shared modeling ground with the analytic engine so
    # constraint checking and area agree exactly across backends.
    if num_levels == 1:
        tile_w, tile_i, tile_o = _operand_footprints(statics, levels[0][0])
        l1_requirement = (tile_w + tile_i + tile_o) * bpe
        l2_requirement = l1_requirement
    else:
        inner_w, inner_i, inner_o = _operand_footprints(
            statics, levels[-1][0]
        )
        l1_requirement = (inner_w + inner_i + inner_o) * bpe
        l2_requirement = (macro_w + macro_i + macro_o) * bpe
        for level_index in range(1, num_levels - 1):
            mid_w, mid_i, mid_o = _operand_footprints(
                statics, levels[level_index][1]
            )
            l2_requirement += (mid_w + mid_i + mid_o) * bpe

    return make_report(
        layer_name,
        latency,
        compute_cycles,
        noc_cycles,
        dram_cycles,
        macs,
        l2_to_l1_bytes,
        dram_bytes,
        l1_access_bytes,
        total_energy,
        active_pes,
        num_pes,
        l1_requirement,
        l2_requirement,
        count,
    )


@dataclass(frozen=True)
class ZigZagCostModel:
    """Drop-in cost model pricing layers with the ZigZag-style engine.

    Implements the same protocol surface as
    :class:`repro.cost.maestro.CostModel` (layer-report LRU, cache
    adoption, stats) so the evaluator and sweep runner are backend-blind.
    The ``engine`` selector is an analytic-backend concept; this backend
    has a single scalar implementation, so population calls loop over the
    per-design path (the evaluator keeps its vector fast paths gated to
    the analytic backend).
    """

    energy_model: EnergyModel = EnergyModel()
    bytes_per_element: int = 1
    cache_size: int = DEFAULT_LAYER_CACHE_SIZE
    engine: str = "fast"

    def __post_init__(self) -> None:
        object.__setattr__(self, "_cache", LRUCache(self.cache_size))
        object.__setattr__(
            self, "_energy_coefficients", energy_coefficients(self.energy_model)
        )
        # Persistent-tier namespace: the backend name keeps zigzag rows
        # and analytic rows from ever aliasing in a shared cache dir.
        object.__setattr__(
            self,
            "_l2_namespace",
            cache_namespace(
                "zigzag", self.bytes_per_element, self._energy_coefficients
            ),
        )
        object.__setattr__(
            self,
            "delta_counters",
            {
                "delta_members_reused": 0,
                "delta_member_requests": 0,
                "delta_rows_reused": 0,
                "delta_row_requests": 0,
                "delta_generations": 0,
            },
        )

    # -- cache plumbing (protocol parity with CostModel) -------------------

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the per-layer report cache."""
        return self._cache.stats()

    def cache_clear(self) -> None:
        """Drop all memoized layer reports and counters."""
        self._cache.clear()
        for key in self.delta_counters:
            self.delta_counters[key] = 0

    @property
    def layer_cache(self) -> LRUCache:
        """The layer-report cache instance (shareable via :meth:`adopt_cache`)."""
        return self._cache

    def adopt_cache(self, cache: LRUCache) -> None:
        """Swap in an externally owned layer-report cache.

        Carries a persistent L2 tier over to the adopted cache when it
        does not have one yet (protocol parity with
        :meth:`repro.cost.maestro.CostModel.adopt_cache`).
        """
        tier = self._cache.tier
        if tier is not None and cache.tier is None:
            cache.tier = tier
        object.__setattr__(self, "_cache", cache)

    def attach_persistent_cache(self, tier: PersistentLayerCache) -> None:
        """Back the layer-report LRU with a persistent L2 tier."""
        self._cache.tier = tier

    @property
    def vector_stats(self) -> dict:
        """Stats dict with the standard keys (this backend has no vector path)."""
        stats = dict(self.delta_counters)
        tier = self._cache.tier
        if tier is None:
            stats.update(l2_hits=0, l2_misses=0, l2_writes=0)
        else:
            stats.update(tier.counters())
        stats.update(
            rows_vectorized=0,
            rows_fallback=0,
            fallback_depth=0,
            fallback_statics_overflow=0,
            fallback_intermediate_overflow=0,
            fallback_small_batch=0,
            fallback_gene_overflow=0,
        )
        return stats

    # -- evaluation --------------------------------------------------------

    def evaluate_model(
        self,
        model: Model,
        mappings,
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> ModelPerformance:
        """Evaluate every unique layer of ``model`` and aggregate."""
        if noc_bandwidth <= 0 or dram_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        cache = self._cache
        cache_on = cache.maxsize > 0
        tier = cache.tier if cache_on else None
        namespace = self._l2_namespace
        data = cache.data
        maxsize = cache.maxsize
        hits = misses = 0
        bpe = self.bytes_per_element
        energy = self._energy_coefficients
        shared = mappings if isinstance(mappings, Mapping) else None
        reports = []
        for layer, statics in model_statics(model):
            mapping = (
                shared if shared is not None
                else _resolve_mapping(mappings, layer)
            )
            key = layer_mapping_key(statics, mapping)
            entry = None
            digest = None
            if cache_on:
                cache_key = (statics, key, noc_bandwidth, dram_bandwidth)
                entry = data.get(cache_key)
                if entry is not None:
                    hits += 1
                else:
                    # An L2 hit still counts as an L1 miss (identical
                    # counters cold or warm; see CostModel.evaluate_model).
                    misses += 1
                    if tier is not None:
                        digest = tuple_key_digest(
                            namespace, statics, key,
                            noc_bandwidth, dram_bandwidth,
                        )
                        entry = tier.get(digest)
                        if entry is not None:
                            data[cache_key] = entry
                            if len(data) > maxsize:
                                data.popitem(last=False)
            if entry is None:
                report = evaluate_layer_zigzag(
                    statics,
                    key,
                    noc_bandwidth,
                    dram_bandwidth,
                    bpe,
                    energy,
                    layer.name,
                    layer.count,
                )
                if cache_on:
                    values = report_values(report)
                    data[cache_key] = values
                    if len(data) > maxsize:
                        data.popitem(last=False)
                    if digest is not None:
                        tier.put(digest, values)
            else:
                report = make_report(layer.name, *entry, layer.count)
            reports.append(report)
        cache.hits += hits
        cache.misses += misses
        if tier is not None:
            tier.flush()
        return ModelPerformance(model_name=model.name, layers=tuple(reports))

    def evaluate_model_batch(
        self,
        model: Model,
        mappings: Sequence[Union[Mapping, tuple]],
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> List[ModelPerformance]:
        """Evaluate one model under many mappings (sequential loop)."""
        return [
            self.evaluate_model(
                model,
                mapping
                if isinstance(mapping, Mapping)
                else mapping_from_cache_key(mapping),
                noc_bandwidth,
                dram_bandwidth,
            )
            for mapping in mappings
        ]

    def evaluate_model_matrix(self, *args, **kwargs):
        """The gene-matrix path is analytic-backend only."""
        raise ValueError(
            "the gene-matrix path requires the analytic backend; "
            "the zigzag backend prices designs through evaluate_model"
        )
