"""The fast-path layer evaluation engine.

This module re-implements :meth:`CostModel.evaluate_layer` on plain tuples
indexed by dimension position instead of per-dimension dict lookups.  The
arithmetic mirrors the reference implementation in
:mod:`repro.cost.maestro` operation for operation — integer quantities are
exact, and every floating-point accumulation happens in the same order — so
the engine is bit-identical to the reference path (enforced by the parity
tests in ``tests/cost/test_engine_parity.py``).

The engine consumes:

* :class:`~repro.workloads.statics.LayerStatics` — per-layer invariants
  computed once per unique layer shape, and
* a *layer mapping key* — the per-level ``(spatial_size, parallel_index,
  order_indexes)`` statics plus the tile sizes clipped to the layer, built
  by :func:`layer_mapping_key`.

The key doubles as the memoization key for per-layer cost caching: two
(layer, mapping) pairs with equal keys have identical cost reports.

The two-level hierarchy (the paper's default L2 + L1 accelerator) gets a
straight-line specialisation; other depths go through the general path.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.arch.energy import EnergyModel
from repro.cost.performance import LayerPerformance
from repro.mapping.mapping import Mapping
from repro.workloads.statics import REDUCTION_INDEXES, LayerStatics


def energy_coefficients(
    energy_model: EnergyModel,
) -> Tuple[float, float, float, float]:
    """(MAC, L1, L2, DRAM) coefficients in the order the engine consumes them."""
    return (
        energy_model.mac_energy,
        energy_model.l1_energy_per_byte,
        energy_model.l2_energy_per_byte,
        energy_model.dram_energy_per_byte,
    )


def make_report(
    layer_name: str,
    latency: float,
    compute_cycles: float,
    noc_cycles: float,
    dram_cycles: float,
    macs: int,
    l2_to_l1_bytes: float,
    dram_bytes: float,
    l1_access_bytes: float,
    energy: float,
    active_pes: int,
    num_pes: int,
    l1_requirement_bytes: int,
    l2_requirement_bytes: int,
    count: int,
) -> LayerPerformance:
    """Build a LayerPerformance without the frozen-dataclass __init__ cost.

    ``LayerPerformance`` stores its fields in the instance dict, so a bulk
    dict update is equivalent to (and ~3x cheaper than) the generated
    ``__init__``'s per-field ``object.__setattr__`` calls.
    """
    report = object.__new__(LayerPerformance)
    report.__dict__.update(
        layer_name=layer_name,
        latency=latency,
        compute_cycles=compute_cycles,
        noc_cycles=noc_cycles,
        dram_cycles=dram_cycles,
        macs=macs,
        l2_to_l1_bytes=l2_to_l1_bytes,
        dram_bytes=dram_bytes,
        l1_access_bytes=l1_access_bytes,
        energy=energy,
        active_pes=active_pes,
        num_pes=num_pes,
        l1_requirement_bytes=l1_requirement_bytes,
        l2_requirement_bytes=l2_requirement_bytes,
        count=count,
    )
    return report

def report_values(report: LayerPerformance) -> tuple:
    """Cacheable scalar fields of a report (everything but name and count).

    GC-untracked (a flat tuple of numbers), so a full cache does not slow
    down cyclic garbage collections the way thousands of live report
    objects would.  ``make_report(layer.name, *values, layer.count)``
    reconstitutes the report for any same-shaped layer.  The field order is
    the contract shared by the layer-report cache and the vector engine's
    column output.
    """
    values = report.__dict__
    return (
        values["latency"],
        values["compute_cycles"],
        values["noc_cycles"],
        values["dram_cycles"],
        values["macs"],
        values["l2_to_l1_bytes"],
        values["dram_bytes"],
        values["l1_access_bytes"],
        values["energy"],
        values["active_pes"],
        values["num_pes"],
        values["l1_requirement_bytes"],
        values["l2_requirement_bytes"],
    )


#: One level of a layer mapping key: ``((spatial_size, parallel_index,
#: order_indexes), clipped_tiles)``.
LevelKey = Tuple[Tuple[int, int, Tuple[int, ...]], Tuple[int, ...]]

#: A full layer mapping key, outermost level first.
LayerMappingKey = Tuple[LevelKey, ...]


def layer_mapping_key(statics: LayerStatics, mapping: Mapping) -> LayerMappingKey:
    """Canonical key of ``mapping`` applied to a layer with ``statics``.

    Tile sizes are clipped level by level against the layer's dimensions
    (exactly like :meth:`Mapping.clipped_to_layer`), so syntactically
    different mappings that decode to the same effective per-layer schedule
    share one key.
    """
    parent = statics.dims
    parts: List[LevelKey] = []
    for level in mapping.levels:
        clipped = tuple(map(min, level.tiles_tuple, parent))
        parts.append((level.static_key, clipped))
        parent = clipped
    return tuple(parts)


def _order_positions(
    statics: LayerStatics, order: Tuple[int, ...]
) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]:
    """(W, I, O) relevant-dimension positions within ``order`` (memoized).

    The scan an operand fetch count needs — "innermost relevant loop that
    actually iterates" — only visits the operand's relevant positions, and
    those depend on the loop order and the operator type alone, so they are
    memoized per statics instance keyed on the order.
    """
    trio = statics.order_positions.get(order)
    if trio is None:
        trio = tuple(
            tuple(
                position
                for position, dim in enumerate(order)
                if dim in relevant
            )
            for relevant in (
                statics.weight_indexes,
                statics.input_indexes,
                statics.output_indexes,
            )
        )
        statics.order_positions[order] = trio
    return trio


def _operand_footprint(
    statics: LayerStatics, extents: Tuple[int, ...]
) -> Tuple[int, int, int]:
    """(W, I, O) element counts of a tile with the given extents."""
    k, c, y, x, r, s = extents
    stride = statics.stride
    in_y = (y - 1) * stride + r
    in_x = (x - 1) * stride + s
    if statics.is_depthwise:
        weight = c * r * s
        output = c * y * x
    else:
        weight = k * c * r * s
        output = k * y * x
    return weight, c * in_y * in_x, output


def _operand_fetches(
    order: Tuple[int, ...],
    trips: Tuple[int, ...],
    prefix: List[int],
    positions: Tuple[int, ...],
) -> int:
    """Times an operand tile is re-fetched from the parent level.

    ``prefix[p]`` is the product of the trip counts of the loops at
    positions ``0..p`` of ``order``; ``positions`` are the operand's
    relevant-loop positions.  The innermost relevant loop that actually
    iterates decides the fetch count (loops with one trip are transparent).
    """
    for position in reversed(positions):
        if trips[order[position]] > 1:
            return prefix[position]
    return 1


def evaluate_layer_key(
    statics: LayerStatics,
    key: LayerMappingKey,
    noc_bandwidth: float,
    dram_bandwidth: float,
    bytes_per_element: int,
    energy: Tuple[float, float, float, float],
    layer_name: str,
    count: int,
) -> LayerPerformance:
    """Evaluate one layer under one clipped mapping key.

    Mirrors the reference :meth:`CostModel.evaluate_layer` bit for bit; see
    the module docstring for the contract.
    """
    if len(key) == 2:
        return _evaluate_two_level(
            statics,
            key,
            noc_bandwidth,
            dram_bandwidth,
            bytes_per_element,
            energy,
            layer_name,
            count,
        )
    return _evaluate_general(
        statics,
        key,
        noc_bandwidth,
        dram_bandwidth,
        bytes_per_element,
        energy,
        layer_name,
        count,
    )


def _evaluate_two_level(
    statics: LayerStatics,
    key: LayerMappingKey,
    noc_bandwidth: float,
    dram_bandwidth: float,
    bpe: int,
    energy: Tuple[float, float, float, float],
    layer_name: str,
    count: int,
) -> LayerPerformance:
    """Straight-line evaluation of the common L2 + L1 hierarchy."""
    rel_w = statics.weight_indexes
    rel_i = statics.input_indexes
    rel_o = statics.output_indexes
    stride = statics.stride
    depthwise = statics.is_depthwise

    (spatial0, par0, order0), tile0 = key[0]
    (spatial1, par1, order1), tile1 = key[1]

    # -- level 0 (shared / L2) reuse analysis ------------------------------
    d0, d1, d2, d3, d4, d5 = statics.dims
    a0, a1, a2, a3, a4, a5 = tile0
    base0 = (
        -(-d0 // a0),
        -(-d1 // a1),
        -(-d2 // a2),
        -(-d3 // a3),
        -(-d4 // a4),
        -(-d5 // a5),
    )
    chunks0 = base0[par0]
    active0 = spatial0 if spatial0 < chunks0 else chunks0
    folds0 = -(-chunks0 // active0)
    trips0 = base0[:par0] + (folds0,) + base0[par0 + 1:]
    covered0 = tile0[par0] * active0
    parent0 = statics.dims[par0]
    macro0 = tile0[:par0] + (
        (parent0 if parent0 < covered0 else covered0),
    ) + tile0[par0 + 1:]
    product0 = 1
    prefix0 = []
    for dim in order0:
        product0 *= trips0[dim]
        prefix0.append(product0)

    # -- level 1 (per-PE / L1) reuse analysis ------------------------------
    b0, b1, b2, b3, b4, b5 = tile1
    base1 = (
        -(-a0 // b0),
        -(-a1 // b1),
        -(-a2 // b2),
        -(-a3 // b3),
        -(-a4 // b4),
        -(-a5 // b5),
    )
    chunks1 = base1[par1]
    active1 = spatial1 if spatial1 < chunks1 else chunks1
    folds1 = -(-chunks1 // active1)
    trips1 = base1[:par1] + (folds1,) + base1[par1 + 1:]
    product1 = 1
    prefix1 = []
    for dim in order1:
        product1 *= trips1[dim]
        prefix1.append(product1)

    inner_volume = b0 * b1 * b2 * b3 * b4 * b5
    compute_cycles = float(inner_volume * (product0 * product1))

    # -- operand footprints ------------------------------------------------
    mk, mc, my, mx, mr, ms = macro0
    macro_in_y = (my - 1) * stride + mr
    macro_in_x = (mx - 1) * stride + ms
    if depthwise:
        macro_w = mc * mr * ms
        macro_o = mc * my * mx
    else:
        macro_w = mk * mc * mr * ms
        macro_o = mk * my * mx
    macro_i = mc * macro_in_y * macro_in_x

    inner_in_y = (b2 - 1) * stride + b4
    inner_in_x = (b3 - 1) * stride + b5
    if depthwise:
        inner_w = b1 * b4 * b5
        inner_o = b1 * b2 * b3
    else:
        inner_w = b0 * b1 * b4 * b5
        inner_o = b0 * b2 * b3
    inner_i = b1 * inner_in_y * inner_in_x

    # -- off-chip traffic (reference: CostModel._dram_traffic) -------------
    order_positions = statics.order_positions
    trio = order_positions.get(order0)
    if trio is None:
        trio = _order_positions(statics, order0)
    pos_w0, pos_i0, pos_o0 = trio
    dram_bytes = 0.0
    fetches = 1
    for position in reversed(pos_w0):
        if trips0[order0[position]] > 1:
            fetches = prefix0[position]
            break
    dram_bytes += fetches * macro_w * bpe
    fetches = 1
    for position in reversed(pos_i0):
        if trips0[order0[position]] > 1:
            fetches = prefix0[position]
            break
    dram_bytes += fetches * macro_i * bpe
    out_fetches = 1
    for position in reversed(pos_o0):
        if trips0[order0[position]] > 1:
            out_fetches = prefix0[position]
            break
    final_output = statics.output_elements
    spills = max(0.0, float(out_fetches * macro_o - final_output))
    dram_bytes += (final_output + 2.0 * spills) * bpe

    # -- NoC traffic (reference: CostModel._on_chip_traffic) ---------------
    trio = order_positions.get(order1)
    if trio is None:
        trio = _order_positions(statics, order1)
    pos_w1, pos_i1, pos_o1 = trio
    l2_to_l1_bytes = 0.0
    for footprint, relevant, positions, is_output in (
        (inner_w, rel_w, pos_w1, False),
        (inner_i, rel_i, pos_i1, False),
        (inner_o, rel_o, pos_o1, True),
    ):
        fetches = 1
        for position in reversed(positions):
            if trips1[order1[position]] > 1:
                fetches = prefix1[position]
                break
        distinct = 1
        if par0 in relevant or (is_output and par0 in REDUCTION_INDEXES):
            distinct *= active0
        if par1 in relevant or (is_output and par1 in REDUCTION_INDEXES):
            distinct *= active1
        l2_to_l1_bytes += product0 * fetches * footprint * distinct * bpe

    noc_cycles = l2_to_l1_bytes / noc_bandwidth
    dram_cycles = dram_bytes / dram_bandwidth

    # -- pipeline fill (reference: CostModel._startup_cycles) --------------
    startup = (macro_w + macro_i) * bpe / dram_bandwidth + (
        (inner_w + inner_i) * bpe / noc_bandwidth
    )
    latency = max(compute_cycles, noc_cycles, dram_cycles) + startup

    # -- energy (reference: evaluate_layer tail) ---------------------------
    macs = statics.macs
    l1_access_bytes = 2.0 * macs * bpe + l2_to_l1_bytes
    l2_access_bytes = l2_to_l1_bytes + dram_bytes
    mac_energy, l1_energy, l2_energy, dram_energy = energy
    total_energy = macs * mac_energy + (
        l1_access_bytes * l1_energy
        + l2_access_bytes * l2_energy
        + dram_bytes * dram_energy
    )

    # -- minimum buffer capacities (reference: tiles.buffer_requirements) --
    # The analysis macro reuses here because ``min(parent, tile * spatial)``
    # and ``min(parent, tile * active)`` coincide (``tile * chunks`` always
    # covers the parent extent).
    return make_report(
        layer_name,
        latency,
        compute_cycles,
        noc_cycles,
        dram_cycles,
        macs,
        l2_to_l1_bytes,
        dram_bytes,
        l1_access_bytes,
        total_energy,
        active0 * active1,
        spatial0 * spatial1,
        (inner_w + inner_i + inner_o) * bpe,
        (macro_w + macro_i + macro_o) * bpe,
        count,
    )


def _evaluate_general(
    statics: LayerStatics,
    key: LayerMappingKey,
    noc_bandwidth: float,
    dram_bandwidth: float,
    bpe: int,
    energy: Tuple[float, float, float, float],
    layer_name: str,
    count: int,
) -> LayerPerformance:
    """Evaluation of arbitrary hierarchy depths (1 or 3+ levels)."""
    rel_w = statics.weight_indexes
    rel_i = statics.input_indexes
    rel_o = statics.output_indexes

    # -- per-level reuse analysis (reference: reuse.analyze_levels) --------
    parent = statics.dims
    num_pes = 1
    active_pes = 1
    total_steps = 1
    # Per level: (tile, macro, trips, order, prefix, total_trips, active, p_idx)
    levels: List[Tuple] = []
    for (spatial, p_idx, order), tile in key:
        t0, t1, t2, t3, t4, t5 = tile
        p0, p1, p2, p3, p4, p5 = parent
        base = (
            -(-p0 // t0),
            -(-p1 // t1),
            -(-p2 // t2),
            -(-p3 // t3),
            -(-p4 // t4),
            -(-p5 // t5),
        )
        chunks = base[p_idx]
        active = spatial if spatial < chunks else chunks
        folds = -(-chunks // active)
        trips = base[:p_idx] + (folds,) + base[p_idx + 1:]
        covered = tile[p_idx] * active
        macro_p = parent[p_idx] if parent[p_idx] < covered else covered
        macro = tile[:p_idx] + (macro_p,) + tile[p_idx + 1:]
        product = 1
        prefix = []
        for dim in order:
            product *= trips[dim]
            prefix.append(product)
        levels.append((tile, macro, trips, order, prefix, product, active, p_idx))
        num_pes *= spatial
        active_pes *= active
        total_steps *= product
        parent = tile

    num_levels = len(levels)
    inner_tile = levels[-1][0]
    inner_volume = 1
    for size in inner_tile:
        inner_volume *= size
    compute_cycles = float(inner_volume * total_steps)

    outer = levels[0]
    _, outer_macro, outer_trips, outer_order, outer_prefix, outer_total, _, _ = outer

    # -- off-chip traffic (reference: CostModel._dram_traffic) -------------
    pos_w0, pos_i0, pos_o0 = _order_positions(statics, outer_order)
    macro_w, macro_i, macro_o = _operand_footprint(statics, outer_macro)
    dram_bytes = 0.0
    dram_bytes += (
        _operand_fetches(outer_order, outer_trips, outer_prefix, pos_w0)
        * macro_w
        * bpe
    )
    dram_bytes += (
        _operand_fetches(outer_order, outer_trips, outer_prefix, pos_i0)
        * macro_i
        * bpe
    )
    out_fetches = _operand_fetches(outer_order, outer_trips, outer_prefix, pos_o0)
    out_elements = out_fetches * macro_o
    final_output = statics.output_elements
    spills = max(0.0, float(out_elements - final_output))
    dram_bytes += (final_output + 2.0 * spills) * bpe

    # -- NoC traffic (reference: CostModel._on_chip_traffic) ---------------
    l2_to_l1_bytes = 0.0
    tile_footprints: List[Tuple[int, int, int]] = [(macro_w, macro_i, macro_o)]
    if num_levels >= 2:
        steps_above = outer_total
        for level_index in range(1, num_levels):
            tile, _, trips, order, prefix, total_trips, _, _ = levels[level_index]
            pos_w, pos_i, pos_o = _order_positions(statics, order)
            tile_w, tile_i, tile_o = _operand_footprint(statics, tile)
            tile_footprints.append((tile_w, tile_i, tile_o))
            for footprint, relevant, positions, is_output in (
                (tile_w, rel_w, pos_w, False),
                (tile_i, rel_i, pos_i, False),
                (tile_o, rel_o, pos_o, True),
            ):
                fetches = _operand_fetches(order, trips, prefix, positions)
                distinct = 1
                for entry in levels[: level_index + 1]:
                    parallel = entry[7]
                    needs_distinct = parallel in relevant
                    if is_output and parallel in REDUCTION_INDEXES:
                        needs_distinct = True
                    if needs_distinct:
                        distinct *= entry[6]
                l2_to_l1_bytes += steps_above * fetches * footprint * distinct * bpe
            steps_above *= total_trips

    noc_cycles = l2_to_l1_bytes / noc_bandwidth
    dram_cycles = dram_bytes / dram_bandwidth

    # -- pipeline fill (reference: CostModel._startup_cycles) --------------
    fill_l2 = (macro_w + macro_i) * bpe / dram_bandwidth
    fill_l1 = 0.0
    if num_levels > 1:
        inner_w, inner_i, _ = tile_footprints[-1]
        fill_l1 = (inner_w + inner_i) * bpe / noc_bandwidth
    startup = fill_l2 + fill_l1
    latency = max(compute_cycles, noc_cycles, dram_cycles) + startup

    # -- energy (reference: evaluate_layer tail) ---------------------------
    macs = statics.macs
    l1_access_bytes = 2.0 * macs * bpe + l2_to_l1_bytes
    l2_access_bytes = l2_to_l1_bytes + dram_bytes
    mac_energy, l1_energy, l2_energy, dram_energy = energy
    total_energy = macs * mac_energy + (
        l1_access_bytes * l1_energy
        + l2_access_bytes * l2_energy
        + dram_bytes * dram_energy
    )

    # -- minimum buffer capacities (reference: tiles.buffer_requirements) --
    # The macro extent of each non-innermost level equals the analysis
    # macro (``min(parent, tile * spatial)`` and ``min(parent, tile *
    # active)`` coincide because ``tile * chunks >= parent``), so the
    # footprints above are reusable.
    if num_levels == 1:
        tile_w, tile_i, tile_o = _operand_footprint(statics, inner_tile)
        l1_requirement = (tile_w + tile_i + tile_o) * bpe
        l2_requirement = l1_requirement
    else:
        inner_w, inner_i, inner_o = tile_footprints[-1]
        l1_requirement = (inner_w + inner_i + inner_o) * bpe
        l2_requirement = (macro_w + macro_i + macro_o) * bpe
        for level_index in range(1, num_levels - 1):
            mid_w, mid_i, mid_o = _operand_footprint(
                statics, levels[level_index][1]
            )
            l2_requirement += (mid_w + mid_i + mid_o) * bpe

    return make_report(
        layer_name,
        latency,
        compute_cycles,
        noc_cycles,
        dram_cycles,
        macs,
        l2_to_l1_bytes,
        dram_bytes,
        l1_access_bytes,
        total_energy,
        active_pes,
        num_pes,
        l1_requirement,
        l2_requirement,
        count,
    )
