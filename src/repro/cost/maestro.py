"""The analytical HW performance evaluator.

This module plays the role MAESTRO plays in the paper: given a layer and an
accelerator design point (PE hierarchy + mapping + platform bandwidths) it
derives latency, traffic, energy, utilization and minimum buffer
requirements.  The analysis is data-centric: reuse is inferred from loop
order, spatial mapping and tile sizes (see :mod:`repro.cost.reuse`), never
from simulation, so a single evaluation costs microseconds and the
optimization loop can afford tens of thousands of samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping as TMapping, Union

from repro.arch.energy import EnergyModel
from repro.cost.performance import LayerPerformance, ModelPerformance
from repro.cost.reuse import (
    LevelAnalysis,
    analyze_levels,
    operand_fetches,
    spatial_distinct_factor,
)
from repro.mapping.mapping import Mapping
from repro.mapping.tiles import buffer_requirements, operand_footprint
from repro.workloads.dims import DIMS
from repro.workloads.layer import Layer
from repro.workloads.model import Model

#: Accepted ways of supplying mappings to :meth:`CostModel.evaluate_model`.
MappingProvider = Union[Mapping, Callable[[Layer], Mapping], TMapping[str, Mapping]]


@dataclass(frozen=True)
class CostModel:
    """MAESTRO-style analytical evaluator.

    Parameters
    ----------
    energy_model:
        Per-MAC and per-byte energy coefficients.
    bytes_per_element:
        Tensor element width in bytes.
    """

    energy_model: EnergyModel = EnergyModel()
    bytes_per_element: int = 1

    # -- single layer ------------------------------------------------------

    def evaluate_layer(
        self,
        layer: Layer,
        mapping: Mapping,
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> LayerPerformance:
        """Evaluate one layer under one mapping.

        The mapping's tile sizes are interpreted after clipping to the
        layer's dimensions, so any syntactically valid mapping can be
        evaluated (the encoding never produces hard failures, only bad
        scores).
        """
        if noc_bandwidth <= 0 or dram_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        bpe = self.bytes_per_element
        analyses = analyze_levels(layer, mapping)
        relevance = layer.relevance()

        inner = analyses[-1]
        inner_volume = 1
        for dim in DIMS:
            inner_volume *= inner.tile[dim]

        total_steps = 1
        for analysis in analyses:
            total_steps *= analysis.total_trips
        compute_cycles = float(inner_volume * total_steps)

        dram_bytes = self._dram_traffic(layer, analyses[0], relevance)
        l2_to_l1_bytes = self._on_chip_traffic(layer, analyses, relevance)

        noc_cycles = l2_to_l1_bytes / noc_bandwidth
        dram_cycles = dram_bytes / dram_bandwidth
        startup = self._startup_cycles(
            layer, analyses, noc_bandwidth, dram_bandwidth
        )
        latency = max(compute_cycles, noc_cycles, dram_cycles) + startup

        macs = layer.macs
        l1_access_bytes = 2.0 * macs * bpe + l2_to_l1_bytes
        l2_access_bytes = l2_to_l1_bytes + dram_bytes
        energy = self.energy_model.compute_energy(macs) + self.energy_model.movement_energy(
            l1_bytes=l1_access_bytes,
            l2_bytes=l2_access_bytes,
            dram_bytes=dram_bytes,
        )

        active_pes = 1
        for analysis in analyses:
            active_pes *= analysis.active

        requirement = buffer_requirements(layer, mapping, bpe)
        return LayerPerformance(
            layer_name=layer.name,
            latency=latency,
            compute_cycles=compute_cycles,
            noc_cycles=noc_cycles,
            dram_cycles=dram_cycles,
            macs=macs,
            l2_to_l1_bytes=l2_to_l1_bytes,
            dram_bytes=dram_bytes,
            l1_access_bytes=l1_access_bytes,
            energy=energy,
            active_pes=active_pes,
            num_pes=mapping.num_pes,
            l1_requirement_bytes=requirement.l1_bytes_per_pe,
            l2_requirement_bytes=requirement.l2_bytes,
            count=layer.count,
        )

    # -- whole model -------------------------------------------------------

    def evaluate_model(
        self,
        model: Model,
        mappings: MappingProvider,
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> ModelPerformance:
        """Evaluate every unique layer of ``model`` and aggregate.

        ``mappings`` may be a single :class:`Mapping` (applied to every
        layer, clipped to each layer's dimensions), a callable
        ``layer -> Mapping``, or a dict keyed by layer name.
        """
        reports: List[LayerPerformance] = []
        for layer in model.unique_layers():
            mapping = _resolve_mapping(mappings, layer)
            reports.append(
                self.evaluate_layer(layer, mapping, noc_bandwidth, dram_bandwidth)
            )
        return ModelPerformance(model_name=model.name, layers=tuple(reports))

    # -- internals ---------------------------------------------------------

    def _dram_traffic(
        self,
        layer: Layer,
        outer: LevelAnalysis,
        relevance: Dict[str, tuple],
    ) -> float:
        """Off-chip traffic in bytes: reads of W and I, read/write of O."""
        bpe = self.bytes_per_element
        macro_footprint = operand_footprint(layer, outer.macro)
        traffic = 0.0
        for operand in ("W", "I"):
            fetches = operand_fetches(outer, relevance[operand])
            traffic += fetches * macro_footprint[operand] * bpe

        out_fetches = operand_fetches(outer, relevance["O"])
        out_elements = out_fetches * macro_footprint["O"]
        final_output = layer.tensor_sizes()["O"]
        # Final results are written once; any surplus represents partial-sum
        # tiles spilled to DRAM, each costing a write and a later read.
        spills = max(0.0, float(out_elements - final_output))
        traffic += (final_output + 2.0 * spills) * bpe
        return traffic

    def _on_chip_traffic(
        self,
        layer: Layer,
        analyses: List[LevelAnalysis],
        relevance: Dict[str, tuple],
    ) -> float:
        """Traffic delivered over the NoC from the shared buffer downwards."""
        if len(analyses) < 2:
            return 0.0
        bpe = self.bytes_per_element
        traffic = 0.0
        steps_above = analyses[0].total_trips
        for level_index in range(1, len(analyses)):
            analysis = analyses[level_index]
            tile_footprint = operand_footprint(layer, analysis.tile)
            for operand in ("W", "I", "O"):
                fetches = operand_fetches(analysis, relevance[operand])
                distinct = spatial_distinct_factor(
                    analyses,
                    level_index,
                    relevance[operand],
                    is_output=operand == "O",
                )
                traffic += (
                    steps_above * fetches * tile_footprint[operand] * distinct * bpe
                )
            steps_above *= analysis.total_trips
        return traffic

    def _startup_cycles(
        self,
        layer: Layer,
        analyses: List[LevelAnalysis],
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> float:
        """Pipeline fill: first L2 tile from DRAM plus first L1 tile over the NoC."""
        bpe = self.bytes_per_element
        outer_footprint = operand_footprint(layer, analyses[0].macro)
        fill_l2 = (outer_footprint["W"] + outer_footprint["I"]) * bpe / dram_bandwidth
        fill_l1 = 0.0
        if len(analyses) > 1:
            inner_footprint = operand_footprint(layer, analyses[-1].tile)
            fill_l1 = (
                (inner_footprint["W"] + inner_footprint["I"]) * bpe / noc_bandwidth
            )
        return fill_l2 + fill_l1


def _resolve_mapping(mappings: MappingProvider, layer: Layer) -> Mapping:
    """Turn any accepted mapping provider into a concrete per-layer mapping."""
    if isinstance(mappings, Mapping):
        return mappings.clipped_to_layer(layer)
    if callable(mappings):
        return mappings(layer).clipped_to_layer(layer)
    try:
        mapping = mappings[layer.name]
    except KeyError as error:
        raise KeyError(f"no mapping provided for layer {layer.name!r}") from error
    return mapping.clipped_to_layer(layer)
