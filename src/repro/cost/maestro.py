"""The analytical HW performance evaluator.

This module plays the role MAESTRO plays in the paper: given a layer and an
accelerator design point (PE hierarchy + mapping + platform bandwidths) it
derives latency, traffic, energy, utilization and minimum buffer
requirements.  The analysis is data-centric: reuse is inferred from loop
order, spatial mapping and tile sizes (see :mod:`repro.cost.reuse`), never
from simulation, so a single evaluation costs microseconds and the
optimization loop can afford tens of thousands of samples.

Two implementations of the per-layer analysis coexist:

* the **fast engine** (:mod:`repro.cost.engine`), which works on
  precomputed layer statics and tuple-indexed mappings and memoizes layer
  reports in a bounded LRU keyed on the clipped per-layer mapping — the
  default on every hot path; and
* the **reference path** (``engine="reference"``), the original dict-based
  analysis kept verbatim as ground truth for the bit-identical parity tests
  and as the baseline for the throughput benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping as TMapping, Optional, Sequence, Union

import numpy as np

from repro.arch.energy import EnergyModel
from repro.cost.cache import CacheStats, LRUCache
from repro.cost.engine import (
    energy_coefficients,
    evaluate_layer_key,
    layer_mapping_key,
    make_report,
    report_values,
)
from repro.cost.persist import (
    PersistentLayerCache,
    cache_namespace,
    matrix_row_digest,
    statics_blob,
    tuple_key_digest,
)
from repro.cost.vector_engine import GENES_PER_LEVEL, VectorEngine
from repro.cost.performance import LayerPerformance, ModelPerformance
from repro.cost.reuse import (
    LevelAnalysis,
    analyze_levels,
    operand_fetches,
    spatial_distinct_factor,
)
from repro.mapping.mapping import Mapping, mapping_from_cache_key
from repro.mapping.tiles import buffer_requirements, operand_footprint
from repro.workloads.dims import DIMS
from repro.workloads.layer import Layer
from repro.workloads.model import Model
from repro.workloads.statics import layer_statics, model_statics

#: Accepted ways of supplying mappings to :meth:`CostModel.evaluate_model`.
MappingProvider = Union[Mapping, Callable[[Layer], Mapping], TMapping[str, Mapping]]

#: Default bound of the per-layer report cache.  Each entry is one flat
#: tuple of scalar report fields (a few hundred bytes, invisible to the
#: cyclic GC), so the default costs a couple of MB while comfortably
#: covering a GA generation's working set.
DEFAULT_LAYER_CACHE_SIZE = 16384


#: Kept as an alias: the canonical implementation moved next to the engine
#: so the vector engine can share it without an import cycle.
_report_values = report_values


class LazyModelPerformance(ModelPerformance):
    """A model report whose per-layer objects materialize on first access.

    The batch path scores thousands of designs per generation, but almost
    none of them are ever inspected layer by layer — only the handful that
    win a search get serialized or summarised.  This subclass stores the
    raw per-layer value tuples plus the four aggregates the fitness path
    reads (latency, energy, buffer requirements, computed in the exact
    accumulation order of the eager properties) and builds the
    :class:`LayerPerformance` tuple lazily.  Every other inherited property
    goes through ``self.layers`` and therefore works unchanged.
    """

    @staticmethod
    def build(
        model_name: str,
        names: tuple,
        counts: tuple,
        entries: tuple,
        latency: float,
        energy: float,
        l1_requirement_bytes: int,
        l2_requirement_bytes: int,
    ) -> "LazyModelPerformance":
        performance = object.__new__(LazyModelPerformance)
        performance.__dict__.update(
            model_name=model_name,
            _names=names,
            _counts=counts,
            _entries=entries,
            _latency=latency,
            _energy=energy,
            _l1_requirement=l1_requirement_bytes,
            _l2_requirement=l2_requirement_bytes,
        )
        return performance

    @property
    def layers(self) -> tuple:
        cached = self.__dict__.get("_layers")
        if cached is None:
            cached = tuple(
                make_report(name, *entry, count)
                for name, entry, count in zip(
                    self._names, self._entries, self._counts
                )
            )
            self.__dict__["_layers"] = cached
        return cached

    @property
    def latency(self) -> float:
        return self._latency

    @property
    def energy(self) -> float:
        return self._energy

    @property
    def l1_requirement_bytes(self) -> int:
        return self._l1_requirement

    @property
    def l2_requirement_bytes(self) -> int:
        return self._l2_requirement


def _model_dims_matrix(model: Model) -> np.ndarray:
    """Unique-layer dimension sizes as an ``(L, 6)`` int64 matrix.

    Memoized on the model instance (like :func:`model_statics`); the batch
    path clips a mapping's tiles against every layer in two ``np.minimum``
    calls instead of per-layer ``map(min, ...)`` loops.
    """
    matrix = model.__dict__.get("_dims_matrix")
    if matrix is None:
        matrix = np.array(
            [statics.dims for _, statics in model_statics(model)],
            dtype=np.int64,
        )
        object.__setattr__(model, "_dims_matrix", matrix)
    return matrix


@dataclass(frozen=True)
class CostModel:
    """MAESTRO-style analytical evaluator.

    Parameters
    ----------
    energy_model:
        Per-MAC and per-byte energy coefficients.
    bytes_per_element:
        Tensor element width in bytes.
    cache_size:
        Bound of the memoized per-layer report cache (0 disables caching).
    engine:
        ``"fast"`` (default) uses the tuple-based engine and the cache;
        ``"reference"`` runs the original dict-based analysis uncached.
    """

    energy_model: EnergyModel = EnergyModel()
    bytes_per_element: int = 1
    cache_size: int = DEFAULT_LAYER_CACHE_SIZE
    engine: str = "fast"

    def __post_init__(self) -> None:
        if self.engine not in ("fast", "reference"):
            raise ValueError(
                f"engine must be 'fast' or 'reference', got {self.engine!r}"
            )
        object.__setattr__(self, "_cache", LRUCache(self.cache_size))
        object.__setattr__(
            self, "_energy_coefficients", energy_coefficients(self.energy_model)
        )
        # Persistent-tier key namespace: scopes every L2 digest to this
        # backend + technology configuration so cross-backend /
        # cross-element-width rows can never alias on disk.
        object.__setattr__(
            self,
            "_l2_namespace",
            cache_namespace(
                "analytic", self.bytes_per_element, self._energy_coefficients
            ),
        )
        # Cross-generation delta-evaluation state: the previous generation's
        # (member, layer) working set keyed by row fingerprint, plus the
        # reuse counters surfaced through vector_stats.
        object.__setattr__(self, "_delta_rows", None)
        object.__setattr__(
            self,
            "delta_counters",
            {
                "delta_members_reused": 0,
                "delta_member_requests": 0,
                "delta_rows_reused": 0,
                "delta_row_requests": 0,
                "delta_generations": 0,
            },
        )

    # -- cache introspection -----------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the per-layer report cache."""
        return self._cache.stats()

    def cache_clear(self) -> None:
        """Drop all memoized layer reports, delta tables and counters."""
        self._cache.clear()
        object.__setattr__(self, "_delta_rows", None)
        for key in self.delta_counters:
            self.delta_counters[key] = 0

    @property
    def layer_cache(self) -> LRUCache:
        """The layer-report cache instance (shareable via :meth:`adopt_cache`)."""
        return self._cache

    def adopt_cache(self, cache: LRUCache) -> None:
        """Swap in an externally owned layer-report cache.

        The sweep runner uses this to hand one warm cache to every job that
        shares a model x platform x constraint combination: per-layer
        reports are pure functions of (statics, clipped mapping key,
        bandwidths) — all part of the cache key (the gene-matrix path
        numbers the statics through the cache's own token table, so every
        adopter agrees on the fingerprints) — and reuse across objectives
        and optimizers is sound.  The delta table is dropped: its
        fingerprints embed the *previous* cache's tokens.

        A persistent L2 tier rides along: if this model's current cache
        carries one and the adopted cache does not, the tier moves over,
        so a sweep's shared warm caches stay backed by the shared on-disk
        store (L2 digests embed no process- or cache-local state, so the
        carry is always sound).
        """
        tier = self._cache.tier
        if tier is not None and cache.tier is None:
            cache.tier = tier
        object.__setattr__(self, "_cache", cache)
        object.__setattr__(self, "_delta_rows", None)

    def attach_persistent_cache(self, tier: PersistentLayerCache) -> None:
        """Back the layer-report LRU with a persistent L2 tier.

        Lookups that miss the in-memory cache then probe the on-disk
        store before falling back to the engine, and freshly priced rows
        are written back — all inside the cache-enabled branches, so
        ``use_cache=False`` keeps the tier inactive too.
        """
        self._cache.tier = tier

    # -- vector engine -----------------------------------------------------

    def vector_engine(self) -> VectorEngine:
        """The lazily created population-axis engine of this cost model."""
        engine = self.__dict__.get("_vector_engine")
        if engine is None:
            engine = VectorEngine(self.bytes_per_element, self._energy_coefficients)
            object.__setattr__(self, "_vector_engine", engine)
        return engine

    @property
    def vector_stats(self) -> Dict[str, int]:
        """Vectorized / scalar-fallback / delta-reuse counters.

        ``rows_vectorized`` and ``rows_fallback`` count engine rows by how
        they were priced, with ``rows_fallback`` further broken down by
        reason in the ``fallback_*`` counters (``fallback_depth``,
        ``fallback_statics_overflow``, ``fallback_intermediate_overflow``,
        ``fallback_small_batch``, ``fallback_gene_overflow``); the
        ``delta_*`` counters track cross-generation delta evaluation —
        members and (member, layer) rows reused from the previous
        generation's fingerprint tables without touching the engine (see
        :meth:`evaluate_model_matrix`).  The ``l2_*`` counters report the
        persistent tier when one is attached (an L2 hit also counts as an
        L1 miss, so the L1 hit/miss counters are identical cold or warm
        and the tier's effect is purely who supplies the miss).
        """
        stats = dict(self.delta_counters)
        tier = self._cache.tier
        if tier is None:
            stats.update(l2_hits=0, l2_misses=0, l2_writes=0)
        else:
            stats.update(tier.counters())
        engine = self.__dict__.get("_vector_engine")
        if engine is None:
            stats.update(rows_vectorized=0, rows_fallback=0)
            stats.update(
                fallback_depth=0,
                fallback_statics_overflow=0,
                fallback_intermediate_overflow=0,
                fallback_small_batch=0,
                fallback_gene_overflow=0,
            )
        else:
            stats.update(
                rows_vectorized=engine.rows_vectorized,
                rows_fallback=engine.rows_fallback,
            )
            stats.update(engine.fallback_counters)
        return stats

    # -- single layer ------------------------------------------------------

    def evaluate_layer(
        self,
        layer: Layer,
        mapping: Mapping,
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> LayerPerformance:
        """Evaluate one layer under one mapping.

        The mapping's tile sizes are interpreted after clipping to the
        layer's dimensions, so any syntactically valid mapping can be
        evaluated (the encoding never produces hard failures, only bad
        scores).
        """
        if noc_bandwidth <= 0 or dram_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.engine == "reference":
            return self.evaluate_layer_reference(
                layer, mapping, noc_bandwidth, dram_bandwidth
            )
        statics = layer_statics(layer)
        key = layer_mapping_key(statics, mapping)
        # Statics are canonical per layer shape (identity-hashed), which
        # keeps the composite key cheap while distinguishing layers whose
        # different shapes happen to clip a mapping identically.  Cached
        # values are plain field tuples (see evaluate_model for why).
        cache_key = (statics, key, noc_bandwidth, dram_bandwidth)
        cache = self._cache
        entry = cache.get(cache_key)
        if entry is not None:
            return make_report(layer.name, *entry, layer.count)
        tier = cache.tier if cache.maxsize > 0 else None
        digest = None
        if tier is not None:
            digest = tuple_key_digest(
                self._l2_namespace, statics, key, noc_bandwidth, dram_bandwidth
            )
            entry = tier.get(digest)
            if entry is not None:
                cache.put(cache_key, entry)
                return make_report(layer.name, *entry, layer.count)
        report = evaluate_layer_key(
            statics,
            key,
            noc_bandwidth,
            dram_bandwidth,
            self.bytes_per_element,
            self._energy_coefficients,
            layer.name,
            layer.count,
        )
        values = _report_values(report)
        cache.put(cache_key, values)
        if tier is not None:
            tier.put(digest, values)
            tier.flush()
        return report

    def evaluate_layer_reference(
        self,
        layer: Layer,
        mapping: Mapping,
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> LayerPerformance:
        """The original (uncached, dict-based) per-layer analysis.

        Ground truth for the fast engine: the parity tests assert that
        :meth:`evaluate_layer` reproduces this bit for bit.
        """
        if noc_bandwidth <= 0 or dram_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        bpe = self.bytes_per_element
        analyses = analyze_levels(layer, mapping)
        relevance = layer.relevance()

        inner = analyses[-1]
        inner_volume = 1
        for dim in DIMS:
            inner_volume *= inner.tile[dim]

        total_steps = 1
        for analysis in analyses:
            total_steps *= analysis.total_trips
        compute_cycles = float(inner_volume * total_steps)

        dram_bytes = self._dram_traffic(layer, analyses[0], relevance)
        l2_to_l1_bytes = self._on_chip_traffic(layer, analyses, relevance)

        noc_cycles = l2_to_l1_bytes / noc_bandwidth
        dram_cycles = dram_bytes / dram_bandwidth
        startup = self._startup_cycles(
            layer, analyses, noc_bandwidth, dram_bandwidth
        )
        latency = max(compute_cycles, noc_cycles, dram_cycles) + startup

        macs = layer.macs
        l1_access_bytes = 2.0 * macs * bpe + l2_to_l1_bytes
        l2_access_bytes = l2_to_l1_bytes + dram_bytes
        energy = self.energy_model.compute_energy(macs) + self.energy_model.movement_energy(
            l1_bytes=l1_access_bytes,
            l2_bytes=l2_access_bytes,
            dram_bytes=dram_bytes,
        )

        active_pes = 1
        for analysis in analyses:
            active_pes *= analysis.active

        requirement = buffer_requirements(layer, mapping, bpe)
        return LayerPerformance(
            layer_name=layer.name,
            latency=latency,
            compute_cycles=compute_cycles,
            noc_cycles=noc_cycles,
            dram_cycles=dram_cycles,
            macs=macs,
            l2_to_l1_bytes=l2_to_l1_bytes,
            dram_bytes=dram_bytes,
            l1_access_bytes=l1_access_bytes,
            energy=energy,
            active_pes=active_pes,
            num_pes=mapping.num_pes,
            l1_requirement_bytes=requirement.l1_bytes_per_pe,
            l2_requirement_bytes=requirement.l2_bytes,
            count=layer.count,
        )

    # -- whole model -------------------------------------------------------

    def evaluate_model(
        self,
        model: Model,
        mappings: MappingProvider,
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> ModelPerformance:
        """Evaluate every unique layer of ``model`` and aggregate.

        ``mappings`` may be a single :class:`Mapping` (applied to every
        layer, clipped to each layer's dimensions), a callable
        ``layer -> Mapping``, or a dict keyed by layer name.
        """
        if self.engine == "reference":
            reports: List[LayerPerformance] = []
            for layer in model.unique_layers():
                mapping = _resolve_mapping(mappings, layer, clip=True)
                reports.append(
                    self.evaluate_layer(layer, mapping, noc_bandwidth, dram_bandwidth)
                )
            return ModelPerformance(model_name=model.name, layers=tuple(reports))

        # Fused fast path: one cache/engine round per unique layer, with
        # per-evaluation constants hoisted and the cache dict operated on
        # directly (see LRUCache.data) to keep the per-layer overhead at a
        # couple of dict operations.  The cache stores plain field tuples
        # rather than report objects: tuples of scalars are untracked by the
        # cyclic GC, so thousands of cached entries do not slow collections
        # down; reports are rebuilt on hits via the engine's bulk
        # constructor.
        if noc_bandwidth <= 0 or dram_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        cache = self._cache
        cache_on = cache.maxsize > 0
        tier = cache.tier if cache_on else None
        namespace = self._l2_namespace
        data = cache.data
        maxsize = cache.maxsize
        hits = misses = 0
        bpe = self.bytes_per_element
        energy = self._energy_coefficients
        shared = mappings if isinstance(mappings, Mapping) else None
        reports = []
        for layer, statics in model_statics(model):
            mapping = shared if shared is not None else _resolve_mapping(mappings, layer)
            key = layer_mapping_key(statics, mapping)
            entry = None
            digest = None
            if cache_on:
                cache_key = (statics, key, noc_bandwidth, dram_bandwidth)
                entry = data.get(cache_key)
                if entry is not None:
                    hits += 1
                else:
                    # An L2 hit below still counts as an L1 miss: the L1
                    # counters are identical cold or warm, the tier only
                    # changes who supplies the missing row.
                    misses += 1
                    if tier is not None:
                        digest = tuple_key_digest(
                            namespace, statics, key,
                            noc_bandwidth, dram_bandwidth,
                        )
                        entry = tier.get(digest)
                        if entry is not None:
                            data[cache_key] = entry
                            if len(data) > maxsize:
                                data.popitem(last=False)
            if entry is None:
                report = evaluate_layer_key(
                    statics,
                    key,
                    noc_bandwidth,
                    dram_bandwidth,
                    bpe,
                    energy,
                    layer.name,
                    layer.count,
                )
                if cache_on:
                    values = _report_values(report)
                    data[cache_key] = values
                    if len(data) > maxsize:
                        data.popitem(last=False)
                    if digest is not None:
                        tier.put(digest, values)
            else:
                report = make_report(layer.name, *entry, layer.count)
            reports.append(report)
        cache.hits += hits
        cache.misses += misses
        if tier is not None:
            tier.flush()
        return ModelPerformance(model_name=model.name, layers=tuple(reports))

    # -- whole population --------------------------------------------------

    def evaluate_model_batch(
        self,
        model: Model,
        mappings: Sequence[Union[Mapping, tuple]],
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> List[ModelPerformance]:
        """Evaluate one model under many mappings in a single array pass.

        Each entry of ``mappings`` is a :class:`Mapping` or its raw
        :meth:`Mapping.cache_key` parts (the genome encoding produces the
        latter directly, skipping mapping construction).  The population
        axis is packed into the vector engine: per-layer mapping keys are
        built for every design (tile clipping vectorized against the
        model's dimension matrix), deduplicated against the layer-report
        cache *and* within the batch, and only the surviving unique rows
        reach the arrays.  Results — reports, cache contents and hit/miss
        counters — are identical to calling :meth:`evaluate_model` once per
        mapping, except that at cache capacity the batch looks all its keys
        up before inserting, so eviction-order effects on the *counters*
        can differ; cached values themselves are pure functions of their
        key either way.
        """
        if self.engine == "reference":
            return [
                self.evaluate_model(
                    model,
                    mapping
                    if isinstance(mapping, Mapping)
                    else mapping_from_cache_key(mapping),
                    noc_bandwidth,
                    dram_bandwidth,
                )
                for mapping in mappings
            ]
        if noc_bandwidth <= 0 or dram_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        pairs = model_statics(model)
        dims_matrix = _model_dims_matrix(model)
        engine = self.vector_engine()
        layer_slots = [engine.statics_slot(statics) for _, statics in pairs]
        slots_array = np.array(layer_slots, dtype=np.int64)
        layer_names = tuple(layer.name for layer, _ in pairs)
        layer_counts = tuple(layer.count for layer, _ in pairs)
        num_layers = len(pairs)
        cache = self._cache
        cache_on = cache.maxsize > 0
        tier = cache.tier if cache_on else None
        namespace = self._l2_namespace
        maxsize = cache.maxsize
        data = cache.data
        hits = misses = 0
        pending: Dict[tuple, int] = {}
        pending_digests: Dict[tuple, bytes] = {}
        rows: List[tuple] = []
        row_design: List[int] = []
        row_layer: List[int] = []
        pack_depth: Optional[int] = None  # hierarchy depth of the batch
        packable = True  # all designs uniform-depth with int64-safe genes
        static_parts: List[tuple] = []
        tiles_arrays: List[List[np.ndarray]] = []  # per level, per design
        design_entries: List[List] = []
        for design_index, mapping in enumerate(mappings):
            parts = (
                mapping.cache_key() if isinstance(mapping, Mapping) else mapping
            )
            depth = len(parts)
            if pack_depth is None:
                pack_depth = depth
            clipped: Optional[List[np.ndarray]] = None
            if depth == pack_depth and depth > 0:
                try:
                    clipped = []
                    parent = dims_matrix
                    for _, level_tiles in parts:
                        level_clipped = np.minimum(
                            np.array(level_tiles, dtype=np.int64), parent
                        )
                        clipped.append(level_clipped)
                        parent = level_clipped
                except OverflowError:
                    clipped = None  # beyond int64; tuple path is exact
            if clipped is not None:
                statics_list = [static for static, _ in parts]
                clipped_tiles = [
                    list(map(tuple, level_clipped.tolist()))
                    for level_clipped in clipped
                ]
                keys = [
                    tuple(
                        (statics_list[level], clipped_tiles[level][layer])
                        for level in range(depth)
                    )
                    for layer in range(num_layers)
                ]
                static_flat: tuple = ()
                for static in statics_list:
                    static_flat += static[:2] + static[2]
                static_parts.append(static_flat)
                while len(tiles_arrays) < depth:
                    tiles_arrays.append([])
                for level in range(depth):
                    tiles_arrays[level].append(clipped[level])
            else:
                if not isinstance(mapping, Mapping):
                    mapping = mapping_from_cache_key(parts)
                keys = [
                    layer_mapping_key(statics, mapping) for _, statics in pairs
                ]
                packable = False
            per_design: List = []
            for layer_index, ((_, statics), key) in enumerate(zip(pairs, keys)):
                cache_key = (statics, key, noc_bandwidth, dram_bandwidth)
                if cache_on:
                    entry = data.get(cache_key)
                    if entry is not None:
                        hits += 1
                        per_design.append(entry)
                        continue
                row_index = pending.get(cache_key)
                if row_index is None:
                    if tier is not None:
                        digest = tuple_key_digest(
                            namespace, statics, key,
                            noc_bandwidth, dram_bandwidth,
                        )
                        entry = tier.get(digest)
                        if entry is not None:
                            # Served from the persistent tier: counts as
                            # an L1 miss (same counters as a cold run) and
                            # enters L1 so later occurrences hit in-memory.
                            misses += 1
                            data[cache_key] = entry
                            if len(data) > maxsize:
                                data.popitem(last=False)
                            per_design.append(entry)
                            continue
                        pending_digests[cache_key] = digest
                    row_index = len(rows)
                    rows.append((statics, key))
                    row_design.append(design_index)
                    row_layer.append(layer_index)
                    pending[cache_key] = row_index
                    if cache_on:
                        misses += 1
                elif cache_on:
                    # Sequential evaluation would have cached the first
                    # occurrence by now, so this lookup counts as a hit.
                    hits += 1
                per_design.append(row_index)
            design_entries.append(per_design)

        values: List[tuple] = []
        if rows:
            layer_index = np.array(row_layer, dtype=np.int64)
            if packable:
                values = self._evaluate_rows_packed(
                    engine,
                    rows,
                    static_parts,
                    tiles_arrays,
                    np.array(row_design, dtype=np.int64),
                    layer_index,
                    slots_array,
                    num_layers,
                    noc_bandwidth,
                    dram_bandwidth,
                )
            else:
                values = engine.evaluate_rows(
                    rows,
                    noc_bandwidth,
                    dram_bandwidth,
                    slots=[layer_slots[layer] for layer in row_layer],
                )
        if cache_on:
            for cache_key, row_index in pending.items():
                row_values = values[row_index]
                data[cache_key] = row_values
                if len(data) > maxsize:
                    data.popitem(last=False)
                if tier is not None:
                    tier.put(pending_digests[cache_key], row_values)
            cache.hits += hits
            cache.misses += misses
            if tier is not None:
                tier.flush()

        performances: List[ModelPerformance] = []
        for per_design in design_entries:
            resolved = tuple(
                values[entry] if type(entry) is int else entry
                for entry in per_design
            )
            performances.append(
                _assemble_performance(
                    model.name, layer_names, layer_counts, resolved
                )
            )
        return performances

    @staticmethod
    def _evaluate_rows_packed(
        engine: VectorEngine,
        rows: List[tuple],
        static_parts: List[tuple],
        tiles_arrays: List[List[np.ndarray]],
        row_design: np.ndarray,
        row_layer: np.ndarray,
        layer_slots: np.ndarray,
        num_layers: int,
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> List[tuple]:
        """Assemble the engine's gene matrix with array gathers and run it.

        The per-level clipped tile arrays and per-design static parts
        already exist from key building, so the per-row work reduces to two
        fancy-indexed copies per hierarchy level instead of re-flattening
        every key tuple.
        """
        try:
            statics_matrix = np.array(static_parts, dtype=np.int64)
        except OverflowError:
            return engine.evaluate_rows(
                rows,
                noc_bandwidth,
                dram_bandwidth,
                slots=layer_slots[row_layer].tolist(),
            )
        depth = len(tiles_arrays)
        tiles = [np.stack(arrays).reshape(-1, 6) for arrays in tiles_arrays]
        row_position = row_design * num_layers + row_layer
        matrix = np.empty((len(rows), GENES_PER_LEVEL * depth), dtype=np.int64)
        gathered = statics_matrix[row_design]
        for level in range(depth):
            base = level * GENES_PER_LEVEL
            matrix[:, base:base + 8] = gathered[:, 8 * level:8 * level + 8]
            matrix[:, base + 8:base + 14] = tiles[level][row_position]
        return engine.evaluate_packed(
            rows,
            matrix,
            layer_slots[row_layer],
            noc_bandwidth,
            dram_bandwidth,
        )

    def __getstate__(self) -> dict:
        # Worker processes re-derive engine state lazily; the cross-
        # generation delta table is never worth shipping (results are pure
        # functions of their rows, so workers just re-price once).
        state = dict(self.__dict__)
        state["_delta_rows"] = None
        state.pop("_vector_engine", None)
        return state

    # -- gene-matrix population path ---------------------------------------

    def evaluate_model_matrix(
        self,
        model: Model,
        design_matrix: np.ndarray,
        noc_bandwidth: float,
        dram_bandwidth: float,
        use_delta: bool = False,
    ) -> List[ModelPerformance]:
        """Evaluate one model under many *repaired gene rows* in one pass.

        ``design_matrix`` is a ``(designs, 14 * num_levels)`` int64
        :class:`~repro.encoding.genome_matrix.GenomeMatrix` slice of any
        hierarchy depth whose rows are already repaired (spatial >= 1,
        tiles >= 1, orders are permutations).  The per-(design, layer) work
        rows are assembled with array gathers — vectorized tile clipping
        against the model's dimension matrix, no per-member tuple
        construction — and deduplicated by raw row bytes before anything
        touches a Python dict.  Results are bit-identical to
        :meth:`evaluate_model_batch` on the rows' cache keys.

        With ``use_delta`` the previous call's (member, layer) working set
        is kept as a generation-scoped fingerprint table: rows unchanged
        since the last generation resolve from it directly, before (and
        regardless of) the LRU — a guaranteed, unevictable reuse window one
        generation wide.  A delta hit counts as a layer-cache hit (the
        value was priced one generation ago); the dedicated
        ``delta_rows_reused`` counter in :attr:`vector_stats` tracks how
        much work the table absorbed per generation.
        """
        if self.engine == "reference":
            raise ValueError(
                "the gene-matrix path requires the fast engine; "
                "use evaluate_model_batch with engine='reference'"
            )
        if noc_bandwidth <= 0 or dram_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        pairs = model_statics(model)
        dims_matrix = _model_dims_matrix(model)
        engine = self.vector_engine()
        layer_slots = np.array(
            [engine.statics_slot(statics) for _, statics in pairs], dtype=np.int64
        )
        layer_names = tuple(layer.name for layer, _ in pairs)
        layer_counts = tuple(layer.count for layer, _ in pairs)
        num_layers = len(pairs)
        num_designs = len(design_matrix)
        # Statics identity in fingerprints uses the *cache's* token table
        # (LRUCache.tokens), not the engine's slot numbering: evaluators
        # sharing one warm cache through adopt_cache then agree on every
        # token by construction, preserving adopt_cache's contract that the
        # statics are part of the cache key, and the table's references pin
        # each statics object for the cache's lifetime so a token is never
        # reissued.
        tokens = self._cache.tokens
        layer_tokens = np.array(
            [
                tokens.setdefault(statics, len(tokens))
                for _, statics in pairs
            ],
            dtype=np.int64,
        )

        num_levels = design_matrix.shape[1] // GENES_PER_LEVEL
        # The last two columns carry the bandwidth float bit patterns so a
        # row's bytes fingerprint the *full* composite cache key — same
        # contract as the tuple keys, which include the statics and both
        # bandwidths — and calls with different bandwidths can never alias
        # in the LRU or delta table.
        width = 1 + GENES_PER_LEVEL * num_levels + 2
        work = np.empty((num_designs * num_layers, width), dtype=np.int64)
        work[:, 0] = np.tile(layer_tokens, num_designs)
        parent = dims_matrix[None, :, :]
        for level in range(num_levels):
            src = level * GENES_PER_LEVEL
            dst = 1 + level * GENES_PER_LEVEL
            work[:, dst:dst + 8] = np.repeat(
                design_matrix[:, src:src + 8], num_layers, axis=0
            )
            clipped = np.minimum(
                design_matrix[:, None, src + 8:src + 14], parent
            )
            work[:, dst + 8:dst + 14] = clipped.reshape(-1, 6)
            parent = clipped
        work[:, width - 2] = np.float64(noc_bandwidth).view(np.int64)
        work[:, width - 1] = np.float64(dram_bandwidth).view(np.int64)

        # Row reuse is resolved on raw row *bytes*: the statics token in
        # column 0 keeps same-gene rows of different layer shapes apart, so
        # a row's bytes are a faithful fingerprint of its composite cache
        # key, and the cost per (member, layer) row is one bytes slice plus
        # one dict probe — composite tuple keys are never built on this
        # path (the engine's scalar fallback builds them on demand).
        # Sharing a cache with the tuple-keyed scalar paths keys past them
        # harmlessly (rows are pure functions of their key either way).
        # Hit/miss totals match the sequential path (first occurrence of an
        # unknown row is the miss, later occurrences are hits).
        raw = work.tobytes()
        step = width * 8
        cache = self._cache
        cache_on = cache.maxsize > 0
        tier = cache.tier if cache_on else None
        namespace = self._l2_namespace
        maxsize = cache.maxsize
        # Per-layer statics content blobs for the persistent-tier digests:
        # the digest replaces the process-local token column with them, so
        # on-disk keys are stable across processes and runs.
        blobs = (
            [statics_blob(statics) for _, statics in pairs]
            if tier is not None
            else None
        )
        data = cache.data
        hits = misses = 0
        l2_served = 0
        counters = self.delta_counters
        prev_rows = self._delta_rows if use_delta else None
        next_rows: Optional[dict] = {} if use_delta else None
        rows_reused = 0
        entries: List = [None] * (num_designs * num_layers)
        pending: Dict[bytes, int] = {}
        pending_digest: Dict[bytes, bytes] = {}
        pending_positions: List[int] = []
        for index in range(num_designs * num_layers):
            fingerprint = raw[index * step : index * step + step]
            if prev_rows is not None:
                value = prev_rows.get(fingerprint)
                if value is not None:
                    rows_reused += 1
                    if cache_on:
                        hits += 1
                    entries[index] = value
                    next_rows[fingerprint] = value
                    continue
            slot = pending.get(fingerprint)
            if slot is not None:
                # Sequential evaluation would have resolved the first
                # occurrence by now, so this lookup counts as a hit.
                if cache_on:
                    hits += 1
                entries[index] = slot
                continue
            if cache_on:
                value = data.get(fingerprint)
                if value is not None:
                    hits += 1
                    entries[index] = value
                    if next_rows is not None:
                        next_rows[fingerprint] = value
                    continue
                if tier is not None:
                    digest = matrix_row_digest(
                        namespace, blobs[index % num_layers], fingerprint
                    )
                    value = tier.get(digest)
                    if value is not None:
                        # Served from the persistent tier: counted as an
                        # L1 miss below (same counters as a cold run) and
                        # inserted so later occurrences hit in-memory.
                        l2_served += 1
                        entries[index] = value
                        data[fingerprint] = value
                        if len(data) > maxsize:
                            data.popitem(last=False)
                        if next_rows is not None:
                            next_rows[fingerprint] = value
                        continue
                    pending_digest[fingerprint] = digest
            pending[fingerprint] = len(pending_positions)
            entries[index] = len(pending_positions)
            pending_positions.append(index)

        values: List[Optional[tuple]] = []
        if pending_positions:
            positions = np.array(pending_positions, dtype=np.int64)
            values = engine.evaluate_packed(
                _WorkRowView(
                    work,
                    pending_positions,
                    {
                        token: statics
                        for token, (_, statics) in zip(
                            layer_tokens.tolist(), pairs
                        )
                    },
                ),
                work[positions, 1:width - 2],
                np.tile(layer_slots, num_designs)[positions],
                noc_bandwidth,
                dram_bandwidth,
            )
            if cache_on:
                misses += len(pending_positions)
                for fingerprint, slot in pending.items():
                    row_values = values[slot]
                    data[fingerprint] = row_values
                    if len(data) > maxsize:
                        data.popitem(last=False)
                    if tier is not None:
                        tier.put(pending_digest[fingerprint], row_values)
            if next_rows is not None:
                for fingerprint, slot in pending.items():
                    next_rows[fingerprint] = values[slot]
        if cache_on:
            cache.hits += hits
            cache.misses += misses + l2_served
        if tier is not None:
            tier.flush()
        if next_rows is not None:
            object.__setattr__(self, "_delta_rows", next_rows)
            counters["delta_rows_reused"] += rows_reused
            counters["delta_row_requests"] += num_designs * num_layers
            counters["delta_generations"] += 1

        performances: List[ModelPerformance] = []
        for design_index in range(num_designs):
            base = design_index * num_layers
            resolved = tuple(
                values[entry] if type(entry) is int else entry
                for entry in entries[base : base + num_layers]
            )
            performances.append(
                _assemble_performance(
                    model.name, layer_names, layer_counts, resolved
                )
            )
        return performances

    # -- internals ---------------------------------------------------------

    def _dram_traffic(
        self,
        layer: Layer,
        outer: LevelAnalysis,
        relevance: Dict[str, tuple],
    ) -> float:
        """Off-chip traffic in bytes: reads of W and I, read/write of O."""
        bpe = self.bytes_per_element
        macro_footprint = operand_footprint(layer, outer.macro)
        traffic = 0.0
        for operand in ("W", "I"):
            fetches = operand_fetches(outer, relevance[operand])
            traffic += fetches * macro_footprint[operand] * bpe

        out_fetches = operand_fetches(outer, relevance["O"])
        out_elements = out_fetches * macro_footprint["O"]
        final_output = layer.tensor_sizes()["O"]
        # Final results are written once; any surplus represents partial-sum
        # tiles spilled to DRAM, each costing a write and a later read.
        spills = max(0.0, float(out_elements - final_output))
        traffic += (final_output + 2.0 * spills) * bpe
        return traffic

    def _on_chip_traffic(
        self,
        layer: Layer,
        analyses: List[LevelAnalysis],
        relevance: Dict[str, tuple],
    ) -> float:
        """Traffic delivered over the NoC from the shared buffer downwards."""
        if len(analyses) < 2:
            return 0.0
        bpe = self.bytes_per_element
        traffic = 0.0
        steps_above = analyses[0].total_trips
        for level_index in range(1, len(analyses)):
            analysis = analyses[level_index]
            tile_footprint = operand_footprint(layer, analysis.tile)
            for operand in ("W", "I", "O"):
                fetches = operand_fetches(analysis, relevance[operand])
                distinct = spatial_distinct_factor(
                    analyses,
                    level_index,
                    relevance[operand],
                    is_output=operand == "O",
                )
                traffic += (
                    steps_above * fetches * tile_footprint[operand] * distinct * bpe
                )
            steps_above *= analysis.total_trips
        return traffic

    def _startup_cycles(
        self,
        layer: Layer,
        analyses: List[LevelAnalysis],
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> float:
        """Pipeline fill: first L2 tile from DRAM plus first L1 tile over the NoC."""
        bpe = self.bytes_per_element
        outer_footprint = operand_footprint(layer, analyses[0].macro)
        fill_l2 = (outer_footprint["W"] + outer_footprint["I"]) * bpe / dram_bandwidth
        fill_l1 = 0.0
        if len(analyses) > 1:
            inner_footprint = operand_footprint(layer, analyses[-1].tile)
            fill_l1 = (
                (inner_footprint["W"] + inner_footprint["I"]) * bpe / noc_bandwidth
            )
        return fill_l2 + fill_l1


def _assemble_performance(
    model_name: str,
    layer_names: tuple,
    layer_counts: tuple,
    resolved: tuple,
) -> "LazyModelPerformance":
    """Fold per-layer value tuples into a lazy model report.

    Aggregates accumulate in the exact order of the eager properties (sum
    over layers of latency * count etc.), so the lazy reports are
    indistinguishable from eagerly built ones.
    """
    latency = 0.0
    energy = 0.0
    l1_requirement = 0
    l2_requirement = 0
    for entry, count in zip(resolved, layer_counts):
        latency += entry[0] * count
        energy += entry[8] * count
        if entry[11] > l1_requirement:
            l1_requirement = entry[11]
        if entry[12] > l2_requirement:
            l2_requirement = entry[12]
    return LazyModelPerformance.build(
        model_name,
        layer_names,
        layer_counts,
        resolved,
        latency,
        energy,
        l1_requirement,
        l2_requirement,
    )


class _WorkRowView:
    """Lazy ``(statics, key)`` view of packed work rows.

    :meth:`VectorEngine.evaluate_packed` consults its ``rows`` argument
    only for scalar-fallback rows (non-vectorizable statics, exactness
    flags), so composite tuple keys are built on demand instead of eagerly
    for the whole batch.
    """

    __slots__ = ("_work", "_positions", "_statics_of_token")

    def __init__(
        self, work, positions, statics_of_token
    ):
        self._work = work
        self._positions = positions
        self._statics_of_token = statics_of_token

    def __len__(self) -> int:
        return len(self._positions)

    def __getitem__(self, index: int):
        genes = self._work[self._positions[index]].tolist()
        # Row layout: statics token, 14 genes per level, two bandwidth
        # bit-pattern columns.
        num_levels = (len(genes) - 3) // GENES_PER_LEVEL
        key = tuple(
            (
                (genes[base], genes[base + 1], tuple(genes[base + 2:base + 8])),
                tuple(genes[base + 8:base + 14]),
            )
            for base in range(
                1, 1 + num_levels * GENES_PER_LEVEL, GENES_PER_LEVEL
            )
        )
        return self._statics_of_token[genes[0]], key


def _resolve_mapping(
    mappings: MappingProvider, layer: Layer, clip: bool = False
) -> Mapping:
    """Turn any accepted mapping provider into a concrete per-layer mapping.

    The fast engine clips tile sizes itself while building the memoization
    key, so eager clipping (``clip=True``) is only performed on the
    reference path, where it reproduces the original evaluation flow.
    """
    if isinstance(mappings, Mapping):
        return mappings.clipped_to_layer(layer) if clip else mappings
    if callable(mappings):
        mapping = mappings(layer)
        return mapping.clipped_to_layer(layer) if clip else mapping
    try:
        mapping = mappings[layer.name]
    except KeyError as error:
        raise KeyError(f"no mapping provided for layer {layer.name!r}") from error
    return mapping.clipped_to_layer(layer) if clip else mapping
