"""The analytical HW performance evaluator.

This module plays the role MAESTRO plays in the paper: given a layer and an
accelerator design point (PE hierarchy + mapping + platform bandwidths) it
derives latency, traffic, energy, utilization and minimum buffer
requirements.  The analysis is data-centric: reuse is inferred from loop
order, spatial mapping and tile sizes (see :mod:`repro.cost.reuse`), never
from simulation, so a single evaluation costs microseconds and the
optimization loop can afford tens of thousands of samples.

Two implementations of the per-layer analysis coexist:

* the **fast engine** (:mod:`repro.cost.engine`), which works on
  precomputed layer statics and tuple-indexed mappings and memoizes layer
  reports in a bounded LRU keyed on the clipped per-layer mapping — the
  default on every hot path; and
* the **reference path** (``engine="reference"``), the original dict-based
  analysis kept verbatim as ground truth for the bit-identical parity tests
  and as the baseline for the throughput benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping as TMapping, Union

from repro.arch.energy import EnergyModel
from repro.cost.cache import CacheStats, LRUCache
from repro.cost.engine import (
    energy_coefficients,
    evaluate_layer_key,
    layer_mapping_key,
    make_report,
)
from repro.cost.performance import LayerPerformance, ModelPerformance
from repro.cost.reuse import (
    LevelAnalysis,
    analyze_levels,
    operand_fetches,
    spatial_distinct_factor,
)
from repro.mapping.mapping import Mapping
from repro.mapping.tiles import buffer_requirements, operand_footprint
from repro.workloads.dims import DIMS
from repro.workloads.layer import Layer
from repro.workloads.model import Model
from repro.workloads.statics import layer_statics, model_statics

#: Accepted ways of supplying mappings to :meth:`CostModel.evaluate_model`.
MappingProvider = Union[Mapping, Callable[[Layer], Mapping], TMapping[str, Mapping]]

#: Default bound of the per-layer report cache.  Each entry is one flat
#: tuple of scalar report fields (a few hundred bytes, invisible to the
#: cyclic GC), so the default costs a couple of MB while comfortably
#: covering a GA generation's working set.
DEFAULT_LAYER_CACHE_SIZE = 16384


def _report_values(report: LayerPerformance) -> tuple:
    """Cacheable scalar fields of a report (everything but name and count).

    GC-untracked (a flat tuple of numbers), so a full cache does not slow
    down cyclic garbage collections the way thousands of live report
    objects would.  ``make_report(layer.name, *values, layer.count)``
    reconstitutes the report for any same-shaped layer.
    """
    values = report.__dict__
    return (
        values["latency"],
        values["compute_cycles"],
        values["noc_cycles"],
        values["dram_cycles"],
        values["macs"],
        values["l2_to_l1_bytes"],
        values["dram_bytes"],
        values["l1_access_bytes"],
        values["energy"],
        values["active_pes"],
        values["num_pes"],
        values["l1_requirement_bytes"],
        values["l2_requirement_bytes"],
    )


@dataclass(frozen=True)
class CostModel:
    """MAESTRO-style analytical evaluator.

    Parameters
    ----------
    energy_model:
        Per-MAC and per-byte energy coefficients.
    bytes_per_element:
        Tensor element width in bytes.
    cache_size:
        Bound of the memoized per-layer report cache (0 disables caching).
    engine:
        ``"fast"`` (default) uses the tuple-based engine and the cache;
        ``"reference"`` runs the original dict-based analysis uncached.
    """

    energy_model: EnergyModel = EnergyModel()
    bytes_per_element: int = 1
    cache_size: int = DEFAULT_LAYER_CACHE_SIZE
    engine: str = "fast"

    def __post_init__(self) -> None:
        if self.engine not in ("fast", "reference"):
            raise ValueError(
                f"engine must be 'fast' or 'reference', got {self.engine!r}"
            )
        object.__setattr__(self, "_cache", LRUCache(self.cache_size))
        object.__setattr__(
            self, "_energy_coefficients", energy_coefficients(self.energy_model)
        )

    # -- cache introspection -----------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the per-layer report cache."""
        return self._cache.stats()

    def cache_clear(self) -> None:
        """Drop all memoized layer reports and reset the counters."""
        self._cache.clear()

    # -- single layer ------------------------------------------------------

    def evaluate_layer(
        self,
        layer: Layer,
        mapping: Mapping,
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> LayerPerformance:
        """Evaluate one layer under one mapping.

        The mapping's tile sizes are interpreted after clipping to the
        layer's dimensions, so any syntactically valid mapping can be
        evaluated (the encoding never produces hard failures, only bad
        scores).
        """
        if noc_bandwidth <= 0 or dram_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.engine == "reference":
            return self.evaluate_layer_reference(
                layer, mapping, noc_bandwidth, dram_bandwidth
            )
        statics = layer_statics(layer)
        key = layer_mapping_key(statics, mapping)
        # Statics are canonical per layer shape (identity-hashed), which
        # keeps the composite key cheap while distinguishing layers whose
        # different shapes happen to clip a mapping identically.  Cached
        # values are plain field tuples (see evaluate_model for why).
        cache_key = (statics, key, noc_bandwidth, dram_bandwidth)
        cache = self._cache
        entry = cache.get(cache_key)
        if entry is not None:
            return make_report(layer.name, *entry, layer.count)
        report = evaluate_layer_key(
            statics,
            key,
            noc_bandwidth,
            dram_bandwidth,
            self.bytes_per_element,
            self._energy_coefficients,
            layer.name,
            layer.count,
        )
        cache.put(cache_key, _report_values(report))
        return report

    def evaluate_layer_reference(
        self,
        layer: Layer,
        mapping: Mapping,
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> LayerPerformance:
        """The original (uncached, dict-based) per-layer analysis.

        Ground truth for the fast engine: the parity tests assert that
        :meth:`evaluate_layer` reproduces this bit for bit.
        """
        if noc_bandwidth <= 0 or dram_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        bpe = self.bytes_per_element
        analyses = analyze_levels(layer, mapping)
        relevance = layer.relevance()

        inner = analyses[-1]
        inner_volume = 1
        for dim in DIMS:
            inner_volume *= inner.tile[dim]

        total_steps = 1
        for analysis in analyses:
            total_steps *= analysis.total_trips
        compute_cycles = float(inner_volume * total_steps)

        dram_bytes = self._dram_traffic(layer, analyses[0], relevance)
        l2_to_l1_bytes = self._on_chip_traffic(layer, analyses, relevance)

        noc_cycles = l2_to_l1_bytes / noc_bandwidth
        dram_cycles = dram_bytes / dram_bandwidth
        startup = self._startup_cycles(
            layer, analyses, noc_bandwidth, dram_bandwidth
        )
        latency = max(compute_cycles, noc_cycles, dram_cycles) + startup

        macs = layer.macs
        l1_access_bytes = 2.0 * macs * bpe + l2_to_l1_bytes
        l2_access_bytes = l2_to_l1_bytes + dram_bytes
        energy = self.energy_model.compute_energy(macs) + self.energy_model.movement_energy(
            l1_bytes=l1_access_bytes,
            l2_bytes=l2_access_bytes,
            dram_bytes=dram_bytes,
        )

        active_pes = 1
        for analysis in analyses:
            active_pes *= analysis.active

        requirement = buffer_requirements(layer, mapping, bpe)
        return LayerPerformance(
            layer_name=layer.name,
            latency=latency,
            compute_cycles=compute_cycles,
            noc_cycles=noc_cycles,
            dram_cycles=dram_cycles,
            macs=macs,
            l2_to_l1_bytes=l2_to_l1_bytes,
            dram_bytes=dram_bytes,
            l1_access_bytes=l1_access_bytes,
            energy=energy,
            active_pes=active_pes,
            num_pes=mapping.num_pes,
            l1_requirement_bytes=requirement.l1_bytes_per_pe,
            l2_requirement_bytes=requirement.l2_bytes,
            count=layer.count,
        )

    # -- whole model -------------------------------------------------------

    def evaluate_model(
        self,
        model: Model,
        mappings: MappingProvider,
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> ModelPerformance:
        """Evaluate every unique layer of ``model`` and aggregate.

        ``mappings`` may be a single :class:`Mapping` (applied to every
        layer, clipped to each layer's dimensions), a callable
        ``layer -> Mapping``, or a dict keyed by layer name.
        """
        if self.engine == "reference":
            reports: List[LayerPerformance] = []
            for layer in model.unique_layers():
                mapping = _resolve_mapping(mappings, layer, clip=True)
                reports.append(
                    self.evaluate_layer(layer, mapping, noc_bandwidth, dram_bandwidth)
                )
            return ModelPerformance(model_name=model.name, layers=tuple(reports))

        # Fused fast path: one cache/engine round per unique layer, with
        # per-evaluation constants hoisted and the cache dict operated on
        # directly (see LRUCache.data) to keep the per-layer overhead at a
        # couple of dict operations.  The cache stores plain field tuples
        # rather than report objects: tuples of scalars are untracked by the
        # cyclic GC, so thousands of cached entries do not slow collections
        # down; reports are rebuilt on hits via the engine's bulk
        # constructor.
        if noc_bandwidth <= 0 or dram_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        cache = self._cache
        cache_on = cache.maxsize > 0
        data = cache.data
        maxsize = cache.maxsize
        hits = misses = 0
        bpe = self.bytes_per_element
        energy = self._energy_coefficients
        shared = mappings if isinstance(mappings, Mapping) else None
        reports = []
        for layer, statics in model_statics(model):
            mapping = shared if shared is not None else _resolve_mapping(mappings, layer)
            key = layer_mapping_key(statics, mapping)
            entry = None
            if cache_on:
                cache_key = (statics, key, noc_bandwidth, dram_bandwidth)
                entry = data.get(cache_key)
            if entry is None:
                report = evaluate_layer_key(
                    statics,
                    key,
                    noc_bandwidth,
                    dram_bandwidth,
                    bpe,
                    energy,
                    layer.name,
                    layer.count,
                )
                if cache_on:
                    misses += 1
                    data[cache_key] = _report_values(report)
                    if len(data) > maxsize:
                        data.popitem(last=False)
            else:
                hits += 1
                report = make_report(layer.name, *entry, layer.count)
            reports.append(report)
        cache.hits += hits
        cache.misses += misses
        return ModelPerformance(model_name=model.name, layers=tuple(reports))

    # -- internals ---------------------------------------------------------

    def _dram_traffic(
        self,
        layer: Layer,
        outer: LevelAnalysis,
        relevance: Dict[str, tuple],
    ) -> float:
        """Off-chip traffic in bytes: reads of W and I, read/write of O."""
        bpe = self.bytes_per_element
        macro_footprint = operand_footprint(layer, outer.macro)
        traffic = 0.0
        for operand in ("W", "I"):
            fetches = operand_fetches(outer, relevance[operand])
            traffic += fetches * macro_footprint[operand] * bpe

        out_fetches = operand_fetches(outer, relevance["O"])
        out_elements = out_fetches * macro_footprint["O"]
        final_output = layer.tensor_sizes()["O"]
        # Final results are written once; any surplus represents partial-sum
        # tiles spilled to DRAM, each costing a write and a later read.
        spills = max(0.0, float(out_elements - final_output))
        traffic += (final_output + 2.0 * spills) * bpe
        return traffic

    def _on_chip_traffic(
        self,
        layer: Layer,
        analyses: List[LevelAnalysis],
        relevance: Dict[str, tuple],
    ) -> float:
        """Traffic delivered over the NoC from the shared buffer downwards."""
        if len(analyses) < 2:
            return 0.0
        bpe = self.bytes_per_element
        traffic = 0.0
        steps_above = analyses[0].total_trips
        for level_index in range(1, len(analyses)):
            analysis = analyses[level_index]
            tile_footprint = operand_footprint(layer, analysis.tile)
            for operand in ("W", "I", "O"):
                fetches = operand_fetches(analysis, relevance[operand])
                distinct = spatial_distinct_factor(
                    analyses,
                    level_index,
                    relevance[operand],
                    is_output=operand == "O",
                )
                traffic += (
                    steps_above * fetches * tile_footprint[operand] * distinct * bpe
                )
            steps_above *= analysis.total_trips
        return traffic

    def _startup_cycles(
        self,
        layer: Layer,
        analyses: List[LevelAnalysis],
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> float:
        """Pipeline fill: first L2 tile from DRAM plus first L1 tile over the NoC."""
        bpe = self.bytes_per_element
        outer_footprint = operand_footprint(layer, analyses[0].macro)
        fill_l2 = (outer_footprint["W"] + outer_footprint["I"]) * bpe / dram_bandwidth
        fill_l1 = 0.0
        if len(analyses) > 1:
            inner_footprint = operand_footprint(layer, analyses[-1].tile)
            fill_l1 = (
                (inner_footprint["W"] + inner_footprint["I"]) * bpe / noc_bandwidth
            )
        return fill_l2 + fill_l1


def _resolve_mapping(
    mappings: MappingProvider, layer: Layer, clip: bool = False
) -> Mapping:
    """Turn any accepted mapping provider into a concrete per-layer mapping.

    The fast engine clips tile sizes itself while building the memoization
    key, so eager clipping (``clip=True``) is only performed on the
    reference path, where it reproduces the original evaluation flow.
    """
    if isinstance(mappings, Mapping):
        return mappings.clipped_to_layer(layer) if clip else mappings
    if callable(mappings):
        mapping = mappings(layer)
        return mapping.clipped_to_layer(layer) if clip else mapping
    try:
        mapping = mappings[layer.name]
    except KeyError as error:
        raise KeyError(f"no mapping provided for layer {layer.name!r}") from error
    return mapping.clipped_to_layer(layer) if clip else mapping
