"""Population-axis vectorized layer evaluation (NumPy structure-of-arrays).

The scalar fast engine (:mod:`repro.cost.engine`) evaluates one
(layer, mapping) pair per call; a GA generation asks for hundreds of them.
This module evaluates a whole batch of such pairs — one *row* per
(population member, unique layer) cache miss — in a single NumPy pass:

* a packer flattens each row's layer mapping key (spatial sizes, parallel
  dims, loop orders, clipped tiles) into one ``int64`` matrix — one
  :data:`GENES_PER_LEVEL`-column block per hierarchy level — and resolves
  the per-layer invariants through a small statics table, and
* the reuse/latency/energy arithmetic of the scalar engine
  (:func:`repro.cost.engine._evaluate_two_level` and its depth-general
  sibling ``_evaluate_general``) is re-expressed as level-stacked
  elementwise array operations **in the same operation order**.

Hierarchy depth is a parameter, not an assumption: 1-level, 2-level and
3+-level rows all ride the array pipeline (mixed-depth batches are grouped
by depth first).

Bit-identical results are the contract (enforced by
``tests/cost/test_vector_engine.py``).  The scalar engine does its integer
arithmetic exactly (Python ints) and rounds once when a quantity enters the
float domain; IEEE-754 float64 multiplication/addition of *exactly
representable* operands is also correctly rounded, so the array pipeline
produces the same bits as long as every integer-chain intermediate stays
below 2**53.  Rows where any monitored intermediate reaches that limit —
and rows with oversized layer statics — are flagged and routed through the
scalar engine instead (the *scalar fallback*; see the README's
engine-selection notes, and the per-reason ``fallback_*`` counters this
engine keeps).  On the paper's workloads the flags never fire: traffic and
trip-count intermediates top out around 1e13, two orders of magnitude below
the limit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cost.engine import (
    LayerMappingKey,
    evaluate_layer_key,
    report_values,
)
from repro.workloads.statics import REDUCTION_INDEXES, LayerStatics

#: One row of work: a layer's statics plus one clipped mapping key.
Row = Tuple[LayerStatics, LayerMappingKey]

#: Columns per hierarchy level in the packed gene matrix: spatial size,
#: parallel dim index, six order positions, six tile sizes.
GENES_PER_LEVEL = 14

#: Integer-chain intermediates must stay below 2**53 for float64 products to
#: be exact.  The guard subtracts a relative margin much larger than the
#: worst accumulated rounding error (~1e-15), so a chain whose *exact* value
#: brushes the limit can never sneak past the flag after rounding.
_EXACT_LIMIT = float(2**53) * (1.0 - 1e-9)

#: Below this many rows the NumPy fixed costs outweigh the per-row win and
#: the batch is simply evaluated by the scalar engine.
MIN_VECTOR_ROWS = 8

#: Positions 0..5 within a loop order (broadcast helper for the scans).
_ORDER_POSITIONS = np.arange(6, dtype=np.int64)

#: Dimension-space mask of the reduction dimensions (for output "distinct"
#: factors, mirroring ``spatial_distinct_factor``).
_REDUCTION_MASK = np.array(
    [index in REDUCTION_INDEXES for index in range(6)], dtype=bool
)


class VectorEngine:
    """Batched, bit-identical counterpart of the scalar fast engine.

    One instance per :class:`~repro.cost.maestro.CostModel`; it owns a small
    statics table (one row per unique layer shape seen) and fallback
    telemetry: ``rows_vectorized`` / ``rows_fallback`` totals plus the
    per-reason ``fallback_counters`` dict, which makes the scalar-fallback
    rate *diagnosable* (a non-zero ``fallback_depth`` would mean a hierarchy
    depth regressed off the vector path).
    """

    def __init__(
        self,
        bytes_per_element: int,
        energy: Tuple[float, float, float, float],
    ):
        self.bytes_per_element = int(bytes_per_element)
        self.energy = energy
        self._bpe_f = float(self.bytes_per_element)
        # Scaling by 1 or a power of two never rounds, so products that are
        # only multiplied by ``bpe`` afterwards need no exactness flag.
        self._bpe_exact = (
            self.bytes_per_element & (self.bytes_per_element - 1)
        ) == 0
        self._statics_index: dict = {}
        self._statics_rows: List[tuple] = []
        self._table: Optional[tuple] = None
        self.rows_vectorized = 0
        self.rows_fallback = 0
        self.fallback_counters = {
            "fallback_depth": 0,
            "fallback_statics_overflow": 0,
            "fallback_intermediate_overflow": 0,
            "fallback_small_batch": 0,
            "fallback_gene_overflow": 0,
        }

    # -- statics table -----------------------------------------------------

    def _statics_slot(self, statics: LayerStatics) -> int:
        """Row of ``statics`` in the table (assigned on first sight)."""
        slot = self._statics_index.get(statics)
        if slot is None:
            dims = statics.dims
            # Oversized shapes would overflow the int64/float64 pipeline;
            # their rows always take the scalar path.
            vectorizable = (
                statics.macs < 2**53
                and statics.output_elements < 2**53
                and statics.stride < 2**31
                and all(size < 2**31 for size in dims)
            )
            self._statics_rows.append(
                (
                    dims,
                    statics.stride,
                    statics.is_depthwise,
                    statics.macs,
                    statics.output_elements,
                    tuple(index in statics.weight_indexes for index in range(6)),
                    tuple(index in statics.input_indexes for index in range(6)),
                    tuple(index in statics.output_indexes for index in range(6)),
                    vectorizable,
                )
            )
            slot = len(self._statics_rows) - 1
            self._statics_index[statics] = slot
            self._table = None
        return slot

    def _stacked_table(self) -> tuple:
        """Statics columns as stacked arrays (rebuilt after new shapes)."""
        if self._table is None:
            rows = self._statics_rows
            self._table = (
                np.array([row[0] for row in rows], dtype=np.int64),  # dims
                np.array([row[1] for row in rows], dtype=np.int64),  # stride
                np.array([row[2] for row in rows], dtype=bool),  # depthwise
                np.array([row[3] for row in rows], dtype=np.float64),  # macs
                np.array([row[3] for row in rows], dtype=np.int64),
                np.array([row[4] for row in rows], dtype=np.float64),  # out
                np.array([row[5] for row in rows], dtype=bool),  # W mask
                np.array([row[6] for row in rows], dtype=bool),  # I mask
                np.array([row[7] for row in rows], dtype=bool),  # O mask
            )
        return self._table

    # -- public API --------------------------------------------------------

    def evaluate_rows(
        self,
        rows: Sequence[Row],
        noc_bandwidth: float,
        dram_bandwidth: float,
        slots: Optional[Sequence[int]] = None,
    ) -> List[tuple]:
        """Evaluate every (statics, key) row; returns report value tuples.

        The tuples follow :func:`repro.cost.engine.report_values` field
        order, so they drop straight into the layer-report cache and are
        reconstituted per layer with ``make_report``.  ``slots`` optionally
        carries precomputed :meth:`statics_slot` values parallel to
        ``rows``.  Handles any hierarchy depth: mixed-depth batches are
        grouped by depth and each group rides the array pipeline.  The
        batch path uses :meth:`evaluate_packed` instead, which skips the
        per-row flattening done here.
        """
        count = len(rows)
        values: List[Optional[tuple]] = [None] * count
        # depth -> (positions, flattened gene rows, statics slots)
        groups: dict = {}
        statics_rows = self._statics_rows
        for position, (statics, key) in enumerate(rows):
            if len(key) == 0:
                values[position] = self._scalar_values(
                    statics, key, noc_bandwidth, dram_bandwidth, "depth"
                )
                continue
            slot = (
                slots[position] if slots is not None
                else self._statics_slot(statics)
            )
            if not statics_rows[slot][8]:
                values[position] = self._scalar_values(
                    statics, key, noc_bandwidth, dram_bandwidth,
                    "statics_overflow",
                )
                continue
            flat_row: tuple = ()
            for static, tile in key:
                flat_row += static[:2] + static[2] + tile
            group = groups.setdefault(len(key), ([], [], []))
            group[0].append(position)
            group[1].append(flat_row)
            group[2].append(slot)

        for positions, flat, group_slots in groups.values():
            if len(positions) < MIN_VECTOR_ROWS:
                for position in positions:
                    statics, key = rows[position]
                    values[position] = self._scalar_values(
                        statics, key, noc_bandwidth, dram_bandwidth,
                        "small_batch",
                    )
                continue
            try:
                matrix = np.array(flat, dtype=np.int64)
            except OverflowError:
                # A gene beyond int64 (pathological hand-built mappings);
                # the scalar engine's arbitrary-precision ints handle it.
                for position in positions:
                    statics, key = rows[position]
                    values[position] = self._scalar_values(
                        statics, key, noc_bandwidth, dram_bandwidth,
                        "gene_overflow",
                    )
                continue
            tuples = self._finish_matrix(
                rows,
                positions,
                matrix,
                np.array(group_slots, dtype=np.int64),
                noc_bandwidth,
                dram_bandwidth,
            )
            for index, position in enumerate(positions):
                values[position] = tuples[index]
        return values

    def evaluate_packed(
        self,
        rows: Sequence[Row],
        matrix: np.ndarray,
        slots: np.ndarray,
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> List[tuple]:
        """Evaluate uniform-depth rows whose genes are already packed.

        ``matrix`` is the ``(n, 14 * num_levels)`` int64 gene matrix
        (spatial, parallel, order, tiles per level) the batch path assembles
        with array gathers — hierarchy depth is inferred from its width;
        ``slots`` are the rows' statics-table slots.  ``rows`` is consulted
        only when a row needs the scalar fallback.
        """
        count = len(rows)
        statics_rows = self._statics_rows
        keep: Optional[List[int]] = None
        values: List[Optional[tuple]] = []
        if not all(row[8] for row in statics_rows):
            vectorizable = np.array(
                [row[8] for row in statics_rows], dtype=bool
            )[slots]
            if not vectorizable.all():
                values = [None] * count
                keep = np.flatnonzero(vectorizable).tolist()
                for position in np.flatnonzero(~vectorizable).tolist():
                    statics, key = rows[position]
                    values[position] = self._scalar_values(
                        statics, key, noc_bandwidth, dram_bandwidth,
                        "statics_overflow",
                    )
                matrix = matrix[keep]
                slots = slots[keep]
        remaining = len(keep) if keep is not None else count
        if remaining < MIN_VECTOR_ROWS:
            positions = keep if keep is not None else range(count)
            out = values if keep is not None else [None] * count
            for position in positions:
                statics, key = rows[position]
                out[position] = self._scalar_values(
                    statics, key, noc_bandwidth, dram_bandwidth,
                    "small_batch",
                )
            return out
        tuples = self._finish_matrix(
            rows, keep, matrix, slots, noc_bandwidth, dram_bandwidth
        )
        if keep is None:
            return tuples
        for index, position in enumerate(keep):
            values[position] = tuples[index]
        return values

    def statics_slot(self, statics: LayerStatics) -> int:
        """Public view of the statics-table slot (for batch-path callers)."""
        return self._statics_slot(statics)

    def _finish_matrix(
        self,
        rows: Sequence[Row],
        positions: Optional[Sequence[int]],
        matrix: np.ndarray,
        slots: np.ndarray,
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> List[tuple]:
        """Array evaluation + tuple stitching + inexact-row fallback.

        Returns tuples parallel to ``matrix``; ``positions`` maps matrix
        rows back into ``rows`` for the fallback (``None`` = identity).
        """
        float_columns, int_columns, inexact = self._evaluate_matrix(
            matrix, slots, noc_bandwidth, dram_bandwidth
        )
        # One C-level pass per column, then zip stitches the value tuples in
        # report_values order: latency, compute, noc, dram, macs, l2_to_l1,
        # dram_bytes, l1_access, energy, active_pes, num_pes,
        # l1_requirement, l2_requirement.
        f = [float_columns[:, index].tolist() for index in range(8)]
        g = [int_columns[:, index].tolist() for index in range(5)]
        tuples = list(
            zip(
                f[0], f[1], f[2], f[3], g[0], f[4], f[5], f[6], f[7],
                g[1], g[2], g[3], g[4],
            )
        )
        flagged = 0
        if inexact.any():
            for index in np.flatnonzero(inexact).tolist():
                row = rows[positions[index] if positions is not None else index]
                tuples[index] = self._scalar_values(
                    row[0], row[1], noc_bandwidth, dram_bandwidth,
                    "intermediate_overflow",
                )
                flagged += 1
        self.rows_vectorized += len(tuples) - flagged
        return tuples

    # -- internals ---------------------------------------------------------

    def _scalar_values(
        self,
        statics: LayerStatics,
        key: LayerMappingKey,
        noc_bandwidth: float,
        dram_bandwidth: float,
        reason: str,
    ) -> tuple:
        """One row through the scalar engine (fallback path).

        ``reason`` names the per-reason counter to bump (``depth``,
        ``statics_overflow``, ``intermediate_overflow``, ``small_batch`` or
        ``gene_overflow``); ``rows_fallback`` stays the total.
        """
        self.rows_fallback += 1
        self.fallback_counters["fallback_" + reason] += 1
        report = evaluate_layer_key(
            statics,
            key,
            noc_bandwidth,
            dram_bandwidth,
            self.bytes_per_element,
            self.energy,
            "",
            1,
        )
        return report_values(report)

    def _evaluate_matrix(
        self,
        matrix: np.ndarray,
        slots: np.ndarray,
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The vectorized, depth-general evaluation.

        Mirrors ``engine._evaluate_two_level`` / ``engine._evaluate_general``
        operation for operation as a loop over hierarchy levels (the depth
        comes from the matrix width); see the module docstring for the
        exactness argument behind the ``inexact`` flags.  Returns the float
        columns (latency, compute, noc, dram, l2_to_l1, dram_bytes,
        l1_access, energy), the integer columns (macs, active_pes, num_pes,
        l1_requirement, l2_requirement) and the per-row inexactness flags.
        """
        (
            dims_table, stride_table, dw_table, macs_f_table, macs_i_table,
            out_f_table, w_table, i_table, o_table,
        ) = self._stacked_table()
        dims = dims_table[slots]
        stride = stride_table[slots]
        depthwise = dw_table[slots]
        w_mask = w_table[slots]
        i_mask = i_table[slots]
        o_mask = o_table[slots]

        num_levels = matrix.shape[1] // GENES_PER_LEVEL
        spatial = []
        par = []
        order = []
        tile = []
        for level in range(num_levels):
            base = level * GENES_PER_LEVEL
            spatial.append(matrix[:, base])
            par.append(matrix[:, base + 1:base + 2])
            order.append(matrix[:, base + 2:base + 8])
            tile.append(matrix[:, base + 8:base + 14])

        inexact = np.zeros(len(matrix), dtype=bool)

        # -- per-level reuse analysis (engine: base/active/folds/trips) ----
        def _analyze(parent, tile_l, par_l, spatial_l):
            base = -(-parent // tile_l)
            chunks = np.take_along_axis(base, par_l, 1)[:, 0]
            active = np.minimum(spatial_l, chunks)
            folds = -(-chunks // active)
            trips = base.copy()
            np.put_along_axis(trips, par_l, folds[:, None], 1)
            covered = np.take_along_axis(tile_l, par_l, 1)[:, 0] * active
            parent_extent = np.take_along_axis(parent, par_l, 1)[:, 0]
            macro = tile_l.copy()
            np.put_along_axis(
                macro, par_l, np.minimum(parent_extent, covered)[:, None], 1
            )
            return trips, macro, active

        trips = []
        macros = []
        actives = []
        parent = dims
        for level in range(num_levels):
            trips_l, macro_l, active_l = _analyze(
                parent, tile[level], par[level], spatial[level]
            )
            trips.append(trips_l)
            macros.append(macro_l)
            actives.append(active_l)
            parent = tile[level]

        trips_in_order = []
        prefixes = []
        products = []
        for level in range(num_levels):
            in_order = np.take_along_axis(
                trips[level], order[level], 1
            ).astype(np.float64)
            prefix = np.cumprod(in_order, axis=1)
            product = prefix[:, 5]
            inexact |= product >= _EXACT_LIMIT
            trips_in_order.append(in_order)
            prefixes.append(prefix)
            products.append(product)

        inner_volume = np.cumprod(tile[-1].astype(np.float64), axis=1)[:, 5]
        inexact |= inner_volume >= _EXACT_LIMIT
        total_steps = products[0]
        for level in range(1, num_levels):
            total_steps = total_steps * products[level]
            inexact |= total_steps >= _EXACT_LIMIT
        compute_cycles = inner_volume * total_steps

        # -- operand footprints (flag every integer-chain intermediate) ----
        def _footprints(extents):
            k = extents[:, 0].astype(np.float64)
            c = extents[:, 1].astype(np.float64)
            y = extents[:, 2]
            x = extents[:, 3]
            r = extents[:, 4].astype(np.float64)
            s = extents[:, 5].astype(np.float64)
            in_y = ((y - 1) * stride + extents[:, 4]).astype(np.float64)
            in_x = ((x - 1) * stride + extents[:, 5]).astype(np.float64)
            inexact_local = in_y >= _EXACT_LIMIT
            inexact_local |= in_x >= _EXACT_LIMIT
            rs = r * s
            inexact_local |= rs >= _EXACT_LIMIT
            crs = c * rs
            inexact_local |= crs >= _EXACT_LIMIT
            weight = np.where(depthwise, crs, k * crs)
            inexact_local |= weight >= _EXACT_LIMIT
            yx = y.astype(np.float64) * x.astype(np.float64)
            inexact_local |= yx >= _EXACT_LIMIT
            output = np.where(depthwise, c, k) * yx
            inexact_local |= output >= _EXACT_LIMIT
            c_in_y = c * in_y
            inexact_local |= c_in_y >= _EXACT_LIMIT
            inputs = c_in_y * in_x
            inexact_local |= inputs >= _EXACT_LIMIT
            return weight, inputs, output, inexact_local

        macro_w, macro_i, macro_o, flagged = _footprints(macros[0])
        inexact |= flagged

        # -- operand fetch scans (engine: _operand_fetches) ----------------
        def _fetches(rel_in_order, trips_in_order, prefix):
            iterating = rel_in_order & (trips_in_order > 1.0)
            position = np.where(iterating, _ORDER_POSITIONS, -1).max(axis=1)
            gathered = np.take_along_axis(
                prefix, np.maximum(position, 0)[:, None], 1
            )[:, 0]
            return np.where(position >= 0, gathered, 1.0)

        rel_w0 = np.take_along_axis(w_mask, order[0], 1)
        rel_i0 = np.take_along_axis(i_mask, order[0], 1)
        rel_o0 = np.take_along_axis(o_mask, order[0], 1)

        bpe = self._bpe_f
        bpe_exact = self._bpe_exact

        # A product that only feeds the float domain from here on needs no
        # exactness flag even when it exceeds 2**53: with both operands
        # exact, IEEE-754 rounds it once — the same single rounding the
        # scalar engine performs when its exact integer enters the float
        # accumulation.  Only scaling by a non-power-of-two ``bpe`` would
        # add a second rounding, hence the ``bpe_exact`` guards.

        # -- off-chip traffic (engine: dram_bytes accumulation) ------------
        out_elements = out_f_table[slots]
        term = _fetches(rel_w0, trips_in_order[0], prefixes[0]) * macro_w
        if not bpe_exact:
            inexact |= term >= _EXACT_LIMIT
        dram_bytes = term * bpe
        term = _fetches(rel_i0, trips_in_order[0], prefixes[0]) * macro_i
        if not bpe_exact:
            inexact |= term >= _EXACT_LIMIT
        dram_bytes = dram_bytes + term * bpe
        fetched_out = _fetches(rel_o0, trips_in_order[0], prefixes[0]) * macro_o
        inexact |= fetched_out >= _EXACT_LIMIT  # feeds an exact subtraction
        spills = np.maximum(0.0, fetched_out - out_elements)
        dram_bytes = dram_bytes + (out_elements + 2.0 * spills) * bpe

        # -- NoC traffic (engine: l2_to_l1_bytes accumulation) -------------
        actives_f = [active.astype(np.float64) for active in actives]
        pars_flat = [par_l[:, 0] for par_l in par]

        def _distinct(mask, is_output, depth):
            distinct = None
            for level in range(depth):
                at = np.take_along_axis(mask, par[level], 1)[:, 0]
                if is_output:
                    at = at | _REDUCTION_MASK[pars_flat[level]]
                factor = np.where(at, actives_f[level], 1.0)
                distinct = factor if distinct is None else distinct * factor
            return distinct

        l2_to_l1_bytes = np.zeros(len(matrix))
        inner_w = inner_i = inner_o = None
        steps_above = products[0]
        for level_index in range(1, num_levels):
            rel_w_l = np.take_along_axis(w_mask, order[level_index], 1)
            rel_i_l = np.take_along_axis(i_mask, order[level_index], 1)
            rel_o_l = np.take_along_axis(o_mask, order[level_index], 1)
            tile_w, tile_i, tile_o, flagged = _footprints(tile[level_index])
            inexact |= flagged
            for footprint, rel_l, mask, is_output in (
                (tile_w, rel_w_l, w_mask, False),
                (tile_i, rel_i_l, i_mask, False),
                (tile_o, rel_o_l, o_mask, True),
            ):
                term = steps_above * _fetches(
                    rel_l, trips_in_order[level_index], prefixes[level_index]
                )
                inexact |= term >= _EXACT_LIMIT
                term = term * footprint
                inexact |= term >= _EXACT_LIMIT
                distinct = _distinct(mask, is_output, level_index + 1)
                inexact |= distinct >= _EXACT_LIMIT
                term = term * distinct
                if not bpe_exact:
                    inexact |= term >= _EXACT_LIMIT
                l2_to_l1_bytes = l2_to_l1_bytes + term * bpe
            if level_index < num_levels - 1:
                steps_above = steps_above * products[level_index]
                inexact |= steps_above >= _EXACT_LIMIT
            inner_w, inner_i, inner_o = tile_w, tile_i, tile_o

        noc_cycles = l2_to_l1_bytes / noc_bandwidth
        dram_cycles = dram_bytes / dram_bandwidth

        # -- pipeline fill (engine: startup) -------------------------------
        fill = macro_w + macro_i
        if not bpe_exact:
            inexact |= fill >= _EXACT_LIMIT
        startup = fill * bpe / dram_bandwidth
        if num_levels > 1:
            # The scalar engine adds an exact 0.0 here for one-level
            # hierarchies, which is the float identity — skipping the term
            # entirely is bit-identical.
            fill = inner_w + inner_i
            if not bpe_exact:
                inexact |= fill >= _EXACT_LIMIT
            startup = startup + fill * bpe / noc_bandwidth
        latency = (
            np.maximum(np.maximum(compute_cycles, noc_cycles), dram_cycles)
            + startup
        )

        # -- energy (engine: evaluate_layer tail) --------------------------
        macs = macs_f_table[slots]
        inexact |= macs >= _EXACT_LIMIT
        mac_energy, l1_energy, l2_energy, dram_energy = self.energy
        l1_access_bytes = 2.0 * macs * bpe + l2_to_l1_bytes
        l2_access_bytes = l2_to_l1_bytes + dram_bytes
        energy_total = macs * mac_energy + (
            (l1_access_bytes * l1_energy + l2_access_bytes * l2_energy)
            + dram_bytes * dram_energy
        )

        # -- minimum buffer capacities (exact integers in the report) ------
        if num_levels == 1:
            # One-level hierarchies size both buffers from the raw inner
            # tile footprint (not the macro), mirroring the scalar engine.
            tile_w, tile_i, tile_o, flagged = _footprints(tile[0])
            inexact |= flagged
            partial = tile_w + tile_i
            inexact |= partial >= _EXACT_LIMIT
            l1_requirement = (partial + tile_o) * bpe
            inexact |= l1_requirement >= _EXACT_LIMIT
            l2_requirement = l1_requirement
        else:
            partial = inner_w + inner_i
            inexact |= partial >= _EXACT_LIMIT
            l1_requirement = (partial + inner_o) * bpe
            inexact |= l1_requirement >= _EXACT_LIMIT
            partial = macro_w + macro_i
            inexact |= partial >= _EXACT_LIMIT
            l2_requirement = (partial + macro_o) * bpe
            inexact |= l2_requirement >= _EXACT_LIMIT
            for level_index in range(1, num_levels - 1):
                mid_w, mid_i, mid_o, flagged = _footprints(macros[level_index])
                inexact |= flagged
                partial = mid_w + mid_i
                inexact |= partial >= _EXACT_LIMIT
                l2_requirement = l2_requirement + (partial + mid_o) * bpe
                inexact |= l2_requirement >= _EXACT_LIMIT

        float_columns = np.stack(
            (
                latency, compute_cycles, noc_cycles, dram_cycles,
                l2_to_l1_bytes, dram_bytes, l1_access_bytes, energy_total,
            ),
            axis=1,
        )
        active_pes = actives[0]
        num_pes = spatial[0]
        for level in range(1, num_levels):
            active_pes = active_pes * actives[level]
            num_pes = num_pes * spatial[level]
        safe = ~inexact
        int_columns = np.stack(
            (
                macs_i_table[slots],
                active_pes,
                num_pes,
                np.where(safe, l1_requirement, 0.0).astype(np.int64),
                np.where(safe, l2_requirement, 0.0).astype(np.int64),
            ),
            axis=1,
        )
        return float_columns, int_columns, inexact
