"""MAESTRO-style analytical cost model.

The evaluator takes an accelerator design point (the PE hierarchy implied by
a :class:`~repro.mapping.mapping.Mapping` plus platform bandwidths) and a
layer, and produces latency, traffic, energy, utilization and buffer
requirements from a data-centric reuse analysis.
"""

from repro.cost.maestro import CostModel
from repro.cost.performance import LayerPerformance, ModelPerformance
from repro.cost.reuse import LevelAnalysis, analyze_levels, operand_fetches

__all__ = [
    "CostModel",
    "LayerPerformance",
    "ModelPerformance",
    "LevelAnalysis",
    "analyze_levels",
    "operand_fetches",
]
