"""MAESTRO-style analytical cost model.

The evaluator takes an accelerator design point (the PE hierarchy implied by
a :class:`~repro.mapping.mapping.Mapping` plus platform bandwidths) and a
layer, and produces latency, traffic, energy, utilization and buffer
requirements from a data-centric reuse analysis.  The hot path runs through
the tuple-based fast engine (:mod:`repro.cost.engine`) behind a bounded LRU
memo (:mod:`repro.cost.cache`); whole populations batch through the NumPy
structure-of-arrays engine (:mod:`repro.cost.vector_engine`); the reference
dict-based analysis is kept for parity testing and baseline benchmarks.
"""

from repro.cost.cache import CacheStats, LRUCache
from repro.cost.engine import evaluate_layer_key, layer_mapping_key
from repro.cost.maestro import CostModel, LazyModelPerformance
from repro.cost.performance import LayerPerformance, ModelPerformance
from repro.cost.reuse import LevelAnalysis, analyze_levels, operand_fetches
from repro.cost.vector_engine import VectorEngine

__all__ = [
    "CacheStats",
    "CostModel",
    "LRUCache",
    "LayerPerformance",
    "LazyModelPerformance",
    "ModelPerformance",
    "LevelAnalysis",
    "VectorEngine",
    "analyze_levels",
    "evaluate_layer_key",
    "layer_mapping_key",
    "operand_fetches",
]
