"""Pluggable cost-backend seam.

The evaluator historically hard-wired :class:`repro.cost.maestro.CostModel`
(the analytic MAESTRO-style engine).  This module names the protocol that
class already satisfies and provides a factory, so alternative cost models
— starting with the ZigZag-style memory-centric backend — plug in behind
the same ``engine=``/caching machinery without the evaluator, sweep runner
or CLIs knowing which implementation prices a design.
"""

from __future__ import annotations

from typing import List, Protocol, Sequence, Union, runtime_checkable

from repro.arch.energy import EnergyModel
from repro.cost.cache import CacheStats, LRUCache
from repro.cost.maestro import DEFAULT_LAYER_CACHE_SIZE, CostModel
from repro.cost.performance import ModelPerformance
from repro.cost.zigzag import ZigZagCostModel
from repro.mapping.mapping import Mapping
from repro.workloads.model import Model

#: Valid ``backend=`` choices, in preference order.
BACKENDS = ("analytic", "zigzag")


@runtime_checkable
class CostBackend(Protocol):
    """What the evaluator and sweep runner require of a cost model.

    Both :class:`repro.cost.maestro.CostModel` (``analytic``) and
    :class:`repro.cost.zigzag.ZigZagCostModel` (``zigzag``) satisfy this
    structurally; no inheritance is involved.
    """

    bytes_per_element: int

    def evaluate_model(
        self,
        model: Model,
        mappings,
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> ModelPerformance:
        """Price one model under one mapping provider."""

    def evaluate_model_batch(
        self,
        model: Model,
        mappings: Sequence[Union[Mapping, tuple]],
        noc_bandwidth: float,
        dram_bandwidth: float,
    ) -> List[ModelPerformance]:
        """Price one model under many mappings."""

    def evaluate_model_matrix(
        self,
        model: Model,
        design_matrix,
        noc_bandwidth,
        dram_bandwidth,
    ) -> List[ModelPerformance]:
        """Price packed gene-matrix rows (may reject unsupported layouts)."""

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the per-layer report cache."""

    def cache_clear(self) -> None:
        """Drop memoized layer reports."""

    @property
    def layer_cache(self) -> LRUCache:
        """The layer-report cache instance."""

    def adopt_cache(self, cache: LRUCache) -> None:
        """Swap in an externally owned layer-report cache."""

    @property
    def vector_stats(self) -> dict:
        """Vector-path and delta-reuse counters (zeros when inapplicable)."""

    delta_counters: dict


def create_backend(
    name: str,
    *,
    energy_model: EnergyModel = EnergyModel(),
    bytes_per_element: int = 1,
    cache_size: int = DEFAULT_LAYER_CACHE_SIZE,
    engine: str = "fast",
) -> CostBackend:
    """Build the cost model implementing backend ``name``."""
    if name == "analytic":
        return CostModel(
            energy_model=energy_model,
            bytes_per_element=bytes_per_element,
            cache_size=cache_size,
            engine=engine,
        )
    if name == "zigzag":
        return ZigZagCostModel(
            energy_model=energy_model,
            bytes_per_element=bytes_per_element,
            cache_size=cache_size,
            engine=engine,
        )
    raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}")
