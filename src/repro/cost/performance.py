"""Performance report containers produced by the cost model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class LayerPerformance:
    """Cost-model output for one layer under one design point.

    All traffic figures are bytes, all latencies are cycles, energy is in
    the energy model's (normalised) units.
    """

    layer_name: str
    latency: float
    compute_cycles: float
    noc_cycles: float
    dram_cycles: float
    macs: int
    l2_to_l1_bytes: float
    dram_bytes: float
    l1_access_bytes: float
    energy: float
    active_pes: int
    num_pes: int
    l1_requirement_bytes: int
    l2_requirement_bytes: int
    count: int = 1

    @property
    def utilization(self) -> float:
        """Fraction of PEs that receive work."""
        if self.num_pes <= 0:
            return 0.0
        return self.active_pes / self.num_pes

    @property
    def bottleneck(self) -> str:
        """Which component limits the layer: compute, NoC or DRAM."""
        pairs = (
            ("compute", self.compute_cycles),
            ("noc", self.noc_cycles),
            ("dram", self.dram_cycles),
        )
        return max(pairs, key=lambda pair: pair[1])[0]

    @property
    def total_latency(self) -> float:
        """Latency of all ``count`` instances of the layer."""
        return self.latency * self.count

    @property
    def total_energy(self) -> float:
        """Energy of all ``count`` instances of the layer."""
        return self.energy * self.count

    @property
    def edp(self) -> float:
        """Energy-delay product of one layer instance."""
        return self.latency * self.energy


@dataclass(frozen=True)
class ModelPerformance:
    """Aggregated cost-model output for a whole model under one design point."""

    model_name: str
    layers: Tuple[LayerPerformance, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a model performance report needs at least one layer")
        object.__setattr__(self, "layers", tuple(self.layers))

    @property
    def latency(self) -> float:
        """Total latency (cycles) across all layer instances."""
        return sum(layer.total_latency for layer in self.layers)

    @property
    def energy(self) -> float:
        """Total energy across all layer instances."""
        return sum(layer.total_energy for layer in self.layers)

    @property
    def edp(self) -> float:
        """Energy-delay product of the whole model."""
        return self.latency * self.energy

    @property
    def macs(self) -> int:
        """Total MACs across all layer instances."""
        return sum(layer.macs * layer.count for layer in self.layers)

    @property
    def dram_bytes(self) -> float:
        """Total off-chip traffic across all layer instances."""
        return sum(layer.dram_bytes * layer.count for layer in self.layers)

    @property
    def l1_requirement_bytes(self) -> int:
        """Per-PE L1 capacity needed to support every layer."""
        return max(layer.l1_requirement_bytes for layer in self.layers)

    @property
    def l2_requirement_bytes(self) -> int:
        """Shared L2 capacity needed to support every layer."""
        return max(layer.l2_requirement_bytes for layer in self.layers)

    @property
    def num_pes(self) -> int:
        """PE count of the evaluated design point."""
        return self.layers[0].num_pes

    @property
    def average_utilization(self) -> float:
        """Latency-weighted average PE utilization."""
        total_latency = self.latency
        if total_latency <= 0:
            return 0.0
        weighted = sum(layer.utilization * layer.total_latency for layer in self.layers)
        return weighted / total_latency

    def per_layer(self) -> Dict[str, LayerPerformance]:
        """Layer-name keyed view of the per-layer reports."""
        return {layer.layer_name: layer for layer in self.layers}

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"Model {self.model_name}: latency={self.latency:.3e} cycles, "
            f"energy={self.energy:.3e}, EDP={self.edp:.3e}",
            f"  PEs={self.num_pes}, L1 req={self.l1_requirement_bytes}B/PE, "
            f"L2 req={self.l2_requirement_bytes}B, "
            f"avg utilization={self.average_utilization:.1%}",
        ]
        for layer in self.layers:
            lines.append(
                f"  {layer.layer_name:<28s} x{layer.count:<3d} "
                f"lat={layer.latency:.3e} util={layer.utilization:.1%} "
                f"bound={layer.bottleneck}"
            )
        return "\n".join(lines)
