"""Bounded LRU caches for the evaluation engine.

A genetic-algorithm population re-proposes the same design points
constantly: elites are copied verbatim into the next generation, and
repaired genomes clip to far fewer distinct per-layer mappings than raw
genomes.  The engine therefore memoizes both whole-design evaluations and
per-layer cost reports behind small bounded LRU caches, and exposes
hit/miss counters so search runs can report their cache efficiency.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one cache (or an aggregate of several)."""

    hits: int = 0
    misses: int = 0
    size: int = 0
    maxsize: int = 0

    @property
    def requests(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        if not self.requests:
            return 0.0
        return self.hits / self.requests

    def combined(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum of two stats (for aggregate reporting)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            size=self.size + other.size,
            maxsize=self.maxsize + other.maxsize,
        )

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter delta against an earlier snapshot of the same cache.

        Size and bound stay absolute (they describe the cache now); only
        the hit/miss counters are differenced.  Used for per-search cache
        reporting on caches that live across searches (and, in the sweep
        runner, across jobs).
        """
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            size=self.size,
            maxsize=self.maxsize,
        )

    def summary(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"{self.hits}/{self.requests} hits ({self.hit_rate:.1%}), "
            f"{self.size}/{self.maxsize} entries"
        )


class LRUCache:
    """A small bounded least-recently-used cache with hit/miss counters.

    ``maxsize <= 0`` disables the cache entirely: lookups miss without
    counting and stores are dropped, so callers need no special-casing.

    ``data`` is the backing ordered dict.  Hot loops may operate on it
    directly (plain ``data.get`` / insert, evicting with
    ``data.popitem(last=False)`` when over ``maxsize``) to skip the method
    and recency-update overhead — at the cost of approximating LRU with
    insertion-order eviction — and account their hits/misses in bulk on the
    public counters.
    """

    def __init__(self, maxsize: int):
        self.maxsize = int(maxsize)
        self.data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Identity tokens for objects embedded in byte-fingerprint keys
        #: (the gene-matrix path numbers layer statics through this table).
        #: Living on the cache — the shared artifact of ``adopt_cache`` —
        #: guarantees every evaluator probing this cache numbers the same
        #: statics object identically, and the table's references keep the
        #: objects alive so a token can never be reissued to a different
        #: object while fingerprints embedding it exist.  Deliberately
        #: *not* dropped by :meth:`clear`: it is an identity table, not
        #: cached values, and is bounded by the number of distinct layer
        #: shapes ever seen.
        self.tokens: Dict[Any, int] = {}
        #: Optional persistent L2 tier
        #: (:class:`~repro.cost.persist.PersistentLayerCache`).  It rides
        #: on the cache instance so ``adopt_cache`` hands the shared tier
        #: to every adopter along with the L1 contents; the cost models
        #: probe it on L1 misses and write freshly priced rows back.
        #: ``None`` keeps every lookup purely in-memory.
        self.tier: Optional[Any] = None

    @property
    def enabled(self) -> bool:
        """True when the cache actually stores entries."""
        return self.maxsize > 0

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value or ``None``, refreshing recency on a hit."""
        if self.maxsize <= 0:
            return None
        value = self.data.get(key)
        if value is None:
            self.misses += 1
            return None
        self.data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert a value, evicting the least recently used entry if full."""
        if self.maxsize <= 0:
            return
        data = self.data
        data[key] = value
        data.move_to_end(key)
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self.data.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.data)

    def stats(self) -> CacheStats:
        """Current hit/miss counters as an immutable snapshot."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            size=len(self.data),
            maxsize=max(0, self.maxsize),
        )

    # Cache *contents* never travel across process boundaries (e.g. into
    # evaluation worker processes): pickling preserves the bound and the
    # persistent tier (which re-opens by path on the other side, so pool
    # workers share the on-disk store), not the in-memory entries.

    def __getstate__(self) -> Dict[str, Any]:
        return {"maxsize": self.maxsize, "tier": self.tier}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(state["maxsize"])
        self.tier = state.get("tier")
