"""Manually-designed (fixed) dataflow templates.

The paper's HW-opt baseline (Sec. V-A) sweeps HW configurations under three
well-known fixed mappings:

* ``dla``  -- NVDLA-like: output-/input-channel (K-C) parallelism,
  weight-stationary ordering.
* ``shi``  -- ShiDianNao-like: output-pixel (Y-X) parallelism,
  output-stationary ordering.
* ``eye``  -- Eyeriss-like: row-stationary (Y-R) parallelism.

A template adapts its tile sizes to the layer (clipping) and its spatial
sizes to the given PE array shape, but its parallelism, order and tiling
policy are fixed — that is the "human inductive bias" the co-optimization
removes.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.mapping.directives import LevelMapping
from repro.mapping.mapping import Mapping
from repro.workloads.dims import DIMS
from repro.workloads.layer import Layer

#: Names of the available fixed dataflow styles.
DATAFLOW_STYLES: Tuple[str, ...] = ("dla", "shi", "eye")

_FULL = -1  # sentinel: use the full parent extent for this dimension


def _resolve_tiles(policy: Dict[str, int], extents: Dict[str, int]) -> Dict[str, int]:
    """Translate a tile policy (caps and ``_FULL`` sentinels) into tile sizes."""
    tiles = {}
    for dim in DIMS:
        cap = policy.get(dim, _FULL)
        if cap == _FULL:
            tiles[dim] = extents[dim]
        else:
            tiles[dim] = max(1, min(cap, extents[dim]))
    return tiles


def _two_level_mapping(
    layer: Layer,
    pe_array: Sequence[int],
    parallel_dims: Tuple[str, str],
    orders: Tuple[Tuple[str, ...], Tuple[str, ...]],
    l2_policy: Dict[str, int],
    l1_policy: Dict[str, int],
) -> Mapping:
    if len(pe_array) != 2:
        raise ValueError(f"fixed dataflow templates are two-level, got {len(pe_array)} levels")
    layer_extents = {dim: layer.dims[dim] for dim in DIMS}
    l2_tiles = _resolve_tiles(l2_policy, layer_extents)
    l1_tiles = _resolve_tiles(l1_policy, l2_tiles)
    levels = (
        LevelMapping(
            spatial_size=int(pe_array[0]),
            parallel_dim=parallel_dims[0],
            order=orders[0],
            tiles=l2_tiles,
        ),
        LevelMapping(
            spatial_size=int(pe_array[1]),
            parallel_dim=parallel_dims[1],
            order=orders[1],
            tiles=l1_tiles,
        ),
    )
    return Mapping(levels=levels).clipped_to_layer(layer)


def dla_like(layer: Layer, pe_array: Sequence[int]) -> Mapping:
    """NVDLA-like mapping: K parallel across arrays, C parallel across PEs.

    Weights are kept stationary in the PEs while activations stream through;
    the temporal order iterates spatial positions innermost.
    """
    return _two_level_mapping(
        layer,
        pe_array,
        parallel_dims=("K", "C"),
        orders=(("K", "C", "Y", "X", "R", "S"), ("C", "K", "R", "S", "Y", "X")),
        l2_policy={"K": 1, "C": 64, "Y": 8, "X": _FULL, "R": _FULL, "S": _FULL},
        l1_policy={"K": 1, "C": 1, "Y": 1, "X": 1, "R": _FULL, "S": _FULL},
    )


def shi_like(layer: Layer, pe_array: Sequence[int]) -> Mapping:
    """ShiDianNao-like mapping: output pixels (Y, X) parallel, output-stationary.

    Each PE owns one output pixel and accumulates over the full reduction
    (C, R, S), which requires large per-PE working sets for wide layers.
    """
    return _two_level_mapping(
        layer,
        pe_array,
        parallel_dims=("Y", "X"),
        orders=(("K", "Y", "X", "C", "R", "S"), ("Y", "X", "K", "C", "R", "S")),
        l2_policy={"K": 4, "C": _FULL, "Y": 1, "X": 16, "R": _FULL, "S": _FULL},
        l1_policy={"K": 1, "C": 16, "Y": 1, "X": 1, "R": _FULL, "S": _FULL},
    )


def eye_like(layer: Layer, pe_array: Sequence[int]) -> Mapping:
    """Eyeriss-like row-stationary mapping: output rows and filter rows parallel."""
    return _two_level_mapping(
        layer,
        pe_array,
        parallel_dims=("Y", "R"),
        orders=(("C", "K", "Y", "X", "R", "S"), ("Y", "R", "K", "C", "S", "X")),
        l2_policy={"K": 16, "C": 16, "Y": 1, "X": _FULL, "R": _FULL, "S": _FULL},
        l1_policy={"K": 1, "C": 1, "Y": 1, "X": _FULL, "R": 1, "S": _FULL},
    )


_TEMPLATES: Dict[str, Callable[[Layer, Sequence[int]], Mapping]] = {
    "dla": dla_like,
    "shi": shi_like,
    "eye": eye_like,
}

_ALIASES: Dict[str, str] = {
    "dla-like": "dla",
    "nvdla": "dla",
    "shi-like": "shi",
    "shidiannao": "shi",
    "eye-like": "eye",
    "eyeriss": "eye",
    "row-stationary": "eye",
}


def get_dataflow(name: str) -> Callable[[Layer, Sequence[int]], Mapping]:
    """Look up a fixed dataflow template by name or alias."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _TEMPLATES:
        raise KeyError(
            f"unknown dataflow {name!r}; available: {', '.join(DATAFLOW_STYLES)}"
        )
    return _TEMPLATES[key]
