"""Tile footprint and minimum-buffer-requirement math.

Implements the paper's Fig. 3(f): the buffer at a level must hold the
weight, input and output working sets of the tile processed below it.
The outermost (shared / L2) buffer holds the *macro* tile — the union of the
tiles of all spatially active sub-clusters — while the innermost (per-PE L1)
buffer holds one PE's tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping as TMapping

from repro.mapping.mapping import Mapping
from repro.workloads.dims import DIMS
from repro.workloads.layer import Layer, OpType

OPERANDS = ("W", "I", "O")


def operand_footprint(
    layer: Layer,
    extents: TMapping[str, int],
    stride: int | None = None,
) -> Dict[str, int]:
    """Element counts of W / I / O for a tile with the given dimension extents.

    ``extents`` maps each of the six dimensions to the tile size; the input
    footprint applies the sliding-window halo with the layer's stride.
    """
    stride_value = layer.stride if stride is None else stride
    k = extents["K"]
    c = extents["C"]
    y = extents["Y"]
    x = extents["X"]
    r = extents["R"]
    s = extents["S"]
    in_y = (y - 1) * stride_value + r
    in_x = (x - 1) * stride_value + s
    if layer.op_type is OpType.DWCONV:
        weight = c * r * s
        output = c * y * x
    else:
        weight = k * c * r * s
        output = k * y * x
    inputs = c * in_y * in_x
    return {"W": weight, "I": inputs, "O": output}


def macro_extents(
    level_tiles: TMapping[str, int],
    parallel_dim: str,
    spatial_size: int,
    parent_extents: TMapping[str, int],
) -> Dict[str, int]:
    """Extent covered by all spatially active sub-clusters of one level.

    For the parallel dimension the macro extent is the per-sub-cluster tile
    multiplied by the spatial fan-out, capped at the parent extent; other
    dimensions are shared (multicast) so their macro extent equals the tile.
    """
    macro = {dim: min(level_tiles[dim], parent_extents[dim]) for dim in DIMS}
    covered = level_tiles[parallel_dim] * spatial_size
    macro[parallel_dim] = min(parent_extents[parallel_dim], covered)
    return macro


@dataclass(frozen=True)
class BufferRequirement:
    """Minimum buffer capacities implied by a mapping for one layer.

    ``per_level`` lists, outermost first, the byte footprint that the buffer
    at that level must hold (macro footprint for shared levels, per-PE
    footprint for the innermost level), broken down by operand.
    """

    per_level: tuple
    l2_bytes: int
    l1_bytes_per_pe: int

    @property
    def total_l2_bytes(self) -> int:
        """Shared on-chip buffer requirement (all non-innermost levels)."""
        return self.l2_bytes


def buffer_requirements(
    layer: Layer,
    mapping: Mapping,
    bytes_per_element: int = 1,
) -> BufferRequirement:
    """Minimum L2 and per-PE L1 capacities for ``mapping`` on ``layer``.

    This is the paper's buffer-allocation strategy input: DiGamma does not
    search buffer sizes, it allocates exactly these requirements.
    """
    extents = mapping.tile_extents(layer)
    per_level: List[Dict[str, int]] = []
    parent = {dim: layer.dims[dim] for dim in DIMS}
    for index, (level, tile) in enumerate(zip(mapping.levels, extents)):
        innermost = index == mapping.num_levels - 1
        if innermost:
            footprint = operand_footprint(layer, tile)
        else:
            macro = macro_extents(tile, level.parallel_dim, level.spatial_size, parent)
            footprint = operand_footprint(layer, macro)
        entry = dict(footprint)
        entry["total_bytes"] = sum(footprint[op] for op in OPERANDS) * bytes_per_element
        per_level.append(entry)
        parent = tile

    l1_bytes = int(per_level[-1]["total_bytes"])
    if mapping.num_levels == 1:
        l2_bytes = l1_bytes
    else:
        l2_bytes = int(sum(entry["total_bytes"] for entry in per_level[:-1]))
    return BufferRequirement(
        per_level=tuple(per_level),
        l2_bytes=l2_bytes,
        l1_bytes_per_pe=l1_bytes,
    )
