"""Mapping abstraction: per-level directives, tiling math, dataflow templates."""

from repro.mapping.directives import LevelMapping
from repro.mapping.mapping import Mapping
from repro.mapping.tiles import buffer_requirements, operand_footprint
from repro.mapping.dataflows import (
    DATAFLOW_STYLES,
    dla_like,
    eye_like,
    get_dataflow,
    shi_like,
)

__all__ = [
    "LevelMapping",
    "Mapping",
    "buffer_requirements",
    "operand_footprint",
    "DATAFLOW_STYLES",
    "dla_like",
    "shi_like",
    "eye_like",
    "get_dataflow",
]
