"""Per-level mapping directives.

One :class:`LevelMapping` corresponds to one "config" row of the paper's
encoding (Fig. 3(b-c)): the level's spatial fan-out (``pi``), which
dimension is parallelised across the sub-clusters, the temporal loop order
and the per-dimension tile sizes handled by one sub-cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping as TMapping, Tuple

from repro.workloads.dims import DIM_INDEX, DIMS, validate_dim

_DIMS_SET = frozenset(DIMS)


@dataclass(frozen=True)
class LevelMapping:
    """Mapping directives of a single cluster level.

    Parameters
    ----------
    spatial_size:
        ``pi`` of this level: how many sub-clusters (1-D arrays, or PEs for
        the innermost level) this level instantiates.  This is the HW gene.
    parallel_dim:
        The dimension distributed spatially across the sub-clusters
        (the value of the ``P`` gene).
    order:
        Temporal loop order over all six dimensions, outermost first.
    tiles:
        Tile size of each dimension handled by one sub-cluster per temporal
        step of this level.
    """

    spatial_size: int
    parallel_dim: str
    order: Tuple[str, ...]
    tiles: TMapping[str, int]

    def __post_init__(self) -> None:
        if self.spatial_size < 1:
            raise ValueError(f"spatial_size must be >= 1, got {self.spatial_size}")
        validate_dim(self.parallel_dim)
        if len(self.order) != len(DIMS) or set(self.order) != _DIMS_SET:
            raise ValueError(
                f"order must be a permutation of {DIMS}, got {self.order}"
            )
        tiles = {dim: int(self.tiles[dim]) for dim in DIMS}
        for dim, size in tiles.items():
            if size < 1:
                raise ValueError(f"tile size of {dim} must be >= 1, got {size}")
        object.__setattr__(self, "order", tuple(self.order))
        object.__setattr__(self, "tiles", tiles)
        # Fast-path views consumed by the evaluation engine: tile sizes in
        # canonical DIMS order and index-based loop order / parallel dim.
        object.__setattr__(
            self, "tiles_tuple", tuple(tiles[dim] for dim in DIMS)
        )
        object.__setattr__(
            self, "order_indexes", tuple(DIM_INDEX[dim] for dim in self.order)
        )
        object.__setattr__(self, "parallel_index", DIM_INDEX[self.parallel_dim])
        object.__setattr__(
            self,
            "static_key",
            (self.spatial_size, self.parallel_index, self.order_indexes),
        )

    # -- helpers -----------------------------------------------------------

    def tile(self, dim: str) -> int:
        """Tile size of ``dim`` at this level."""
        validate_dim(dim)
        return self.tiles[dim]

    def with_tiles(self, **changes: int) -> "LevelMapping":
        """Return a copy with some tile sizes replaced."""
        tiles = dict(self.tiles)
        for dim, size in changes.items():
            validate_dim(dim)
            tiles[dim] = int(size)
        return LevelMapping(
            spatial_size=self.spatial_size,
            parallel_dim=self.parallel_dim,
            order=self.order,
            tiles=tiles,
        )

    def with_spatial_size(self, spatial_size: int) -> "LevelMapping":
        """Return a copy with a different spatial fan-out."""
        return LevelMapping(
            spatial_size=int(spatial_size),
            parallel_dim=self.parallel_dim,
            order=self.order,
            tiles=dict(self.tiles),
        )

    def with_parallel_dim(self, dim: str) -> "LevelMapping":
        """Return a copy parallelising a different dimension."""
        return LevelMapping(
            spatial_size=self.spatial_size,
            parallel_dim=validate_dim(dim),
            order=self.order,
            tiles=dict(self.tiles),
        )

    def with_order(self, order: Tuple[str, ...]) -> "LevelMapping":
        """Return a copy with a different loop order."""
        return LevelMapping(
            spatial_size=self.spatial_size,
            parallel_dim=self.parallel_dim,
            order=tuple(order),
            tiles=dict(self.tiles),
        )

    def clipped(self, parent_extents: TMapping[str, int]) -> "LevelMapping":
        """Return a copy with tile sizes clipped to the parent extents."""
        tiles = {
            dim: max(1, min(self.tiles[dim], int(parent_extents[dim]))) for dim in DIMS
        }
        return LevelMapping(
            spatial_size=self.spatial_size,
            parallel_dim=self.parallel_dim,
            order=self.order,
            tiles=tiles,
        )

    def describe(self) -> str:
        """Compact single-line rendering in the paper's key/value style."""
        ordered = " ".join(f"{dim}:{self.tiles[dim]}" for dim in self.order)
        return f"pi={self.spatial_size} P={self.parallel_dim} [{ordered}]"

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (useful for serialisation and reports)."""
        return {
            "spatial_size": self.spatial_size,
            "parallel_dim": self.parallel_dim,
            "order": list(self.order),
            "tiles": dict(self.tiles),
        }
