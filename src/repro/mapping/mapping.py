"""A complete mapping: one :class:`LevelMapping` per cluster level."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.mapping.directives import LevelMapping
from repro.workloads.dims import DIMS
from repro.workloads.layer import Layer


@dataclass(frozen=True)
class Mapping:
    """A per-layer mapping across the accelerator's cluster hierarchy.

    ``levels[0]`` is the outermost level (the shared L2 / global buffer
    stage), ``levels[-1]`` the innermost (per-PE) level.  The product of the
    levels' ``spatial_size`` is the PE count of the decoded accelerator.
    """

    levels: Tuple[LevelMapping, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a mapping needs at least one level")
        object.__setattr__(self, "levels", tuple(self.levels))

    def __iter__(self) -> Iterator[LevelMapping]:
        return iter(self.levels)

    def __len__(self) -> int:
        return len(self.levels)

    # -- derived -----------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Number of cluster levels (the paper's "clustering" dimension)."""
        return len(self.levels)

    @property
    def pe_array(self) -> Tuple[int, ...]:
        """Spatial fan-out per level, outermost first."""
        return tuple(level.spatial_size for level in self.levels)

    @property
    def num_pes(self) -> int:
        """Total PEs implied by the mapping's spatial sizes."""
        total = 1
        for level in self.levels:
            total *= level.spatial_size
        return total

    def cache_key(self) -> Tuple:
        """Canonical hashable key of this mapping (layer-independent).

        Two mappings with the same key decode to identical design points, so
        the key is safe to memoize full evaluations on.  The key is cached on
        the instance (mappings are immutable).
        """
        cached = self.__dict__.get("_cache_key")
        if cached is None:
            cached = tuple(
                (level.static_key, level.tiles_tuple) for level in self.levels
            )
            object.__setattr__(self, "_cache_key", cached)
        return cached

    def tile_extents(self, layer: Layer) -> List[Dict[str, int]]:
        """Effective (clipped) per-sub-cluster tile extents at each level.

        The parent extent of level 0 is the layer's dimensions; the parent of
        level ``l`` is level ``l-1``'s effective tile.  Tile sizes larger
        than the parent extent are clipped, which is how out-of-range genes
        are interpreted rather than rejected.
        """
        extents: List[Dict[str, int]] = []
        parent = {dim: layer.dims[dim] for dim in DIMS}
        for level in self.levels:
            effective = {
                dim: max(1, min(level.tiles[dim], parent[dim])) for dim in DIMS
            }
            extents.append(effective)
            parent = effective
        return extents

    def clipped_to_layer(self, layer: Layer) -> "Mapping":
        """Return a mapping whose tile sizes are all legal for ``layer``."""
        extents = self.tile_extents(layer)
        levels = [
            level.with_tiles(**extent) for level, extent in zip(self.levels, extents)
        ]
        return Mapping(levels=tuple(levels))

    def validate(self, layer: Layer) -> List[str]:
        """Return a list of legality violations against ``layer`` (empty = legal)."""
        problems: List[str] = []
        parent = {dim: layer.dims[dim] for dim in DIMS}
        for index, level in enumerate(self.levels):
            for dim in DIMS:
                tile = level.tiles[dim]
                if tile > parent[dim]:
                    problems.append(
                        f"level {index}: tile {dim}={tile} exceeds parent extent {parent[dim]}"
                    )
            parent = {dim: min(level.tiles[dim], parent[dim]) for dim in DIMS}
        return problems

    def with_level(self, index: int, level: LevelMapping) -> "Mapping":
        """Return a copy with the level at ``index`` replaced."""
        levels = list(self.levels)
        levels[index] = level
        return Mapping(levels=tuple(levels))

    def describe(self) -> str:
        """Multi-line rendering, outermost level first."""
        names = _level_names(self.num_levels)
        return "\n".join(
            f"{name}: {level.describe()}" for name, level in zip(names, self.levels)
        )

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (useful for serialisation and reports)."""
        return {"levels": [level.as_dict() for level in self.levels]}


def _level_names(num_levels: int) -> List[str]:
    """Readable names for levels: the innermost is L1, the outermost L<n>."""
    return [f"L{num_levels - index}" for index in range(num_levels)]


def mapping_from_cache_key(parts: Tuple) -> Mapping:
    """Rebuild a :class:`Mapping` from :meth:`Mapping.cache_key` parts.

    The batched population path computes a genome's cache key anyway (for
    the whole-design memo), and the key already carries every gene in
    clamped, index-based form — so the mapping is reconstructed here
    without re-running the per-level ``__post_init__`` normalisation,
    which is ~3x cheaper than :meth:`Genome.to_mapping`.  Loop orders are
    still checked to be permutations, matching ``to_mapping``'s
    ``ValueError`` on malformed genomes; the result is field-identical to
    the validated constructor (same ``cache_key``, same derived views).
    """
    levels = []
    for (spatial, parallel_index, order_indexes), tiles in parts:
        if len(order_indexes) != len(DIMS) or set(order_indexes) != _DIM_INDEX_SET:
            raise ValueError(
                f"order must be a permutation of {DIMS}, got {order_indexes}"
            )
        level = object.__new__(LevelMapping)
        level.__dict__.update(
            spatial_size=spatial,
            parallel_dim=DIMS[parallel_index],
            order=tuple(DIMS[index] for index in order_indexes),
            tiles=dict(zip(DIMS, tiles)),
            tiles_tuple=tiles,
            order_indexes=order_indexes,
            parallel_index=parallel_index,
            static_key=(spatial, parallel_index, order_indexes),
        )
        levels.append(level)
    mapping = object.__new__(Mapping)
    mapping.__dict__.update(levels=tuple(levels), _cache_key=tuple(parts))
    return mapping


_DIM_INDEX_SET = frozenset(range(len(DIMS)))


def uniform_mapping(
    layer: Layer,
    pe_array: Sequence[int],
    parallel_dims: Sequence[str],
    order: Sequence[str] = DIMS,
) -> Mapping:
    """Build a simple legal mapping: full tiles at L2, unit tiles at L1.

    Useful as a neutral starting point for tests and optimizer seeding.
    """
    if len(pe_array) != len(parallel_dims):
        raise ValueError("pe_array and parallel_dims must have the same length")
    levels: List[LevelMapping] = []
    parent = {dim: layer.dims[dim] for dim in DIMS}
    for index, (size, parallel_dim) in enumerate(zip(pe_array, parallel_dims)):
        innermost = index == len(pe_array) - 1
        tiles = {dim: (1 if innermost else parent[dim]) for dim in DIMS}
        levels.append(
            LevelMapping(
                spatial_size=int(size),
                parallel_dim=parallel_dim,
                order=tuple(order),
                tiles=tiles,
            )
        )
        parent = dict(tiles)
    return Mapping(levels=tuple(levels)).clipped_to_layer(layer)
