"""(1+1) evolution strategy with one-fifth success-rule step adaptation."""

from __future__ import annotations

import numpy as np

from repro.framework.search import SearchTracker
from repro.optim.base import Optimizer


class OnePlusOneES(Optimizer):
    """Classic (1+1)-ES on the flat vector encoding.

    A single parent is perturbed with isotropic Gaussian noise; the child
    replaces the parent when it is at least as fit.  The step size follows
    the one-fifth success rule.
    """

    name = "(1+1)-ES"

    def __init__(self, initial_sigma: float = 0.2, adaptation: float = 0.85):
        if initial_sigma <= 0:
            raise ValueError("initial_sigma must be positive")
        if not 0.0 < adaptation < 1.0:
            raise ValueError("adaptation must be in (0, 1)")
        self.initial_sigma = initial_sigma
        self.adaptation = adaptation

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        dimension = tracker.vector_dimension
        parent = rng.random(dimension)
        parent_fitness = tracker.evaluate_vector(parent)
        sigma = self.initial_sigma

        while not tracker.exhausted:
            child = np.clip(parent + sigma * rng.standard_normal(dimension), 0.0, 1.0)
            child_fitness = tracker.evaluate_vector(child)
            if child_fitness >= parent_fitness:
                parent, parent_fitness = child, child_fitness
                sigma /= self.adaptation
            else:
                sigma *= self.adaptation ** 0.25
            sigma = float(np.clip(sigma, 1e-4, 1.0))
