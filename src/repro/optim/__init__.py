"""Optimization algorithms pluggable into the Co-opt Framework.

Includes the paper's proposed DiGamma algorithm, the GAMMA mapper baseline,
the HW-opt grid search, and from-scratch implementations of the eight
generic black-box baselines (Random, standard GA, PSO, TBPSA, (1+1)-ES,
Differential Evolution, Passive Portfolio, CMA-ES).
"""

from repro.optim.base import Optimizer
from repro.optim.cma import CMAES
from repro.optim.de import DifferentialEvolution
from repro.optim.digamma import DiGamma
from repro.optim.gamma import GammaMapper
from repro.optim.grid_search import HardwareGridSearch
from repro.optim.one_plus_one import OnePlusOneES
from repro.optim.portfolio import PassivePortfolio
from repro.optim.pso import ParticleSwarm
from repro.optim.random_search import RandomSearch
from repro.optim.registry import available_optimizers, get_optimizer
from repro.optim.std_ga import StandardGA
from repro.optim.tbpsa import TBPSA

__all__ = [
    "Optimizer",
    "CMAES",
    "DifferentialEvolution",
    "DiGamma",
    "GammaMapper",
    "HardwareGridSearch",
    "OnePlusOneES",
    "PassivePortfolio",
    "ParticleSwarm",
    "RandomSearch",
    "StandardGA",
    "TBPSA",
    "available_optimizers",
    "get_optimizer",
]
