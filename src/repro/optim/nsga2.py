"""NSGA-II multi-objective search over the HW-Mapping design space.

The classic elitist multi-objective GA (fast non-dominated sort + crowding
distance, binary tournament on ``(rank, -crowding)``), driving the same
structured DiGamma operators (:mod:`repro.optim.digamma.operators`) that
make the scalar GA sample-efficient on this space.  One run yields the
whole latency/energy/area (or any other
:class:`~repro.framework.objective.ObjectiveSet`) trade-off front: the
tracker archives every valid evaluation, while NSGA-II's selection spreads
the sampling budget across the front instead of collapsing onto a single
scalarized optimum.

Evaluation goes exclusively through the tracker's batched results view
(:meth:`~repro.framework.search.SearchTracker.evaluate_batch_results`):
whole generations are priced in one vector-engine pass, exactly like the
single-objective population algorithms.

Run without an objective set, each evaluation's ranking vector degrades to
the scalar objective value, turning NSGA-II into a plain elitist GA — so
the optimizer stays usable through every single-objective entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.encoding.genome import Genome
from repro.encoding.genome_matrix import GenomeMatrix
from repro.framework.evaluator import EvaluationResult
from repro.framework.pareto import crowding_distances, fast_non_dominated_sort
from repro.framework.search import SearchTracker
from repro.optim.base import (
    Optimizer,
    checkpoint_generation,
    reject_resume,
    resume_state,
)
from repro.optim.digamma import operators


@dataclass(frozen=True)
class NSGA2HyperParameters:
    """Hyper-parameters of the NSGA-II loop.

    Operator rates mirror the DiGamma defaults — the reproduction pipeline
    is the same; only the selection scheme differs.
    """

    population_size: Optional[int] = None
    crossover_rate: float = 0.60
    reorder_rate: float = 0.30
    grow_rate: float = 0.40
    mutate_map_rate: float = 0.50
    mutate_hw_rate: float = 0.30
    #: Probability that a child's first parent is the current best
    #: individual of one (randomly chosen) objective axis instead of a
    #: tournament winner.  Crowding alone preserves the front's extreme
    #: points but applies no pressure to *improve* them; this bias spends
    #: part of each generation refining the per-objective extremes so the
    #: front's endpoints track what dedicated scalar searches would find.
    extreme_bias: float = 0.25

    def __post_init__(self) -> None:
        if self.population_size is not None and self.population_size < 4:
            raise ValueError("population_size must be >= 4 when given")
        for name in (
            "crossover_rate",
            "reorder_rate",
            "grow_rate",
            "mutate_map_rate",
            "mutate_hw_rate",
            "extreme_bias",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def resolved_population(self, sampling_budget: int) -> int:
        """Population size: explicit value, or scaled to the sampling budget."""
        if self.population_size is not None:
            return self.population_size
        return int(np.clip(sampling_budget // 25, 20, 100))


class NSGA2(Optimizer):
    """Elitist Pareto-front GA (NSGA-II) with DiGamma's structured operators.

    Parameters
    ----------
    hyper_parameters:
        Loop knobs; defaults mirror DiGamma's operator rates.
    seeded_fraction:
        Fraction of the initial population drawn from the domain-informed
        sampler instead of the uniform random sampler (same prior as
        DiGamma: budget-filling PE arrays, large parallel dimensions).
    """

    name = "NSGA-II"
    supports_checkpoint = True

    def __init__(
        self,
        hyper_parameters: Optional[NSGA2HyperParameters] = None,
        seeded_fraction: float = 0.5,
        use_matrix: bool = True,
    ):
        if not 0.0 <= seeded_fraction <= 1.0:
            raise ValueError("seeded_fraction must be in [0, 1]")
        self.hyper_parameters = (
            hyper_parameters if hyper_parameters is not None else NSGA2HyperParameters()
        )
        self.seeded_fraction = seeded_fraction
        self.use_matrix = use_matrix

    # -- the NSGA-II loop ---------------------------------------------------

    def run(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        if (
            self.use_matrix
            and getattr(tracker, "evaluate_matrix_results", None) is not None
            and getattr(tracker, "prefers_matrix", True)
        ):
            return self._run_matrix(tracker, rng)
        return self._run_genomes(tracker, rng)

    def _initial_population(self, space, population_size, rng) -> List[Genome]:
        return operators.initial_population(
            space, population_size, self.seeded_fraction, rng
        )

    def _num_objectives(self, tracker) -> int:
        objectives = getattr(
            getattr(tracker, "evaluator", None), "objectives", None
        )
        return len(objectives) if objectives is not None else 1

    def _run_matrix(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        """Gene-matrix generation loop (bit-identical trajectories)."""
        params = self.hyper_parameters
        space = tracker.space
        population_size = params.resolved_population(tracker.sampling_budget)
        num_objectives = self._num_objectives(tracker)

        state = resume_state(tracker, "nsga2-matrix")
        if state is not None:
            num_levels = int(state["num_levels"])
            rows = [list(map(int, row)) for row in state["rows"]]
            values = [
                tuple(float(value) for value in vector)
                for vector in state["values"]
            ]
        else:
            population = GenomeMatrix.from_genomes(
                self._initial_population(space, population_size, rng)
            )
            num_levels = population.num_levels
            rows = population.data.tolist()
            results = tracker.evaluate_matrix_results(population)
            if len(results) < len(rows):
                return
            values = [
                self._ranking_vector(result, num_objectives)
                for result in results
            ]

        # Selection and reproduction consult only rows + ranking vectors
        # (full EvaluationResults live in the tracker's archive), so the
        # carried — and checkpointed — loop state is exactly these two.
        def loop_state():
            return {
                "kind": "nsga2-matrix",
                "rows": rows,
                "num_levels": num_levels,
                "values": [list(vector) for vector in values],
            }

        while not tracker.exhausted:
            checkpoint_generation(tracker, loop_state)
            ranks, crowding = self._rank(values)
            children = [
                self._make_child_row(
                    rows, values, ranks, crowding, space, num_levels, rng
                )
                for _ in range(population_size)
            ]
            child_results = tracker.evaluate_matrix_results(
                GenomeMatrix(np.array(children, dtype=np.int64), num_levels)
            )
            if len(child_results) < len(children):
                return  # budget ran out mid-generation; tracker has the rest

            combined_rows = rows + children
            combined_values = values + [
                self._ranking_vector(result, num_objectives)
                for result in child_results
            ]
            survivors = self._environmental_selection(
                combined_values, population_size
            )
            rows = [combined_rows[i] for i in survivors]
            values = [combined_values[i] for i in survivors]

    def _run_genomes(self, tracker: SearchTracker, rng: np.random.Generator) -> None:
        """The original per-genome loop (compatibility shim; pinned against
        the matrix loop by the trajectory-parity tests)."""
        reject_resume(tracker)
        evaluate = getattr(tracker, "evaluate_batch_results", None)
        if evaluate is None:
            raise TypeError(
                "NSGA-II requires a tracker with the batched results view "
                "(SearchTracker.evaluate_batch_results); scalar-only "
                "tracker stubs cannot drive a multi-objective search"
            )
        params = self.hyper_parameters
        space = tracker.space
        population_size = params.resolved_population(tracker.sampling_budget)
        num_objectives = self._num_objectives(tracker)

        population = self._initial_population(space, population_size, rng)
        results = evaluate(population)
        if len(results) < len(population):
            return
        values = [self._ranking_vector(result, num_objectives) for result in results]

        while not tracker.exhausted:
            ranks, crowding = self._rank(values)
            children = [
                self._make_child(population, values, ranks, crowding, space, rng)
                for _ in range(population_size)
            ]
            child_results = evaluate(children)
            if len(child_results) < len(children):
                return  # budget ran out mid-generation; tracker has the rest

            combined_population = population + children
            combined_results = results + child_results
            combined_values = values + [
                self._ranking_vector(result, num_objectives)
                for result in child_results
            ]
            survivors = self._environmental_selection(
                combined_values, population_size
            )
            population = [combined_population[i] for i in survivors]
            results = [combined_results[i] for i in survivors]
            values = [combined_values[i] for i in survivors]

    # -- selection ----------------------------------------------------------

    @staticmethod
    def _rank(
        values: Sequence[Tuple[float, ...]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-individual (front rank, crowding distance) of a population."""
        ranks = np.zeros(len(values), dtype=int)
        crowding = np.zeros(len(values))
        for front_rank, front in enumerate(fast_non_dominated_sort(values)):
            front_values = [values[i] for i in front]
            distances = crowding_distances(front_values)
            for position, index in enumerate(front):
                ranks[index] = front_rank
                crowding[index] = distances[position]
        return ranks, crowding

    @staticmethod
    def _environmental_selection(
        values: Sequence[Tuple[float, ...]], capacity: int
    ) -> List[int]:
        """NSGA-II survivor selection: whole fronts, crowding-truncated last."""
        survivors: List[int] = []
        for front in fast_non_dominated_sort(values):
            if len(survivors) + len(front) <= capacity:
                survivors.extend(front)
                if len(survivors) == capacity:
                    break
                continue
            front_values = [values[i] for i in front]
            distances = crowding_distances(front_values)
            order = np.argsort(distances, kind="stable")[::-1]
            survivors.extend(front[i] for i in order[: capacity - len(survivors)])
            break
        return survivors

    def _tournament(
        self,
        ranks: np.ndarray,
        crowding: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        """Binary tournament: lower front rank wins, crowding breaks ties."""
        a, b = rng.integers(len(ranks)), rng.integers(len(ranks))
        if ranks[a] != ranks[b]:
            return int(a if ranks[a] < ranks[b] else b)
        return int(a if crowding[a] >= crowding[b] else b)

    def _make_child(
        self,
        population: List[Genome],
        values: List[Tuple[float, ...]],
        ranks: np.ndarray,
        crowding: np.ndarray,
        space,
        rng: np.random.Generator,
    ) -> Genome:
        params = self.hyper_parameters
        if rng.random() < params.extreme_bias:
            axis = int(rng.integers(len(values[0])))
            extreme = min(range(len(values)), key=lambda i: values[i][axis])
            parent_a = population[extreme]
        else:
            parent_a = population[self._tournament(ranks, crowding, rng)]
        parent_b = population[self._tournament(ranks, crowding, rng)]

        if rng.random() < params.crossover_rate:
            child = operators.crossover(parent_a, parent_b, rng)
        else:
            child = parent_a.copy()
        if rng.random() < params.reorder_rate:
            child = operators.reorder(child, rng)
        if rng.random() < params.grow_rate:
            child = operators.grow(child, space, rng)
        if rng.random() < params.mutate_map_rate:
            child = operators.mutate_map(child, space, rng)
        if rng.random() < params.mutate_hw_rate:
            child = operators.mutate_hw(child, space, rng)
        return child

    def _make_child_row(
        self,
        rows: List[List[int]],
        values: List[Tuple[float, ...]],
        ranks: np.ndarray,
        crowding: np.ndarray,
        space,
        num_levels: int,
        rng: np.random.Generator,
    ) -> List[int]:
        """Row twin of :meth:`_make_child` (identical RNG stream)."""
        params = self.hyper_parameters
        if rng.random() < params.extreme_bias:
            axis = int(rng.integers(len(values[0])))
            extreme = min(range(len(values)), key=lambda i: values[i][axis])
            parent_a = rows[extreme]
        else:
            parent_a = rows[self._tournament(ranks, crowding, rng)]
        parent_b = rows[self._tournament(ranks, crowding, rng)]

        if rng.random() < params.crossover_rate:
            child = operators.crossover_rows(parent_a, parent_b, num_levels, rng)
        else:
            child = parent_a.copy()
        if rng.random() < params.reorder_rate:
            operators.reorder_row(child, num_levels, rng)
        if rng.random() < params.grow_rate:
            operators.grow_row(child, space, num_levels, rng)
        if rng.random() < params.mutate_map_rate:
            operators.mutate_map_row(child, space, num_levels, rng)
        if rng.random() < params.mutate_hw_rate:
            operators.mutate_hw_row(child, space, num_levels, rng)
        return child

    # -- ranking vectors -----------------------------------------------------

    @staticmethod
    def _ranking_vector(
        result: EvaluationResult, num_objectives: int
    ) -> Tuple[float, ...]:
        """Minimization vector NSGA-II ranks a result by.

        Valid designs rank by their objective vector (or the scalar
        objective when no vector was requested).  Invalid designs rank by
        their graded penalty replicated across all axes: every valid point
        dominates every invalid one, while less-severe violations dominate
        more-severe ones — the multi-objective counterpart of the scalar
        path's graded negative fitness.
        """
        if result.valid:
            vector = result.objective_vector
            if vector is not None:
                return tuple(vector)
            return (result.objective_value,)
        return (-result.fitness,) * num_objectives
